//! Crash–recover–continue chaos soak for the serving layer under
//! injected storage faults.
//!
//! Each cycle: recover the directory and check it against a sequential
//! oracle, arm a seeded fault schedule (scripted fsync failures, torn
//! and failed appends, random fault rates, or none), drive pipelined
//! commit chunks through a [`ServingDb`], exercise degraded mode when
//! it appears (snapshots must keep answering at the durable head;
//! [`ServingDb::heal`] must restore service once the "disk" is fixed),
//! then crash — drop the database and smear seeded garbage over the log
//! tail — and loop.
//!
//! The invariants, cycle after cycle:
//!
//! * **Acknowledged durability** — every commit whose handle returned
//!   `Ok` survives every subsequent crash: recovery lands exactly on
//!   the last acknowledged LSN and the recovered state equals the
//!   oracle that applied only acknowledged commits.
//! * **No resurrection** — nothing a caller was told *failed* (io
//!   error, degraded rejection) is ever observed after recovery, and
//!   replay rejects nothing (`RecoveryReport::rejected` stays empty).
//! * **Verdict agreement** — in fault-free chunks, a commit the server
//!   rejects is one the oracle rejects too.
//!
//! Seeded and deterministic: `EPILOG_CHAOS_SEED` picks the schedule,
//! `EPILOG_CHAOS_CYCLES` scales the soak (default 100; the nightly CI
//! leg runs it 10× across seeds and `EPILOG_THREADS`).

use epilog::persist::wal::WAL_FILE;
use epilog::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const BASE: &str = "forall x. emp(x) -> person(x)";
const ICS: [&str; 2] = [
    "forall x. K emp(x) -> exists y. K ss(x, y)",
    "forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z",
];
const PEOPLE: usize = 6;
const CHUNKS_PER_CYCLE: usize = 3;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// A draw in `0..n` from the high bits — an LCG's low bits are
    /// short-period (`state % 4` cycles with period 4), so every
    /// small-range decision must come from the top of the word.
    fn below(&mut self, n: u64) -> u64 {
        (self.next() >> 33) % n
    }
}

fn person(i: usize) -> String {
    format!("E{i}")
}

fn number(i: usize) -> String {
    format!("N{i}")
}

/// One transaction from the seeded stream — same mix as the serving
/// soak: valid hires/fires, an always-invalid hire, and a renumbering
/// that violates ss-uniqueness exactly when the person is numbered.
fn pick_ops(roll: u64) -> Vec<TxOp> {
    let i = (roll >> 8) as usize % PEOPLE;
    match roll % 4 {
        0 => vec![
            TxOp::Assert(parse(&format!("emp({})", person(i))).unwrap()),
            TxOp::Assert(parse(&format!("ss({}, {})", person(i), number(i))).unwrap()),
        ],
        1 => vec![
            TxOp::Retract(parse(&format!("emp({})", person(i))).unwrap()),
            TxOp::Retract(parse(&format!("ss({}, {})", person(i), number(i))).unwrap()),
        ],
        2 => vec![TxOp::Assert(parse("emp(Ghost)").unwrap())],
        _ => vec![TxOp::Assert(
            parse(&format!("ss({}, {})", person(i), number((i + 1) % PEOPLE))).unwrap(),
        )],
    }
}

fn queries() -> Vec<Formula> {
    vec![
        parse("K emp(E0)").unwrap(),
        parse("exists y. K ss(E1, y)").unwrap(),
        parse("K person(E2)").unwrap(),
        parse("K emp(Ghost)").unwrap(),
        parse("K person(E5)").unwrap(),
    ]
}

fn answers(db: &EpistemicDb, qs: &[Formula]) -> Vec<Answer> {
    qs.iter().map(|q| db.ask(q)).collect()
}

fn sentence_set(t: &epilog::syntax::Theory) -> Vec<String> {
    let mut v: Vec<String> = t.sentences().iter().map(|w| w.to_string()).collect();
    v.sort();
    v
}

fn apply_to(oracle: &mut EpistemicDb, ops: &[TxOp]) -> Result<CommitReport, DbError> {
    let mut txn = oracle.transaction();
    for op in ops {
        txn = match op {
            TxOp::Assert(w) => txn.assert(w.clone()),
            TxOp::Retract(w) => txn.retract(w.clone()),
        };
    }
    txn.commit()
}

/// Smear seeded garbage over the log tail — the torn, half-flushed
/// bytes a real crash leaves behind. Appends only: acknowledged records
/// are fsynced, so a crash can never reach back into them.
fn tear(dir: &Path, rng: &mut Lcg) {
    use std::io::Write;
    let garbage: Vec<u8> = match rng.below(3) {
        // A record header that stops mid-field.
        0 => format!("@{} 5", 1 + rng.below(900)).into_bytes(),
        // A well-formed frame whose checksum is wrong.
        1 => format!("@{} 6 12345\nxxxxxx\n", 1 + rng.below(900)).into_bytes(),
        // A length that promises far more payload than exists.
        _ => format!("@{} 999999 0\npartial", 1 + rng.below(900)).into_bytes(),
    };
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join(WAL_FILE))
        .unwrap();
    f.write_all(&garbage).unwrap();
    let _ = f.sync_data();
}

/// Recover `dir` and demand it equals the oracle of acknowledged
/// commits, at exactly the last acknowledged LSN, with nothing rejected
/// on replay.
fn check_recovery(
    durable: &DurableDb,
    report: &RecoveryReport,
    oracle: &EpistemicDb,
    acked_lsn: u64,
    qs: &[Formula],
    context: &str,
) {
    assert_eq!(
        report.last_lsn, acked_lsn,
        "{context}: recovery must land on the last acknowledged LSN \
         (lost an acked commit if below, resurrected a failed one if above)"
    );
    assert!(
        report.rejected.is_empty(),
        "{context}: replay rejected records: {:?}",
        report.rejected
    );
    assert_eq!(
        sentence_set(durable.db().theory()),
        sentence_set(oracle.theory()),
        "{context}: recovered theory diverged from the acked-commit oracle"
    );
    assert_eq!(
        answers(durable.db(), qs),
        answers(oracle, qs),
        "{context}: recovered answers diverged"
    );
    assert!(
        durable.db().satisfies_constraints(),
        "{context}: recovered state violates constraints"
    );
}

#[test]
fn chaos_crash_recover_continue_soak() {
    let cycles: u64 = std::env::var("EPILOG_CHAOS_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let seed: u64 = std::env::var("EPILOG_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FFEE);
    let dir: PathBuf =
        std::env::temp_dir().join(format!("epilog-chaos-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut rng = Lcg(seed);
    let qs = queries();
    let opts = ServeOptions {
        max_batch: 8,
        ..ServeOptions::default()
    };

    // Genesis: theory + constraints, cleanly shut down.
    let mut oracle = EpistemicDb::from_text(BASE).unwrap();
    let mut acked_lsn = {
        let db = ServingDb::create(&dir, epilog::syntax::Theory::from_text(BASE).unwrap(), opts)
            .unwrap();
        for ic in ICS {
            db.add_constraint(parse(ic).unwrap()).unwrap();
            oracle.add_constraint(parse(ic).unwrap()).unwrap();
        }
        let lsn = db.head_lsn();
        db.shutdown().unwrap();
        lsn
    };

    let mut acked_commits = 0u64;
    let mut failed_commits = 0u64;
    let mut degraded_cycles = 0u64;
    let mut heals = 0u64;
    let mut tears = 0u64;

    for cycle in 0..cycles {
        // ---- Recover and audit against the oracle --------------------
        let (mut durable, report) = DurableDb::recover(&dir, FsyncPolicy::Never).unwrap();
        check_recovery(
            &durable,
            &report,
            &oracle,
            acked_lsn,
            &qs,
            &format!("cycle {cycle}"),
        );

        // Periodic compaction, while the disk behaves.
        if cycle % 8 == 3 {
            durable.compact().unwrap();
        }

        // ---- Arm this cycle's seeded fault schedule ------------------
        let inj = Arc::new(FaultInjector::new(seed ^ (cycle.wrapping_mul(0x9e37))));
        match rng.below(4) {
            // A scripted fsync failure a few batches in.
            0 => inj.fail_nth_sync(rng.below(4)),
            // A scripted append failure: clean, torn, or short.
            1 => {
                let kind = match rng.below(3) {
                    0 => FaultKind::FailOp,
                    1 => FaultKind::TornWrite,
                    _ => FaultKind::ShortWrite,
                };
                inj.fail_nth_write(rng.below(4), kind);
            }
            // Background fault rates on both primitives.
            2 => {
                inj.set_write_rate(1, 6);
                inj.set_sync_rate(1, 8);
            }
            // A fault-free cycle: the soak also covers plain operation.
            _ => inj.disarm(),
        }
        durable.set_fault_injector(Some(Arc::clone(&inj)));
        let db = ServingDb::start(durable, opts);

        // ---- Drive pipelined commit chunks ---------------------------
        'cycle: for _ in 0..CHUNKS_PER_CYCLE {
            let chunk = 1 + rng.below(4) as usize;
            let mut inflight = Vec::with_capacity(chunk);
            for _ in 0..chunk {
                let ops = pick_ops(rng.next() >> 16);
                inflight.push((ops.clone(), db.commit(ops)));
            }
            let results: Vec<(Vec<TxOp>, Result<CommitReceipt, ServeError>)> = inflight
                .into_iter()
                .map(|(ops, h)| (ops, h.wait()))
                .collect();
            // A sync-failure rollback can invalidate the state later
            // chunk members were validated against, so the server-vs-
            // oracle rejection cross-check only holds in chunks with no
            // transient failures.
            let chunk_clean = results
                .iter()
                .all(|(_, r)| matches!(r, Ok(_) | Err(ServeError::Db(..))));
            for (ops, res) in results {
                match res {
                    Ok(receipt) => {
                        let _ = apply_to(&mut oracle, &ops)
                            .expect("an acknowledged commit must replay on the oracle");
                        acked_lsn = acked_lsn.max(receipt.lsn);
                        acked_commits += 1;
                    }
                    Err(ServeError::Db(..)) => {
                        if chunk_clean {
                            assert!(
                                apply_to(&mut oracle, &ops).is_err(),
                                "server rejected a commit the oracle accepts: {ops:?}"
                            );
                        }
                    }
                    Err(ServeError::Io(_)) | Err(ServeError::Degraded(_)) => {
                        failed_commits += 1;
                    }
                    Err(e @ ServeError::Closed(_)) => {
                        panic!("writer died mid-soak: {e}")
                    }
                }
            }

            if db.is_degraded() {
                degraded_cycles += 1;
                // Degraded invariants: commits rejected fast, snapshots
                // and stats still answering at the durable head.
                let err = db
                    .commit_wait(pick_ops(rng.next() >> 16))
                    .expect_err("a degraded writer must reject commits");
                assert!(matches!(err, ServeError::Degraded(_)), "got {err}");
                let snap = db.snapshot();
                assert_eq!(snap.lsn(), acked_lsn, "degraded head must stay durable");
                assert_eq!(
                    answers(snap.db(), &qs),
                    answers(&oracle, &qs),
                    "degraded snapshot diverged from the acked oracle"
                );
                assert!(db.stats().degraded);
                // Alternate the two exits from degraded mode — odd
                // occurrences heal and continue, even ones crash while
                // degraded — so both paths run whenever it engages at
                // all, under any seed.
                if degraded_cycles % 2 == 1 {
                    // Fix the disk, heal, and keep committing.
                    inj.disarm();
                    let healed = db.heal().expect("heal with a fixed disk succeeds");
                    assert_eq!(healed, acked_lsn, "heal must land on the durable head");
                    assert!(!db.is_degraded());
                    heals += 1;
                } else {
                    // Crash while degraded.
                    break 'cycle;
                }
            }
        }

        // ---- Crash: no shutdown ceremony, then smear the tail --------
        drop(db);
        if rng.below(4) != 0 {
            tear(&dir, &mut rng);
            tears += 1;
        }
    }

    // ---- Final recovery after the last crash -------------------------
    let (durable, report) = DurableDb::recover(&dir, FsyncPolicy::Never).unwrap();
    check_recovery(&durable, &report, &oracle, acked_lsn, &qs, "final");
    drop(durable);

    // The soak must have exercised what it claims to: faults fired,
    // degraded mode appeared and healed, tails were torn.
    assert!(acked_commits > 0, "no commit ever succeeded");
    assert!(tears > 0, "no crash ever tore the log");
    if cycles >= 20 {
        assert!(failed_commits > 0, "no injected fault ever failed a commit");
        assert!(
            degraded_cycles > 0,
            "degraded mode never engaged across {cycles} cycles"
        );
        assert!(heals > 0, "no degraded cycle ever healed");
    }
    eprintln!(
        "chaos soak: {cycles} cycles, {acked_commits} acked, {failed_commits} failed, \
         {degraded_cycles} degraded, {heals} heals, {tears} torn tails, seed {seed}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Recovery is idempotent: recovering a crashed directory twice yields
/// a byte-identical log and an identical state — the first recovery's
/// tail truncation is the only write it performs.
#[test]
fn recovery_is_idempotent() {
    let dir = std::env::temp_dir().join(format!("epilog-chaos-idem-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let qs = queries();

    let mut oracle = EpistemicDb::from_text(BASE).unwrap();
    {
        let db = ServingDb::create(
            &dir,
            epilog::syntax::Theory::from_text(BASE).unwrap(),
            ServeOptions::default(),
        )
        .unwrap();
        for ic in ICS {
            db.add_constraint(parse(ic).unwrap()).unwrap();
            oracle.add_constraint(parse(ic).unwrap()).unwrap();
        }
        for i in 0..4 {
            let ops = vec![
                TxOp::Assert(parse(&format!("emp({})", person(i))).unwrap()),
                TxOp::Assert(parse(&format!("ss({}, {})", person(i), number(i))).unwrap()),
            ];
            db.commit_wait(ops.clone()).unwrap();
            let _ = apply_to(&mut oracle, &ops).unwrap();
        }
        db.shutdown().unwrap();
    }
    let mut rng = Lcg(7);
    tear(&dir, &mut rng);

    let (first, r1) = DurableDb::recover(&dir, FsyncPolicy::Never).unwrap();
    assert!(
        r1.torn_tail.is_some(),
        "the smeared tail must register as torn"
    );
    let state1 = (sentence_set(first.db().theory()), answers(first.db(), &qs));
    drop(first);
    let bytes1 = std::fs::read(dir.join(WAL_FILE)).unwrap();

    let (second, r2) = DurableDb::recover(&dir, FsyncPolicy::Never).unwrap();
    assert!(
        r2.torn_tail.is_none(),
        "the tear is gone after one recovery"
    );
    assert_eq!(r2.records_replayed, r1.records_replayed);
    assert_eq!(r2.last_lsn, r1.last_lsn);
    let state2 = (
        sentence_set(second.db().theory()),
        answers(second.db(), &qs),
    );
    drop(second);
    let bytes2 = std::fs::read(dir.join(WAL_FILE)).unwrap();

    assert_eq!(
        bytes1, bytes2,
        "recovery must be byte-idempotent on the log"
    );
    assert_eq!(state1, state2, "recovery must be state-idempotent");
    assert_eq!(state1.0, sentence_set(oracle.theory()));
    assert_eq!(state1.1, answers(&oracle, &qs));
    std::fs::remove_dir_all(&dir).unwrap();
}
