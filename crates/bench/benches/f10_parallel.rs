//! F10 — parallel fixpoint evaluation: sequential vs fanned-out rule
//! firing with partitioned hash probes.
//!
//! Shape expectation: on a machine with `p` cores the join-heavy
//! workload's probe loop and the scaling workload's per-round variant
//! fan-out both approach a `p`-way split of the dominant loop, so the
//! parallel rows should trend toward `1/p` of the sequential ones at
//! the largest `n`; below the thresholds the parallel configuration is
//! byte-identical to sequential and the rows should coincide.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epilog_bench::workloads::{join_heavy_program, scaling_program};
use epilog_datalog::EvalOptions;
use std::hint::black_box;

fn opts(threads: usize) -> EvalOptions {
    EvalOptions {
        threads,
        ..EvalOptions::default()
    }
}

/// Thresholds forced to zero so even small inputs take the parallel
/// paths — used by the ablation group to price the coordination
/// overhead the default thresholds exist to avoid.
fn eager_opts(threads: usize) -> EvalOptions {
    EvalOptions {
        threads,
        par_fanout_min_rows: 0,
        par_probe_min_outer: 0,
        ..EvalOptions::default()
    }
}

fn bench(c: &mut Criterion) {
    // Correctness gate: the parallel configuration computes the same
    // model with the same derivation counters as the sequential one,
    // and actually engages workers on the large join.
    {
        let prog = join_heavy_program(2048, 8);
        let (seq_db, seq) = prog.eval_opts(opts(1)).unwrap();
        let (par_db, par) = prog.eval_opts(opts(4)).unwrap();
        assert_eq!(seq_db, par_db);
        assert_eq!(seq.derivations, par.derivations);
        assert_eq!(seq.rule_firings, par.rule_firings);
        assert_eq!(seq.rows_examined, par.rows_examined);
        assert_eq!(seq.threads_used, 0);
        assert!(par.threads_used >= 2);
    }

    let mut g = c.benchmark_group("f10_parallel");
    g.sample_size(10);

    // Partitioned hash probes dominate the join-heavy workload.
    for n in [1024usize, 2048, 4096] {
        let prog = join_heavy_program(n, 8);
        g.bench_with_input(BenchmarkId::new("join_seq", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval_opts(opts(1)).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("join_par2", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval_opts(opts(2)).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("join_par4", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval_opts(opts(4)).unwrap()))
        });
    }

    // Per-round rule-variant fan-out dominates the recursive scaling
    // workload once the delta is wide enough.
    for n in [32usize, 48, 64] {
        let prog = scaling_program(n, 4);
        g.bench_with_input(BenchmarkId::new("scaling_seq", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval_opts(opts(1)).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("scaling_par4", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval_opts(opts(4)).unwrap()))
        });
    }

    // Threshold ablation: a workload small enough that the default
    // thresholds keep it sequential, run (a) with defaults (parallel
    // machinery bypassed) and (b) with thresholds zeroed (fan-out and
    // partitioning forced on). The gap is the pure coordination cost.
    {
        let prog = join_heavy_program(256, 8);
        g.bench_with_input(BenchmarkId::new("ablate_gated", 256), &256, |b, _| {
            b.iter(|| black_box(prog.eval_opts(opts(4)).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("ablate_forced", 256), &256, |b, _| {
            b.iter(|| black_box(prog.eval_opts(eager_opts(4)).unwrap()))
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
