//! Clark's completion `Comp(DB)` (Clark 1978), as FOPCE sentences.
//!
//! Definitions 3.3 and 3.4 of the paper state integrity-constraint
//! satisfaction for closed Prolog-like databases in terms of the
//! completion: `DB satisfies IC iff Comp(DB) + IC is satisfiable`
//! (consistency reading) or `Comp(DB) ⊨ IC` (entailment reading). The
//! completion turns each predicate's rules into a biconditional definition
//! and is only defined for Prolog-like databases — which is exactly the
//! paper's complaint: it "would not apply, for example, to databases with
//! existentially quantified or disjunctive information".

use crate::program::Program;
use epilog_syntax::formula::Formula;
use epilog_syntax::{Param, Pred, Term, Var};

/// Compute the Clark completion of a program as FOPCE sentences: one
/// biconditional per predicate (with an all-negative closure sentence for
/// predicates that have no defining rules or facts), using equality to tie
/// head arguments to rule instances.
pub fn completion(prog: &Program) -> Vec<Formula> {
    let mut out = Vec::new();
    for pred in prog.preds() {
        out.push(pred_completion(prog, pred));
    }
    out
}

fn pred_completion(prog: &Program, pred: Pred) -> Formula {
    let arity = pred.arity();
    let head_vars: Vec<Var> = (0..arity).map(|i| Var::new(&format!("x{i}"))).collect();
    let head_atom = Formula::atom(
        &pred.name(),
        head_vars.iter().map(|v| Term::Var(*v)).collect(),
    );

    let mut disjuncts: Vec<Formula> = Vec::new();

    // EDB facts contribute `x̄ = c̄` disjuncts.
    if let Some(rel) = prog.edb.relation(pred) {
        for tuple in rel.iter() {
            disjuncts.push(tuple_equalities(&head_vars, tuple));
        }
    }

    // Rules with this head contribute `∃ȳ (x̄ = t̄ ∧ body)`.
    for rule in prog.rules.iter().filter(|r| r.head.pred == pred) {
        // Rename rule variables that collide with the fresh head variables.
        let rule = rename_away_from(rule, &head_vars);
        let rule = &rule;
        let mut conjuncts: Vec<Formula> = Vec::new();
        for (hv, t) in head_vars.iter().zip(&rule.head.terms) {
            conjuncts.push(Formula::Eq(Term::Var(*hv), *t));
        }
        for lit in &rule.body {
            let a = Formula::Atom(lit.atom.clone());
            conjuncts.push(if lit.positive { a } else { Formula::not(a) });
        }
        let mut w = Formula::and_all(conjuncts).expect("head equalities are nonempty");
        // Existentially close the rule's own variables.
        let mut rule_vars: Vec<Var> = Vec::new();
        for a in std::iter::once(&rule.head).chain(rule.body.iter().map(|l| &l.atom)) {
            for v in a.vars() {
                if !rule_vars.contains(&v) && !head_vars.contains(&v) {
                    rule_vars.push(v);
                }
            }
        }
        for v in rule_vars.into_iter().rev() {
            w = Formula::exists(v, w);
        }
        disjuncts.push(w);
    }

    let body = Formula::or_all(disjuncts);
    let mut w = match body {
        Some(b) => Formula::iff(head_atom, b),
        // No facts and no rules: the predicate is everywhere false.
        None => Formula::not(head_atom),
    };
    for v in head_vars.into_iter().rev() {
        w = Formula::forall(v, w);
    }
    w
}

/// Rename any rule variable that collides with a head variable to a fresh
/// variable, so the completion's quantifiers cannot capture.
fn rename_away_from(rule: &crate::program::Rule, head_vars: &[Var]) -> crate::program::Rule {
    use epilog_syntax::formula::Atom;
    use std::collections::HashMap;
    let mut ren: HashMap<Var, Term> = HashMap::new();
    for a in std::iter::once(&rule.head).chain(rule.body.iter().map(|l| &l.atom)) {
        for v in a.vars() {
            if head_vars.contains(&v) && !ren.contains_key(&v) {
                ren.insert(v, Term::Var(Var::fresh(&v.name())));
            }
        }
    }
    if ren.is_empty() {
        return rule.clone();
    }
    let fix = |a: &Atom| a.subst(&ren);
    crate::program::Rule {
        head: fix(&rule.head),
        body: rule
            .body
            .iter()
            .map(|l| crate::program::Literal {
                atom: fix(&l.atom),
                positive: l.positive,
            })
            .collect(),
    }
}

fn tuple_equalities(head_vars: &[Var], tuple: &[Param]) -> Formula {
    let eqs: Vec<Formula> = head_vars
        .iter()
        .zip(tuple)
        .map(|(v, p)| Formula::Eq(Term::Var(*v), Term::Param(*p)))
        .collect();
    Formula::and_all(eqs).unwrap_or_else(|| {
        // A 0-ary predicate's fact completes to "true"; represent it as the
        // reflexive equality of an arbitrary parameter.
        let c = Param::new("c0");
        Formula::eq(c, c)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::{parse, Theory};

    #[test]
    fn completion_shape_facts_only() {
        let p = Program::from_text("p(a)\np(b)").unwrap();
        let comp = completion(&p);
        assert_eq!(comp.len(), 1);
        assert_eq!(comp[0].to_string(), "forall x0. p(x0) <-> x0 = a | x0 = b");
    }

    #[test]
    fn completion_shape_with_rule() {
        let p = Program::from_text("e(a, b)\nforall x, y. e(x, y) -> t(x, y)").unwrap();
        let comp = completion(&p);
        let t_def = comp
            .iter()
            .find(|w| w.to_string().starts_with("forall x0. forall x1. t"))
            .expect("t must have a completion");
        assert_eq!(
            t_def.to_string(),
            "forall x0. forall x1. t(x0, x1) <-> (exists x. exists y. x0 = x & x1 = y & e(x, y))"
        );
    }

    #[test]
    fn undefined_predicate_everywhere_false() {
        let mut p = Program::from_text("forall x. q(x) -> p(x)").unwrap();
        p.fact(&match parse("p(a)").unwrap() {
            Formula::Atom(a) => a,
            _ => unreachable!(),
        });
        let comp = completion(&p);
        assert!(
            comp.iter().any(|w| w.to_string() == "forall x0. ~q(x0)"),
            "q has no rules or facts, so its completion closes it off: {:?}",
            comp.iter().map(|w| w.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn completion_entails_negative_facts() {
        // Comp({p(a)}) ⊨ ¬p(b): the closed-world consequence the paper's
        // Definitions 3.3/3.4 rely on.
        let p = Program::from_text("p(a)").unwrap();
        let theory = Theory::new(completion(&p)).unwrap();
        let prover = epilog_prover::Prover::new(theory);
        assert!(prover.entails(&parse("p(a)").unwrap()));
        assert!(prover.entails(&parse("~p(b)").unwrap()));
    }

    #[test]
    fn completion_with_negation() {
        let p = Program::from_text(
            "p(a)
             q(b)
             forall x. p(x) & ~q(x) -> r(x)",
        )
        .unwrap();
        let theory = Theory::new(completion(&p)).unwrap();
        let prover = epilog_prover::Prover::new(theory);
        assert!(prover.entails(&parse("r(a)").unwrap()));
        assert!(prover.entails(&parse("~r(b)").unwrap()));
    }

    #[test]
    fn completion_sentences_are_valid_theory() {
        let p = Program::from_text(
            "e(a, b)
             e(b, c)
             forall x, y. e(x, y) -> t(x, y)
             forall x, y, z. e(x, y) & t(y, z) -> t(x, z)",
        )
        .unwrap();
        // All completion formulas are FOPCE sentences.
        let t = Theory::new(completion(&p));
        assert!(t.is_ok());
    }
}
