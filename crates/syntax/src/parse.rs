//! A parser for KFOPCE formulas in a readable ASCII syntax.
//!
//! # Grammar
//!
//! ```text
//! formula  := iff
//! iff      := implies ( "<->" implies )*
//! implies  := or ( "->" implies )?            (right associative)
//! or       := and ( "|" and )*
//! and      := unary ( "&" unary )*
//! unary    := "~" unary | "K" unary
//!           | ("forall" | "all") var+ "." formula
//!           | ("exists" | "some") var+ "." formula
//!           | atom | "(" formula ")"
//! atom     := ident ( "(" term ("," term)* ")" )?      — predicate
//!           | term "=" term | term "!=" term
//! term     := ident
//! ```
//!
//! # Variables vs. parameters
//!
//! Following the paper's notational conventions, an identifier in term
//! position is a **variable** iff it is one of `u v w x y z` optionally
//! followed by digits (e.g. `x`, `y1`), or it is bound by an enclosing
//! quantifier; every other identifier denotes a **parameter** (`John`,
//! `Math`, `a`, `p1`, …). An identifier in predicate-application or bare
//! formula position is a predicate symbol.

use crate::formula::{Atom, Formula};
use crate::symbols::{Param, Pred, Var};
use crate::term::Term;
use std::fmt;

/// Error produced when parsing fails, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset in the source text where the error was noticed.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Eq,
    Neq,
}

struct Lexer {
    pos: usize,
    toks: Vec<(Tok, usize)>,
}

impl Lexer {
    fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
        let mut l = Lexer {
            pos: 0,
            toks: Vec::new(),
        };
        let bytes = src.as_bytes();
        while l.pos < bytes.len() {
            let c = bytes[l.pos] as char;
            let start = l.pos;
            match c {
                ' ' | '\t' | '\n' | '\r' => {
                    l.pos += 1;
                }
                '(' => l.push(Tok::LParen, 1, start),
                ')' => l.push(Tok::RParen, 1, start),
                ',' => l.push(Tok::Comma, 1, start),
                '.' => l.push(Tok::Dot, 1, start),
                '~' => l.push(Tok::Not, 1, start),
                '&' => l.push(Tok::And, 1, start),
                '|' => l.push(Tok::Or, 1, start),
                '=' => l.push(Tok::Eq, 1, start),
                '!' => {
                    if bytes.get(l.pos + 1) == Some(&b'=') {
                        l.push(Tok::Neq, 2, start);
                    } else {
                        l.push(Tok::Not, 1, start);
                    }
                }
                '-' if bytes.get(l.pos + 1) == Some(&b'>') => l.push(Tok::Implies, 2, start),
                '<' if src[l.pos..].starts_with("<->") => l.push(Tok::Iff, 3, start),
                _ if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                    // `$` introduces an identifier (the forced-parameter
                    // escape) but may not continue one.
                    let mut end = l.pos + usize::from(c == '$');
                    while end < bytes.len() {
                        let ch = bytes[end] as char;
                        if ch.is_ascii_alphanumeric() || ch == '_' || ch == '\'' || ch == '#' {
                            end += 1;
                        } else {
                            break;
                        }
                    }
                    let word = &src[l.pos..end];
                    l.toks.push((Tok::Ident(word.to_owned()), start));
                    l.pos = end;
                }
                _ => {
                    return Err(ParseError {
                        message: format!("unexpected character '{c}'"),
                        offset: start,
                    })
                }
            }
        }
        Ok(l.toks)
    }

    fn push(&mut self, t: Tok, len: usize, at: usize) {
        self.toks.push((t, at));
        self.pos += len;
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    i: usize,
    bound: Vec<String>,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.i).map(|(_, o)| *o).unwrap_or(self.end)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(t, _)| t.clone());
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(t) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            message,
            offset: self.offset(),
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.implies()?;
        while self.peek() == Some(&Tok::Iff) {
            self.i += 1;
            let rhs = self.implies()?;
            lhs = Formula::iff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.or()?;
        if self.peek() == Some(&Tok::Implies) {
            self.i += 1;
            let rhs = self.implies()?;
            Ok(Formula::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.and()?;
        while self.peek() == Some(&Tok::Or) {
            self.i += 1;
            let rhs = self.and()?;
            lhs = Formula::or(lhs, rhs);
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.unary()?;
        while self.peek() == Some(&Tok::And) {
            self.i += 1;
            let rhs = self.unary()?;
            lhs = Formula::and(lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.i += 1;
                Ok(Formula::not(self.unary()?))
            }
            Some(Tok::LParen) => {
                self.i += 1;
                let w = self.formula()?;
                self.expect(&Tok::RParen, "')'")?;
                // Allow a parenthesised formula to be the left side of an
                // equality? Terms are identifiers only, so no.
                Ok(w)
            }
            Some(Tok::Ident(word)) => {
                let word = word.clone();
                match word.as_str() {
                    "K" => {
                        self.i += 1;
                        Ok(Formula::know(self.unary()?))
                    }
                    "forall" | "all" => {
                        self.i += 1;
                        self.quantifier(true)
                    }
                    "exists" | "some" => {
                        self.i += 1;
                        self.quantifier(false)
                    }
                    _ => self.atom_or_eq(),
                }
            }
            _ => Err(self.err("expected a formula".into())),
        }
    }

    fn quantifier(&mut self, forall: bool) -> Result<Formula, ParseError> {
        let mut vars = Vec::new();
        loop {
            match self.bump() {
                Some(Tok::Ident(name)) => vars.push(name),
                Some(Tok::Comma) => continue,
                Some(Tok::Dot) => break,
                _ => return Err(self.err("expected variable list ending in '.'".into())),
            }
        }
        if vars.is_empty() {
            return Err(self.err("quantifier binds no variables".into()));
        }
        for v in &vars {
            self.bound.push(v.clone());
        }
        let body = self.formula()?;
        for _ in &vars {
            self.bound.pop();
        }
        let mut w = body;
        for name in vars.into_iter().rev() {
            let v = Var::new(&name);
            w = if forall {
                Formula::forall(v, w)
            } else {
                Formula::exists(v, w)
            };
        }
        Ok(w)
    }

    /// An identifier in term position denotes a variable iff it is bound by
    /// an enclosing quantifier or follows the u/v/w/x/y/z convention. A
    /// leading `$` forces a parameter reading regardless of the name (the
    /// printer's escape for parameters like `$x` that would otherwise
    /// reparse as variables), and is stripped.
    fn term_of(&self, name: &str) -> Term {
        if let Some(stripped) = name.strip_prefix('$') {
            return Term::Param(Param::new(stripped));
        }
        if self.bound.iter().any(|b| b == name) || is_conventional_var(name) {
            Term::Var(Var::new(name))
        } else {
            Term::Param(Param::new(name))
        }
    }

    fn atom_or_eq(&mut self) -> Result<Formula, ParseError> {
        let name = match self.bump() {
            Some(Tok::Ident(n)) => n,
            _ => return Err(self.err("expected identifier".into())),
        };
        match self.peek() {
            Some(Tok::LParen) => {
                self.i += 1;
                let mut terms = Vec::new();
                loop {
                    match self.bump() {
                        Some(Tok::Ident(t)) => terms.push(self.term_of(&t)),
                        _ => return Err(self.err("expected term".into())),
                    }
                    match self.bump() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::RParen) => break,
                        _ => return Err(self.err("expected ',' or ')'".into())),
                    }
                }
                let pred = Pred::new(&name, terms.len());
                Ok(Formula::Atom(Atom::new(pred, terms)))
            }
            Some(Tok::Eq) => {
                self.i += 1;
                let lhs = self.term_of(&name);
                let rhs = match self.bump() {
                    Some(Tok::Ident(t)) => self.term_of(&t),
                    _ => return Err(self.err("expected term after '='".into())),
                };
                Ok(Formula::Eq(lhs, rhs))
            }
            Some(Tok::Neq) => {
                self.i += 1;
                let lhs = self.term_of(&name);
                let rhs = match self.bump() {
                    Some(Tok::Ident(t)) => self.term_of(&t),
                    _ => return Err(self.err("expected term after '!='".into())),
                };
                Ok(Formula::not(Formula::Eq(lhs, rhs)))
            }
            _ => {
                // Bare identifier in formula position: a proposition.
                Ok(Formula::Atom(Atom::new(Pred::new(&name, 0), vec![])))
            }
        }
    }
}

/// Whether an identifier follows the paper's variable-naming convention:
/// one of `u v w x y z` followed only by digits.
pub(crate) fn is_conventional_var(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some('u' | 'v' | 'w' | 'x' | 'y' | 'z') => chars.all(|c| c.is_ascii_digit()),
        _ => false,
    }
}

/// Parse a single KFOPCE formula from text.
///
/// ```
/// use epilog_syntax::parse;
/// let w = parse("exists x. K Teach(John, x)").unwrap();
/// assert_eq!(w.to_string(), "exists x. K Teach(John, x)");
/// ```
pub fn parse(src: &str) -> Result<Formula, ParseError> {
    let toks = Lexer::lex(src)?;
    let mut p = Parser {
        toks,
        i: 0,
        bound: Vec::new(),
        end: src.len(),
    };
    let w = p.formula()?;
    if p.i != p.toks.len() {
        return Err(p.err("trailing input after formula".into()));
    }
    Ok(w)
}

/// Parse a theory: formulas separated by `;` or newlines. Everything from
/// `%` or `//` to the end of a line is a comment. Every formula must be a
/// sentence.
pub fn parse_theory(src: &str) -> Result<Vec<Formula>, ParseError> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    for raw_chunk in src.split([';', '\n']) {
        let uncommented = raw_chunk
            .split('%')
            .next()
            .and_then(|s| s.split("//").next())
            .unwrap_or("");
        let chunk = uncommented.trim();
        if !chunk.is_empty() {
            let w = parse(chunk).map_err(|e| ParseError {
                message: e.message,
                offset: offset + e.offset,
            })?;
            out.push(w);
        }
        offset += raw_chunk.len() + 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        parse(src).unwrap().to_string()
    }

    #[test]
    fn paper_section1_queries_parse() {
        // All queries from §1, in our ASCII syntax.
        for q in [
            "Teach(Mary, CS)",
            "K Teach(Mary, CS)",
            "K ~Teach(Mary, CS)",
            "exists x. K Teach(John, x)",
            "exists x. K Teach(x, CS)",
            "K (exists x. Teach(x, CS))",
            "exists x. Teach(x, Psych)",
            "exists x. Teach(x, Psych) & ~Teach(x, CS)",
            "exists x. Teach(x, Psych) & ~K Teach(x, CS)",
            "K p | K ~p",
        ] {
            parse(q).unwrap_or_else(|e| panic!("failed to parse {q:?}: {e}"));
        }
    }

    #[test]
    fn precedence_and_associativity() {
        assert_eq!(roundtrip("p & q | r"), "p & q | r");
        assert_eq!(roundtrip("p | q & r"), "p | q & r");
        assert_eq!(roundtrip("(p | q) & r"), "(p | q) & r");
        assert_eq!(roundtrip("p -> q -> r"), "p -> q -> r");
        assert_eq!(roundtrip("~p & q"), "~p & q");
        assert_eq!(roundtrip("~(p & q)"), "~(p & q)");
    }

    #[test]
    fn variables_vs_parameters() {
        let w = parse("Teach(x, CS)").unwrap();
        assert_eq!(w.free_vars().len(), 1);
        assert_eq!(w.params().len(), 1);

        // `a` is a parameter by convention even unbound...
        let w2 = parse("P(a, b) | Q(a, c)").unwrap();
        assert!(w2.free_vars().is_empty());
        assert_eq!(w2.params().len(), 3);

        // ...but bound occurrences are variables regardless of name.
        let w3 = parse("exists a. P(a, b)").unwrap();
        assert!(w3.free_vars().is_empty());
        assert_eq!(w3.params(), vec![Param::new("b")]);
    }

    #[test]
    fn multi_variable_quantifier() {
        let w = parse("forall x, y. K mother(x, y) -> K person(y)").unwrap();
        assert!(w.is_sentence());
        assert_eq!(w.quantified_vars().len(), 2);
    }

    #[test]
    fn quantifier_scope_extends_right() {
        let w = parse("exists x. p(x) & q(x)").unwrap();
        assert!(
            w.is_sentence(),
            "body of the quantifier is the whole conjunction"
        );
    }

    #[test]
    fn equality_and_inequality() {
        let w = parse("x = y").unwrap();
        assert_eq!(w.free_vars().len(), 2);
        let w2 = parse("p1 != p2").unwrap();
        assert_eq!(w2.to_string(), "p1 != p2");
        assert!(matches!(w2, Formula::Not(_)));
    }

    #[test]
    fn know_binds_tightly() {
        let w = parse("K p & q").unwrap();
        assert_eq!(w.to_string(), "K p & q");
        assert!(matches!(w, Formula::And(..)));
        let w2 = parse("K (p & q)").unwrap();
        assert!(matches!(w2, Formula::Know(_)));
    }

    #[test]
    fn parse_theory_with_comments() {
        let t = parse_theory(
            "% the Teach database\nTeach(John, Math)\nexists x. Teach(x, CS);\nTeach(Mary, Psych) | Teach(Sue, Psych)",
        )
        .unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn errors_have_offsets() {
        let e = parse("p &").unwrap_err();
        assert!(e.offset >= 2, "offset {} should be at/after '&'", e.offset);
        assert!(parse("p q").is_err());
        assert!(parse("(p").is_err());
        assert!(parse("exists . p").is_err());
    }

    #[test]
    fn dollar_escape_forces_parameters() {
        // A parameter named like a variable prints escaped and reparses as
        // the same ground sentence (the WAL round-trip guarantee).
        let w = Formula::atom("p", vec![Param::new("x").into(), Param::new("y1").into()]);
        assert_eq!(w.to_string(), "p($x, $y1)");
        let back = parse(&w.to_string()).unwrap();
        assert_eq!(back, w);
        assert!(back.is_sentence());
        // The escape works in equality position too.
        let e =
            crate::formula::Formula::Eq(Term::Param(Param::new("x")), Term::Param(Param::new("a")));
        assert_eq!(e.to_string(), "$x = a");
        assert_eq!(parse("$x = a").unwrap(), e);
        // Explicit `$` on a non-colliding name is accepted and stripped.
        assert_eq!(parse("p($John)").unwrap(), parse("p(John)").unwrap());
    }

    #[test]
    fn binder_shadowed_parameters_escape() {
        // `exists a. p(a) & q(<param a>)`: inside the binder, the bound
        // occurrence prints bare but the *parameter* named `a` must be
        // escaped — the parser reads bound names as variables regardless
        // of the naming convention.
        let a = Var::new("a");
        let w = Formula::exists(
            a,
            crate::formula::Formula::and(
                Formula::atom("p", vec![a.into()]),
                Formula::atom("q", vec![Param::new("a").into()]),
            ),
        );
        assert_eq!(w.to_string(), "exists a. p(a) & q($a)");
        assert_eq!(parse(&w.to_string()).unwrap(), w);
        // Outside the binder the same parameter prints bare.
        let w2 = Formula::atom("q", vec![Param::new("a").into()]);
        assert_eq!(w2.to_string(), "q(a)");
    }

    #[test]
    fn conventional_variable_names() {
        assert!(is_conventional_var("x"));
        assert!(is_conventional_var("y12"));
        assert!(!is_conventional_var("xy"));
        assert!(!is_conventional_var("John"));
        assert!(!is_conventional_var("a"));
    }
}
