//! Property tests for the syntax layer: parser/printer round-trips and
//! semantic equivalence of every transformation, checked against the
//! model-theoretic oracle.

use epilog::prelude::*;
use epilog::semantics::ModelSet;
use epilog::syntax::transform::{elim_double_neg, kernel};
use epilog::syntax::{flatten_k45, nnf, Pred};
use proptest::prelude::*;

const PARAMS: [&str; 2] = ["a", "b"];

/// A random FOPCE formula over unary p/q and the parameters/one variable.
fn fopce() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (0..2usize, 0..2usize).prop_map(|(pr, pa)| {
            parse(&format!("{}({})", ["p", "q"][pr], PARAMS[pa])).unwrap()
        }),
        (0..2usize, 0..2usize)
            .prop_map(|(a, b)| { parse(&format!("{} = {}", PARAMS[a], PARAMS[b])).unwrap() }),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::iff(a, b)),
            inner.clone().prop_map(|a| {
                // Quantify a fresh variable over a disjunct with a
                // variable atom so quantifiers are exercised.
                let x = Var::new("x");
                Formula::forall(x, Formula::or(Formula::atom("p", vec![x.into()]), a))
            }),
            inner.clone().prop_map(|a| {
                let x = Var::new("x");
                Formula::exists(x, Formula::and(Formula::atom("q", vec![x.into()]), a))
            }),
        ]
    })
}

/// A random KFOPCE sentence: a FOPCE core with some K's sprinkled in.
fn kfopce() -> impl Strategy<Value = Formula> {
    fopce().prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::know),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            inner.clone().prop_map(Formula::not),
        ]
    })
}

/// A random ground term whose parameter pool deliberately includes names
/// that collide with the variable convention (`x`, `y1`) — the printer
/// must `$`-escape those — plus a primed name exercising the extended
/// identifier charset.
fn ground_term() -> impl Strategy<Value = Term> {
    (0..6usize).prop_map(|i| {
        let name = ["a", "b", "John", "x", "y1", "n'1"][i];
        Param::new(name).into()
    })
}

/// A random FOPCE *database* sentence: every shape `Theory::assert`
/// accepts — ground atoms (arity 0‥3), ground (in)equalities, boolean
/// combinations, and quantified sentences — closed by construction. This
/// is the correctness floor for the WAL/snapshot text format: whatever a
/// database can hold must survive `parse(display(s))`.
fn db_sentence() -> impl Strategy<Value = Formula> {
    let atom = (0..3usize, proptest::collection::vec(ground_term(), 0..3)).prop_map(|(p, ts)| {
        let name = ["p", "q", "Teach"][p];
        Formula::atom(name, ts)
    });
    let leaf = prop_oneof![
        4 => atom,
        1 => (ground_term(), ground_term()).prop_map(|(a, b)| Formula::Eq(a, b)),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::iff(a, b)),
            inner.clone().prop_map(|a| {
                let x = Var::new("x");
                Formula::forall(x, Formula::implies(Formula::atom("p", vec![x.into()]), a))
            }),
            inner.clone().prop_map(|a| {
                let y = Var::new("y");
                Formula::exists(y, Formula::and(Formula::atom("q", vec![y.into()]), a))
            }),
            inner.clone().prop_map(|a| {
                // A binder colliding with the parameter pool's `a`: any
                // parameter named `a` inside must print `$`-escaped.
                let v = Var::new("a");
                Formula::exists(v, Formula::and(Formula::atom("p", vec![v.into()]), a))
            }),
        ]
    })
}

fn oracle() -> ModelSet {
    // An arbitrary nonempty theory over the vocabulary; equivalences must
    // hold in *every* (W, 𝒮), so we check truth pointwise over all worlds
    // of several model sets.
    let theory = Theory::from_text("p(a) | q(b)").unwrap();
    let universe: Vec<Param> = PARAMS.iter().map(|n| Param::new(n)).collect();
    ModelSet::models(&theory, &universe, &[Pred::new("p", 1), Pred::new("q", 1)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print ∘ parse = id (up to reprinting).
    #[test]
    fn parse_print_roundtrip(w in kfopce()) {
        let printed = w.to_string();
        let reparsed = parse(&printed).unwrap();
        prop_assert_eq!(
            reparsed.to_string(),
            printed.clone(),
            "unstable printing for {}", printed
        );
        prop_assert_eq!(reparsed, w);
    }

    /// print ∘ parse = id, *structurally*, for every sentence form a
    /// database can hold — including parameters whose names collide with
    /// the variable convention (printed `$`-escaped). The WAL and
    /// snapshot formats of `epilog-persist` serialize sentences through
    /// `Display` and read them back through `parse`, so this property is
    /// their correctness floor.
    #[test]
    fn db_sentences_roundtrip_structurally(w in db_sentence()) {
        prop_assert!(w.is_sentence(), "generator must produce sentences");
        let reparsed = parse(&w.to_string()).unwrap();
        prop_assert_eq!(&reparsed, &w, "print/parse changed {}", w.to_string());
    }

    /// Theory-level round-trip: a theory built from db sentences reprints
    /// and reparses to the same theory, sentence for sentence, in order —
    /// the snapshot format's contract.
    #[test]
    fn db_theories_roundtrip(ws in proptest::collection::vec(db_sentence(), 0..8)) {
        let theory = Theory::new(ws).unwrap();
        let reparsed = Theory::from_text(&theory.to_string()).unwrap();
        // Not just equal: identical sentence order (replay determinism).
        prop_assert_eq!(reparsed.sentences(), theory.sentences());
    }

    /// kernel() preserves truth in every world of the oracle's model set.
    #[test]
    fn kernel_is_equivalent(w in kfopce()) {
        prop_assume!(w.is_sentence());
        let ms = oracle();
        let k = kernel(&w);
        for i in 0..ms.worlds().len() {
            prop_assert_eq!(ms.truth(&w, i), ms.truth(&k, i), "kernel broke {}", w);
        }
    }

    /// nnf() preserves FOPCE truth.
    #[test]
    fn nnf_is_equivalent(w in fopce()) {
        prop_assume!(w.is_sentence());
        let ms = oracle();
        let n = nnf(&w);
        for i in 0..ms.worlds().len() {
            prop_assert_eq!(ms.truth(&w, i), ms.truth(&n, i), "nnf broke {}", w);
        }
        // And NNF really is negation-normal: no ¬ above a non-atom.
        for s in n.subformulas() {
            if let Formula::Not(inner) = s {
                prop_assert!(
                    matches!(inner.as_ref(), Formula::Atom(_) | Formula::Eq(_, _)),
                    "negation not pushed to a literal in {}", n
                );
            }
        }
    }

    /// Double-negation elimination preserves truth.
    #[test]
    fn elim_double_neg_is_equivalent(w in kfopce()) {
        prop_assume!(w.is_sentence());
        let ms = oracle();
        let e = elim_double_neg(&w);
        for i in 0..ms.worlds().len() {
            prop_assert_eq!(ms.truth(&w, i), ms.truth(&e, i), "elim_dd broke {}", w);
        }
    }

    /// flatten_k45 preserves truth under the weak-S5 semantics.
    #[test]
    fn flatten_k45_is_equivalent(w in kfopce()) {
        prop_assume!(w.is_sentence());
        let ms = oracle();
        let f = flatten_k45(&w);
        for i in 0..ms.worlds().len() {
            prop_assert_eq!(ms.truth(&w, i), ms.truth(&f, i), "flatten broke {}", w);
        }
    }

    /// rename_apart is alpha-equivalence: truth is preserved and the
    /// quantified variables come out distinct.
    #[test]
    fn rename_apart_is_alpha(w in kfopce()) {
        prop_assume!(w.is_sentence());
        let ms = oracle();
        let r = w.rename_apart();
        let qv = r.quantified_vars();
        let mut dedup = qv.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(qv.len(), dedup.len(), "{} still repeats a variable", r);
        for i in 0..ms.worlds().len() {
            prop_assert_eq!(ms.truth(&w, i), ms.truth(&r, i), "rename broke {}", w);
        }
    }

    /// Safety is decidable and stable under printing (a regression guard
    /// for the classifier's interplay with the printer).
    #[test]
    fn classification_stable_under_roundtrip(w in kfopce()) {
        let reparsed = parse(&w.to_string()).unwrap();
        prop_assert_eq!(is_safe(&w), is_safe(&reparsed));
        prop_assert_eq!(is_admissible(&w), is_admissible(&reparsed));
        prop_assert_eq!(is_subjective(&w), is_subjective(&reparsed));
    }

    /// nnf() is idempotent: a formula already in negation normal form is
    /// a fixpoint, so the transform is a true normalizer (not merely an
    /// equivalence-preserving rewrite).
    #[test]
    fn nnf_is_idempotent(w in fopce()) {
        let once = nnf(&w);
        let twice = nnf(&once);
        prop_assert_eq!(&twice, &once, "nnf not idempotent on {}", w);
    }

    /// flatten_k45() is idempotent: its output has no remaining
    /// K-over-conjunction, K-over-subjective, or double-negation redexes,
    /// so a second pass must be the identity.
    #[test]
    fn flatten_k45_is_idempotent(w in kfopce()) {
        let once = flatten_k45(&w);
        let twice = flatten_k45(&once);
        prop_assert_eq!(&twice, &once, "flatten_k45 not idempotent on {}", w);
    }
}
