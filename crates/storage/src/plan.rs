//! Compiled join plans over indexed relations.
//!
//! A [`ConjunctionPlan`] turns a conjunction of atoms into an executable
//! join: variables are numbered into dense **slots** (so a binding
//! environment is a flat `Vec<Option<Param>>` rather than a hash map),
//! atoms are greedily reordered so the most-bound literal joins first, and
//! each step's selection shape — which columns are constants, which are
//! bound by earlier steps, which bind fresh slots — is computed once at
//! compile time. Execution walks borrowed tuples; nothing is cloned until
//! a full match reaches the caller's callback.
//!
//! The Datalog engine compiles one plan per rule and delta position
//! (`epilog-datalog`'s `RulePlan`); the canonical-model grounder in
//! `epilog-prover` compiles one per rule body.

use crate::database::Database;
use crate::relation::Selection;
use crate::Tuple;
use epilog_syntax::formula::Atom;
use epilog_syntax::{Param, Pred, Term, Var};

/// Dense numbering of the variables appearing in a rule: slot `i` holds
/// the binding of `vars()[i]`.
#[derive(Debug, Clone, Default)]
pub struct SlotMap {
    vars: Vec<Var>,
}

impl SlotMap {
    /// An empty slot map.
    pub fn new() -> Self {
        SlotMap::default()
    }

    /// The slot of `v`, allocating the next dense slot on first sight.
    pub fn intern(&mut self, v: Var) -> usize {
        match self.get(v) {
            Some(s) => s,
            None => {
                self.vars.push(v);
                self.vars.len() - 1
            }
        }
    }

    /// The slot of `v`, if allocated.
    pub fn get(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|w| *w == v)
    }

    /// Number of allocated slots (= the environment length to allocate).
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no variable has been interned.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Slot-indexed variable names.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }
}

/// One argument position of a compiled atom: a constant parameter or a
/// variable slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatTerm {
    /// A constant in the rule text.
    Const(Param),
    /// The variable numbered into this slot.
    Slot(usize),
}

/// An atom with its variables compiled to slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomTemplate {
    /// The predicate.
    pub pred: Pred,
    /// Per column, a constant or a slot.
    pub args: Vec<PatTerm>,
}

impl AtomTemplate {
    /// Compile an atom, interning its variables.
    pub fn compile(atom: &Atom, slots: &mut SlotMap) -> AtomTemplate {
        AtomTemplate {
            pred: atom.pred,
            args: atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Param(p) => PatTerm::Const(*p),
                    Term::Var(v) => PatTerm::Slot(slots.intern(*v)),
                })
                .collect(),
        }
    }

    /// The selection pattern induced by the current environment.
    pub fn pattern(&self, env: &[Option<Param>]) -> Selection {
        self.args
            .iter()
            .map(|a| match a {
                PatTerm::Const(p) => Some(*p),
                PatTerm::Slot(s) => env[*s],
            })
            .collect()
    }

    /// The ground tuple under a complete environment.
    ///
    /// # Panics
    /// Panics when a slot the template mentions is unbound (ruled out for
    /// rule heads and negated literals by Datalog safety).
    pub fn ground(&self, env: &[Option<Param>]) -> Tuple {
        self.args
            .iter()
            .map(|a| match a {
                PatTerm::Const(p) => *p,
                PatTerm::Slot(s) => env[*s].expect("unbound slot in ground template"),
            })
            .collect()
    }
}

/// One join step of a compiled plan. The selection shape is static: which
/// columns are constants or bound by earlier steps (and therefore filter),
/// which columns bind fresh slots, and which repeat a slot first bound by
/// an earlier column of the same atom.
#[derive(Debug, Clone)]
pub struct JoinStep {
    /// The compiled atom.
    pub template: AtomTemplate,
    /// Whether this literal matches the delta instead of the total.
    pub from_delta: bool,
    /// The first column known bound at compile time — the column whose
    /// index makes this step sub-linear; `None` means a full scan.
    pub index_col: Option<usize>,
    /// Columns that bind a fresh slot (first occurrence in this atom).
    binders: Vec<(usize, usize)>,
    /// Columns that repeat a slot bound earlier in this same atom.
    checks: Vec<(usize, usize)>,
}

/// A compiled conjunction of atoms: steps in join order.
#[derive(Debug, Clone)]
pub struct ConjunctionPlan {
    steps: Vec<JoinStep>,
}

impl ConjunctionPlan {
    /// Compile a conjunction against a (shared) slot map.
    ///
    /// When `delta_pos` is `Some(d)`, literal `d` joins first and matches
    /// the delta database; the remaining literals are then ordered
    /// greedily by descending bound-column count (ties broken by written
    /// order), all matching the total.
    pub fn compile(atoms: &[Atom], slots: &mut SlotMap, delta_pos: Option<usize>) -> Self {
        // Intern every variable up front so slot numbering follows written
        // order regardless of the join order chosen below.
        let templates: Vec<AtomTemplate> = atoms
            .iter()
            .map(|a| AtomTemplate::compile(a, slots))
            .collect();

        let mut bound = vec![false; slots.len()];
        let mut steps = Vec::with_capacity(templates.len());
        let mut remaining: Vec<usize> = (0..templates.len()).collect();

        if let Some(d) = delta_pos {
            remaining.retain(|&i| i != d);
            steps.push(Self::make_step(&templates[d], true, &mut bound));
        }
        while !remaining.is_empty() {
            // Greedy: the literal with the most bound columns joins next.
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .max_by_key(|&(pos, &i)| {
                    let score = templates[i]
                        .args
                        .iter()
                        .filter(|a| match a {
                            PatTerm::Const(_) => true,
                            PatTerm::Slot(s) => bound[*s],
                        })
                        .count();
                    // max_by_key keeps the *last* max; invert the position
                    // so ties resolve to the earliest written literal.
                    (score, usize::MAX - pos)
                })
                .expect("remaining is nonempty");
            let i = remaining.remove(pos);
            steps.push(Self::make_step(&templates[i], false, &mut bound));
        }
        ConjunctionPlan { steps }
    }

    fn make_step(template: &AtomTemplate, from_delta: bool, bound: &mut [bool]) -> JoinStep {
        let mut index_col = None;
        let mut binders = Vec::new();
        let mut checks = Vec::new();
        let mut fresh_here = Vec::new();
        for (c, arg) in template.args.iter().enumerate() {
            match arg {
                PatTerm::Const(_) => {
                    if index_col.is_none() {
                        index_col = Some(c);
                    }
                }
                PatTerm::Slot(s) => {
                    if bound[*s] {
                        if index_col.is_none() {
                            index_col = Some(c);
                        }
                    } else if fresh_here.contains(s) {
                        checks.push((c, *s));
                    } else {
                        binders.push((c, *s));
                        fresh_here.push(*s);
                    }
                }
            }
        }
        for s in fresh_here {
            bound[s] = true;
        }
        JoinStep {
            template: template.clone(),
            from_delta,
            index_col,
            binders,
            checks,
        }
    }

    /// The steps in join order.
    pub fn steps(&self) -> &[JoinStep] {
        &self.steps
    }

    /// Build (once) the indexes every step probes; incrementally
    /// maintained storage keeps them warm afterwards.
    pub fn ensure_indexes(&self, total: &mut Database, mut delta: Option<&mut Database>) {
        for step in &self.steps {
            let Some(c) = step.index_col else { continue };
            if step.from_delta {
                if let Some(d) = delta.as_deref_mut() {
                    d.ensure_index(step.template.pred, c);
                }
            } else {
                total.ensure_index(step.template.pred, c);
            }
        }
    }

    /// Run the join, invoking `f` with the environment of every complete
    /// match. `env` must hold at least `slots.len()` entries with every
    /// slot this plan binds set to `None`; it is restored on return.
    pub fn for_each_match(
        &self,
        total: &Database,
        delta: Option<&Database>,
        env: &mut [Option<Param>],
        f: &mut dyn FnMut(&[Option<Param>]),
    ) {
        self.run_step(0, total, delta, env, f);
    }

    fn run_step(
        &self,
        i: usize,
        total: &Database,
        delta: Option<&Database>,
        env: &mut [Option<Param>],
        f: &mut dyn FnMut(&[Option<Param>]),
    ) {
        let Some(step) = self.steps.get(i) else {
            f(env);
            return;
        };
        let db = if step.from_delta {
            delta.expect("plan has a delta step but no delta database was given")
        } else {
            total
        };
        let pattern = step.template.pattern(env);
        for tuple in db.select(step.template.pred, &pattern) {
            for &(c, s) in &step.binders {
                env[s] = Some(tuple[c]);
            }
            if step.checks.iter().all(|&(c, s)| env[s] == Some(tuple[c])) {
                self.run_step(i + 1, total, delta, env, f);
            }
        }
        for &(_, s) in &step.binders {
            env[s] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::parse;

    fn atom(src: &str) -> Atom {
        match parse(src).unwrap() {
            epilog_syntax::Formula::Atom(a) => a,
            other => panic!("not an atom: {other}"),
        }
    }

    fn db(facts: &[&str]) -> Database {
        let mut db = Database::new();
        for f in facts {
            let a = atom(f);
            db.insert(&a);
        }
        db
    }

    fn matches(plan: &ConjunctionPlan, slots: &SlotMap, db: &Database) -> Vec<Vec<Option<Param>>> {
        let mut env = vec![None; slots.len()];
        let mut out = Vec::new();
        plan.for_each_match(db, None, &mut env, &mut |e| out.push(e.to_vec()));
        out
    }

    #[test]
    fn joins_bind_across_atoms() {
        let atoms = vec![atom("e(x, y)"), atom("e(y, z)")];
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile(&atoms, &mut slots, None);
        let db = db(&["e(a, b)", "e(b, c)", "e(b, d)"]);
        let got = matches(&plan, &slots, &db);
        // Paths of length 2: a-b-c and a-b-d.
        assert_eq!(got.len(), 2);
        for env in &got {
            assert!(env.iter().all(Option::is_some), "all slots bound");
        }
    }

    #[test]
    fn greedy_reorder_puts_constant_literal_first() {
        // Written order starts with the unbound scan; the plan flips it.
        let atoms = vec![atom("e(x, y)"), atom("p(a, x)")];
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile(&atoms, &mut slots, None);
        assert_eq!(plan.steps()[0].template.pred, Pred::new("p", 2));
        assert_eq!(plan.steps()[0].index_col, Some(0));
        // Second step: x is bound by then, so column 0 is indexable.
        assert_eq!(plan.steps()[1].template.pred, Pred::new("e", 2));
        assert_eq!(plan.steps()[1].index_col, Some(0));
    }

    #[test]
    fn repeated_variable_within_atom_checked() {
        let atoms = vec![atom("e(x, x)")];
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile(&atoms, &mut slots, None);
        let db = db(&["e(a, a)", "e(a, b)"]);
        let got = matches(&plan, &slots, &db);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0][0].unwrap().name(), "a");
    }

    #[test]
    fn empty_conjunction_matches_once() {
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile(&[], &mut slots, None);
        let got = matches(&plan, &slots, &Database::new());
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn delta_step_joins_first_and_matches_delta_only() {
        // Rule body: e(x,y), t(y,z) — delta position on t.
        let atoms = vec![atom("e(x, y)"), atom("t(y, z)")];
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile(&atoms, &mut slots, Some(1));
        assert!(plan.steps()[0].from_delta);
        assert_eq!(plan.steps()[0].template.pred, Pred::new("t", 2));

        let total = db(&["e(a, b)", "t(b, c)", "t(b, d)"]);
        let delta = db(&["t(b, d)"]);
        let mut env = vec![None; slots.len()];
        let mut out = Vec::new();
        plan.for_each_match(&total, Some(&delta), &mut env, &mut |e| {
            out.push(e.to_vec());
        });
        // Only the delta tuple t(b,d) seeds the join.
        assert_eq!(out.len(), 1);
        let z = slots.get(Var::new("z")).unwrap();
        assert_eq!(out[0][z].unwrap().name(), "d");
    }

    #[test]
    fn ensure_indexes_builds_probed_columns() {
        let atoms = vec![atom("p(a, x)"), atom("e(x, y)")];
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile(&atoms, &mut slots, None);
        let mut total = db(&["p(a, b)", "e(b, c)"]);
        plan.ensure_indexes(&mut total, None);
        let p = Pred::new("p", 2);
        let e = Pred::new("e", 2);
        assert!(total.relation(p).unwrap().has_index(0));
        assert!(total.relation(e).unwrap().has_index(0));
        // Results agree with the unindexed run.
        let got = matches(&plan, &slots, &total);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn ground_template_instantiates_head() {
        let mut slots = SlotMap::new();
        let body = ConjunctionPlan::compile(&[atom("e(x, y)")], &mut slots, None);
        let head = AtomTemplate::compile(&atom("t(y, x)"), &mut slots);
        let db = db(&["e(a, b)"]);
        let mut env = vec![None; slots.len()];
        let mut tuples = Vec::new();
        body.for_each_match(&db, None, &mut env, &mut |e| tuples.push(head.ground(e)));
        assert_eq!(tuples, vec![vec![Param::new("b"), Param::new("a")]]);
    }
}
