//! A plain DPLL solver: unit propagation + chronological backtracking,
//! no clause learning, no heuristics beyond first-unassigned branching.
//!
//! Kept as the ablation baseline for bench `f3_sat`: on pigeonhole
//! instances CDCL's learned clauses prune exponentially better, which is
//! the qualitative shape the bench reproduces.

use crate::cnf::{Cnf, Lit};
use crate::solver::SatResult;

/// Solve by recursive DPLL.
pub fn solve_dpll(cnf: &Cnf) -> SatResult {
    let n = cnf.num_vars() as usize;
    let mut assign: Vec<i8> = vec![0; n];
    if cnf.clauses().iter().any(Vec::is_empty) {
        return SatResult::Unsat;
    }
    if dpll(cnf, &mut assign) {
        SatResult::Sat(assign.iter().map(|&a| a == 1).collect())
    } else {
        SatResult::Unsat
    }
}

fn value(assign: &[i8], l: Lit) -> i8 {
    let a = assign[l.var() as usize];
    if l.is_pos() {
        a
    } else {
        -a
    }
}

/// Unit propagation; returns `None` on conflict, otherwise the list of
/// variables assigned (for undoing).
fn propagate(cnf: &Cnf, assign: &mut [i8]) -> Option<Vec<usize>> {
    let mut assigned = Vec::new();
    loop {
        let mut changed = false;
        for c in cnf.clauses() {
            let mut unassigned: Option<Lit> = None;
            let mut count_unassigned = 0;
            let mut satisfied = false;
            for &l in c {
                match value(assign, l) {
                    1 => {
                        satisfied = true;
                        break;
                    }
                    0 => {
                        count_unassigned += 1;
                        unassigned = Some(l);
                    }
                    _ => {}
                }
            }
            if satisfied {
                continue;
            }
            match count_unassigned {
                0 => {
                    // Conflict: undo and report.
                    for v in assigned {
                        assign[v] = 0;
                    }
                    return None;
                }
                1 => {
                    let l = unassigned.expect("count is 1");
                    let v = l.var() as usize;
                    assign[v] = if l.is_pos() { 1 } else { -1 };
                    assigned.push(v);
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return Some(assigned);
        }
    }
}

fn dpll(cnf: &Cnf, assign: &mut [i8]) -> bool {
    let Some(propagated) = propagate(cnf, assign) else {
        return false;
    };
    let branch = assign.iter().position(|&a| a == 0);
    match branch {
        None => true, // total assignment, all clauses satisfied
        Some(v) => {
            for phase in [1i8, -1] {
                assign[v] = phase;
                if dpll(cnf, assign) {
                    return true;
                }
                assign[v] = 0;
            }
            for v in propagated {
                assign[v] = 0;
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Lit;
    use crate::solver::Solver;

    fn cnf_of(num_vars: u32, clauses: &[&[i32]]) -> Cnf {
        let mut cnf = Cnf::new();
        cnf.reserve_vars(num_vars);
        for c in clauses {
            let lits: Vec<Lit> = c
                .iter()
                .map(|&k| {
                    let v = k.unsigned_abs() - 1;
                    if k > 0 {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    }
                })
                .collect();
            cnf.add_clause(&lits);
        }
        cnf
    }

    #[test]
    fn dpll_basic() {
        assert!(solve_dpll(&cnf_of(2, &[&[1, 2], &[-1]])).is_sat());
        assert_eq!(solve_dpll(&cnf_of(1, &[&[1], &[-1]])), SatResult::Unsat);
    }

    #[test]
    fn dpll_agrees_with_cdcl_on_random_instances() {
        // Deterministic pseudo-random 3-SAT instances via a small LCG.
        let mut seed: u64 = 0x9E3779B97F4A7C15;
        let mut rand = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for instance in 0..30 {
            let n = 8;
            let m = 3 + (instance % 5) * 8;
            let mut cnf = Cnf::new();
            cnf.reserve_vars(n);
            for _ in 0..m {
                let lits: Vec<Lit> = (0..3)
                    .map(|_| {
                        let v = rand() % n;
                        if rand() % 2 == 0 {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        }
                    })
                    .collect();
                cnf.add_clause(&lits);
            }
            let a = solve_dpll(&cnf).is_sat();
            let b = Solver::new(&cnf).solve().is_sat();
            assert_eq!(a, b, "instance {instance}: dpll={a} cdcl={b}");
        }
    }
}
