//! The semantic oracle: `ℳ(Σ)` by brute-force enumeration, KFOPCE truth in
//! `(W, 𝒮)`, and the answer relation of Definition 2.1.

use crate::answer::Answer;
use crate::world::{holds_env, holds_in_world};
use epilog_storage::Database;
use epilog_syntax::formula::{Atom, Formula};
use epilog_syntax::{Param, Pred, Term, Theory, Var};
use std::collections::HashMap;

/// A finite set of worlds `𝒮` (usually `ℳ(Σ)`) over a fixed finite
/// universe.
#[derive(Debug, Clone)]
pub struct ModelSet {
    worlds: Vec<Database>,
    universe: Vec<Param>,
}

impl ModelSet {
    /// Enumerate `ℳ(Σ)`: all subsets of the Herbrand base over
    /// `universe` and `preds` that satisfy every sentence of `Σ`.
    ///
    /// Cost is `2^|base|` world checks — this *is* the exponential
    /// baseline. Keep `|base| ≤ ~20`.
    ///
    /// # Panics
    /// Panics if the Herbrand base exceeds 26 atoms (2²⁶ subsets), as a
    /// guard against accidental blow-up.
    pub fn models(theory: &Theory, universe: &[Param], preds: &[Pred]) -> ModelSet {
        let base = herbrand_base(universe, preds);
        assert!(
            base.len() <= 26,
            "Herbrand base of {} atoms is too large for brute-force enumeration",
            base.len()
        );
        let mut worlds = Vec::new();
        for mask in 0u64..(1u64 << base.len()) {
            let world: Database = base
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, a)| a.clone())
                .collect();
            if theory
                .sentences()
                .iter()
                .all(|s| holds_in_world(s, &world, universe))
            {
                worlds.push(world);
            }
        }
        ModelSet {
            worlds,
            universe: universe.to_vec(),
        }
    }

    /// Wrap an explicit set of worlds (used by circumscription and by
    /// tests).
    pub fn from_worlds(worlds: Vec<Database>, universe: Vec<Param>) -> ModelSet {
        ModelSet { worlds, universe }
    }

    /// The worlds in the set.
    pub fn worlds(&self) -> &[Database] {
        &self.worlds
    }

    /// The evaluation universe.
    pub fn universe(&self) -> &[Param] {
        &self.universe
    }

    /// Whether the set is empty (i.e. `Σ` is unsatisfiable over this
    /// universe).
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Truth of a KFOPCE sentence in `(W, 𝒮)` where `W = worlds[w_idx]`
    /// and `𝒮 = self` — the recursion of §2, clause (5): `Kw` is true iff
    /// `w` is true in `(S, 𝒮)` for every `S ∈ 𝒮`.
    pub fn truth(&self, w: &Formula, w_idx: usize) -> bool {
        self.truth_in(w, &self.worlds[w_idx].clone())
    }

    /// Truth in `(W, 𝒮)` for an explicit world `W` — which need not be a
    /// member of `𝒮` (needed for KFOPCE *validity* checking, where the
    /// evaluation world and the epistemic alternatives vary
    /// independently).
    pub fn truth_in(&self, w: &Formula, world: &Database) -> bool {
        self.truth_env(w, world, &mut HashMap::new())
    }

    fn truth_env(&self, w: &Formula, world: &Database, env: &mut HashMap<Var, Param>) -> bool {
        match w {
            Formula::Know(body) => self
                .worlds
                .iter()
                .all(|s| self.truth_env(body, s, &mut env.clone())),
            Formula::Not(x) => !self.truth_env(x, world, env),
            Formula::And(a, b) => self.truth_env(a, world, env) && self.truth_env(b, world, env),
            Formula::Or(a, b) => self.truth_env(a, world, env) || self.truth_env(b, world, env),
            Formula::Implies(a, b) => {
                !self.truth_env(a, world, env) || self.truth_env(b, world, env)
            }
            Formula::Iff(a, b) => self.truth_env(a, world, env) == self.truth_env(b, world, env),
            Formula::Forall(x, body) => {
                let universe = self.universe.clone();
                universe.iter().all(|p| {
                    let shadow = env.insert(*x, *p);
                    let r = self.truth_env(body, world, env);
                    match shadow {
                        Some(q) => env.insert(*x, q),
                        None => env.remove(x),
                    };
                    r
                })
            }
            Formula::Exists(x, body) => {
                let universe = self.universe.clone();
                universe.iter().any(|p| {
                    let shadow = env.insert(*x, *p);
                    let r = self.truth_env(body, world, env);
                    match shadow {
                        Some(q) => env.insert(*x, q),
                        None => env.remove(x),
                    };
                    r
                })
            }
            // First-order leaves: delegate to world truth.
            Formula::Atom(_) | Formula::Eq(_, _) => holds_env(w, world, &self.universe, env),
        }
    }

    /// `Σ ⊨ q` (Definition 2.1 for sentences): `q` true in `(W, 𝒮)` for
    /// every `W ∈ 𝒮`.
    pub fn certain(&self, q: &Formula) -> bool {
        (0..self.worlds.len()).all(|i| self.truth(q, i))
    }

    /// The three-valued answer to a sentence query.
    pub fn answer(&self, q: &Formula) -> Answer {
        Answer::from_entailments(self.certain(q), self.certain(&Formula::not(q.clone())))
    }

    /// All answers to an open query: tuples `p̄` over the universe with
    /// `Σ ⊨ q|p̄`, aligned with `q.free_vars()`.
    pub fn answers(&self, q: &Formula) -> Vec<Vec<Param>> {
        let vars = q.free_vars();
        if vars.is_empty() {
            return if self.certain(q) {
                vec![vec![]]
            } else {
                vec![]
            };
        }
        let mut out = Vec::new();
        let n = self.universe.len();
        let total = n
            .checked_pow(vars.len() as u32)
            .expect("answer space overflow");
        for mut idx in 0..total {
            let mut tuple = vec![self.universe[0]; vars.len()];
            for slot in tuple.iter_mut().rev() {
                *slot = self.universe[idx % n];
                idx /= n;
            }
            let bound = q.bind_free(&tuple);
            if self.certain(&bound) {
                out.push(tuple);
            }
        }
        out
    }
}

/// The Herbrand base: every ground atom over the universe and predicates,
/// in deterministic order.
pub fn herbrand_base(universe: &[Param], preds: &[Pred]) -> Vec<Atom> {
    let mut out = Vec::new();
    for pred in preds {
        let arity = pred.arity();
        let total = universe.len().pow(arity as u32);
        for mut idx in 0..total {
            let mut terms = Vec::with_capacity(arity);
            for _ in 0..arity {
                terms.push(Term::Param(universe[idx % universe.len()]));
                idx /= universe.len();
            }
            out.push(Atom::new(*pred, terms));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::parse;

    fn ps(names: &[&str]) -> Vec<Param> {
        names.iter().map(|n| Param::new(n)).collect()
    }

    /// The {p ∨ q} database of the introduction.
    fn p_or_q() -> ModelSet {
        let theory = Theory::from_text("p | q").unwrap();
        let preds = vec![Pred::new("p", 0), Pred::new("q", 0)];
        ModelSet::models(&theory, &ps(&["c"]), &preds)
    }

    #[test]
    fn intro_example_p_or_q() {
        let ms = p_or_q();
        assert_eq!(ms.worlds().len(), 3, "models: {{p}}, {{q}}, {{p,q}}");
        // Query p: unknown.
        assert_eq!(ms.answer(&parse("p").unwrap()), Answer::Unknown);
        // Query Kp ("do you know that p?"): no.
        assert_eq!(ms.answer(&parse("K p").unwrap()), Answer::No);
        // Query Kp ∨ K¬p ("do you know whether p?"): no.
        assert_eq!(ms.answer(&parse("K p | K ~p").unwrap()), Answer::No);
        // But the database does know p ∨ q.
        assert_eq!(ms.answer(&parse("K (p | q)").unwrap()), Answer::Yes);
    }

    #[test]
    fn k_does_not_depend_on_current_world() {
        let ms = p_or_q();
        for i in 0..ms.worlds().len() {
            assert!(!ms.truth(&parse("K p").unwrap(), i));
            assert!(ms.truth(&parse("K (p | q)").unwrap(), i));
        }
    }

    #[test]
    fn iterated_modalities_weak_s5() {
        let ms = p_or_q();
        // KKw ≡ Kw and ¬Kp ⊃ K¬Kp (negative introspection).
        assert_eq!(ms.answer(&parse("K K (p | q)").unwrap()), Answer::Yes);
        assert_eq!(ms.answer(&parse("K ~K p").unwrap()), Answer::Yes);
    }

    #[test]
    fn known_vs_unknown_individuals() {
        // Σ = {p(a), ∃x q(x)} over universe {a, b}.
        let theory = Theory::from_text("p(a)\nexists x. q(x)").unwrap();
        let preds = vec![Pred::new("p", 1), Pred::new("q", 1)];
        let ms = ModelSet::models(&theory, &ps(&["a", "b"]), &preds);
        // ∃x K p(x): a known individual with property p — yes (a).
        assert_eq!(ms.answer(&parse("exists x. K p(x)").unwrap()), Answer::Yes);
        // ∃x K q(x): no known q-individual.
        assert_eq!(ms.answer(&parse("exists x. K q(x)").unwrap()), Answer::No);
        // K ∃x q(x): but the database knows someone is a q.
        assert_eq!(
            ms.answer(&parse("K (exists x. q(x))").unwrap()),
            Answer::Yes
        );
    }

    #[test]
    fn answers_enumerate_certain_tuples() {
        let theory = Theory::from_text("p(a)\np(b)\nq(b)").unwrap();
        let preds = vec![Pred::new("p", 1), Pred::new("q", 1)];
        let ms = ModelSet::models(&theory, &ps(&["a", "b"]), &preds);
        let got = ms.answers(&parse("K p(x)").unwrap());
        assert_eq!(got.len(), 2);
        let got = ms.answers(&parse("K (p(x) & q(x))").unwrap());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0][0].name(), "b");
    }

    #[test]
    fn unsatisfiable_theory_has_no_worlds() {
        let theory = Theory::from_text("p\n~p").unwrap();
        let ms = ModelSet::models(&theory, &ps(&["c"]), &[Pred::new("p", 0)]);
        assert!(ms.is_empty());
        // Vacuously certain of everything.
        assert!(ms.certain(&parse("q").unwrap()));
    }

    #[test]
    fn herbrand_base_sizes() {
        let universe = ps(&["a", "b", "c"]);
        let preds = vec![Pred::new("p", 1), Pred::new("e", 2), Pred::new("r", 0)];
        let base = herbrand_base(&universe, &preds);
        assert_eq!(base.len(), 3 + 9 + 1);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn base_size_guard() {
        let universe = ps(&["a", "b", "c", "d", "e", "f"]);
        let preds = vec![Pred::new("e", 2)];
        let theory = Theory::empty();
        let _ = ModelSet::models(&theory, &universe, &preds);
    }

    #[test]
    fn subjective_sentences_never_unknown() {
        // Lemma 5.2 semantically: Σ ⊨ π or Σ ⊨ ¬π for subjective π.
        let ms = p_or_q();
        for q in ["K p", "~K p", "K (p | q)", "K p | K q"] {
            let w = parse(q).unwrap();
            assert!(epilog_syntax::is_subjective(&w));
            assert_ne!(
                ms.answer(&w),
                Answer::Unknown,
                "subjective {q} must be decided"
            );
        }
    }
}
