//! The serving layer end to end: a TCP server on a loopback port and a
//! scripted client session.
//!
//! The §3 registrar again, but served: the server answers `ask`/`demo`
//! from lock-free MVCC snapshots while a single writer thread validates
//! and group-commits transactions; an `ok committed` response means the
//! commit is fsynced *and* visible to every later read. The script
//! below registers the employee/ss-number constraints, commits a hire,
//! watches an invalid hire bounce, and reads the commit receipt — each
//! step checked with asserts so CI runs this as a test.
//!
//! Run with: `cargo run --example server`

use epilog::prelude::*;
use epilog::server::{Client, Server};
use epilog::syntax::Theory;

fn main() {
    let dir = std::env::temp_dir().join(format!("epilog-server-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ----- Start serving -------------------------------------------------
    let theory = Theory::from_text("forall x. emp(x) -> person(x)").unwrap();
    let db = ServingDb::create(&dir, theory, ServeOptions::default()).unwrap();
    let server = Server::start(db, "127.0.0.1:0").unwrap();
    println!("== Serving the registrar on {} ==\n", server.local_addr());

    let mut c = Client::connect(server.local_addr()).unwrap();
    let mut step = |request: &str| {
        let response = c.request(request).unwrap();
        println!("  > {request}\n  < {response}");
        response
    };

    // ----- The §3 constraints, registered over the wire ------------------
    let r = step("constraint forall x. K emp(x) -> exists y. K ss(x, y)");
    assert_eq!(r, "ok constraint @1");
    let r = step("constraint forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z");
    assert_eq!(r, "ok constraint @2");

    // ----- A transaction: hire Sue (number first? any order works) -------
    println!("\n== Hiring Sue in one transaction ==\n");
    assert_eq!(step("begin"), "ok begin");
    assert_eq!(step("assert emp(Sue)"), "ok queued 1");
    assert_eq!(step("assert ss(Sue, n2)"), "ok queued 2");
    let receipt = step("commit");
    assert_eq!(
        receipt, "ok committed @3 +2 -0",
        "the receipt carries the WAL position and the delta"
    );
    assert_eq!(step("ask K person(Sue)"), "ok yes @3");

    // ----- Integrity over the wire: a hire with no number bounces --------
    println!("\n== An invalid hire is rejected ==\n");
    let r = step("assert emp(Joe)");
    assert!(r.starts_with("err rejected:"), "got {r}");
    assert_eq!(step("ask K emp(Joe)"), "ok no @3", "nothing leaked");

    // ----- demo: enumerate the known employees ---------------------------
    println!("\n== Known employees via demo ==\n");
    let rows = c.demo("K emp(x)").unwrap();
    println!("  rows: {rows:?}");
    assert_eq!(rows, vec![vec!["Sue".to_string()]]);

    // ----- A second client shares the same committed state ---------------
    let mut c2 = Client::connect(server.local_addr()).unwrap();
    assert_eq!(c2.request("ask K emp(Sue)").unwrap(), "ok yes @3");

    // ----- Graceful shutdown drains the queue ----------------------------
    let stats = server.shutdown().unwrap();
    println!(
        "\nshut down: {} commits, {} rejected, {} batches, {} fsyncs",
        stats.commits, stats.rejected, stats.batches, stats.fsyncs
    );
    assert_eq!(stats.commits, 1);
    assert_eq!(stats.rejected, 1);

    // The served directory is an ordinary durable database.
    let (recovered, _) = DurableDb::recover(&dir, FsyncPolicy::Always).unwrap();
    assert_eq!(recovered.ask(&parse("K person(Sue)").unwrap()), Answer::Yes);
    assert_eq!(recovered.ask(&parse("K emp(Joe)").unwrap()), Answer::No);

    std::fs::remove_dir_all(&dir).unwrap();
    println!("\nok — served, committed, rejected, and recovered as expected");
}
