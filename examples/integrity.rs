//! A university registrar with epistemic integrity constraints (§3).
//!
//! Shows (a) the failure modes of the classical constraint definitions
//! 3.1–3.4 on the paper's own examples, and (b) a living database whose
//! updates are guarded by the paper's epistemic constraints
//! (Definition 3.5) — including the functional dependency of Example 3.5
//! and the sex-totality constraint of Example 3.2.
//!
//! Run with: `cargo run --example integrity`

use epilog::core::{ic_satisfaction, IcDefinition};
use epilog::prelude::*;

fn main() {
    // ----- Part 1: the emp/ss# comparison table ------------------------
    println!("== Definitions 3.1-3.5 on the emp/ss# constraint ==\n");
    let ic_fo = parse("forall x. emp(x) -> exists y. ss(x, y)").unwrap();
    let ic_modal = parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap();

    let dbs = [("DB = {emp(Mary)}", "emp(Mary)"), ("DB = {}", "")];
    let defs = [
        IcDefinition::Consistency,
        IcDefinition::Entailment,
        IcDefinition::CompConsistency,
        IcDefinition::CompEntailment,
        IcDefinition::Epistemic,
    ];
    for (label, src) in dbs {
        println!(
            "  {label}  (intuition: {} satisfy the constraint)",
            if src.is_empty() {
                "SHOULD"
            } else {
                "should NOT"
            }
        );
        let prover = Prover::new(Theory::from_text(src).unwrap());
        for def in defs {
            let ic = if def == IcDefinition::Epistemic {
                &ic_modal
            } else {
                &ic_fo
            };
            let verdict = ic_satisfaction(&prover, ic, def);
            println!("    {def:<28} -> {verdict}");
        }
        println!();
    }

    // ----- Part 2: a registrar under epistemic constraints -------------
    println!("== A registrar with live constraint checking ==\n");
    let mut db = EpistemicDb::from_text("").unwrap();
    // Example 3.4: every known employee has a number known to exist.
    db.add_constraint(parse("forall x. K emp(x) -> K (exists y. ss(x, y))").unwrap())
        .unwrap();
    // Example 3.5: social security numbers are unique (an epistemic FD).
    db.add_constraint(parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap())
        .unwrap();
    // Example 3.1: nobody is both male and female.
    db.add_constraint(parse("forall x. ~K (male(x) & female(x))").unwrap())
        .unwrap();

    let updates = [
        "ss(Mary, n1)",
        "emp(Mary)",
        "emp(Sue)",             // rejected: no number on file for Sue
        "exists y. ss(Sue, y)", // a number known to exist (a null) suffices
        "emp(Sue)",             // now accepted
        "ss(Mary, n2)",         // rejected: violates the functional dependency
        "male(Sam)",
        "female(Sam)", // rejected: Example 3.1
    ];
    for u in updates {
        let w = parse(u).unwrap();
        match db.assert(w) {
            Ok(()) => println!("  + {u:<24} accepted"),
            Err(e) => println!("  + {u:<24} REJECTED ({e})"),
        }
    }

    println!("\n  final state:\n{}", indent(&db.theory().to_string()));
    assert!(db.satisfies_constraints());

    // ----- Part 3: constraint checking IS query evaluation -------------
    println!("== Constraint checking is query evaluation (§3) ==\n");
    for ic in db.constraints() {
        let as_query = db.ask(ic);
        println!("  {ic}\n      as a query -> {as_query}");
        assert_eq!(as_query, Answer::Yes);
    }
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}
