//! F11 — the serving layer: MVCC snapshot reads vs. the single-writer
//! group-commit queue.
//!
//! Shape expectation: `read` and `read_during_burst` rows should
//! coincide at every `n` — a snapshot is a pointer clone, so readers
//! never feel an in-flight commit burst parked on the writer. The
//! `commit_grouped` row does the same 16 commits as `commit_individual`
//! on 2 fsyncs instead of 16 plus 2 queue round-trips instead of 16; the
//! gap approaches the batch factor on real disks and shrinks toward the
//! round-trip saving alone where fsync is nearly free (tmpfs).
//! The mixed-traffic summary printed before the criterion tables gives
//! the absolute numbers: commits/sec through the queue and p50/p99
//! snapshot-read latency while those commits are in flight.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epilog_bench::workloads::{enrollment_batch, serving_registrar};
use epilog_persist::{ServingDb, TxOp};
use epilog_syntax::parse;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn fresh(tag: &str, n: usize) -> (std::path::PathBuf, ServingDb) {
    let dir = std::env::temp_dir().join(format!("epilog-f11-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = serving_registrar(&dir, n);
    (dir, db)
}

/// One hire + matching fire: two commits that leave the state exactly
/// where it started, so throughput loops don't grow the database.
fn hire_fire(db: &ServingDb, i: usize) {
    let hire: Vec<TxOp> = enrollment_batch(i, 1)
        .into_iter()
        .map(TxOp::Assert)
        .collect();
    let fire: Vec<TxOp> = enrollment_batch(i, 1)
        .into_iter()
        .map(TxOp::Retract)
        .collect();
    db.commit_wait(hire)
        .expect("hire satisfies the constraints");
    db.commit_wait(fire).expect("fire of a hire is clean");
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Mixed traffic, measured by hand: 4 reader threads sample snapshot
/// reads while the main thread saturates the commit queue. Printed once,
/// before the criterion tables, because criterion can't time two kinds
/// of work against each other in one figure.
fn mixed_traffic_summary() {
    const READERS: usize = 4;
    const READS_PER_READER: usize = 400;
    let (dir, db) = fresh("mixed", 32);
    let q = parse("exists y. K ss(e7, y)").unwrap();
    let stop = AtomicBool::new(false);
    let mut commits = 0u64;

    let (lat, wall) = std::thread::scope(|s| {
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                s.spawn(|| {
                    let mut lat = Vec::with_capacity(READS_PER_READER);
                    for _ in 0..READS_PER_READER {
                        let t = Instant::now();
                        let snap = db.snapshot();
                        black_box(snap.db().ask(&q));
                        lat.push(t.elapsed());
                    }
                    lat
                })
            })
            .collect();
        let start = Instant::now();
        let mut i = 1000usize;
        while !stop.load(Ordering::Relaxed) {
            hire_fire(&db, i);
            i += 1;
            commits += 2;
            if readers.iter().all(|r| r.is_finished()) {
                stop.store(true, Ordering::Relaxed);
            }
        }
        let wall = start.elapsed();
        let mut lat: Vec<Duration> = readers
            .into_iter()
            .flat_map(|r| r.join().unwrap())
            .collect();
        lat.sort();
        (lat, wall)
    });

    println!(
        "f11 mixed traffic: {} commits in {:.2?} ({:.0} commits/sec) against {} concurrent reads",
        commits,
        wall,
        commits as f64 / wall.as_secs_f64(),
        lat.len(),
    );
    println!(
        "f11 read latency under load: p50 {:.2?}  p99 {:.2?}  max {:.2?}",
        percentile(&lat, 0.50),
        percentile(&lat, 0.99),
        percentile(&lat, 1.0),
    );

    db.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench(c: &mut Criterion) {
    // Correctness gate: a pinned snapshot survives later commits, and a
    // gated burst forms one batch on one fsync.
    {
        let (dir, db) = fresh("gate", 4);
        let snap = db.snapshot();
        let before = db.stats();
        let gate = db.gate();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let ops = enrollment_batch(100 + i, 1)
                    .into_iter()
                    .map(TxOp::Assert)
                    .collect();
                db.commit(ops)
            })
            .collect();
        gate.open();
        for h in handles {
            h.wait().expect("gated enrollments all commit");
        }
        let after = db.stats();
        assert_eq!(after.commits - before.commits, 8);
        assert_eq!(after.fsyncs - before.fsyncs, 1, "one sync for the burst");
        assert_eq!(after.batches - before.batches, 1, "one batch for the burst");
        let q = parse("K emp(e100)").unwrap();
        assert_eq!(snap.db().ask(&q).to_string(), "no", "pinned snapshot");
        assert_eq!(db.snapshot().db().ask(&q).to_string(), "yes");
        db.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    mixed_traffic_summary();

    let mut g = c.benchmark_group("f11_serving");
    g.sample_size(10);

    // Snapshot reads on an idle server...
    for n in [16usize, 64] {
        let (dir, db) = fresh("read", n);
        let q = parse("exists y. K ss(e7, y)").unwrap();
        g.bench_with_input(BenchmarkId::new("read", n), &n, |b, _| {
            b.iter(|| black_box(db.snapshot().db().ask(&q)))
        });
        // ...and with a commit burst parked on the held writer gate: the
        // queue is full of prepared work the writer cannot start, yet
        // the rows should match the idle ones.
        let gate = db.gate();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let ops = enrollment_batch(200 + i, 1)
                    .into_iter()
                    .map(TxOp::Assert)
                    .collect();
                db.commit(ops)
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("read_during_burst", n), &n, |b, _| {
            b.iter(|| black_box(db.snapshot().db().ask(&q)))
        });
        gate.open();
        for h in handles {
            h.wait().expect("parked enrollments commit after the gate");
        }
        db.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Commit cost: one-at-a-time (one fsync each) vs. a gated group of 8
    // (one fsync total). Both rows do 8 hire/fire pairs per iteration.
    {
        let (dir, db) = fresh("commit", 8);
        g.bench_with_input(BenchmarkId::new("commit_individual", 8), &8, |b, _| {
            b.iter(|| {
                // Same state trajectory as the grouped row: 8 hires,
                // then 8 fires — but one queue round-trip (and one
                // fsync) per commit.
                for phase in 0..2 {
                    for i in 0..8 {
                        let ops = enrollment_batch(300 + i, 1)
                            .into_iter()
                            .map(|w| {
                                if phase == 0 {
                                    TxOp::Assert(w)
                                } else {
                                    TxOp::Retract(w)
                                }
                            })
                            .collect();
                        db.commit_wait(ops).expect("individual hire/fire commits");
                    }
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("commit_grouped", 8), &8, |b, _| {
            b.iter(|| {
                for phase in 0..2 {
                    let gate = db.gate();
                    let handles: Vec<_> = (0..8)
                        .map(|i| {
                            let ops = enrollment_batch(300 + i, 1)
                                .into_iter()
                                .map(|w| {
                                    if phase == 0 {
                                        TxOp::Assert(w)
                                    } else {
                                        TxOp::Retract(w)
                                    }
                                })
                                .collect();
                            db.commit(ops)
                        })
                        .collect();
                    gate.open();
                    for h in handles {
                        h.wait().expect("grouped hire/fire commits");
                    }
                }
            })
        });
        db.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
