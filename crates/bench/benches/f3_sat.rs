//! F3 — substrate ablation: CDCL vs plain DPLL.
//!
//! Shape expectation: on pigeonhole instances both are exponential (PHP
//! has no polynomial resolution proofs) but CDCL's learned clauses and
//! VSIDS prune far better; on under-constrained random 3-SAT both are
//! fast. The qualitative gap — CDCL pulling away as holes grow — is the
//! reproduced figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epilog_bench::workloads::{pigeonhole, random_3sat};
use epilog_sat::{solve_dpll, SatResult, Solver};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Correctness gate.
    assert_eq!(Solver::new(&pigeonhole(5)).solve(), SatResult::Unsat);
    assert_eq!(solve_dpll(&pigeonhole(5)), SatResult::Unsat);

    let mut g = c.benchmark_group("f3_sat_pigeonhole");
    g.sample_size(10);
    for holes in [4u32, 5, 6] {
        let cnf = pigeonhole(holes);
        g.bench_with_input(BenchmarkId::new("cdcl", holes), &holes, |b, _| {
            b.iter(|| black_box(Solver::new(&cnf).solve()))
        });
        g.bench_with_input(BenchmarkId::new("dpll", holes), &holes, |b, _| {
            b.iter(|| black_box(solve_dpll(&cnf)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("f3_sat_random3sat");
    g.sample_size(10);
    for vars in [20u32, 40] {
        let clauses = vars * 4; // near the hard ratio
        let cnf = random_3sat(99, vars, clauses);
        g.bench_with_input(BenchmarkId::new("cdcl", vars), &vars, |b, _| {
            b.iter(|| black_box(Solver::new(&cnf).solve()))
        });
        g.bench_with_input(BenchmarkId::new("dpll", vars), &vars, |b, _| {
            b.iter(|| black_box(solve_dpll(&cnf)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
