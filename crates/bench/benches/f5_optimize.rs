//! F5 — Corollary 4.2 in action: evaluating the original conjunctive
//! query vs its constraint-optimized rewrite, as the database grows.
//!
//! Shape expectation: the optimized query (one conjunct eliminated) does
//! roughly half the prover work per answer, so its curve sits below the
//! original's by a constant factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epilog_core::optimize::eliminate_redundant_conjuncts;
use epilog_core::{all_answers, ask};
use epilog_prover::Prover;
use epilog_syntax::{parse, Param, Pred, Theory};
use std::hint::black_box;

fn db(n: usize) -> Theory {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("p(a{i})\nq(a{i})\n"));
    }
    Theory::from_text(&src).expect("generated text parses")
}

fn bench(c: &mut Criterion) {
    let ic = parse("forall x. K p(x) -> K q(x)").unwrap();
    let query = parse("K p(x) & K q(x)").unwrap();
    let optimized = eliminate_redundant_conjuncts(
        &ic,
        &query,
        &[Param::new("c")],
        &[Pred::new("p", 1), Pred::new("q", 1)],
    );
    assert_eq!(optimized.to_string(), "K p(x)");

    // Correctness gate: identical answers on a constraint-satisfying DB.
    {
        let prover = Prover::new(db(6));
        assert!(ask(&prover, &ic).to_string() == "yes");
        assert_eq!(
            all_answers(&prover, &query).unwrap(),
            all_answers(&prover, &optimized).unwrap()
        );
    }

    let mut g = c.benchmark_group("f5_optimize");
    g.sample_size(10);
    for n in [4usize, 8, 16] {
        let theory = db(n);
        g.bench_with_input(BenchmarkId::new("original", n), &n, |b, _| {
            b.iter_with_setup(
                || Prover::new(theory.clone()),
                |prover| black_box(all_answers(&prover, &query).unwrap()),
            )
        });
        g.bench_with_input(BenchmarkId::new("optimized", n), &n, |b, _| {
            b.iter_with_setup(
                || Prover::new(theory.clone()),
                |prover| black_box(all_answers(&prover, &optimized).unwrap()),
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
