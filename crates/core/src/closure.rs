//! `Closure(Σ)` and closed-world query evaluation (§7).
//!
//! `Closure(Σ) = Σ ∪ {¬π : π atomic, Σ ⊬ π}` — the closed-world
//! assumption says the database completely represents all positive
//! information. The section's results, all implemented and tested here:
//!
//! * `Closure(Σ)` has **at most one model**: the set of entailed atoms
//!   (everything else false). It is satisfiable iff that candidate world
//!   actually models `Σ`.
//! * **Theorem 7.1**: `Closure(Σ) ⊨ σ|p̄ iff Closure(Σ) ⊨_FOPCE σ̂|p̄` —
//!   under CWA the `K` operator evaporates ([`ClosedDb::ask`] evaluates
//!   through [`epilog_syntax::strip_k`]).
//! * **Theorem 7.2**: the consistency and entailment readings of
//!   first-order constraint satisfaction coincide for satisfiable closures
//!   (both equal truth in the unique model).
//! * **Theorem 7.3**: `demo(ℛ(w), Σ)` soundly evaluates the FOPCE query
//!   `w` against `Closure(Σ)` **without computing the closure** —
//!   [`cwa_demo`].

use crate::demo::{demo, DemoStream};
use epilog_prover::Prover;
use epilog_semantics::{holds_in_world, Answer};
use epilog_storage::Database;
use epilog_syntax::formula::Formula;
use epilog_syntax::{modalize, strip_k, Admissibility, Param, Theory};

/// A database under the closed-world assumption: the unique model of
/// `Closure(Σ)` (when satisfiable), materialized.
pub struct ClosedDb {
    /// The unique candidate world: all atoms entailed by `Σ` over the
    /// active-domain Herbrand base.
    world: Database,
    /// Whether `Closure(Σ)` is satisfiable (i.e. the candidate world
    /// models `Σ`).
    satisfiable: bool,
    /// Evaluation universe: the active domain plus one spare parameter
    /// standing in for the infinitely many unmentioned individuals.
    universe: Vec<Param>,
}

impl ClosedDb {
    /// Compute `Closure(Σ)`'s unique model.
    ///
    /// When the prover carries a materialized least model (a definite
    /// theory routed through the bottom-up engine, see
    /// [`crate::engine::prover_for`]), that model *is* the closure's
    /// candidate world and is taken directly; otherwise every atom of the
    /// active-domain Herbrand base is checked by entailment.
    pub fn new(prover: &Prover) -> ClosedDb {
        let theory = prover.theory();
        let domain = theory.active_domain();
        let world = match prover.atom_model() {
            Some(model) => model.clone(),
            None => {
                let base = epilog_semantics::oracle::herbrand_base(&domain, &theory.preds());
                let mut world = Database::new();
                for atom in &base {
                    if prover.entails(&Formula::Atom(atom.clone())) {
                        world.insert(atom);
                    }
                }
                world
            }
        };
        // The closure negates *every* non-entailed atom, including those
        // mentioning unmentioned parameters; one spare parameter (with all
        // its atoms false) represents them during quantifier evaluation.
        let mut universe = domain;
        universe.push(Param::fresh("cwa"));
        let satisfiable = theory
            .sentences()
            .iter()
            .all(|s| holds_in_world(s, &world, &universe));
        ClosedDb {
            world,
            satisfiable,
            universe,
        }
    }

    /// The unique model (meaningful only when [`ClosedDb::satisfiable`]).
    pub fn world(&self) -> &Database {
        &self.world
    }

    /// Whether `Closure(Σ)` is satisfiable.
    pub fn satisfiable(&self) -> bool {
        self.satisfiable
    }

    /// Closed-world evaluation of an arbitrary KFOPCE sentence, via
    /// Theorem 7.1: strip the `K`s and evaluate the first-order remainder
    /// in the unique model. Under CWA every query is decided — the answer
    /// is never `Unknown` (for satisfiable closures).
    pub fn ask(&self, q: &Formula) -> Answer {
        if !self.satisfiable {
            // An unsatisfiable closure entails everything.
            return Answer::Yes;
        }
        let fo = strip_k(q);
        if holds_in_world(&fo, &self.world, &self.universe) {
            Answer::Yes
        } else {
            Answer::No
        }
    }

    /// All closed-world answers to an open query: tuples over the active
    /// domain making the stripped query true in the unique model.
    pub fn answers(&self, q: &Formula) -> Vec<Vec<Param>> {
        let fo = strip_k(q);
        let vars = fo.free_vars();
        if vars.is_empty() {
            return if self.ask(q) == Answer::Yes {
                vec![vec![]]
            } else {
                vec![]
            };
        }
        let domain: Vec<Param> = self
            .universe
            .iter()
            .copied()
            .filter(|p| !p.is_fresh())
            .collect();
        let mut out = Vec::new();
        if domain.is_empty() {
            return out;
        }
        let total = domain
            .len()
            .checked_pow(vars.len() as u32)
            .expect("answer space overflow");
        for mut idx in 0..total {
            let mut tuple = vec![domain[0]; vars.len()];
            for slot in tuple.iter_mut().rev() {
                *slot = domain[idx % domain.len()];
                idx /= domain.len();
            }
            if holds_in_world(&fo.bind_free(&tuple), &self.world, &self.universe) {
                out.push(tuple);
            }
        }
        out
    }
}

/// Theorem 7.3: closed-world evaluation of a FOPCE query by running `demo`
/// on the modalized transform `ℛ(w)` against the *open* theory `Σ` — no
/// closure computation. If the call succeeds with bindings `p̄` then
/// `Closure(Σ) ⊨_FOPCE w|p̄`; if it finitely fails then
/// `Closure(Σ) ⊨ ¬(∃x̄)w`.
pub fn cwa_demo<'a>(prover: &'a Prover, w: &Formula) -> Result<DemoStream<'a>, Admissibility> {
    let modal = modalize(w).rename_apart();
    demo(prover, &modal)
}

/// Theorem 7.2, computationally: for a satisfiable closure, the
/// consistency (Def. 3.3-style) and entailment (Def. 3.4-style) readings
/// of a first-order constraint agree — both equal truth in the unique
/// model. Returns the shared verdict.
pub fn closed_ic_verdict(closed: &ClosedDb, ic: &Formula) -> bool {
    closed.ask(ic) == Answer::Yes
}

/// Build an explicit, finitely axiomatized closure theory.
///
/// `Closure(Σ)` proper is the infinite set `Σ ∪ {¬π : Σ ⊬ π}`; its unique
/// model makes exactly the entailed atoms true. We axiomatize that model
/// finitely: for each predicate, a domain-closure sentence
/// `∀x̄ (p(x̄) ⊃ ⋁_{entailed p(c̄)} x̄ = c̄)` (or `∀x̄ ¬p(x̄)` when nothing is
/// entailed), added to `Σ`. Every negated ground instance — including those
/// over unmentioned parameters — is a consequence.
pub fn closure_theory(prover: &Prover) -> Theory {
    use epilog_syntax::{Term, Var};
    let theory = prover.theory();
    let domain = theory.active_domain();
    let base = epilog_semantics::oracle::herbrand_base(&domain, &theory.preds());
    let mut out = theory.clone();
    for pred in theory.preds() {
        let vars: Vec<Var> = (0..pred.arity())
            .map(|i| Var::fresh(&format!("x{i}")))
            .collect();
        let head = Formula::atom(&pred.name(), vars.iter().map(|v| Term::Var(*v)).collect());
        let mut disjuncts = Vec::new();
        for atom in base.iter().filter(|a| a.pred == pred) {
            if prover.entails(&Formula::Atom((*atom).clone())) {
                let tuple = atom.param_tuple().expect("herbrand atoms are ground");
                let eqs: Vec<Formula> = vars
                    .iter()
                    .zip(tuple)
                    .map(|(v, c)| Formula::Eq(Term::Var(*v), Term::Param(c)))
                    .collect();
                disjuncts.push(Formula::and_all(eqs).unwrap_or_else(|| {
                    let c = epilog_syntax::Param::new("c0");
                    Formula::eq(c, c)
                }));
            }
        }
        let mut sentence = match Formula::or_all(disjuncts) {
            Some(body) => Formula::implies(head, body),
            None => Formula::not(head),
        };
        for v in vars.into_iter().rev() {
            sentence = Formula::forall(v, sentence);
        }
        out.assert(sentence)
            .expect("closure axiom is a FOPCE sentence");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::parse;

    fn closed(src: &str) -> (Prover, ClosedDb) {
        let p = Prover::new(Theory::from_text(src).unwrap());
        let c = ClosedDb::new(&p);
        (p, c)
    }

    #[test]
    fn closure_materializes_entailed_atoms() {
        let (_, c) = closed("p(a)\nforall x. p(x) -> q(x)");
        assert!(c.satisfiable());
        assert_eq!(c.world().len(), 2); // p(a), q(a)
    }

    #[test]
    fn routed_closure_matches_entailment_closure() {
        // A definite theory: the engine-routed prover must produce the
        // same closed world as the per-atom entailment sweep.
        let src = "e(a, b)
                   e(b, c)
                   forall x, y. e(x, y) -> t(x, y)
                   forall x, y, z. e(x, y) & t(y, z) -> t(x, z)";
        let plain = Prover::new(Theory::from_text(src).unwrap());
        let routed = crate::engine::prover_for(Theory::from_text(src).unwrap());
        assert!(routed.atom_model().is_some());
        let slow = ClosedDb::new(&plain);
        let fast = ClosedDb::new(&routed);
        assert_eq!(slow.world(), fast.world());
        assert_eq!(slow.satisfiable(), fast.satisfiable());
        assert_eq!(fast.ask(&parse("t(a, c)").unwrap()), Answer::Yes);
        assert_eq!(fast.ask(&parse("t(c, a)").unwrap()), Answer::No);
    }

    #[test]
    fn example_71_closed_db_knows_whether() {
        // ∀x (Kp(x) ∨ K¬p(x)) holds in every closed-world database.
        let (_, c) = closed("p(a)\np(b)");
        assert_eq!(
            c.ask(&parse("forall x. K p(x) | K ~p(x)").unwrap()),
            Answer::Yes
        );
        // Whereas for the open database this fails on unknown atoms: the
        // equivalent stripped query is valid, so here it is the *open*
        // reading that differs — see the e7 integration tests.
    }

    #[test]
    fn theorem_71_k_collapse() {
        let (_, c) = closed("p(a)\nq(b)");
        for q in ["K p(a)", "p(a)", "K ~p(b)", "~p(b)", "K (p(a) & q(b))"] {
            let w = parse(q).unwrap();
            assert_eq!(
                c.ask(&w),
                c.ask(&strip_k(&w)),
                "Theorem 7.1 violated on {q}"
            );
        }
    }

    #[test]
    fn closed_world_decides_everything() {
        let (_, c) = closed("p(a)");
        assert_eq!(c.ask(&parse("p(a)").unwrap()), Answer::Yes);
        assert_eq!(c.ask(&parse("p(b)").unwrap()), Answer::No);
        assert_eq!(c.ask(&parse("K p(b)").unwrap()), Answer::No);
        assert_eq!(c.ask(&parse("~p(b)").unwrap()), Answer::Yes);
    }

    #[test]
    fn disjunctive_theory_closure_unsatisfiable() {
        // Σ = {p ∨ q} entails neither p nor q, so the closure adds ¬p and
        // ¬q — contradiction (the classic CWA failure on disjunctive DBs).
        let (_, c) = closed("p | q");
        assert!(!c.satisfiable());
    }

    #[test]
    fn theorem_72_consistency_equals_entailment() {
        let (p, c) = closed("emp(Mary)\nss(Mary, n1)");
        assert!(c.satisfiable());
        let ic = parse("forall x. emp(x) -> exists y. ss(x, y)").unwrap();
        // Entailment reading against the explicit closure theory.
        let closure = closure_theory(&p);
        let closure_prover = Prover::new(closure);
        let entailed = closure_prover.entails(&ic);
        // Consistency reading.
        let consistent = closure_prover.consistent_with(&ic);
        assert_eq!(entailed, consistent, "Theorem 7.2");
        assert_eq!(closed_ic_verdict(&c, &ic), entailed);
        assert!(entailed);
    }

    #[test]
    fn example_73_cwa_demo() {
        // Evaluate q(x) ∧ ¬∃y (r(x,y) ∧ q(y)) under CWA via demo(ℛ(w)).
        let p = Prover::new(Theory::from_text("q(a)\nq(b)\nr(a, b)").unwrap());
        let w = parse("q(x) & ~(exists y. r(x, y) & q(y))").unwrap();
        let got: Vec<Vec<String>> = cwa_demo(&p, &w)
            .unwrap()
            .map(|t| t.iter().map(|p| p.name()).collect())
            .collect();
        // a has an r-successor with q (namely b) → excluded; b has none.
        assert_eq!(got, vec![vec!["b".to_string()]]);
        // Cross-check against the materialized closure.
        let c = ClosedDb::new(&p);
        let direct = c.answers(&w);
        assert_eq!(direct.len(), 1);
        assert_eq!(direct[0][0].name(), "b");
    }

    #[test]
    fn theorem_73_failure_direction() {
        // If demo(ℛ(w)) finitely fails then Closure(Σ) ⊨ ¬∃x̄ w.
        let p = Prover::new(Theory::from_text("q(a)\nr(a, a)").unwrap());
        let w = parse("q(x) & ~(exists y. r(x, y) & q(y))").unwrap();
        let got: Vec<_> = cwa_demo(&p, &w).unwrap().collect();
        assert!(got.is_empty());
        let c = ClosedDb::new(&p);
        assert_eq!(
            c.ask(&parse("~(exists x. q(x) & ~(exists y. r(x, y) & q(y)))").unwrap()),
            Answer::Yes
        );
    }

    #[test]
    fn closure_theory_explicit() {
        let p = Prover::new(Theory::from_text("p(a)").unwrap());
        let closure = closure_theory(&p);
        // Σ plus one domain-closure axiom for p.
        assert_eq!(closure.len(), 2);
        let cp = Prover::new(closure);
        assert!(cp.entails(&parse("~p(b)").unwrap()));
        assert!(cp.entails(&parse("forall x. p(x) -> x = a").unwrap()));
        assert!(cp.entails(&parse("p(a)").unwrap()));
    }
}
