//! E1 — latency of the Section 1 query table.
//!
//! One bench per evaluator over the full 10-query table: the
//! Levesque-style `ask` reducer and, on the admissible subset, the `demo`
//! evaluator. Regenerates the answers and asserts them before timing.

use criterion::{criterion_group, criterion_main, Criterion};
use epilog_bench::workloads::{section1_queries, teach_db};
use epilog_core::{ask, demo_sentence};
use epilog_prover::Prover;
use epilog_syntax::{is_admissible, parse};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let queries: Vec<_> = section1_queries()
        .into_iter()
        .map(|(q, expected)| (parse(q).unwrap(), expected))
        .collect();

    // Correctness gate: the table must reproduce before we time it.
    {
        let prover = Prover::new(teach_db());
        for (w, expected) in &queries {
            assert_eq!(ask(&prover, w).to_string(), *expected, "{w}");
        }
    }

    let mut g = c.benchmark_group("e1_section1");
    g.sample_size(10);
    g.bench_function("ask/full_table", |b| {
        b.iter_with_setup(
            || Prover::new(teach_db()),
            |prover| {
                for (w, _) in &queries {
                    black_box(ask(&prover, w));
                }
            },
        )
    });
    g.bench_function("demo/admissible_subset", |b| {
        let admissible: Vec<_> = queries.iter().filter(|(w, _)| is_admissible(w)).collect();
        b.iter_with_setup(
            || Prover::new(teach_db()),
            |prover| {
                for (w, _) in &admissible {
                    black_box(demo_sentence(&prover, w).unwrap());
                }
            },
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
