//! Transactional updates: batched `assert`/`retract` with incremental
//! model maintenance and compiled constraint checking.
//!
//! This is the paper's §8 discussion item (4) turned into the database's
//! *update surface*: "when a (normally) small change is made to [a KB],
//! it should not be necessary to verify all its constraints all over
//! again" — nor, for that matter, to recompute its least model. A
//! [`Transaction`] batches updates and applies them atomically on
//! [`Transaction::commit`]:
//!
//! * **Validation** happens against the current state before anything is
//!   cloned: operations that would not change the theory (duplicate
//!   assertions, retractions of absent sentences) are dropped, and a
//!   transaction with no effective operations commits without touching
//!   the prover at all.
//! * **Model maintenance**: when the theory is definite and the commit
//!   only touches ground atoms, the attached least model is *not*
//!   rebuilt. Assertions seed the semi-naive delta
//!   (`DeltaDatabase::resume`) and the fixpoint continues with
//!   delta-variant plans only (`Program::eval_incremental`); retractions
//!   run the over-delete/re-derive (DRed) fixpoint first
//!   (`Program::eval_decremental`), and a mixed batch chains the two —
//!   both over the plan cache, so no full plan runs and nothing is
//!   compiled. The result is spliced into the prover through
//!   [`Prover::updated`].
//! * **Constraint checking** routes through the compiled
//!   [`IncrementalChecker`](crate::incremental::IncrementalChecker):
//!   constraints untouched by the commit are skipped, touched ones are
//!   checked on their violation instances only, and a full recheck runs
//!   just where the rule dependency graph demands it.
//! * **Atomicity**: a rejected commit returns
//!   [`DbError::ConstraintViolated`] and leaves the database observably
//!   unchanged; dropping a transaction (or [`Transaction::rollback`])
//!   discards it.
//!
//! The one-shot [`EpistemicDb::assert`] and [`EpistemicDb::retract`] are
//! thin wrappers over single-operation transactions.

use crate::constraints::{ic_satisfaction, IcDefinition, IcReport};
use crate::db::{DbError, EpistemicDb, Rejection};
use crate::engine::{definite_program, prover_for};
use crate::incremental::{CheckStats, RuleGraph};
use epilog_datalog::{EvalStats, SupportTable};
use epilog_prover::Prover;
use epilog_storage::Database;
use epilog_syntax::theory::TheoryError;
use epilog_syntax::{is_first_order, Formula};
use std::fmt;

/// One batched update operation.
#[derive(Debug, Clone)]
enum Op {
    Assert(Formula),
    Retract(Formula),
}

/// A batch of updates applied atomically on [`Transaction::commit`].
///
/// Obtained from [`EpistemicDb::transaction`]. Operations are recorded in
/// order and validated against the evolving candidate state, so
/// `retract(w)` after `assert(w)` cancels out. Dropping the transaction
/// discards every queued operation.
///
/// ```
/// use epilog_core::EpistemicDb;
/// use epilog_syntax::parse;
///
/// let mut db = EpistemicDb::from_text("ss(Mary, n1)").unwrap();
/// let report = db
///     .transaction()
///     .assert(parse("emp(Mary)").unwrap())
///     .assert(parse("ss(Sue, n2)").unwrap())
///     .commit()
///     .unwrap();
/// assert_eq!(report.asserted, 2);
/// ```
#[must_use = "a transaction does nothing until commit() — dropping it discards the batch"]
pub struct Transaction<'db> {
    db: &'db mut EpistemicDb,
    ops: Vec<Op>,
}

/// How a commit maintained the prover's attached least model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelUpdate {
    /// The commit touched only ground atoms of a definite theory: the
    /// existing least model was reused — retractions ran the
    /// over-delete/re-derive fixpoint, assertions resumed the semi-naive
    /// fixpoint from the transaction's delta — and no full plan ran.
    Incremental {
        /// Model tuples added by the resumed fixpoint (asserted facts
        /// plus their derived consequences).
        tuples_added: usize,
        /// Model tuples removed by the deletion fixpoint (retracted facts
        /// plus the derived consequences that lost their last support);
        /// 0 for assert-only commits.
        tuples_removed: usize,
        /// Combined counters of the deletion and insertion fixpoints;
        /// `full_firings` and `plans_compiled` are 0 by construction.
        stats: EvalStats,
    },
    /// The least model was recomputed from scratch (the commit asserted
    /// or retracted non-atomic, i.e. rule-shaped, sentences).
    Rebuilt,
    /// The updated theory is not a definite program — there is no
    /// attached model and entailment rides the grounding + SAT path.
    NotDefinite,
    /// No effective operation: the database was left untouched.
    Unchanged,
}

/// The structured receipt of a successful [`Transaction::commit`]: which
/// phase did how much work, so callers (and the `f7_transactions` bench)
/// can observe incrementality instead of trusting it.
#[derive(Debug, Clone)]
#[must_use = "the receipt says how the commit was maintained — inspect or explicitly drop it"]
pub struct CommitReport {
    /// Sentences the commit added (duplicates of existing sentences are
    /// not counted — they change nothing).
    pub asserted: usize,
    /// Sentences the commit removed (retractions of absent sentences are
    /// not counted).
    pub retracted: usize,
    /// How the attached least model was maintained.
    pub model: ModelUpdate,
    /// How each registered constraint was verified: skipped, checked on
    /// the update's violation instances only, or re-checked in full.
    pub checks: CheckStats,
}

impl CommitReport {
    fn unchanged() -> Self {
        CommitReport {
            asserted: 0,
            retracted: 0,
            model: ModelUpdate::Unchanged,
            checks: CheckStats::default(),
        }
    }
}

impl fmt::Display for CommitReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{} -{} sentences; ", self.asserted, self.retracted)?;
        match &self.model {
            ModelUpdate::Incremental {
                tuples_added,
                tuples_removed,
                stats,
            } => write!(
                f,
                "model +{tuples_added} -{tuples_removed} tuples (resumed: {} delta firings, {} rounds)",
                stats.rule_firings, stats.iterations
            )?,
            ModelUpdate::Rebuilt => write!(f, "model rebuilt")?,
            ModelUpdate::NotDefinite => write!(f, "no model (SAT path)")?,
            ModelUpdate::Unchanged => write!(f, "unchanged")?,
        }
        write!(
            f,
            "; constraints: {} skipped, {} specialized, {} full",
            self.checks.skipped, self.checks.specialized, self.checks.full
        )
    }
}

impl<'db> Transaction<'db> {
    pub(crate) fn new(db: &'db mut EpistemicDb) -> Self {
        Transaction {
            db,
            ops: Vec::new(),
        }
    }

    /// Queue a sentence for assertion.
    #[must_use = "assert only queues — the batch must still be committed"]
    pub fn assert(mut self, w: Formula) -> Self {
        self.ops.push(Op::Assert(w));
        self
    }

    /// Queue a sentence for retraction.
    #[must_use = "retract only queues — the batch must still be committed"]
    pub fn retract(mut self, w: Formula) -> Self {
        self.ops.push(Op::Retract(w));
        self
    }

    /// Number of queued (not yet validated) operations.
    pub fn pending(&self) -> usize {
        self.ops.len()
    }

    /// Discard the batch. Equivalent to dropping the transaction; spelled
    /// out for call sites that want the intent visible.
    pub fn rollback(self) {}

    /// Validate the batch and apply it atomically.
    ///
    /// Every queued formula must be a first-order sentence
    /// ([`DbError::Theory`] otherwise) and the updated state must satisfy
    /// every registered constraint ([`DbError::ConstraintViolated`]
    /// otherwise — naming the first violated constraint). On any error
    /// the database is left exactly as it was.
    pub fn commit(self) -> Result<CommitReport, DbError> {
        self.prepare().map(PreparedCommit::commit)
    }

    /// Validate the batch and build the candidate state **without
    /// publishing it**. This is the durability hook: a write-ahead log can
    /// sit between validation and application (`prepare` → append the
    /// effective delta to the log → [`PreparedCommit::commit`]), so a
    /// record reaches stable storage only for transactions that will
    /// commit, and state changes only after the record is durable.
    ///
    /// All the work happens here — validation, delta reduction, model
    /// maintenance, constraint checking; [`PreparedCommit::commit`] merely
    /// publishes the precomputed state. Dropping the `PreparedCommit`
    /// discards the batch with the database untouched.
    pub fn prepare(self) -> Result<PreparedCommit<'db>, DbError> {
        let Transaction { db, ops } = self;

        // Phase 1 — validate and reduce to the *effective* delta. Ops are
        // replayed in order against a lightweight view of the current
        // sentence set, so duplicate asserts, absent retracts, and
        // assert/retract pairs that cancel out never cost a theory clone.
        // Only assertions need validating: an ill-formed sentence can
        // never be *stored*, so retracting one is simply a no-op (the
        // documented contract of the one-shot `retract`).
        for op in &ops {
            let Op::Assert(w) = op else { continue };
            if !is_first_order(w) {
                return Err(TheoryError::NotFirstOrder(w.to_string()).into());
            }
            if !w.is_sentence() {
                return Err(TheoryError::NotSentence(w.to_string()).into());
            }
        }
        let current = db.prover.theory();
        let mut added: Vec<Formula> = Vec::new();
        let mut removed: Vec<Formula> = Vec::new();
        for op in ops {
            match op {
                Op::Assert(w) => {
                    let present = if added.contains(&w) {
                        true
                    } else if removed.contains(&w) {
                        false
                    } else {
                        current.sentences().contains(&w)
                    };
                    if !present {
                        if let Some(i) = removed.iter().position(|x| *x == w) {
                            removed.swap_remove(i); // it was ours: un-retract
                        } else {
                            added.push(w);
                        }
                    }
                }
                Op::Retract(w) => {
                    if let Some(i) = added.iter().position(|x| *x == w) {
                        added.swap_remove(i); // never committed: cancel
                    } else if !removed.contains(&w) && current.sentences().contains(&w) {
                        removed.push(w);
                    }
                }
            }
        }
        if added.is_empty() && removed.is_empty() {
            return Ok(PreparedCommit {
                db,
                candidate: None,
                rules_changed: false,
                report: CommitReport::unchanged(),
                added,
                removed,
                support_update: None,
            });
        }

        // Phase 2 — build the candidate theory.
        let mut theory = current.clone();
        for w in &removed {
            theory.retract(w);
        }
        for w in &added {
            theory.assert(w.clone())?;
        }

        // Phase 3 — maintain the least model. A commit that touches only
        // ground atoms of a definite theory never rebuilds: retractions
        // run the over-delete/re-derive fixpoint, assertions resume the
        // semi-naive fixpoint, a mixed batch chains the two. Everything
        // else rebuilds.
        let is_ground_atom = |w: &Formula| matches!(w, Formula::Atom(a) if a.is_ground());
        let facts_only = added.iter().all(is_ground_atom) && removed.iter().all(is_ground_atom);
        // The exact model-level delta of a facts-only commit's removals
        // (retracted facts plus derived consequences that died with
        // them), for the constraint router: `Some` exactly on the
        // incremental path, `None` when the model was rebuilt and no
        // per-tuple delta exists.
        let mut removed_model_atoms: Option<Vec<epilog_syntax::formula::Atom>> = None;
        // The candidate's support table, decided alongside the model:
        // `None` leaves the db's table untouched (provenance off, or a
        // no-op), `Some(Some(t))` installs the maintained/rebuilt table on
        // commit, `Some(None)` switches provenance off (the theory left
        // the definite fragment).
        let mut support_update: Option<Option<SupportTable>> = None;
        let tracing = db.support_table.is_some();
        let (candidate, model_update): (Prover, ModelUpdate) = 'prover: {
            if facts_only {
                if let (Some(old_model), Some(prog)) =
                    (db.prover.atom_model(), definite_program(&theory))
                {
                    let mut new_facts = Database::new();
                    let mut removed_facts = Database::new();
                    for w in &added {
                        if let Formula::Atom(a) = w {
                            new_facts.insert(a);
                        }
                    }
                    for w in &removed {
                        if let Formula::Atom(a) = w {
                            removed_facts.insert(a);
                        }
                    }
                    // A facts-only commit leaves the rule set untouched,
                    // so the plans cached on the db are exactly the
                    // candidate program's plans — neither fixpoint
                    // compiles anything (`stats.plans_compiled == 0`).
                    // The compiling fallbacks only cover a db whose cache
                    // is unexpectedly cold.
                    //
                    // With provenance on, the traced fixpoints maintain a
                    // clone of the support table in the same pass: DRed
                    // consumes recorded supports (skipping re-derivation
                    // probes where an alternative support survives) and
                    // purges the net-removed atoms, the growth fixpoint
                    // appends supports for its insertions.
                    let mut traced_table = (tracing && db.rule_plans.is_some())
                        .then(|| db.support_table.clone().expect("tracing implies a table"));
                    let shrunk = if removed_facts.is_empty() {
                        Ok((old_model.clone(), EvalStats::default()))
                    } else {
                        match (&db.rule_plans, traced_table.as_mut()) {
                            (Some(plans), Some(table)) => prog.eval_decremental_traced(
                                plans,
                                old_model.clone(),
                                &removed_facts,
                                table,
                            ),
                            (Some(plans), None) => {
                                prog.eval_decremental_with(plans, old_model.clone(), &removed_facts)
                            }
                            (None, _) => prog.eval_decremental(old_model.clone(), &removed_facts),
                        }
                    };
                    let maintained = shrunk.and_then(|(model, mut stats)| {
                        if new_facts.is_empty() {
                            return Ok((model, stats));
                        }
                        let resumed = match (&db.rule_plans, traced_table.as_mut()) {
                            (Some(plans), Some(table)) => {
                                prog.eval_incremental_traced(plans, model, &new_facts, table)
                            }
                            (Some(plans), None) => {
                                prog.eval_incremental_with(plans, model, &new_facts)
                            }
                            (None, _) => prog.eval_incremental(model, &new_facts),
                        };
                        resumed.map(|(model, grown)| {
                            stats.absorb(&grown);
                            (model, stats)
                        })
                    });
                    if let Ok((model, stats)) = maintained {
                        if tracing {
                            support_update = Some(match traced_table {
                                Some(table) => Some(table),
                                // Cold plan cache: the untraced fallback
                                // ran, so re-record from scratch.
                                None => {
                                    let mut table = SupportTable::new();
                                    prog.eval_traced(
                                        epilog_datalog::EvalOptions::default(),
                                        &mut table,
                                    )
                                    .ok()
                                    .map(|_| table)
                                }
                            });
                        }
                        // `gone` is the exact model diff: everything the
                        // deletion fixpoint removed and the insertion
                        // fixpoint did not re-add.
                        let gone = if removed_facts.is_empty() {
                            Database::new()
                        } else {
                            old_model.difference(&model)
                        };
                        let tuples_removed = gone.len();
                        let update = ModelUpdate::Incremental {
                            // `new = old - gone + fresh`, so `fresh`
                            // (the net additions) is this — never
                            // underflows.
                            tuples_added: model.len() + tuples_removed - old_model.len(),
                            tuples_removed,
                            stats,
                        };
                        removed_model_atoms = Some(gone.atoms().collect());
                        break 'prover (db.prover.updated(theory, Some(model)), update);
                    }
                }
            }
            let rebuilt = prover_for(theory);
            let update = if rebuilt.atom_model().is_some() {
                ModelUpdate::Rebuilt
            } else {
                ModelUpdate::NotDefinite
            };
            if tracing {
                // Rule-changing commits invalidate every recorded support
                // (rule indices shift, derivations change): re-record from
                // scratch against the candidate program. A theory that
                // left the definite fragment has no bottom-up derivations
                // to record — provenance switches off.
                support_update = Some(match definite_program(rebuilt.theory()) {
                    Some(prog) => {
                        let mut table = SupportTable::new();
                        prog.eval_traced(epilog_datalog::EvalOptions::default(), &mut table)
                            .ok()
                            .map(|_| table)
                    }
                    None => None,
                });
            }
            (rebuilt, update)
        };

        // Phase 4 — verify the constraints. Facts-only commits on a
        // *definite* theory ride the compiled incremental checker (its
        // dependency-graph routing is exact only when every non-rule
        // sentence is a ground atom — a disjunction like `¬p(a) ∨ emp(b)`
        // can make a trigger atom certain with no rule edge the graph
        // could see); `removed_model_atoms` is `Some` exactly when the
        // incremental model path ran, which implies both the definite
        // fragment and an exact removal delta — the routed checker needs
        // the latter because a removal can only violate a constraint
        // through an atom that actually left the model. All other
        // commits re-check every constraint in full.
        let mut checks = CheckStats::default();
        match (&db.checker, &removed_model_atoms) {
            (Some(checker), Some(removed_atoms)) if candidate.atom_model().is_some() => {
                let facts: Vec<&epilog_syntax::formula::Atom> = added
                    .iter()
                    .map(|w| match w {
                        Formula::Atom(a) => a,
                        _ => unreachable!("facts_only guarantees ground atoms"),
                    })
                    .collect();
                // A facts-only commit cannot have changed the rule set,
                // so the dependency graph cached on the db is exactly the
                // candidate theory's graph — no per-commit re-derivation.
                if let Some(c) = checker.check_batch_with_removals(
                    &candidate,
                    &facts,
                    removed_atoms,
                    &db.rule_graph,
                    &mut checks,
                ) {
                    let table = support_update
                        .as_ref()
                        .and_then(|t| t.as_ref())
                        .or(db.support_table.as_ref());
                    return Err(DbError::ConstraintViolated(Rejection::explain(
                        &c.original,
                        &candidate,
                        table,
                    )));
                }
            }
            _ => {
                for ic in &db.constraints {
                    checks.full += 1;
                    if ic_satisfaction(&candidate, ic, IcDefinition::Epistemic)
                        != IcReport::Satisfied
                    {
                        let table = support_update
                            .as_ref()
                            .and_then(|t| t.as_ref())
                            .or(db.support_table.as_ref());
                        return Err(DbError::ConstraintViolated(Rejection::explain(
                            ic, &candidate, table,
                        )));
                    }
                }
            }
        }

        // Phase 5 — the commit is decided; publication is deferred to
        // `PreparedCommit::commit` so a WAL append can sit in between.
        // The cached rule graph stays valid unless some added or removed
        // sentence is rule-shaped (a non-ground-atom).
        let rules_changed = !facts_only;
        Ok(PreparedCommit {
            db,
            candidate: Some(candidate),
            rules_changed,
            report: CommitReport {
                asserted: added.len(),
                retracted: removed.len(),
                model: model_update,
                checks,
            },
            added,
            removed,
            support_update,
        })
    }
}

/// A validated, fully decided transaction awaiting publication — the
/// output of [`Transaction::prepare`]. Holds the candidate prover (model
/// already maintained, constraints already verified); [`PreparedCommit::commit`]
/// installs it. Dropping a `PreparedCommit` discards the batch and leaves
/// the database untouched, exactly like dropping a [`Transaction`].
#[must_use = "a prepared commit changes nothing until commit() — dropping it discards the batch"]
pub struct PreparedCommit<'db> {
    db: &'db mut EpistemicDb,
    /// `None` when the batch reduced to a no-op: nothing to publish.
    candidate: Option<Prover>,
    rules_changed: bool,
    report: CommitReport,
    added: Vec<Formula>,
    removed: Vec<Formula>,
    /// The candidate's support table (see `prepare`): `None` leaves the
    /// db's table untouched, `Some(t)` installs `t` on commit.
    support_update: Option<Option<SupportTable>>,
}

impl PreparedCommit<'_> {
    /// The sentences this commit will add, post delta-reduction (duplicate
    /// asserts and cancelled pairs removed) — the exact payload a
    /// write-ahead log should record.
    pub fn added(&self) -> &[Formula] {
        &self.added
    }

    /// The sentences this commit will remove, post delta-reduction.
    pub fn removed(&self) -> &[Formula] {
        &self.removed
    }

    /// Whether the batch reduced to a no-op (nothing will change; a WAL
    /// need not record it).
    pub fn is_noop(&self) -> bool {
        self.candidate.is_none()
    }

    /// The receipt this commit will return, for inspection before
    /// publication.
    pub fn report(&self) -> &CommitReport {
        &self.report
    }

    /// Publish the prepared state. Infallible: every way the commit can
    /// fail was decided in [`Transaction::prepare`].
    pub fn commit(self) -> CommitReport {
        if let Some(candidate) = self.candidate {
            self.db.prover = candidate;
            if let Some(table) = self.support_update {
                self.db.support_table = table;
            }
            if self.rules_changed {
                // Both caches derive from the rule-shaped sentences only:
                // rebuild them here, once, and every following ground-atom
                // commit reuses them as-is. The fresh plans are costed
                // against the just-published model, so that becomes the
                // staleness baseline.
                self.db.rule_graph = RuleGraph::new(self.db.prover.theory());
                self.db.rule_plans = EpistemicDb::compile_rule_plans(&self.db.prover);
                self.db.plans_model_size = self.db.prover.atom_model().map_or(0, |m| m.len());
            } else {
                // Facts-only commits keep the cached plans but may drift
                // the model away from the statistics those plans were
                // costed with; re-cost when it has halved or doubled.
                self.db.maybe_recost_plans();
            }
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_semantics::Answer;
    use epilog_syntax::parse;

    fn db(src: &str) -> EpistemicDb {
        EpistemicDb::from_text(src).unwrap()
    }

    fn f(src: &str) -> Formula {
        parse(src).unwrap()
    }

    #[test]
    fn batched_commit_applies_atomically() {
        let mut d = db("ss(Mary, n1)");
        let report = d
            .transaction()
            .assert(f("emp(Mary)"))
            .assert(f("ss(Sue, n2)"))
            .assert(f("emp(Sue)"))
            .commit()
            .unwrap();
        assert_eq!(report.asserted, 3);
        assert_eq!(report.retracted, 0);
        assert_eq!(d.ask(&f("K emp(Sue)")), Answer::Yes);
    }

    #[test]
    fn duplicate_and_cancelling_ops_reduce_to_noop() {
        let mut d = db("p(a)");
        let report = d
            .transaction()
            .assert(f("p(a)")) // already present
            .assert(f("q(b)"))
            .retract(f("q(b)")) // cancels the assert
            .retract(f("r(c)")) // absent
            .commit()
            .unwrap();
        assert_eq!(report.asserted, 0);
        assert_eq!(report.retracted, 0);
        assert_eq!(report.model, ModelUpdate::Unchanged);
        assert_eq!(d.theory().len(), 1);
    }

    #[test]
    fn retract_then_assert_same_sentence_round_trips() {
        let mut d = db("p(a)");
        let report = d
            .transaction()
            .retract(f("p(a)"))
            .assert(f("p(a)"))
            .commit()
            .unwrap();
        // The pair cancels: retract queued first, assert un-retracts it.
        assert_eq!((report.asserted, report.retracted), (0, 0));
        assert!(d.theory().sentences().contains(&f("p(a)")));
    }

    #[test]
    fn ground_atom_commit_on_definite_theory_is_incremental() {
        let mut d = db("e(n0, n1)\nforall x, y. e(x, y) -> t(x, y)\nforall x, y, z. e(x, y) & t(y, z) -> t(x, z)");
        assert!(d.prover().atom_model().is_some());
        let report = d
            .transaction()
            .assert(f("e(n1, n2)"))
            .assert(f("e(n2, n3)"))
            .commit()
            .unwrap();
        let ModelUpdate::Incremental {
            tuples_added,
            tuples_removed,
            stats,
        } = report.model
        else {
            panic!("expected the incremental path, got {:?}", report.model);
        };
        // 2 edges + t(n1,n2), t(n2,n3), t(n0,n2), t(n1,n3), t(n0,n3).
        assert_eq!(tuples_added, 7);
        assert_eq!(tuples_removed, 0);
        assert_eq!(stats.full_firings, 0, "only delta variants may run");
        assert!(stats.rule_firings > 0);
        // The resumed model answers like a from-scratch one.
        assert_eq!(d.ask(&f("K t(n0, n3)")), Answer::Yes);
        let scratch = crate::engine::prover_for(d.theory().clone());
        assert_eq!(d.prover().atom_model(), scratch.atom_model());
    }

    #[test]
    fn retraction_takes_the_decremental_path() {
        let mut d = db("e(a, b)\ne(b, c)\nforall x, y. e(x, y) -> t(x, y)");
        let report = d.transaction().retract(f("e(b, c)")).commit().unwrap();
        let ModelUpdate::Incremental {
            tuples_added,
            tuples_removed,
            stats,
        } = report.model
        else {
            panic!("expected the decremental path, got {:?}", report.model);
        };
        // e(b,c) and its sole consequence t(b,c) leave the model.
        assert_eq!((tuples_added, tuples_removed), (0, 2));
        assert_eq!(stats.full_firings, 0, "no full plan may run");
        assert_eq!(stats.plans_compiled, 0, "the cached plans are reused");
        assert!(stats.tuples_overdeleted >= 2);
        assert_eq!(d.ask(&f("K t(b, c)")), Answer::No);
        assert_eq!(d.ask(&f("K t(a, b)")), Answer::Yes);
        // The shrunk model answers like a from-scratch one.
        let scratch = crate::engine::prover_for(d.theory().clone());
        assert_eq!(d.prover().atom_model(), scratch.atom_model());
    }

    #[test]
    fn mixed_batch_chains_deletion_and_insertion_fixpoints() {
        let mut d = db("e(n0, n1)\ne(n1, n2)\nforall x, y. e(x, y) -> t(x, y)\nforall x, y, z. e(x, y) & t(y, z) -> t(x, z)");
        let report = d
            .transaction()
            .retract(f("e(n1, n2)"))
            .assert(f("e(n1, n3)"))
            .assert(f("e(n3, n2)"))
            .commit()
            .unwrap();
        let ModelUpdate::Incremental {
            tuples_added,
            tuples_removed,
            stats,
        } = report.model
        else {
            panic!("expected the incremental path, got {:?}", report.model);
        };
        // Out: e(n1,n2), t(n1,n2), t(n0,n2) — then the new edges restore
        // both t-paths via n3, so the re-grown facts count as added.
        assert!(tuples_removed > 0);
        assert!(tuples_added > 0);
        assert_eq!(stats.full_firings, 0, "no full plan may run");
        assert_eq!(stats.plans_compiled, 0, "the cached plans are reused");
        assert_eq!(d.ask(&f("K t(n0, n2)")), Answer::Yes);
        assert_eq!(d.ask(&f("K t(n1, n2)")), Answer::Yes);
        assert_eq!(d.ask(&f("K e(n1, n2)")), Answer::No);
        let scratch = crate::engine::prover_for(d.theory().clone());
        assert_eq!(d.prover().atom_model(), scratch.atom_model());
    }

    #[test]
    fn retraction_violating_a_constraint_is_rejected_incrementally() {
        let mut d = db("emp(Mary)\nss(Mary, n1)\nhobby(Mary, chess)");
        d.add_constraint(f("forall x. K emp(x) -> exists y. K ss(x, y)"))
            .unwrap();
        // Removing Mary's number while she is an employee violates the
        // constraint — caught on the specialized route, not a full check.
        let err = d
            .transaction()
            .retract(f("ss(Mary, n1)"))
            .commit()
            .unwrap_err();
        assert!(matches!(err, DbError::ConstraintViolated(_)));
        assert_eq!(d.ask(&f("K ss(Mary, n1)")), Answer::Yes, "no trace");
        // An irrelevant retraction skips the constraint entirely.
        let report = d
            .transaction()
            .retract(f("hobby(Mary, chess)"))
            .commit()
            .unwrap();
        assert_eq!(report.checks.skipped, 1);
        assert_eq!(report.checks.full, 0);
        // Retracting emp first makes the ss retraction legal.
        assert!(d.retract(&f("emp(Mary)")).unwrap());
        assert!(d.retract(&f("ss(Mary, n1)")).unwrap());
    }

    #[test]
    fn non_atomic_assertion_rebuilds_or_drops_the_model() {
        let mut d = db("p(a)");
        let report = d.transaction().assert(f("q(b) | q(c)")).commit().unwrap();
        assert_eq!(report.model, ModelUpdate::NotDefinite);
        assert!(d.prover().atom_model().is_none());
        assert_eq!(d.ask(&f("K (q(b) | q(c))")), Answer::Yes);
    }

    #[test]
    fn violating_commit_is_rejected_wholesale() {
        let mut d = db("emp(Mary)\nss(Mary, n1)");
        d.add_constraint(f("forall x. K emp(x) -> exists y. K ss(x, y)"))
            .unwrap();
        let before = d.theory().clone();
        let err = d
            .transaction()
            .assert(f("ss(Sue, n2)"))
            .assert(f("emp(Sue)"))
            .assert(f("emp(Joe)")) // no number for Joe: rejected
            .commit()
            .unwrap_err();
        assert!(matches!(err, DbError::ConstraintViolated(_)));
        // Nothing from the batch landed — not even the valid prefix.
        assert_eq!(d.theory(), &before);
        assert_eq!(d.ask(&f("K emp(Sue)")), Answer::No);
        assert!(d.satisfies_constraints());
    }

    #[test]
    fn batch_satisfying_constraint_jointly_is_accepted() {
        // Individually ordered asserts would need "number first"; a batch
        // is checked only at commit, so order inside the batch is free.
        let mut d = db("emp(Mary)\nss(Mary, n1)");
        d.add_constraint(f("forall x. K emp(x) -> exists y. K ss(x, y)"))
            .unwrap();
        let report = d
            .transaction()
            .assert(f("emp(Sue)")) // before its ss fact — fine in a batch
            .assert(f("ss(Sue, n2)"))
            .commit()
            .unwrap();
        assert_eq!(report.asserted, 2);
        assert!(report.checks.specialized > 0 || report.checks.full > 0);
        assert!(d.satisfies_constraints());
    }

    #[test]
    fn constraint_routing_is_reported() {
        let mut d = db("emp(Mary)\nss(Mary, n1)\nhobby(Mary, chess)");
        d.add_constraint(f("forall x. K emp(x) -> exists y. K ss(x, y)"))
            .unwrap();
        d.add_constraint(f("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z"))
            .unwrap();
        // An update touching neither constraint: both skipped.
        let report = d
            .transaction()
            .assert(f("hobby(Mary, go)"))
            .commit()
            .unwrap();
        assert_eq!(report.checks.skipped, 2);
        assert_eq!(report.checks.specialized, 0);
        assert_eq!(report.checks.full, 0);
        // An ss+emp batch: each constraint is routed once — both have a
        // triggered predicate in the batch, so both specialize.
        let report = d
            .transaction()
            .assert(f("ss(Sue, n2)"))
            .assert(f("emp(Sue)"))
            .commit()
            .unwrap();
        assert_eq!(report.checks.specialized, 2, "one route per constraint");
        assert_eq!(report.checks.skipped, 0);
        assert_eq!(report.checks.full, 0);
    }

    #[test]
    fn non_rule_sentences_force_full_constraint_checks() {
        // `¬p(a) ∨ emp(b)` can make emp(b) certain when p(a) arrives —
        // with no rule edge from p to emp. The dependency-graph routing
        // must not be trusted here: the theory is not definite, so the
        // commit re-checks every constraint in full and rejects.
        let mut d = db("~p(a) | emp(b)");
        d.add_constraint(f("forall x. K emp(x) -> exists y. K ss(x, y)"))
            .unwrap();
        let err = d.transaction().assert(f("p(a)")).commit().unwrap_err();
        assert!(matches!(err, DbError::ConstraintViolated(_)));
        assert!(d.satisfies_constraints());
        assert_eq!(d.theory().len(), 1, "rejected commit left no trace");
    }

    #[test]
    fn engine_only_rules_route_constraints_to_full_checks() {
        // A rule with an unused quantified variable is invisible to the
        // syntactic rule view but evaluated by the engine: the commit must
        // still notice that p derives q and reject the violation.
        let mut d = db("forall x, z. p(x) -> q(x)");
        d.add_constraint(f("forall x. ~K q(x)")).unwrap();
        let err = d.transaction().assert(f("p(a)")).commit().unwrap_err();
        assert!(matches!(err, DbError::ConstraintViolated(_)));
        assert!(d.satisfies_constraints());
        assert_eq!(
            d.ask(&f("K p(a)")),
            Answer::No,
            "rejected commit left no trace"
        );
    }

    #[test]
    fn retracting_an_ill_formed_sentence_is_a_noop() {
        // Modal or open formulas can never be stored, so retracting one
        // reports "absent" instead of erroring (the seed contract).
        let mut d = db("p(a)");
        assert!(!d.retract(&f("K p(a)")).unwrap());
        assert!(!d.retract(&f("q(x)")).unwrap());
        assert_eq!(d.theory().len(), 1);
    }

    #[test]
    fn rollback_and_drop_discard() {
        let mut d = db("p(a)");
        d.transaction().assert(f("q(b)")).rollback();
        assert_eq!(d.theory().len(), 1);
        {
            let txn = d.transaction().assert(f("q(c)"));
            assert_eq!(txn.pending(), 1);
            // dropped here
        }
        assert_eq!(d.theory().len(), 1);
    }

    #[test]
    fn invalid_sentence_rejects_the_whole_batch() {
        let mut d = db("p(a)");
        let err = d
            .transaction()
            .assert(f("q(b)"))
            .assert(f("K q(b)")) // modal: not a database sentence
            .commit()
            .unwrap_err();
        assert!(matches!(err, DbError::Theory(_)));
        assert_eq!(d.theory().len(), 1);

        let err = d
            .transaction()
            .assert(f("q(x)")) // free variable
            .commit()
            .unwrap_err();
        assert!(matches!(err, DbError::Theory(_)));
    }

    #[test]
    fn prepare_defers_publication() {
        let mut d = db("p(a)");
        let prepared = d.transaction().assert(f("q(b)")).prepare().unwrap();
        assert!(!prepared.is_noop());
        assert_eq!(prepared.added(), &[f("q(b)")]);
        assert!(prepared.removed().is_empty());
        assert_eq!(prepared.report().asserted, 1);
        // Dropping the prepared commit discards the batch…
        drop(prepared);
        assert_eq!(d.theory().len(), 1);
        // …while commit() publishes exactly the prepared state.
        let prepared = d.transaction().assert(f("q(b)")).prepare().unwrap();
        let report = prepared.commit();
        assert_eq!(report.asserted, 1);
        assert!(d.theory().sentences().contains(&f("q(b)")));
    }

    #[test]
    fn prepare_reports_noop_batches() {
        let mut d = db("p(a)");
        let prepared = d.transaction().assert(f("p(a)")).prepare().unwrap();
        assert!(prepared.is_noop());
        assert!(prepared.added().is_empty());
        assert_eq!(prepared.commit().model, ModelUpdate::Unchanged);
    }

    #[test]
    fn rule_graph_cache_tracks_rule_changing_commits() {
        // Start rule-free: an `emp` assert routes to the specialization.
        let mut d = db("ss(Mary, n1)\nemp(Mary)");
        d.add_constraint(f("forall x. K emp(x) -> exists y. K ss(x, y)"))
            .unwrap();
        // Commit a *rule* that derives the trigger predicate: the cached
        // graph must be rebuilt, or the next hired-commit would wrongly
        // stay on the specialized route and miss the violation.
        let report = d
            .transaction()
            .assert(f("forall x. hired(x) -> emp(x)"))
            .commit()
            .unwrap();
        assert_eq!(report.model, ModelUpdate::Rebuilt);
        let err = d
            .transaction()
            .assert(f("hired(Sue)"))
            .commit()
            .unwrap_err();
        assert!(matches!(err, DbError::ConstraintViolated(_)));
        // And retracting the rule must also refresh the cache: afterwards
        // hired no longer reaches emp, so the same batch is accepted and
        // the constraint is skipped outright.
        let report = d
            .transaction()
            .retract(f("forall x. hired(x) -> emp(x)"))
            .commit()
            .unwrap();
        assert_eq!(report.retracted, 1);
        let report = d.transaction().assert(f("hired(Sue)")).commit().unwrap();
        assert_eq!(report.checks.skipped, 1);
        assert_eq!(report.checks.full, 0);
    }

    #[test]
    fn ground_atom_commits_compile_no_plans() {
        let mut d = db("e(n0, n1)\nforall x, y. e(x, y) -> t(x, y)\nforall x, y, z. e(x, y) & t(y, z) -> t(x, z)");
        assert!(d.rule_plans.is_some(), "definite theory caches its plans");
        for i in 1..4 {
            let report = d
                .transaction()
                .assert(f(&format!("e(n{i}, n{})", i + 1)))
                .commit()
                .unwrap();
            let ModelUpdate::Incremental { stats, .. } = report.model else {
                panic!("expected the incremental path, got {:?}", report.model);
            };
            assert_eq!(
                stats.plans_compiled, 0,
                "commit {i} must reuse the cached plans"
            );
        }
    }

    #[test]
    fn rule_commits_rebuild_the_plan_cache() {
        let mut d = db("e(a, b)\nforall x, y. e(x, y) -> t(x, y)");
        assert_eq!(
            d.rule_plans.as_ref().map(Vec::len),
            Some(1),
            "one plan per rule"
        );
        // Commit a new rule: the cache must be rebuilt to include it, or
        // the next incremental commit would silently not derive u-facts.
        let _ = d
            .transaction()
            .assert(f("forall x, y. t(x, y) -> u2(x, y)"))
            .commit()
            .unwrap();
        let report = d.transaction().assert(f("e(b, c)")).commit().unwrap();
        assert!(matches!(report.model, ModelUpdate::Incremental { .. }));
        assert_eq!(d.ask(&f("K u2(b, c)")), Answer::Yes);
        // Leaving the definite fragment drops the cache entirely.
        let _ = d.transaction().assert(f("p(a) | p(b)")).commit().unwrap();
        assert!(d.rule_plans.is_none());
    }

    #[test]
    fn incremental_commit_updates_answers_not_just_the_model() {
        let mut d = db("emp(Mary)\nforall x. emp(x) -> person(x)");
        let _ = d.transaction().assert(f("emp(Sue)")).commit().unwrap();
        // Derived consequence of the new fact via the rule:
        assert_eq!(d.ask(&f("K person(Sue)")), Answer::Yes);
        // And non-atomic queries (memo was not carried over stale):
        assert_eq!(d.ask(&f("exists x. K person(x)")), Answer::Yes);
    }
}
