//! E5/F1 — the headline figure: `demo` (first-order theorem proving)
//! versus the brute-force semantic oracle (model enumeration), runtime as
//! the Herbrand base grows.
//!
//! The paper's computational claim (§5.2): generalizing to epistemic
//! queries via `demo` keeps "the computational advantages of first-order
//! query evaluation". The oracle's cost is `Θ(2^n)` world checks; `demo`'s
//! is a handful of SAT calls on a linear grounding. The crossover sits at
//! a Herbrand base of a few atoms; beyond ~20 atoms the oracle is simply
//! infeasible, which is why it is capped here at 14.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epilog_bench::workloads::propositional_db;
use epilog_core::{ask, demo_sentence, DemoOutcome};
use epilog_prover::Prover;
use epilog_semantics::{Answer, ModelSet};
use epilog_syntax::parse;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let query = parse("K (p0 | p1) & ~K p0").unwrap();

    // Correctness gate at a size the oracle can check.
    {
        let (theory, preds) = propositional_db(6);
        let prover = Prover::new(theory.clone());
        let oracle = ModelSet::models(&theory, &[epilog_syntax::Param::new("c")], &preds);
        assert_eq!(ask(&prover, &query), Answer::Yes);
        assert_eq!(oracle.answer(&query), Answer::Yes);
        assert_eq!(
            demo_sentence(&prover, &query).unwrap(),
            DemoOutcome::Succeeds
        );
    }

    let mut g = c.benchmark_group("e5_demo_vs_oracle");
    g.sample_size(10);
    for n in [4usize, 6, 8, 10, 12, 14] {
        let (theory, preds) = propositional_db(n);
        g.bench_with_input(BenchmarkId::new("demo", n), &n, |b, _| {
            b.iter_with_setup(
                || Prover::new(theory.clone()),
                |prover| black_box(demo_sentence(&prover, &query).unwrap()),
            )
        });
        g.bench_with_input(BenchmarkId::new("oracle", n), &n, |b, _| {
            let universe = [epilog_syntax::Param::new("c")];
            b.iter(|| {
                let ms = ModelSet::models(&theory, &universe, &preds);
                black_box(ms.answer(&query))
            })
        });
    }
    // demo keeps going far beyond the oracle's feasibility wall.
    for n in [20usize, 40, 80] {
        let (theory, _) = propositional_db(n);
        g.bench_with_input(BenchmarkId::new("demo", n), &n, |b, _| {
            b.iter_with_setup(
                || Prover::new(theory.clone()),
                |prover| black_box(demo_sentence(&prover, &query).unwrap()),
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
