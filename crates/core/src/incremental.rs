//! Incremental integrity checking — the paper's §8 discussion item (4).
//!
//! "Usually a knowledge base will be known to satisfy its constraints.
//! When a (normally) small change is made to it, it should not be
//! necessary to verify all its constraints all over again." (Reiter cites
//! Nicolas 1982 for relational and Lloyd–Topor for deductive databases.)
//!
//! For epistemic constraints in the admissible `¬∃x̄ (KL₁ ∧ … ∧ KLₙ ∧ …)`
//! form this module implements the Nicolas-style specialization: when a
//! ground fact `a` is asserted, a constraint can only *become* violated
//! through instantiations whose positive `K`-literals match `a`. The
//! checker therefore:
//!
//! 1. skips constraints mentioning none of the update's predicates, and
//! 2. for the rest, checks only the violation instances obtained by
//!    unifying the new fact against each matching positive literal.
//!
//! **Soundness boundary** (documented, checked in tests): the
//! specialization is exact when the database's rules cannot derive atoms
//! of a constraint's trigger predicates from the update — in particular
//! for extensional (fact-only) databases, the common case for updates.
//! [`IncrementalChecker::check_update`] decides this **per constraint**
//! by consulting the theory's rule dependency graph: only constraints
//! whose triggers are rule-reachable from the update's predicate fall
//! back to a full recheck; the rest stay on the specialized (or skipped)
//! route, with the routing reported through
//! [`CheckStats`].

use crate::ask::certain;
use epilog_datalog::Program;
use epilog_prover::Prover;
use epilog_syntax::formula::{Atom, Formula};
use epilog_syntax::{admissible_constraint, Param, Pred, Term, Theory, Var};
use std::collections::{BTreeSet, HashMap};

/// A constraint compiled for incremental checking.
#[derive(Debug, Clone)]
pub struct CompiledConstraint {
    /// The original constraint sentence.
    pub original: Formula,
    /// The admissible `¬∃x̄ body` rewrite.
    pub rewritten: Formula,
    /// The existentially quantified variables `x̄`.
    vars: Vec<Var>,
    /// The matrix `body` (a conjunction of subjective literals).
    body: Formula,
    /// The positive `K`-literal atom patterns in the matrix.
    positive_patterns: Vec<Atom>,
    /// The `K`-literal atom patterns under a negation in the matrix
    /// (inner `∃` prefixes stripped). A *removal* can only newly violate
    /// the constraint by making one of these negated conjuncts true —
    /// the mirror image of the positive patterns for retractions. Empty
    /// for prohibitions (`¬∃x̄ K bad(x)`: removal can never violate) and
    /// for constraints whose negated conjunct is an equality (the
    /// functional dependency: removing an `ss` fact cannot equate two
    /// distinct numbers).
    negative_patterns: Vec<Atom>,
}

/// Why compilation failed: the constraint is outside the
/// `¬∃x̄ (conjunction)` fragment this checker specializes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotCompilable(pub String);

impl CompiledConstraint {
    /// Compile a constraint (in natural `∀/⊃` or already-rewritten form).
    pub fn compile(ic: &Formula) -> Result<Self, NotCompilable> {
        let rewritten = admissible_constraint(ic);
        // Expect ¬∃x̄ body.
        let Formula::Not(inner) = &rewritten else {
            return Err(NotCompilable(rewritten.to_string()));
        };
        let mut vars = Vec::new();
        let mut cur: &Formula = inner;
        while let Formula::Exists(x, b) = cur {
            vars.push(*x);
            cur = b;
        }
        let body = cur.clone();
        // Collect positive K-literal atoms from the conjunction.
        let mut positive_patterns = Vec::new();
        collect_positive_k_atoms(&body, &mut positive_patterns);
        if positive_patterns.is_empty() {
            return Err(NotCompilable(format!(
                "no positive K-literal to index on in {rewritten}"
            )));
        }
        let mut negative_patterns = Vec::new();
        collect_negative_k_atoms(&body, &mut negative_patterns);
        Ok(CompiledConstraint {
            original: ic.clone(),
            rewritten,
            vars,
            body,
            positive_patterns,
            negative_patterns,
        })
    }

    /// The predicates whose updates can newly violate this constraint,
    /// deduplicated (a predicate occurring in several positive patterns —
    /// the functional dependency's `ss` — is reported once).
    pub fn trigger_preds(&self) -> Vec<Pred> {
        let set: BTreeSet<Pred> = self.positive_patterns.iter().map(|a| a.pred).collect();
        set.into_iter().collect()
    }

    /// The predicates whose **removals** can newly violate this
    /// constraint (the predicates of the negated `K`-patterns),
    /// deduplicated. Empty when no removal can ever violate it.
    pub fn negative_trigger_preds(&self) -> Vec<Pred> {
        let set: BTreeSet<Pred> = self.negative_patterns.iter().map(|a| a.pred).collect();
        set.into_iter().collect()
    }

    /// The violation-check instances induced by a new ground fact: for
    /// each positive pattern matching the fact, the body with the matched
    /// variables bound and the rest existentially quantified. The
    /// constraint (restricted to the update) is violated iff one of these
    /// sentences is certain.
    pub fn violation_instances(&self, fact: &Atom) -> Vec<Formula> {
        let mut out = Vec::new();
        for pattern in &self.positive_patterns {
            if pattern.pred != fact.pred {
                continue;
            }
            let Some(binding) = match_pattern(pattern, fact) else {
                continue;
            };
            let map: HashMap<Var, Term> =
                binding.iter().map(|(v, p)| (*v, Term::Param(*p))).collect();
            let mut w = self.body.subst(&map);
            for v in self.vars.iter().rev() {
                if !binding.contains_key(v) {
                    w = Formula::exists(*v, w);
                }
            }
            debug_assert!(w.is_sentence(), "instantiated violation check is closed");
            out.push(w);
        }
        out
    }

    /// The violation-check instances induced by a **removed** model atom:
    /// for each negated pattern matching it, the body with the matched
    /// *outer* variables bound (variables the pattern binds under its own
    /// inner `∃` stay quantified — the removed atom only witnesses which
    /// instantiation to re-check, not the inner search) and the remaining
    /// outer variables re-quantified. The constraint, restricted to this
    /// removal, is violated iff one of these sentences is certain.
    pub fn removal_violation_instances(&self, removed: &Atom) -> Vec<Formula> {
        let mut out = Vec::new();
        for pattern in &self.negative_patterns {
            if pattern.pred != removed.pred {
                continue;
            }
            let Some(binding) = match_pattern(pattern, removed) else {
                continue;
            };
            let map: HashMap<Var, Term> = binding
                .iter()
                .filter(|(v, _)| self.vars.contains(v))
                .map(|(v, p)| (*v, Term::Param(*p)))
                .collect();
            let mut w = self.body.subst(&map);
            for v in self.vars.iter().rev() {
                if !map.contains_key(v) {
                    w = Formula::exists(*v, w);
                }
            }
            debug_assert!(w.is_sentence(), "instantiated violation check is closed");
            out.push(w);
        }
        out
    }

    /// Ground witness tuples for a **violated** constraint: the first
    /// instantiation of the positive `K`-patterns over the prover's
    /// certain atoms under which the (remaining) violation body is
    /// certain — the minimal facts responsible, in the sense of
    /// consistency-based belief change. Candidate atoms come from the
    /// attached least model when there is one, else from the theory's
    /// ground-atom sentences; best-effort, so a violation only visible
    /// through disjunctive reasoning yields an empty witness list.
    pub fn violation_witnesses(&self, prover: &Prover) -> Vec<Atom> {
        let candidates: Vec<Atom> = match prover.atom_model() {
            Some(m) => m.atoms().collect(),
            None => prover
                .theory()
                .sentences()
                .iter()
                .filter_map(|s| match s {
                    Formula::Atom(a) if a.is_ground() => Some(a.clone()),
                    _ => None,
                })
                .collect(),
        };
        let mut binding = HashMap::new();
        let mut picked = Vec::new();
        if self.witness_search(prover, &candidates, 0, &mut binding, &mut picked) {
            picked
        } else {
            Vec::new()
        }
    }

    /// Depth-first search over pattern instantiations; on success `picked`
    /// holds one ground atom per positive pattern, in pattern order.
    fn witness_search(
        &self,
        prover: &Prover,
        candidates: &[Atom],
        idx: usize,
        binding: &mut HashMap<Var, Param>,
        picked: &mut Vec<Atom>,
    ) -> bool {
        if idx == self.positive_patterns.len() {
            let map: HashMap<Var, Term> =
                binding.iter().map(|(v, p)| (*v, Term::Param(*p))).collect();
            let mut w = self.body.subst(&map);
            for v in self.vars.iter().rev() {
                if !binding.contains_key(v) {
                    w = Formula::exists(*v, w);
                }
            }
            return certain(prover, &w);
        }
        let pattern = &self.positive_patterns[idx];
        for atom in candidates.iter().filter(|a| a.pred == pattern.pred) {
            let Some(fresh) = match_pattern_extending(pattern, atom, binding) else {
                continue;
            };
            picked.push(atom.clone());
            if self.witness_search(prover, candidates, idx + 1, binding, picked) {
                return true;
            }
            picked.pop();
            for v in &fresh {
                binding.remove(v);
            }
        }
        false
    }
}

/// How the constraints of one update were verified — the per-phase
/// accounting surfaced by `CommitReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Constraints skipped outright: the update's predicate neither
    /// triggers them nor reaches a trigger through the rule graph.
    pub skipped: u64,
    /// Constraints checked through the Nicolas-style specialization
    /// (violation instances of the new fact only).
    pub specialized: u64,
    /// Constraints re-checked in full (a rule chain from the update's
    /// predicate can derive a trigger predicate, or the caller fell back).
    pub full: u64,
}

/// The body→head predicate dependency graph of a theory's rules,
/// precomputed so constraint routing does not re-derive it per commit.
///
/// Built once per rule set (see [`RuleGraph::new`]) and cached on
/// `EpistemicDb` across commits: ground-atom commits cannot change the
/// rules, so the cache is invalidated only by rule-changing commits.
#[derive(Debug, Clone, Default)]
pub struct RuleGraph {
    edges: Vec<(BTreeSet<Pred>, BTreeSet<Pred>)>,
}

impl RuleGraph {
    /// Extract the dependency edges of every rule-shaped sentence, with
    /// both rule views (syntactic and Datalog — see `dependency_edges`).
    pub fn new(theory: &Theory) -> Self {
        RuleGraph {
            edges: dependency_edges(theory),
        }
    }

    /// The predicates a rule chain can derive starting from atoms of the
    /// `seeds` (transitive closure; a seed appears only when some chain
    /// re-derives it).
    pub fn derivable_from(&self, seeds: &BTreeSet<Pred>) -> BTreeSet<Pred> {
        derivable_from(&self.edges, seeds)
    }

    /// Number of dependency edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the theory has no rule-shaped sentences.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Incremental checker over a set of compiled constraints.
#[derive(Debug, Clone, Default)]
pub struct IncrementalChecker {
    constraints: Vec<CompiledConstraint>,
}

impl IncrementalChecker {
    /// Build from constraints, compiling each.
    pub fn new(constraints: &[Formula]) -> Result<Self, NotCompilable> {
        let compiled = constraints
            .iter()
            .map(CompiledConstraint::compile)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(IncrementalChecker {
            constraints: compiled,
        })
    }

    /// Check an update: `prover` must already include the new fact.
    /// Returns the first violated constraint, if any. Single-fact case of
    /// [`IncrementalChecker::check_batch_with_stats`], which documents
    /// the routing and its soundness precondition.
    pub fn check_update(&self, prover: &Prover, fact: &Atom) -> Option<&CompiledConstraint> {
        self.check_batch_with_stats(prover, &[fact], &mut CheckStats::default())
    }

    /// Check a batch of asserted ground facts (`prover` must already
    /// include them all), routing each constraint **once** for the whole
    /// batch. Returns the first violated constraint, if any.
    ///
    /// Per constraint, the route is chosen by the **rule dependency
    /// graph** of the prover's theory (not by the blunt "any rules
    /// present" test): if no rule chain leads from any updated predicate
    /// to one of the constraint's trigger predicates, the asserted facts
    /// are the only new trigger-relevant atoms and the Nicolas-style
    /// specialization is exact — the constraint is checked on the
    /// violation instances of the facts whose predicate triggers it. If
    /// such a chain exists, the update may derive trigger atoms beyond
    /// the facts themselves and the constraint is re-checked in full
    /// (once, not per fact). Constraints the batch cannot reach at all
    /// are skipped.
    ///
    /// **Soundness precondition**: every *non-rule* sentence of the
    /// theory is a ground atom (the definite shape). A disjunction like
    /// `¬p(a) ∨ emp(b)` can make an `emp` atom certain when `p(a)` is
    /// asserted without any rule edge from `p` to `emp` — the dependency
    /// graph cannot see that, so such theories must use
    /// [`IncrementalChecker::check_full`] instead.
    pub fn check_batch_with_stats(
        &self,
        prover: &Prover,
        facts: &[&Atom],
        stats: &mut CheckStats,
    ) -> Option<&CompiledConstraint> {
        self.check_batch_routed(prover, facts, &RuleGraph::new(prover.theory()), stats)
    }

    /// [`IncrementalChecker::check_batch_with_stats`] with the rule
    /// dependency graph supplied by the caller, so a graph cached across
    /// commits (rules change rarely; facts change constantly) is not
    /// re-derived per commit. `graph` must be the dependency graph of the
    /// prover's theory's rule set — `EpistemicDb` maintains exactly that
    /// invariant by rebuilding its cache on rule-changing commits.
    pub fn check_batch_routed(
        &self,
        prover: &Prover,
        facts: &[&Atom],
        graph: &RuleGraph,
        stats: &mut CheckStats,
    ) -> Option<&CompiledConstraint> {
        self.check_batch_with_removals(prover, facts, &[], graph, stats)
    }

    /// [`IncrementalChecker::check_batch_routed`] for a **mixed** batch:
    /// `facts` are the asserted ground facts and `removed` the atoms the
    /// update erased *from the attached least model* — the exact model
    /// diff, derived consequences included, not merely the retracted
    /// extensional facts.
    ///
    /// The routing mirrors the assertion side. A removal can newly
    /// violate a constraint only by making one of its *negated* conjuncts
    /// true, so a constraint is specialized when an asserted predicate
    /// hits a positive trigger or a removed predicate hits a negative
    /// trigger, and checked on the union of both kinds of violation
    /// instances. No dependency-graph fallback exists on the removal
    /// side: because `removed` is the exact model diff, a derived trigger
    /// atom that disappeared is itself in the list — the graph is only
    /// consulted for what *assertions* might derive beyond themselves.
    pub fn check_batch_with_removals(
        &self,
        prover: &Prover,
        facts: &[&Atom],
        removed: &[Atom],
        graph: &RuleGraph,
        stats: &mut CheckStats,
    ) -> Option<&CompiledConstraint> {
        let updated: BTreeSet<Pred> = facts.iter().map(|f| f.pred).collect();
        let removed_preds: BTreeSet<Pred> = removed.iter().map(|f| f.pred).collect();
        let derivable = graph.derivable_from(&updated);
        for c in &self.constraints {
            let triggers = c.trigger_preds();
            let neg_triggers = c.negative_trigger_preds();
            if triggers.iter().any(|t| derivable.contains(t)) {
                // A rule chain from the batch can derive a trigger atom
                // the specialization would not see: one full recheck.
                stats.full += 1;
                if !certain(prover, &c.rewritten) {
                    return Some(c);
                }
            } else if triggers.iter().any(|t| updated.contains(t))
                || neg_triggers.iter().any(|t| removed_preds.contains(t))
            {
                stats.specialized += 1;
                for fact in facts {
                    if !triggers.contains(&fact.pred) {
                        continue;
                    }
                    for violation in c.violation_instances(fact) {
                        if certain(prover, &violation) {
                            return Some(c);
                        }
                    }
                }
                for gone in removed {
                    if !neg_triggers.contains(&gone.pred) {
                        continue;
                    }
                    for violation in c.removal_violation_instances(gone) {
                        if certain(prover, &violation) {
                            return Some(c);
                        }
                    }
                }
            } else {
                stats.skipped += 1;
            }
        }
        None
    }

    /// Full (non-incremental) check of every constraint, for comparison.
    pub fn check_full(&self, prover: &Prover) -> Option<&CompiledConstraint> {
        self.constraints
            .iter()
            .find(|c| !certain(prover, &c.rewritten))
    }

    /// Number of compiled constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether no constraints are registered.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }
}

/// The body→head predicate dependency edges of every rule-shaped
/// sentence, extracted with **both** rule views: the syntactic one
/// (`Theory::rules`, which handles positive-existential heads but
/// range-restricts — it rejects a rule whose quantified variables don't
/// all occur in the body) and the Datalog one (`Program::from_sentences`,
/// which accepts rules with unused quantified variables). The definite
/// engine evaluates the Datalog view, so the routing graph must cover at
/// least that — an edge seen by either view is an edge.
fn dependency_edges(theory: &Theory) -> Vec<(BTreeSet<Pred>, BTreeSet<Pred>)> {
    let mut edges: Vec<(BTreeSet<Pred>, BTreeSet<Pred>)> = Vec::new();
    for rule in theory.rules() {
        edges.push((
            rule.body.iter().map(|a| a.pred).collect(),
            rule.head.preds().into_iter().collect(),
        ));
    }
    for s in theory.sentences() {
        if matches!(s, Formula::Atom(a) if a.is_ground()) {
            continue;
        }
        if let Ok(prog) = Program::from_sentences(std::slice::from_ref(s)) {
            for r in &prog.rules {
                edges.push((
                    r.body.iter().map(|l| l.atom.pred).collect(),
                    std::iter::once(r.head.pred).collect(),
                ));
            }
        }
    }
    edges
}

/// The predicates a rule chain can derive starting from atoms of the
/// `seeds`: transitive closure over the dependency edges. A seed itself
/// appears only when some chain re-derives it (e.g. a symmetry rule
/// `e(x,y) ⊃ e(y,x)` can produce *new* `e` atoms from an `e` assertion) —
/// the asserted facts alone are handled by the specialization directly.
fn derivable_from(
    edges: &[(BTreeSet<Pred>, BTreeSet<Pred>)],
    seeds: &BTreeSet<Pred>,
) -> BTreeSet<Pred> {
    let mut reached = BTreeSet::new();
    let mut frontier: Vec<Pred> = seeds.iter().copied().collect();
    while let Some(p) = frontier.pop() {
        for (body, heads) in edges {
            if body.contains(&p) {
                for &h in heads {
                    if reached.insert(h) {
                        frontier.push(h);
                    }
                }
            }
        }
    }
    reached
}

fn collect_positive_k_atoms(w: &Formula, out: &mut Vec<Atom>) {
    match w {
        Formula::And(a, b) => {
            collect_positive_k_atoms(a, out);
            collect_positive_k_atoms(b, out);
        }
        Formula::Know(inner) => {
            // K over an atom, or K over a conjunction of atoms.
            collect_bare_atoms(inner, out);
        }
        _ => {}
    }
}

/// Collect the `K`-atom patterns sitting under a negated conjunct:
/// `¬K a`, `¬∃ȳ K a`, or `¬K ∃ȳ a` — the `∃` prefixes on either side of
/// the `K` are stripped (they only widen which instantiation a removal
/// invalidates, the pattern is the atom either way). Negated equalities
/// contribute nothing (a removal cannot make `y = z` true), which is
/// what keeps the functional dependency off the removal route.
fn collect_negative_k_atoms(w: &Formula, out: &mut Vec<Atom>) {
    match w {
        Formula::And(a, b) => {
            collect_negative_k_atoms(a, out);
            collect_negative_k_atoms(b, out);
        }
        Formula::Not(inner) => {
            let mut cur: &Formula = inner;
            while let Formula::Exists(_, b) = cur {
                cur = b;
            }
            if let Formula::Know(known) = cur {
                let mut kcur: &Formula = known;
                while let Formula::Exists(_, b) = kcur {
                    kcur = b;
                }
                collect_bare_atoms(kcur, out);
            } else {
                collect_positive_k_atoms(cur, out);
            }
        }
        _ => {}
    }
}

fn collect_bare_atoms(w: &Formula, out: &mut Vec<Atom>) {
    match w {
        Formula::Atom(a) => out.push(a.clone()),
        Formula::And(a, b) => {
            collect_bare_atoms(a, out);
            collect_bare_atoms(b, out);
        }
        _ => {}
    }
}

/// Like [`match_pattern`], but *extending* a shared binding in place (for
/// the multi-pattern witness search, where later patterns must agree with
/// variables the earlier ones bound). Returns the variables this match
/// freshly bound — the caller's undo list — or `None` on mismatch, with
/// `binding` restored.
fn match_pattern_extending(
    pattern: &Atom,
    fact: &Atom,
    binding: &mut HashMap<Var, Param>,
) -> Option<Vec<Var>> {
    debug_assert_eq!(pattern.pred, fact.pred);
    let mut fresh = Vec::new();
    for (t, f) in pattern.terms.iter().zip(&fact.terms) {
        let fp = f.as_param().expect("candidate atoms are ground");
        let ok = match t {
            Term::Param(p) => *p == fp,
            Term::Var(v) => match binding.get(v) {
                Some(prev) => *prev == fp,
                None => {
                    binding.insert(*v, fp);
                    fresh.push(*v);
                    true
                }
            },
        };
        if !ok {
            for v in &fresh {
                binding.remove(v);
            }
            return None;
        }
    }
    Some(fresh)
}

/// Match a pattern atom against a ground fact, binding pattern variables.
fn match_pattern(pattern: &Atom, fact: &Atom) -> Option<HashMap<Var, Param>> {
    debug_assert_eq!(pattern.pred, fact.pred);
    let mut out = HashMap::new();
    for (t, f) in pattern.terms.iter().zip(&fact.terms) {
        let fp = f.as_param().expect("facts are ground");
        match t {
            Term::Param(p) => {
                if *p != fp {
                    return None;
                }
            }
            Term::Var(v) => match out.get(v) {
                Some(prev) if *prev != fp => return None,
                _ => {
                    out.insert(*v, fp);
                }
            },
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::{parse, Theory};

    fn ga(src: &str) -> Atom {
        match parse(src).unwrap() {
            Formula::Atom(a) => a,
            other => panic!("not an atom: {other}"),
        }
    }

    fn checker() -> IncrementalChecker {
        IncrementalChecker::new(&[
            parse("forall x. K emp(x) -> K (exists y. ss(x, y))").unwrap(),
            parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn compilation_extracts_patterns() {
        let c = CompiledConstraint::compile(
            &parse("forall x. K emp(x) -> K (exists y. ss(x, y))").unwrap(),
        )
        .unwrap();
        assert_eq!(c.trigger_preds(), vec![Pred::new("emp", 1)]);
        let c2 = CompiledConstraint::compile(
            &parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap(),
        )
        .unwrap();
        // Two positive `ss` patterns, one trigger predicate.
        assert_eq!(c2.trigger_preds(), vec![Pred::new("ss", 2)]);
    }

    #[test]
    fn irrelevant_updates_skip_all_constraints() {
        let ck = checker();
        let prover =
            Prover::new(Theory::from_text("emp(Mary)\nss(Mary, n1)\nhobby(Mary, chess)").unwrap());
        let mut stats = CheckStats::default();
        assert!(ck
            .check_batch_with_stats(&prover, &[&ga("hobby(Mary, chess)")], &mut stats)
            .is_none());
        assert_eq!(stats.skipped, 2, "no constraint triggers on hobby");
        assert_eq!(stats.specialized + stats.full, 0);
    }

    #[test]
    fn relevant_update_detects_violation() {
        let ck = checker();
        // Asserting emp(Sue) with no number on file: violated.
        let prover = Prover::new(Theory::from_text("emp(Mary)\nss(Mary, n1)\nemp(Sue)").unwrap());
        let hit = ck.check_update(&prover, &ga("emp(Sue)"));
        assert!(hit.is_some());
        assert!(hit.unwrap().original.to_string().contains("emp"));
    }

    #[test]
    fn relevant_update_passes_when_satisfied() {
        let ck = checker();
        let prover = Prover::new(
            Theory::from_text("emp(Mary)\nss(Mary, n1)\nemp(Sue)\nss(Sue, n2)").unwrap(),
        );
        assert!(ck.check_update(&prover, &ga("emp(Sue)")).is_none());
    }

    #[test]
    fn fd_violation_caught_incrementally() {
        let ck = checker();
        let prover = Prover::new(Theory::from_text("ss(Mary, n1)\nss(Mary, n2)").unwrap());
        let hit = ck.check_update(&prover, &ga("ss(Mary, n2)"));
        assert!(hit.is_some());
        assert!(hit.unwrap().original.to_string().contains("y = z"));
    }

    #[test]
    fn incremental_agrees_with_full_on_fact_databases() {
        let ck = checker();
        // A family of states and updates; the incremental verdict must
        // match the full recheck whenever the *prior* state satisfied the
        // constraints (the incremental premise).
        let cases = [
            ("ss(Mary, n1)\nemp(Mary)", "emp(Mary)"),
            ("ss(Mary, n1)\nemp(Mary)\nemp(Sue)", "emp(Sue)"),
            ("ss(Mary, n1)\nss(Mary, n2)", "ss(Mary, n2)"),
            ("ss(Mary, n1)\nss(Sue, n2)", "ss(Sue, n2)"),
        ];
        for (src, fact) in cases {
            let prover = Prover::new(Theory::from_text(src).unwrap());
            let inc = ck.check_update(&prover, &ga(fact)).is_some();
            let full = ck.check_full(&prover).is_some();
            assert_eq!(inc, full, "divergence on {src:?} + {fact}");
        }
    }

    #[test]
    fn incremental_check_through_routed_prover() {
        // Extensional update states are definite, so the checker's
        // entailment questions ride the engine-backed fast path.
        let ck = checker();
        let bad = crate::engine::prover_for(
            Theory::from_text("emp(Mary)\nss(Mary, n1)\nemp(Sue)").unwrap(),
        );
        assert!(bad.atom_model().is_some());
        assert!(ck.check_update(&bad, &ga("emp(Sue)")).is_some());
        let good = crate::engine::prover_for(Theory::from_text("emp(Mary)\nss(Mary, n1)").unwrap());
        assert!(ck.check_update(&good, &ga("emp(Mary)")).is_none());
    }

    #[test]
    fn rule_chains_to_triggers_force_full_check() {
        let ck = checker();
        // A rule derives emp from hired: the update hired(Sue) can violate
        // the emp constraint even though its predicate is not a trigger.
        let prover = Prover::new(
            Theory::from_text("ss(Mary, n1)\nemp(Mary)\nhired(Sue)\nforall x. hired(x) -> emp(x)")
                .unwrap(),
        );
        assert!(ck.check_full(&prover).is_some());
        // The dependency graph routes the hired update to a full recheck
        // of the emp constraint (hired → emp is a trigger chain):
        let mut stats = CheckStats::default();
        assert!(ck
            .check_batch_with_stats(&prover, &[&ga("hired(Sue)")], &mut stats)
            .is_some());
        assert!(stats.full >= 1, "rule chain must force a full check");
        // Keyed on the trigger predicate itself, the specialization still
        // applies (nothing derives emp *from* emp):
        let mut stats = CheckStats::default();
        assert!(ck
            .check_batch_with_stats(&prover, &[&ga("emp(Sue)")], &mut stats)
            .is_some());
        assert_eq!(stats.full, 0, "emp is not rule-derivable from emp");
        assert!(stats.specialized >= 1);
    }

    #[test]
    fn irrelevant_rules_keep_the_specialization() {
        // Rules whose heads never reach a trigger predicate must not
        // degrade the update check to a full recheck.
        let ck = checker();
        let prover = Prover::new(
            Theory::from_text(
                "ss(Mary, n1)\nemp(Mary)\nforall x. emp(x) -> person(x)\nemp(Sue)\nss(Sue, n2)",
            )
            .unwrap(),
        );
        let mut stats = CheckStats::default();
        assert!(ck
            .check_batch_with_stats(&prover, &[&ga("emp(Sue)")], &mut stats)
            .is_none());
        assert_eq!(
            stats.full, 0,
            "emp -> person never reaches a trigger predicate"
        );
        assert_eq!(stats.specialized, 1, "only the emp constraint is checked");
        assert_eq!(stats.skipped, 1, "the ss constraint is skipped");
    }

    #[test]
    fn self_recursive_trigger_pred_forces_full_check() {
        // A symmetry rule re-derives the trigger predicate itself: the
        // asserted fact is no longer the only new trigger atom.
        let ck =
            IncrementalChecker::new(&[
                parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap()
            ])
            .unwrap();
        let prover = Prover::new(
            Theory::from_text("ss(Mary, n1)\nforall x, y. ss(x, y) -> ss(y, x)").unwrap(),
        );
        let mut stats = CheckStats::default();
        ck.check_batch_with_stats(&prover, &[&ga("ss(Mary, n1)")], &mut stats);
        assert_eq!(stats.full, 1, "ss reaches ss through the symmetry rule");
    }

    #[test]
    fn engine_only_rules_are_visible_to_routing() {
        // `forall x, z. p(x) -> q(x)` fails the syntactic range
        // restriction (z never occurs in the body) so Theory::rules()
        // omits it — but the Datalog engine evaluates it. The dependency
        // graph must still see the p → q edge.
        let ck = IncrementalChecker::new(&[parse("forall x. ~K q(x)").unwrap()]).unwrap();
        let theory = Theory::from_text("p(a)\nforall x, z. p(x) -> q(x)").unwrap();
        assert!(
            theory.rules().is_empty(),
            "premise: syntactic view is blind"
        );
        let prover = crate::engine::prover_for(theory);
        assert!(
            prover.atom_model().is_some(),
            "premise: engine evaluates it"
        );
        let mut stats = CheckStats::default();
        let hit = ck.check_batch_with_stats(&prover, &[&ga("p(a)")], &mut stats);
        assert!(hit.is_some(), "q(a) is derived, violating the prohibition");
        assert_eq!(stats.full, 1, "p reaches q through the engine-only rule");
    }

    #[test]
    fn prohibition_constraints_compile_and_trigger() {
        // ∀x ¬K bad(x) rewrites to ¬∃x K bad(x): the K-literal indexes it.
        let c = CompiledConstraint::compile(&parse("forall x. ~K bad(x)").unwrap()).unwrap();
        assert_eq!(c.trigger_preds(), vec![Pred::new("bad", 1)]);
        let ck = IncrementalChecker::new(&[parse("forall x. ~K bad(x)").unwrap()]).unwrap();
        let prover = Prover::new(Theory::from_text("bad(Joe)").unwrap());
        assert!(ck.check_update(&prover, &ga("bad(Joe)")).is_some());
    }

    #[test]
    fn negative_patterns_extracted_per_shape() {
        // emp→ss: the negated ∃y K ss(x,y) conjunct is a removal trigger.
        let c = CompiledConstraint::compile(
            &parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap(),
        )
        .unwrap();
        assert_eq!(c.negative_trigger_preds(), vec![Pred::new("ss", 2)]);
        // FD: the negated conjunct is an equality — no removal trigger.
        let fd = CompiledConstraint::compile(
            &parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap(),
        )
        .unwrap();
        assert!(fd.negative_trigger_preds().is_empty());
        // Prohibition: no negated conjunct at all under the ∃ prefix.
        let ban = CompiledConstraint::compile(&parse("forall x. ~K bad(x)").unwrap()).unwrap();
        assert!(ban.negative_trigger_preds().is_empty());
    }

    #[test]
    fn removal_violation_caught_incrementally() {
        let ck = checker();
        // Sue keeps emp but loses her only ss fact: the emp→ss constraint
        // is violated, found through the removal specialization alone.
        let prover = Prover::new(Theory::from_text("emp(Mary)\nss(Mary, n1)\nemp(Sue)").unwrap());
        let graph = RuleGraph::new(prover.theory());
        let mut stats = CheckStats::default();
        let hit =
            ck.check_batch_with_removals(&prover, &[], &[ga("ss(Sue, n2)")], &graph, &mut stats);
        assert!(hit.is_some(), "emp(Sue) lost its number");
        assert!(hit.unwrap().original.to_string().contains("emp"));
        assert_eq!(stats.specialized, 1, "only the emp→ss constraint routes");
        // The violation short-circuits before the FD is even routed
        // (it would be skipped: a removal never violates an equality).
        assert_eq!(stats.skipped, 0);
        assert_eq!(stats.full, 0);
    }

    #[test]
    fn removal_specialization_passes_with_alternative_witness() {
        let ck = checker();
        // Sue has a second number: removing one keeps the constraint.
        let prover = Prover::new(
            Theory::from_text("emp(Mary)\nss(Mary, n1)\nemp(Sue)\nss(Sue, n3)").unwrap(),
        );
        let graph = RuleGraph::new(prover.theory());
        let mut stats = CheckStats::default();
        let hit =
            ck.check_batch_with_removals(&prover, &[], &[ga("ss(Sue, n2)")], &graph, &mut stats);
        assert!(hit.is_none(), "ss(Sue, n3) still witnesses the ∃");
        assert_eq!(stats.specialized, 1);
    }

    #[test]
    fn irrelevant_removals_skip_all_constraints() {
        let ck = checker();
        let prover = Prover::new(Theory::from_text("emp(Mary)\nss(Mary, n1)").unwrap());
        let graph = RuleGraph::new(prover.theory());
        let mut stats = CheckStats::default();
        // Removing an emp atom can only *satisfy* the emp→ss constraint,
        // and bad/hobby removals touch nothing: all skipped.
        let hit = ck.check_batch_with_removals(
            &prover,
            &[],
            &[ga("emp(Sue)"), ga("hobby(Mary, chess)"), ga("bad(Joe)")],
            &graph,
            &mut stats,
        );
        assert!(hit.is_none());
        assert_eq!(stats.skipped, 2, "no removal reaches a negative trigger");
        assert_eq!(stats.specialized + stats.full, 0);
    }

    #[test]
    fn empty_removals_match_the_assert_only_route_exactly() {
        // check_batch_routed delegates with no removals: identical stats.
        let ck = checker();
        let prover = Prover::new(
            Theory::from_text("emp(Mary)\nss(Mary, n1)\nemp(Sue)\nss(Sue, n2)").unwrap(),
        );
        let graph = RuleGraph::new(prover.theory());
        let (mut a, mut b) = (CheckStats::default(), CheckStats::default());
        let via_routed = ck
            .check_batch_routed(&prover, &[&ga("emp(Sue)")], &graph, &mut a)
            .is_some();
        let via_removals = ck
            .check_batch_with_removals(&prover, &[&ga("emp(Sue)")], &[], &graph, &mut b)
            .is_some();
        assert_eq!(via_routed, via_removals);
        assert_eq!(a, b);
    }

    #[test]
    fn uncompilable_constraint_rejected() {
        // A positive knowledge *requirement* is not of the ¬∃ shape.
        let r = CompiledConstraint::compile(&parse("K p").unwrap());
        assert!(r.is_err());
    }
}
