//! First-order theories: the databases of the paper.
//!
//! A database is specified by a set of FOPCE *sentences* (§2). [`Theory`]
//! enforces sentencehood and first-orderness at construction, and exposes
//! the structural views the rest of the system needs: the active domain
//! (mentioned parameters), the mentioned predicates, and — for elementary
//! theories (Definition 6.3) — the decomposition into positive existential
//! facts and rules.

use crate::classify::{decompose_rule, is_elementary_sentence, is_first_order};
use crate::formula::{Atom, Formula};
use crate::parse::{parse_theory, ParseError};
use crate::symbols::{Param, Pred, Var};
use std::collections::BTreeSet;
use std::fmt;

/// Error raised when constructing a [`Theory`] from formulas that are not
/// first-order sentences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TheoryError {
    /// The formula contains the modal operator `K`; databases are
    /// first-order (truths about the *world* go in the database, truths
    /// about the *database* are integrity constraints — §3).
    NotFirstOrder(String),
    /// The formula has free variables.
    NotSentence(String),
    /// Parse failure when building from text.
    Parse(ParseError),
}

impl fmt::Display for TheoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TheoryError::NotFirstOrder(s) => {
                write!(
                    f,
                    "`{s}` mentions K; only FOPCE sentences may enter a database"
                )
            }
            TheoryError::NotSentence(s) => write!(f, "`{s}` has free variables"),
            TheoryError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TheoryError {}

impl From<ParseError> for TheoryError {
    fn from(e: ParseError) -> Self {
        TheoryError::Parse(e)
    }
}

/// A structured view of a rule `(∀x̄)(A ⊃ B)` of an elementary theory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The universally quantified variables `x̄`.
    pub vars: Vec<Var>,
    /// The body `A`: a conjunction of non-equality atoms, range-restricted.
    pub body: Vec<Atom>,
    /// The head `B`: a positive existential formula.
    pub head: Formula,
}

/// A database: a finite set of FOPCE sentences.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Theory {
    sentences: Vec<Formula>,
}

impl Theory {
    /// The empty database — which, pleasingly, satisfies every constraint
    /// of the form "every known employee has a known social security
    /// number" (§3).
    pub fn empty() -> Self {
        Theory::default()
    }

    /// Construct from sentences, validating each.
    pub fn new(sentences: Vec<Formula>) -> Result<Self, TheoryError> {
        let mut t = Theory::empty();
        for s in sentences {
            t.assert(s)?;
        }
        Ok(t)
    }

    /// Parse a theory from text (`;`/newline-separated sentences, `%`
    /// comments).
    pub fn from_text(src: &str) -> Result<Self, TheoryError> {
        Theory::new(parse_theory(src)?)
    }

    /// Add one sentence, validating it. Duplicate sentences are kept once.
    pub fn assert(&mut self, w: Formula) -> Result<(), TheoryError> {
        if !is_first_order(&w) {
            return Err(TheoryError::NotFirstOrder(w.to_string()));
        }
        if !w.is_sentence() {
            return Err(TheoryError::NotSentence(w.to_string()));
        }
        if !self.sentences.contains(&w) {
            self.sentences.push(w);
        }
        Ok(())
    }

    /// Remove a sentence (by syntactic identity). Returns whether it was
    /// present.
    pub fn retract(&mut self, w: &Formula) -> bool {
        let before = self.sentences.len();
        self.sentences.retain(|s| s != w);
        self.sentences.len() != before
    }

    /// The sentences of the theory.
    pub fn sentences(&self) -> &[Formula] {
        &self.sentences
    }

    /// Number of sentences.
    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    /// Whether the theory is empty.
    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }

    /// The *active domain*: every parameter mentioned by some sentence,
    /// sorted. (Lemma 6.2: an elementary theory has a model mentioning only
    /// these parameters.)
    pub fn active_domain(&self) -> Vec<Param> {
        let mut out = BTreeSet::new();
        for s in &self.sentences {
            out.extend(s.params());
        }
        out.into_iter().collect()
    }

    /// Every predicate mentioned by some sentence, sorted.
    pub fn preds(&self) -> Vec<Pred> {
        let mut out = BTreeSet::new();
        for s in &self.sentences {
            out.extend(s.preds());
        }
        out.into_iter().collect()
    }

    /// Whether every sentence is elementary (Definition 6.3).
    pub fn is_elementary(&self) -> bool {
        self.sentences.iter().all(is_elementary_sentence)
    }

    /// The rules of the theory, in structured form. Non-rule sentences are
    /// skipped.
    pub fn rules(&self) -> Vec<Rule> {
        self.sentences
            .iter()
            .filter_map(|s| {
                decompose_rule(s).map(|(vars, body, head)| Rule {
                    vars,
                    body,
                    head: head.clone(),
                })
            })
            .collect()
    }

    /// The non-rule sentences (for an elementary theory: the positive
    /// existential facts).
    pub fn facts(&self) -> Vec<&Formula> {
        self.sentences
            .iter()
            .filter(|s| decompose_rule(s).is_none())
            .collect()
    }

    /// The ground atomic sentences among the facts (the extensional core).
    pub fn ground_atoms(&self) -> Vec<Atom> {
        self.sentences
            .iter()
            .filter_map(|s| match s {
                Formula::Atom(a) if a.is_ground() => Some(a.clone()),
                _ => None,
            })
            .collect()
    }

    /// Whether any sentence mentions the equality predicate. Elementary
    /// theories never do (Definition 6.3).
    pub fn mentions_equality(&self) -> bool {
        self.sentences
            .iter()
            .flat_map(|s| s.subformulas())
            .any(|w| matches!(w, Formula::Eq(_, _)))
    }
}

impl fmt::Display for Theory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.sentences {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

impl FromIterator<Formula> for Theory {
    /// Collect sentences into a theory.
    ///
    /// # Panics
    /// Panics if a formula is not a FOPCE sentence; use [`Theory::new`] for
    /// fallible construction.
    fn from_iter<I: IntoIterator<Item = Formula>>(iter: I) -> Self {
        Theory::new(iter.into_iter().collect()).expect("invalid database sentence")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn teach_db() -> Theory {
        Theory::from_text(
            "Teach(John, Math)
             exists x. Teach(x, CS)
             Teach(Mary, Psych) | Teach(Sue, Psych)",
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let mut t = Theory::empty();
        assert!(t.assert(parse("p(a)").unwrap()).is_ok());
        assert!(matches!(
            t.assert(parse("K p(a)").unwrap()),
            Err(TheoryError::NotFirstOrder(_))
        ));
        assert!(matches!(
            t.assert(parse("p(x)").unwrap()),
            Err(TheoryError::NotSentence(_))
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicates_collapse() {
        let mut t = Theory::empty();
        t.assert(parse("p(a)").unwrap()).unwrap();
        t.assert(parse("p(a)").unwrap()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn retract_works() {
        let mut t = teach_db();
        assert!(t.retract(&parse("Teach(John, Math)").unwrap()));
        assert!(!t.retract(&parse("Teach(John, Math)").unwrap()));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn active_domain_and_preds() {
        let t = teach_db();
        let dom: Vec<String> = t.active_domain().iter().map(|p| p.name()).collect();
        let mut expect = vec!["CS", "John", "Math", "Mary", "Psych", "Sue"];
        let mut got = dom.clone();
        got.sort();
        expect.sort();
        assert_eq!(got, expect);
        assert_eq!(t.preds().len(), 1);
    }

    #[test]
    fn teach_db_is_elementary() {
        assert!(teach_db().is_elementary());
        let mut t = teach_db();
        t.assert(parse("~Teach(John, CS)").unwrap()).unwrap();
        assert!(!t.is_elementary());
    }

    #[test]
    fn rules_and_facts_split() {
        let t = Theory::from_text(
            "p(a)
             forall x. p(x) -> q(x)
             exists x. r(x)",
        )
        .unwrap();
        assert_eq!(t.rules().len(), 1);
        assert_eq!(t.facts().len(), 2);
        assert_eq!(t.ground_atoms().len(), 1);
        let rule = &t.rules()[0];
        assert_eq!(rule.vars.len(), 1);
        assert_eq!(rule.body.len(), 1);
    }

    #[test]
    fn equality_mention_detected() {
        let t = Theory::from_text("p(a)").unwrap();
        assert!(!t.mentions_equality());
        let t2 = Theory::from_text("a = a").unwrap();
        assert!(t2.mentions_equality());
    }

    #[test]
    fn display_round_trips() {
        let t = teach_db();
        let t2 = Theory::from_text(&t.to_string()).unwrap();
        assert_eq!(t, t2);
    }
}
