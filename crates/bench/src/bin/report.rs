//! Regenerate every experiment table of EXPERIMENTS.md in one run.
//!
//! `cargo run -p epilog-bench --bin report`
//!
//! Prints, for each experiment, the paper's expected output next to the
//! measured output, and exits nonzero on any mismatch.

use epilog_bench::workloads::{
    dense_closure_program, dense_closure_text, durable_registrar, enrollment_batch,
    join_heavy_program, order_sensitive_program, registrar_db, scaling_program, section1_queries,
    serving_registrar, teach_db, withdrawal_batch,
};
use epilog_core::closure::cwa_demo;
use epilog_core::{
    ask, demo_sentence, ic_satisfaction, prover_for, DbError, EpistemicDb, IcDefinition, IcReport,
    ModelUpdate,
};
use epilog_datalog::provenance::params_of;
use epilog_datalog::{EvalOptions, PlannerMode, RulePlan, SupportTable, PAR_MIN_FANOUT_ROWS};
use epilog_prover::Prover;
use epilog_semantics::{minimal_worlds, ModelSet};
use epilog_storage::PAR_MIN_PROBE_OUTER;
use epilog_syntax::{is_admissible, parse, Param, Pred, Theory};
use std::sync::atomic::{AtomicU32, Ordering};

static FAILURES: AtomicU32 = AtomicU32::new(0);

/// Best-of-`k` wall-clock time of `f` — the minimum suppresses scheduler
/// noise, and only a coarse ratio of two such minima is ever printed, so
/// the report output stays deterministic.
fn best_of(k: usize, mut f: impl FnMut() -> std::time::Duration) -> std::time::Duration {
    (0..k).map(|_| f()).min().expect("k >= 1")
}

fn check(label: &str, expected: &str, got: &str) {
    let ok = expected == got;
    println!(
        "  {:<58} paper: {:<9} measured: {:<9} {}",
        label,
        expected,
        got,
        if ok { "ok" } else { "MISMATCH" }
    );
    if !ok {
        FAILURES.fetch_add(1, Ordering::Relaxed);
    }
}

fn main() {
    // Effective parallel configuration up front: the sample output is
    // pinned at `EPILOG_THREADS=1`, so a diff against it on a host where
    // the env override is missing fails here, on the config line, rather
    // than deep inside a table.
    println!(
        "parallel config: threads={} ({}), rule fan-out >= {} delta rows, partitioned probe >= {} outer rows\n",
        threadpool::configured(),
        match std::env::var(threadpool::THREADS_ENV) {
            Ok(v) => format!("{}={v}", threadpool::THREADS_ENV),
            Err(_) => format!("{} unset: hardware default", threadpool::THREADS_ENV),
        },
        PAR_MIN_FANOUT_ROWS,
        PAR_MIN_PROBE_OUTER,
    );

    println!("E1 — Section 1 query table (Teach database)");
    let prover = Prover::new(teach_db());
    for (q, expected) in section1_queries() {
        let w = parse(q).unwrap();
        check(q, expected, &ask(&prover, &w).to_string());
        if is_admissible(&w) && w.is_sentence() {
            let via_demo = match demo_sentence(&prover, &w).unwrap() {
                epilog_core::DemoOutcome::Succeeds => "yes",
                epilog_core::DemoOutcome::FinitelyFails => "not-derivable",
            };
            let expect_demo = if expected == "yes" {
                "yes"
            } else {
                "not-derivable"
            };
            check(&format!("  demo: {q}"), expect_demo, via_demo);
        }
    }

    println!("\nE1 — {{p | q}} table");
    let pq = Prover::new(Theory::from_text("p | q").unwrap());
    for (q, expected) in [("p", "unknown"), ("K p", "no"), ("K p | K ~p", "no")] {
        check(q, expected, &ask(&pq, &parse(q).unwrap()).to_string());
    }

    println!("\nE2 — integrity-constraint definitions (emp/ss#)");
    let ic_fo = parse("forall x. emp(x) -> exists y. ss(x, y)").unwrap();
    let ic_modal = parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap();
    let cases: [(&str, &str, IcDefinition, &epilog_syntax::Formula, &str); 6] = [
        (
            "{emp(Mary)}",
            "3.1 consistency",
            IcDefinition::Consistency,
            &ic_fo,
            "satisfied",
        ),
        (
            "{emp(Mary)}",
            "3.5 epistemic",
            IcDefinition::Epistemic,
            &ic_modal,
            "violated",
        ),
        (
            "{}",
            "3.2 entailment",
            IcDefinition::Entailment,
            &ic_fo,
            "violated",
        ),
        (
            "{}",
            "3.5 epistemic",
            IcDefinition::Epistemic,
            &ic_modal,
            "satisfied",
        ),
        (
            "{emp(Mary), ss(Mary,n1)}",
            "3.5 epistemic",
            IcDefinition::Epistemic,
            &ic_modal,
            "satisfied",
        ),
        (
            "{emp(Mary)|emp(Sue)}",
            "3.4 Comp-entailment",
            IcDefinition::CompEntailment,
            &ic_fo,
            "n/a",
        ),
    ];
    for (db_label, def_label, def, ic, expected) in cases {
        let src = match db_label {
            "{emp(Mary)}" => "emp(Mary)",
            "{}" => "",
            "{emp(Mary), ss(Mary,n1)}" => "emp(Mary)\nss(Mary, n1)",
            _ => "emp(Mary) | emp(Sue)",
        };
        let p = Prover::new(Theory::from_text(src).unwrap());
        let got = match ic_satisfaction(&p, ic, def) {
            IcReport::Satisfied => "satisfied",
            IcReport::Violated => "violated",
            IcReport::Inapplicable => "n/a",
        };
        check(&format!("{db_label} under {def_label}"), expected, got);
    }

    println!("\nE4 — safety/admissibility classification (Examples 5.1-5.3)");
    for (f, expected) in [
        ("p(x, y) & K q(x) & ~K r(x)", "safe"),
        ("exists x. ~r(x)", "safe"),
        ("exists x. ~K p(x)", "unsafe"),
        ("~K q(x) & K r(x)", "unsafe"),
    ] {
        let got = if epilog_syntax::is_safe(&parse(f).unwrap()) {
            "safe"
        } else {
            "unsafe"
        };
        check(f, expected, got);
    }
    for (f, expected) in [
        ("exists x. K Teach(x, CS)", "admissible"),
        (
            "exists x. Teach(x, Psych) & ~K Teach(x, CS)",
            "inadmissible",
        ),
        ("p(x) & K q(x)", "admissible"),
        ("exists x. p(x) & K q(x)", "inadmissible"),
    ] {
        let got = if is_admissible(&parse(f).unwrap()) {
            "admissible"
        } else {
            "inadmissible"
        };
        check(f, expected, got);
    }

    println!("\nE7 — closed worlds");
    let db = Prover::new(Theory::from_text("p(a)").unwrap());
    let closed = epilog_core::ClosedDb::new(&db);
    check(
        "Closure: forall x. K p(x) | K ~p(x)   (Example 7.1)",
        "yes",
        &closed
            .ask(&parse("forall x. K p(x) | K ~p(x)").unwrap())
            .to_string(),
    );
    let theory = Theory::from_text("p | q").unwrap();
    let ms = ModelSet::models(
        &theory,
        &[Param::new("c")],
        &[Pred::new("p", 0), Pred::new("q", 0)],
    );
    let circ = minimal_worlds(&ms);
    check(
        "Circ({p|q}) |= ~K p   (Example 7.2)",
        "true",
        &circ.certain(&parse("~K p").unwrap()).to_string(),
    );
    check(
        "Circ({p|q}) |= ~p     (Example 7.2)",
        "false",
        &circ.certain(&parse("~p").unwrap()).to_string(),
    );
    let graph = Prover::new(Theory::from_text("q(a)\nq(b)\nr(a, b)").unwrap());
    let w = parse("q(x) & ~(exists y. r(x, y) & q(y))").unwrap();
    let got: Vec<String> = cwa_demo(&graph, &w).unwrap().map(|t| t[0].name()).collect();
    check(
        "demo(R(w)) on Example 7.3 graph",
        "[\"b\"]",
        &format!("{got:?}"),
    );

    println!("\nF6 — evaluation pipeline scaling (chain join k=3 + transitive closure)");
    for n in [8usize, 16, 32] {
        let k = 3;
        let prog = scaling_program(n, k);
        let (db, fast) = prog.eval().unwrap();
        let (naive_db, slow) = prog.eval_naive().unwrap();
        let t = db.relation(Pred::new("t", 2)).map_or(0, |r| r.len());
        let join = db.relation(Pred::new("join", 2)).map_or(0, |r| r.len());
        check(
            &format!("n={n} |t| (= n(n+1)/2)"),
            &(n * (n + 1) / 2).to_string(),
            &t.to_string(),
        );
        check(
            &format!("n={n} |join| (= n-k+1)"),
            &(n - k + 1).to_string(),
            &join.to_string(),
        );
        check(
            &format!("n={n} models agree"),
            "yes",
            if db == naive_db { "yes" } else { "no" },
        );
        check(
            &format!(
                "n={n} firings semi-naive {} < naive {}",
                fast.rule_firings, slow.rule_firings
            ),
            "fewer",
            if fast.rule_firings < slow.rule_firings {
                "fewer"
            } else {
                "NOT-fewer"
            },
        );
        // Cost-based literal ordering must never do more join work than
        // the seed greedy order on this workload.
        let (greedy_db, greedy) = prog.eval_with(true, PlannerMode::Greedy).unwrap();
        check(
            &format!(
                "n={n} rows cost-based {} <= greedy {} (same model)",
                fast.rows_examined, greedy.rows_examined
            ),
            "yes",
            if fast.rows_examined <= greedy.rows_examined && db == greedy_db {
                "yes"
            } else {
                "no"
            },
        );
    }

    println!("\nF7 — transactional updates (registrar + batch of 2 employees)");
    for n in [8usize, 16, 32] {
        let mut db = registrar_db(n);
        let before = db.theory().len();
        // A violating batch: an employee with no number on file.
        let verdict = db
            .transaction()
            .assert(parse("emp(nobody)").unwrap())
            .commit();
        check(
            &format!("n={n} violating commit rejected, state untouched"),
            "yes",
            if verdict.is_err() && db.theory().len() == before {
                "yes"
            } else {
                "no"
            },
        );
        // The accepted batch: two new employees with numbers.
        let mut txn = db.transaction();
        for w in enrollment_batch(n, 2) {
            txn = txn.assert(w);
        }
        let report = txn.commit().unwrap();
        let (tuples_added, stats) = match &report.model {
            ModelUpdate::Incremental {
                tuples_added,
                stats,
                ..
            } => (*tuples_added, *stats),
            other => {
                check(
                    &format!("n={n} commit path"),
                    "incremental",
                    &format!("{other:?}"),
                );
                continue;
            }
        };
        check(
            &format!("n={n} model tuples added (= 3 per employee)"),
            "6",
            &tuples_added.to_string(),
        );
        check(
            &format!("n={n} full plans in the resumed fixpoint"),
            "0",
            &stats.full_firings.to_string(),
        );
        check(
            &format!("n={n} rule plans compiled by the commit (cache hit)"),
            "0",
            &stats.plans_compiled.to_string(),
        );
        check(
            &format!("n={n} constraint routes specialized/skipped/full"),
            "2/0/0",
            &format!(
                "{}/{}/{}",
                report.checks.specialized, report.checks.skipped, report.checks.full
            ),
        );
        let scratch = prover_for(db.theory().clone());
        check(
            &format!("n={n} spliced model equals rebuild"),
            "yes",
            if db.prover().atom_model() == scratch.atom_model() {
                "yes"
            } else {
                "no"
            },
        );
        // The two new employees leave again: the retraction rides the
        // over-delete/re-derive fixpoint instead of rebuilding.
        let mut txn = db.transaction();
        for w in withdrawal_batch(n, 2) {
            txn = txn.retract(w);
        }
        let report = txn.commit().unwrap();
        let (tuples_removed, stats) = match &report.model {
            ModelUpdate::Incremental {
                tuples_removed,
                stats,
                ..
            } => (*tuples_removed, *stats),
            other => {
                check(
                    &format!("n={n} retract path"),
                    "incremental",
                    &format!("{other:?}"),
                );
                continue;
            }
        };
        check(
            &format!("n={n} model tuples removed (= 3 per employee)"),
            "6",
            &tuples_removed.to_string(),
        );
        check(
            &format!("n={n} retract full plans / plans compiled"),
            "0/0",
            &format!("{}/{}", stats.full_firings, stats.plans_compiled),
        );
        check(
            &format!("n={n} over-deletes cover the departures"),
            "yes",
            if stats.tuples_overdeleted >= 6 {
                "yes"
            } else {
                "no"
            },
        );
        let scratch = prover_for(db.theory().clone());
        check(
            &format!("n={n} shrunk model equals rebuild"),
            "yes",
            if db.prover().atom_model() == scratch.atom_model() {
                "yes"
            } else {
                "no"
            },
        );
        // Latency: the DRed commit against the pre-transaction update
        // path (clone, retract, rebuild the model, full-check every
        // constraint — the rebuild's FD check is cubic in the domain).
        // Only the coarse ratio is printed, keeping the output stable.
        if n >= 16 {
            let dred = best_of(3, || {
                let mut db = registrar_db(n);
                let start = std::time::Instant::now();
                let mut txn = db.transaction();
                for w in withdrawal_batch(n - 2, 2) {
                    txn = txn.retract(w);
                }
                let _ = txn.commit().unwrap();
                start.elapsed()
            });
            let rebuild = best_of(3, || {
                let db = registrar_db(n);
                let start = std::time::Instant::now();
                let mut theory = db.theory().clone();
                for w in withdrawal_batch(n - 2, 2) {
                    theory.retract(&w);
                }
                let candidate = prover_for(theory);
                for ic in db.constraints() {
                    assert_eq!(
                        ic_satisfaction(&candidate, ic, IcDefinition::Epistemic),
                        IcReport::Satisfied
                    );
                }
                start.elapsed()
            });
            check(
                &format!("n={n} retract latency DRed >= 5x under rebuild"),
                "yes",
                if rebuild.as_nanos() >= 5 * dred.as_nanos() {
                    "yes"
                } else {
                    "no"
                },
            );
        }
    }

    println!("\nF8 — durability & recovery (durable registrar, fsync=Never)");
    for n in [8usize, 16, 32] {
        let dir = std::env::temp_dir().join(format!("epilog-report-f8-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Build durably: 2 constraint records + n enrollment commits.
        let db = durable_registrar(&dir, n, epilog_persist::FsyncPolicy::Never);
        let live = db.theory().clone();
        check(
            &format!("n={n} wal records (= 2 constraints + n commits)"),
            &(n + 2).to_string(),
            &db.wal_records().to_string(),
        );
        drop(db); // crash: no shutdown ceremony
        let (rec, report) =
            epilog_persist::DurableDb::recover(&dir, epilog_persist::FsyncPolicy::Never).unwrap();
        check(
            &format!("n={n} recovery replays the full log"),
            &(n + 2).to_string(),
            &report.records_replayed.to_string(),
        );
        check(
            &format!("n={n} recovered equals live (theory + model)"),
            "yes",
            if rec.theory() == &live
                && rec.prover().atom_model() == prover_for(live.clone()).atom_model()
                && rec.satisfies_constraints()
            {
                "yes"
            } else {
                "no"
            },
        );
        drop(rec);
        // Torn tail: chop bytes off the log; the last commit must be
        // rolled back, everything before it preserved.
        let wal_path = dir.join("wal.log");
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();
        let (rec, report) =
            epilog_persist::DurableDb::recover(&dir, epilog_persist::FsyncPolicy::Never).unwrap();
        check(
            &format!("n={n} torn tail detected, last commit rolled back"),
            "yes",
            if report.torn_tail.is_some()
                && report.records_replayed == (n + 1) as u64
                && rec.theory().len() == live.len() - 2
                && rec.satisfies_constraints()
            {
                "yes"
            } else {
                "no"
            },
        );
        // Re-commit the lost enrollment, checkpoint, recover: zero replay.
        let mut rec = rec;
        let mut txn = rec.transaction();
        for w in enrollment_batch(n - 1, 1) {
            txn = txn.assert(w);
        }
        let _ = txn.commit().unwrap();
        let _ = rec.snapshot().unwrap();
        drop(rec);
        let (rec, report) =
            epilog_persist::DurableDb::recover(&dir, epilog_persist::FsyncPolicy::Never).unwrap();
        check(
            &format!("n={n} snapshot recovery: records replayed / model restored"),
            "0/yes",
            &format!(
                "{}/{}",
                report.records_replayed,
                if report.model_restored { "yes" } else { "no" }
            ),
        );
        check(
            &format!("n={n} snapshot recovery equals live"),
            "yes",
            if rec.theory() == &live { "yes" } else { "no" },
        );
        // Compaction: the snapshot covers the whole log.
        let mut rec = rec;
        let _ = rec.compact().unwrap();
        check(
            &format!("n={n} compaction drops the covered log"),
            "0 left",
            &format!("{} left", rec.wal_records()),
        );
        drop(rec);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    println!("\nF9 — join planning (hash vs probe on skewed equi-joins; cost vs greedy order)");
    for n in [128usize, 512, 2048] {
        let prog = join_heavy_program(n, 8);
        let (cost_db, cost) = prog.eval_with(true, PlannerMode::CostBased).unwrap();
        let (greedy_db, greedy) = prog.eval_with(true, PlannerMode::Greedy).unwrap();
        check(
            &format!("n={n} |hit| (= n)"),
            &n.to_string(),
            &cost_db
                .relation(Pred::new("hit", 2))
                .map_or(0, |r| r.len())
                .to_string(),
        );
        check(
            &format!("n={n} models agree"),
            "yes",
            if cost_db == greedy_db { "yes" } else { "no" },
        );
        check(
            &format!("n={n} join strategy cost/greedy"),
            "hash/probe-only",
            &format!(
                "{}/{}",
                if cost.hash_steps > 0 {
                    "hash"
                } else {
                    "probe-only"
                },
                if greedy.hash_steps > 0 {
                    "hash"
                } else {
                    "probe-only"
                }
            ),
        );
        check(
            &format!(
                "n={n} rows examined: probe {} >= 2x hash {}",
                greedy.rows_examined, cost.rows_examined
            ),
            "yes",
            if greedy.rows_examined >= 2 * cost.rows_examined {
                "yes"
            } else {
                "no"
            },
        );
    }
    for n in [128usize, 512, 2048] {
        let prog = order_sensitive_program(n, 16);
        let (cost_db, cost) = prog.eval_with(true, PlannerMode::CostBased).unwrap();
        let (greedy_db, greedy) = prog.eval_with(true, PlannerMode::Greedy).unwrap();
        check(
            &format!("n={n} |out| (= 16) and models agree"),
            "16/yes",
            &format!(
                "{}/{}",
                cost_db.relation(Pred::new("out", 2)).map_or(0, |r| r.len()),
                if cost_db == greedy_db { "yes" } else { "no" }
            ),
        );
        check(
            &format!(
                "n={n} rows examined: greedy order {} >= 2x cost order {}",
                greedy.rows_examined, cost.rows_examined
            ),
            "yes",
            if greedy.rows_examined >= 2 * cost.rows_examined {
                "yes"
            } else {
                "no"
            },
        );
    }

    println!(
        "\nF10 — parallel fixpoint (rule fan-out + partitioned probes, explicit 4-thread budget)"
    );
    // Every equality row below uses an *explicit* thread budget via
    // `EvalOptions`, so the measured values are identical on any host —
    // including the single-core one the sample was pinned on — no matter
    // what `EPILOG_THREADS` says. Only the final wall-clock row consults
    // the environment, and it degrades to a fixed "skipped" line there.
    let seq_opts = EvalOptions {
        threads: 1,
        ..EvalOptions::default()
    };
    let par_opts = EvalOptions {
        threads: 4,
        ..EvalOptions::default()
    };
    let forced_opts = EvalOptions {
        threads: 4,
        par_fanout_min_rows: 0,
        par_probe_min_outer: 0,
        ..EvalOptions::default()
    };
    let agrees = |seq_db: &epilog_storage::Database,
                  seq: &epilog_datalog::EvalStats,
                  par_db: &epilog_storage::Database,
                  par: &epilog_datalog::EvalStats| {
        seq_db == par_db
            && seq.derivations == par.derivations
            && seq.rule_firings == par.rule_firings
            && seq.variants_skipped == par.variants_skipped
            && seq.rows_examined == par.rows_examined
    };
    // F9's join-heavy workload: the single hash step's outer side is the
    // whole `big` relation, so the probe loop partitions across workers.
    for n in [512usize, 2048] {
        let prog = join_heavy_program(n, 8);
        let (seq_db, seq) = prog.eval_opts(seq_opts).unwrap();
        let (par_db, par) = prog.eval_opts(par_opts).unwrap();
        check(
            &format!("n={n} join: parallel model + counters equal sequential"),
            "yes",
            if agrees(&seq_db, &seq, &par_db, &par) {
                "yes"
            } else {
                "no"
            },
        );
        check(
            &format!(
                "n={n} join: probes partitioned (threads {} rounds {})",
                par.threads_used, par.parallel_rounds
            ),
            "yes",
            if par.threads_used >= 2 && par.parallel_rounds >= 1 {
                "yes"
            } else {
                "no"
            },
        );
    }
    // F6's scaling workload, grown past the fan-out threshold so the
    // full-plan round fans the rule variants out across workers.
    {
        let n = 256;
        let prog = scaling_program(n, 3);
        let (seq_db, seq) = prog.eval_opts(seq_opts).unwrap();
        let (par_db, par) = prog.eval_opts(par_opts).unwrap();
        check(
            &format!("n={n} scaling: parallel model + counters equal sequential"),
            "yes",
            if agrees(&seq_db, &seq, &par_db, &par) {
                "yes"
            } else {
                "no"
            },
        );
        check(
            &format!(
                "n={n} scaling: rules fanned out (threads {} rounds {})",
                par.threads_used, par.parallel_rounds
            ),
            "yes",
            if par.threads_used >= 2 && par.parallel_rounds >= 1 {
                "yes"
            } else {
                "no"
            },
        );
    }
    // Threshold ablation: the same join shape below both thresholds must
    // bypass the parallel machinery entirely under the default gates, yet
    // still agree with sequential when the gates are forced open.
    {
        let n = 128;
        let prog = join_heavy_program(n, 8);
        let (seq_db, seq) = prog.eval_opts(seq_opts).unwrap();
        let (gated_db, gated) = prog.eval_opts(par_opts).unwrap();
        let (forced_db, forced) = prog.eval_opts(forced_opts).unwrap();
        check(
            &format!("n={n} ablation: default thresholds keep the run sequential"),
            "yes",
            if gated.threads_used == 0 && gated.parallel_rounds == 0 && seq_db == gated_db {
                "yes"
            } else {
                "no"
            },
        );
        check(
            &format!("n={n} ablation: forced thresholds engage yet still agree"),
            "yes",
            if forced.threads_used >= 2 && agrees(&seq_db, &seq, &forced_db, &forced) {
                "yes"
            } else {
                "no"
            },
        );
        check(
            "threads=1 budget reports zero parallel activity",
            "yes",
            if seq.threads_used == 0 && seq.parallel_rounds == 0 {
                "yes"
            } else {
                "no"
            },
        );
    }
    // Wall-clock speedup needs real cores; under a pinned single-thread
    // config (how the sample is generated) the row is a fixed skip line.
    if threadpool::configured() >= 2 {
        let n = 4096;
        let prog = join_heavy_program(n, 8);
        let seq = best_of(3, || {
            let start = std::time::Instant::now();
            let _ = prog.eval_opts(seq_opts).unwrap();
            start.elapsed()
        });
        let par = best_of(3, || {
            let start = std::time::Instant::now();
            let _ = prog.eval_opts(par_opts).unwrap();
            start.elapsed()
        });
        check(
            &format!("n={n} wall-clock: parallel at least 1.5x sequential"),
            "yes",
            if seq.as_nanos() * 2 >= par.as_nanos() * 3 {
                "yes"
            } else {
                "no"
            },
        );
    } else {
        check(
            "n=4096 wall-clock: parallel at least 1.5x sequential",
            "skipped",
            "skipped",
        );
    }

    println!("\nF11 — serving layer (MVCC snapshot reads, single-writer group commit)");
    {
        use epilog_persist::TxOp;
        let n = 8;
        let dir = std::env::temp_dir().join(format!("epilog-report-f11-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = serving_registrar(&dir, n);
        check(
            &format!("n={n} head LSN (= 2 constraints + n commits)"),
            &(n + 2).to_string(),
            &db.head_lsn().to_string(),
        );

        // A snapshot pinned here must not see anything that commits
        // later — MVCC isolation, not just read-your-writes.
        let pinned = db.snapshot();
        let pinned_lsn = pinned.lsn();

        // Group commit, made deterministic with the writer gate: 8
        // transactions parked behind it must land as one batch on one
        // fsync — with a constraint violation in the middle of the
        // burst rejected without voiding its batch-mates.
        let before = db.stats();
        let gate = db.gate();
        let mut handles = Vec::new();
        for i in 0..8 {
            let ops: Vec<TxOp> = if i == 3 {
                // An employee with no ss number: bounced by the §3 IC.
                vec![TxOp::Assert(parse("emp(ghost)").unwrap())]
            } else {
                enrollment_batch(100 + i, 1)
                    .into_iter()
                    .map(TxOp::Assert)
                    .collect()
            };
            handles.push(db.commit(ops));
        }
        gate.open();
        let verdicts: Vec<bool> = handles.into_iter().map(|h| h.wait().is_ok()).collect();
        let after = db.stats();
        check(
            "burst of 8 (one rejected): batches +1, fsyncs +1",
            "yes",
            if after.batches - before.batches == 1 && after.fsyncs - before.fsyncs == 1 {
                "yes"
            } else {
                "no"
            },
        );
        check(
            "rejection inside the batch spares its batch-mates",
            "7 of 8",
            &format!(
                "{} of {}",
                verdicts.iter().filter(|ok| **ok).count(),
                verdicts.len()
            ),
        );
        check(
            "group commit amortizes: total commits exceed total fsyncs",
            "yes",
            // The n + 2 setup records each sync alone; only the burst's
            // 7-on-1 can push the overall count past them.
            if after.commits > after.fsyncs {
                "yes"
            } else {
                "no"
            },
        );
        let burst_q = parse("K emp(e100)").unwrap();
        check(
            "snapshot pinned before the burst still answers from its LSN",
            "yes",
            if pinned.lsn() == pinned_lsn
                && ask(pinned.prover(), &burst_q).to_string() == "no"
                && ask(db.snapshot().prover(), &burst_q).to_string() == "yes"
            {
                "yes"
            } else {
                "no"
            },
        );

        // Reads are lock-free: with a fresh burst parked on the gate
        // (writer blocked, queue loaded), the best-of-5 snapshot read is
        // within an order of magnitude of the idle one. Min-based with a
        // wide bound, so the row is stable on any host.
        let read = |db: &epilog_persist::ServingDb| {
            best_of(5, || {
                let start = std::time::Instant::now();
                let _ = ask(db.snapshot().prover(), &burst_q);
                start.elapsed()
            })
        };
        let idle = read(&db);
        let gate = db.gate();
        let parked: Vec<_> = (0..8)
            .map(|i| {
                db.commit(
                    enrollment_batch(200 + i, 1)
                        .into_iter()
                        .map(TxOp::Assert)
                        .collect(),
                )
            })
            .collect();
        let loaded = read(&db);
        gate.open();
        for h in parked {
            h.wait().expect("parked enrollments commit after the gate");
        }
        check(
            "snapshot read latency independent of a parked commit burst",
            "yes",
            if loaded <= idle * 10 + std::time::Duration::from_millis(5) {
                "yes"
            } else {
                "no"
            },
        );

        // The served directory is an ordinary durable database: recovery
        // must reproduce exactly the state the last snapshot served.
        let final_theory = db.snapshot().theory().clone();
        let final_lsn = db.head_lsn();
        db.shutdown().unwrap();
        let (rec, report) =
            epilog_persist::DurableDb::recover(&dir, epilog_persist::FsyncPolicy::Never).unwrap();
        check(
            "recovery reproduces the served state (theory + model + LSN)",
            "yes",
            if rec.theory() == &final_theory
                && report.last_lsn == final_lsn
                && rec.db().prover().atom_model() == prover_for(final_theory.clone()).atom_model()
            {
                "yes"
            } else {
                "no"
            },
        );
        drop(rec);
        let _ = std::fs::remove_dir_all(&dir);
    }

    println!("\nF12 — provenance (derivation tracking, why/why-not, support-accelerated DRed)");
    {
        // Tracking is invisible on the F6 scaling workload — identical
        // model, identical pre-existing counters — and every tuple of the
        // least model affords a proof that replays down to EDB facts.
        for n in [8usize, 16, 32] {
            let prog = scaling_program(n, 3);
            let (plain_db, plain) = prog.eval().unwrap();
            let mut table = SupportTable::new();
            let (traced_db, traced) = prog
                .eval_traced(EvalOptions::default(), &mut table)
                .unwrap();
            let mut scrubbed = traced;
            scrubbed.supports_recorded = 0;
            scrubbed.support_hits = 0;
            check(
                &format!("n={n} tracked fixpoint: same model, same counters"),
                "yes",
                if traced_db == plain_db && scrubbed == plain {
                    "yes"
                } else {
                    "no"
                },
            );
            let replays_all = traced_db.atoms().all(|atom| {
                let tuple = params_of(&atom).expect("model atoms are ground");
                table
                    .why(&prog.edb, atom.pred, &tuple)
                    .is_some_and(|p| p.atom() == &atom && p.replays(&prog))
            });
            check(
                &format!("n={n} every model tuple has a replayable proof"),
                "yes",
                if traced.supports_recorded > 0
                    && table.consistent_with(&traced_db, prog.rules.len())
                    && replays_all
                {
                    "yes"
                } else {
                    "no"
                },
            );
        }

        // The retract workload: drop one edge from a dense 6-node closure
        // graph. Over-deleted tuples nearly all survive through
        // alternative derivations, so the recorded supports skip
        // re-derivation probes the probe-only path must run.
        {
            let m = 6;
            let full = dense_closure_program(m, None);
            let post = dense_closure_program(m, Some((0, 1)));
            let removed = epilog_datalog::Program::from_text("e(n0, n1)").unwrap().edb;
            let mut table = SupportTable::new();
            let (model, _) = full
                .eval_traced(EvalOptions::default(), &mut table)
                .unwrap();
            let plans: Vec<RulePlan> = post
                .rules
                .iter()
                .map(|r| RulePlan::compile_with_stats(r, Some(&model)))
                .collect();
            let (plain_db, plain) = post
                .eval_decremental_with(&plans, model.clone(), &removed)
                .unwrap();
            let (traced_db, traced) = post
                .eval_decremental_traced(&plans, model, &removed, &mut table)
                .unwrap();
            let (oracle, _) = post.eval().unwrap();
            check(
                &format!("m={m} DRed models identical (supports = probe-only = scratch)"),
                "yes",
                if traced_db == plain_db && traced_db == oracle {
                    "yes"
                } else {
                    "no"
                },
            );
            check(
                &format!(
                    "m={m} DRed support_checks with supports {} < without {}",
                    traced.support_checks, plain.support_checks
                ),
                "fewer",
                if traced.support_checks < plain.support_checks {
                    "fewer"
                } else {
                    "NOT-fewer"
                },
            );
            check(
                &format!("m={m} every skipped probe is a recorded support hit"),
                "yes",
                if traced.support_hits > 0
                    && traced.support_hits + traced.support_checks == plain.support_checks
                    && traced.tuples_rederived == plain.tuples_rederived
                {
                    "yes"
                } else {
                    "no"
                },
            );
        }

        // End-to-end through the epistemic layer: the same retraction as
        // paired commits, provenance on vs off — identical models, fewer
        // probes, and `why` still explains the survivor afterwards.
        {
            let mut traced_db = EpistemicDb::from_text(&dense_closure_text(5, None)).unwrap();
            let mut plain_db = EpistemicDb::from_text(&dense_closure_text(5, None)).unwrap();
            let on = traced_db.enable_provenance();
            let traced_report = traced_db
                .transaction()
                .retract(parse("e(n0, n1)").unwrap())
                .commit()
                .unwrap();
            let plain_report = plain_db
                .transaction()
                .retract(parse("e(n0, n1)").unwrap())
                .commit()
                .unwrap();
            match (&traced_report.model, &plain_report.model) {
                (
                    ModelUpdate::Incremental { stats: ts, .. },
                    ModelUpdate::Incremental { stats: ps, .. },
                ) => {
                    check(
                        &format!(
                            "retract commit support_checks tracked {} < untracked {}",
                            ts.support_checks, ps.support_checks
                        ),
                        "fewer",
                        if on
                            && ts.support_checks < ps.support_checks
                            && traced_db.prover().atom_model() == plain_db.prover().atom_model()
                        {
                            "fewer"
                        } else {
                            "NOT-fewer"
                        },
                    );
                }
                other => check(
                    "retract commit path",
                    "incremental/incremental",
                    &format!("{other:?}"),
                ),
            }
            let q = parse("t(n0, n1)").unwrap();
            let epilog_syntax::Formula::Atom(a) = q else {
                unreachable!("ground atom")
            };
            check(
                "why t(n0, n1) after retracting its edge: alternative path",
                "yes",
                if traced_db.why(&a).is_some_and(|p| p.height() >= 2) {
                    "yes"
                } else {
                    "no"
                },
            );
        }

        // A rejected commit explains itself: the violated constraint plus
        // ground witnesses, each carrying its own derivation.
        {
            let mut db = registrar_db(8);
            let on = db.enable_provenance();
            let err = db
                .transaction()
                .assert(parse("emp(nobody)").unwrap())
                .commit()
                .unwrap_err();
            let explained = match err {
                DbError::ConstraintViolated(rej) => {
                    !rej.witnesses.is_empty()
                        && rej.witnesses.len() == rej.proofs.len()
                        && rej
                            .proofs
                            .iter()
                            .zip(&rej.witnesses)
                            .all(|(p, w)| p.atom() == w)
                }
                _ => false,
            };
            check(
                "rejected commit carries constraint + witnesses + proofs",
                "yes",
                if on && explained { "yes" } else { "no" },
            );
        }

        // Wall-clock: sink overhead on the n=48 scaling fixpoint.
        // Best-of-7 minima against the 15% target, with a small absolute
        // floor so the row is stable on any host.
        {
            let prog = scaling_program(48, 3);
            let plain = best_of(7, || {
                let start = std::time::Instant::now();
                let _ = prog.eval().unwrap();
                start.elapsed()
            });
            let traced = best_of(7, || {
                let start = std::time::Instant::now();
                let mut table = SupportTable::new();
                let _ = prog
                    .eval_traced(EvalOptions::default(), &mut table)
                    .unwrap();
                start.elapsed()
            });
            check(
                "n=48 tracking overhead within 15% (+2ms floor)",
                "yes",
                if traced <= plain * 23 / 20 + std::time::Duration::from_millis(2) {
                    "yes"
                } else {
                    "no"
                },
            );
        }
    }

    println!("\nF13 — fault injection & self-healing (degraded mode, heal, chaos soak)");
    {
        use epilog_persist::{
            DurableDb, FaultInjector, FaultKind, FsyncPolicy, ServeError, ServeOptions, ServingDb,
            TxOp,
        };
        use std::sync::Arc;

        fn canon(t: &Theory) -> Vec<String> {
            let mut v: Vec<String> = t.sentences().iter().map(|w| w.to_string()).collect();
            v.sort();
            v
        }

        // ---- Scripted demo: one injectable "disk" under a live registrar.
        let dir = std::env::temp_dir().join(format!("epilog-report-f13-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let theory = Theory::from_text("forall x. emp(x) -> person(x)").unwrap();
        let mut durable = DurableDb::create(&dir, theory, FsyncPolicy::Never).unwrap();
        let inj = Arc::new(FaultInjector::new(13));
        durable.set_fault_injector(Some(Arc::clone(&inj)));
        let db = ServingDb::start(durable, ServeOptions::default());
        db.add_constraint(parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap())
            .unwrap();
        db.add_constraint(parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap())
            .unwrap();
        let enroll = |i: usize| -> Vec<TxOp> {
            enrollment_batch(i, 1)
                .into_iter()
                .map(TxOp::Assert)
                .collect()
        };
        for i in 0..4 {
            db.commit_wait(enroll(i)).unwrap();
        }

        // An injected append failure: that commit alone reports an io
        // error; the writer compensates (rewinds the log) and stays live.
        inj.fail_nth_write(inj.writes(), FaultKind::TornWrite);
        let torn = db.commit_wait(enroll(10));
        let next = db.commit_wait(enroll(11));
        check(
            "torn append fails that commit alone; the writer stays live",
            "yes",
            if matches!(torn, Err(ServeError::Io(_))) && !db.is_degraded() && next.is_ok() {
                "yes"
            } else {
                "no"
            },
        );

        // An injected fsync failure: the batch's handles fail, the head
        // rolls back to the durable boundary, and the writer degrades.
        let durable_lsn = db.head_lsn();
        inj.fail_nth_sync(inj.syncs());
        let lost = db.commit_wait(enroll(12));
        check(
            "fsync fault fails only the affected batch (io error, not panic)",
            "yes",
            if matches!(lost, Err(ServeError::Io(_))) && db.stats().io_errors == 2 {
                "yes"
            } else {
                "no"
            },
        );
        let snap = db.snapshot();
        check(
            "snapshots keep answering at the durable head while degraded",
            "yes",
            if db.is_degraded()
                && snap.lsn() == durable_lsn
                && ask(snap.prover(), &parse("K emp(e11)").unwrap()).to_string() == "yes"
                && ask(snap.prover(), &parse("K emp(e12)").unwrap()).to_string() == "no"
            {
                "yes"
            } else {
                "no"
            },
        );
        check(
            "degraded mode rejects commits fast (read-only)",
            "yes",
            if matches!(db.commit_wait(enroll(13)), Err(ServeError::Degraded(_))) {
                "yes"
            } else {
                "no"
            },
        );
        let healed = db.heal();
        let stats = db.stats();
        check(
            "heal() restores service at the durable head LSN",
            "yes",
            if healed.is_ok_and(|lsn| lsn == durable_lsn)
                && !db.is_degraded()
                && stats.heals == 1
                && !stats.degraded
            {
                "yes"
            } else {
                "no"
            },
        );
        let resumed = db.commit_wait(enroll(12));
        check(
            "the commit lost to the fault lands after healing",
            "yes",
            if resumed.is_ok_and(|r| r.lsn == durable_lsn + 1)
                && ask(db.snapshot().prover(), &parse("K emp(e12)").unwrap()).to_string() == "yes"
            {
                "yes"
            } else {
                "no"
            },
        );
        db.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        // ---- Seeded mini-soak: crash → recover → continue. The full
        // 100-cycle soak lives in tests/chaos.rs; this scaled-down run
        // (25 cycles, fixed seed, sequential driver) keeps the report
        // deterministic while still crossing every fault path.
        {
            let dir =
                std::env::temp_dir().join(format!("epilog-report-f13-soak-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let mut state: u64 = 0xF13_5EED;
            // High bits only: an LCG's low bits are short-period.
            let mut rng = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            let mut oracle = EpistemicDb::from_text("forall x. emp(x) -> person(x)").unwrap();
            oracle
                .add_constraint(parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap())
                .unwrap();
            oracle
                .add_constraint(
                    parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap(),
                )
                .unwrap();
            let mut acked_lsn = {
                let db = ServingDb::create(
                    &dir,
                    Theory::from_text("forall x. emp(x) -> person(x)").unwrap(),
                    ServeOptions::default(),
                )
                .unwrap();
                db.add_constraint(parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap())
                    .unwrap();
                db.add_constraint(
                    parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap(),
                )
                .unwrap();
                let lsn = db.head_lsn();
                db.shutdown().unwrap();
                lsn
            };
            let (mut acked, mut failed, mut healed) = (0u64, 0u64, 0u64);
            let (mut lost, mut resurrected, mut diverged) = (0u64, 0u64, 0u64);
            for cycle in 0..25u64 {
                let (mut durable, report) = DurableDb::recover(&dir, FsyncPolicy::Never).unwrap();
                lost += acked_lsn.saturating_sub(report.last_lsn);
                resurrected += report.last_lsn.saturating_sub(acked_lsn);
                if canon(durable.db().theory()) != canon(oracle.theory()) {
                    diverged += 1;
                }
                let inj = Arc::new(FaultInjector::new(0xF13 ^ cycle));
                match rng() % 3 {
                    0 => inj.fail_nth_sync(rng() % 3),
                    1 => inj.fail_nth_write(rng() % 3, FaultKind::ShortWrite),
                    _ => {
                        inj.set_write_rate(1, 5);
                        inj.set_sync_rate(1, 6);
                    }
                }
                durable.set_fault_injector(Some(Arc::clone(&inj)));
                let db = ServingDb::start(durable, ServeOptions::default());
                for _ in 0..4 {
                    let ops = enroll((rng() % 48) as usize);
                    match db.commit_wait(ops.clone()) {
                        Ok(r) => {
                            acked_lsn = acked_lsn.max(r.lsn);
                            acked += 1;
                            let mut txn = oracle.transaction();
                            for op in &ops {
                                txn = match op {
                                    TxOp::Assert(w) => txn.assert(w.clone()),
                                    TxOp::Retract(w) => txn.retract(w.clone()),
                                };
                            }
                            let _ = txn.commit().expect("acked commit replays on the oracle");
                        }
                        Err(_) => failed += 1,
                    }
                    if db.is_degraded() {
                        inj.disarm();
                        if db.heal().is_ok() {
                            healed += 1;
                        }
                    }
                }
                // Crash: no shutdown ceremony; smear a torn header over
                // the tail every third cycle.
                drop(db);
                if cycle % 3 == 2 {
                    use std::io::Write;
                    let mut f = std::fs::OpenOptions::new()
                        .append(true)
                        .open(dir.join(epilog_persist::wal::WAL_FILE))
                        .unwrap();
                    f.write_all(b"@777 5").unwrap();
                }
            }
            let (rec, report) = DurableDb::recover(&dir, FsyncPolicy::Never).unwrap();
            lost += acked_lsn.saturating_sub(report.last_lsn);
            resurrected += report.last_lsn.saturating_sub(acked_lsn);
            check(
                &format!(
                    "mini-soak 25 cycles ({acked} acked, {failed} failed, {healed} healed): lost"
                ),
                "0",
                &lost.to_string(),
            );
            check(
                "mini-soak: failed commits resurrected after recovery",
                "0",
                &resurrected.to_string(),
            );
            check(
                "mini-soak: recovered state equals the acked oracle every cycle",
                "yes",
                if diverged == 0 && canon(rec.db().theory()) == canon(oracle.theory()) {
                    "yes"
                } else {
                    "no"
                },
            );
            check(
                "mini-soak exercised the fault paths (failures and heals > 0)",
                "yes",
                if failed > 0 && healed > 0 {
                    "yes"
                } else {
                    "no"
                },
            );
            drop(rec);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    let failures = FAILURES.load(Ordering::Relaxed);
    println!("\n{} mismatches", failures);
    std::process::exit(if failures == 0 { 0 } else { 1 });
}
