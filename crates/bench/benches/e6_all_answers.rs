//! E6/F4 — all-answers recovery (§6.1.1): throughput of iterating `demo`
//! through failure as the database grows, plus the canonical-model
//! construction of Lemma 6.2 as the intensional component scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epilog_bench::workloads::{facts_db, random_elementary};
use epilog_core::all_answers;
use epilog_prover::{canonical_model, Prover};
use epilog_syntax::parse;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let q = parse("K p(x)").unwrap();

    // Correctness gate: every fact is recovered.
    {
        let prover = Prover::new(facts_db(8));
        assert_eq!(all_answers(&prover, &q).unwrap().len(), 8);
    }

    let mut g = c.benchmark_group("e6_all_answers");
    g.sample_size(10);
    for n in [4usize, 8, 16, 32] {
        let theory = facts_db(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("demo_all", n), &n, |b, _| {
            b.iter_with_setup(
                || Prover::new(theory.clone()),
                |prover| black_box(all_answers(&prover, &q).unwrap()),
            )
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e6_canonical_model");
    g.sample_size(10);
    for n in [8usize, 16, 32] {
        let theory = random_elementary(42, 6, n);
        g.bench_with_input(BenchmarkId::new("lemma_62", n), &n, |b, _| {
            b.iter(|| black_box(canonical_model(&theory).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
