//! E6 — Section 6: completeness of `demo` on elementary databases.
//!
//! * Lemma 6.2 — every elementary theory has a canonical model over its
//!   own parameters (`epilog_prover::canonical_model`).
//! * Lemma 6.3 / Theorem 6.2 — for elementary `Σ` with finitely many
//!   parameters and positive existential queries with disjunctively
//!   linked variables, `demo` terminates, and is sound *and complete*:
//!   property-tested against the oracle for set equality of answers.
//! * §6.1.1 — iterating `demo` through failure recovers all answers.

use epilog::core::{all_answers, demo};
use epilog::prelude::*;
use epilog::prover::canonical_model;
use epilog::semantics::ModelSet;
use epilog::syntax::{disjunctively_linked, is_positive_existential, Pred};
use proptest::prelude::*;

const PARAMS: [&str; 3] = ["a", "b", "c"];

fn elementary_theory() -> impl Strategy<Value = Theory> {
    let atom = (0..2usize, 0..PARAMS.len())
        .prop_map(|(pr, pa)| format!("{}({})", ["p", "q"][pr], PARAMS[pa]));
    let sentence = prop_oneof![
        atom.clone(),
        (atom.clone(), atom.clone()).prop_map(|(a, b)| format!("{a} | {b}")),
        (0..2usize).prop_map(|pr| format!("exists x. {}(x)", ["p", "q"][pr])),
        (0..2usize, 0..2usize).prop_map(|(f, t)| format!(
            "forall x. {}(x) -> {}(x)",
            ["p", "q"][f],
            ["p", "q"][t]
        )),
        (atom.clone(), atom.clone()).prop_map(|(a, b)| format!("{a} & {b}")),
    ];
    proptest::collection::vec(sentence, 1..5)
        .prop_map(|ss| Theory::from_text(&ss.join("\n")).unwrap())
}

/// Positive existential queries with disjunctively linked variables.
fn pe_linked_query() -> impl Strategy<Value = String> {
    let pred = |i: usize| ["p", "q"][i];
    prop_oneof![
        (0..2usize).prop_map(move |p1| format!("{}(x)", pred(p1))),
        (0..2usize, 0..2usize).prop_map(move |(p1, p2)| format!(
            "{}(x) & {}(x)",
            pred(p1),
            pred(p2)
        )),
        (0..2usize, 0..2usize).prop_map(move |(p1, p2)| format!(
            "{}(x) | {}(x)",
            pred(p1),
            pred(p2)
        )),
        (0..2usize, 0..2usize).prop_map(move |(p1, p2)| format!(
            "{}(x) & (exists y. {}(y))",
            pred(p1),
            pred(p2)
        )),
        (0..2usize, 0..PARAMS.len()).prop_map(move |(p1, pa)| format!(
            "{}({})",
            pred(p1),
            PARAMS[pa]
        )),
    ]
}

fn oracle_for(theory: &Theory) -> ModelSet {
    let mut universe: Vec<Param> = PARAMS.iter().map(|n| Param::new(n)).collect();
    universe.push(Param::new("spare"));
    ModelSet::models(theory, &universe, &[Pred::new("p", 1), Pred::new("q", 1)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 6.2: demo is sound and complete for p.e. queries with
    /// disjunctively linked variables over elementary theories — the
    /// answer sets match the oracle exactly.
    #[test]
    fn theorem_62_sound_and_complete(t in elementary_theory(), q in pe_linked_query()) {
        let w = parse(&q).unwrap();
        prop_assert!(is_positive_existential(&w));
        prop_assert!(disjunctively_linked(&w));
        prop_assert!(t.is_elementary());

        let prover = Prover::new(t.clone());
        let mut got = all_answers(&prover, &w).unwrap();
        let mut expect: Vec<Vec<Param>> = oracle_for(&t)
            .answers(&w)
            .into_iter()
            // The oracle ranges over the spare parameter too; a spare is
            // never an answer (nothing constrains it), so this filter is
            // a no-op kept for clarity.
            .filter(|tuple| tuple.iter().all(|p| p.name() != "spare"))
            .collect();
        got.sort();
        expect.sort();
        prop_assert_eq!(
            got, expect,
            "answer sets differ for `{}` over\n{}", q, t
        );
    }

    /// Lemma 6.2: the canonical model exists, mentions only Σ's
    /// parameters, and satisfies Σ.
    #[test]
    fn lemma_62_canonical_model(t in elementary_theory()) {
        let m = canonical_model(&t).expect("elementary theory");
        // Lemma 6.2 assumes wlog that Σ mentions a parameter; the
        // implementation's designated fallback witness `c0` covers the
        // parameterless case.
        let mut universe = t.active_domain();
        if universe.is_empty() {
            universe.push(Param::new("c0"));
        }
        for p in m.params() {
            prop_assert!(!p.is_fresh());
            prop_assert!(universe.contains(&p));
        }
        for s in t.sentences() {
            prop_assert!(
                epilog::semantics::holds_in_world(s, &m, &universe),
                "S(Σ) fails `{}` of\n{}", s, t
            );
        }
    }

    /// Lemma 6.3: Instances(w, Σ) is finite and demo terminates — demo's
    /// stream is exhausted within the finite candidate space.
    #[test]
    fn lemma_63_finite_instances(t in elementary_theory(), q in pe_linked_query()) {
        let w = parse(&q).unwrap();
        let prover = Prover::new(t);
        let n_candidates = prover.answer_domain(&w).len().pow(w.free_vars().len() as u32);
        let collected: Vec<_> = demo(&prover, &w).unwrap().collect();
        prop_assert!(collected.len() <= n_candidates.max(1));
    }
}

#[test]
fn all_answers_iteration_611() {
    // The §6.1.1 mechanism: continuing the iteration after each success
    // recovers every answer (possibly with repetitions — a disjunctive
    // fact can re-derive the same tuple).
    let t = Theory::from_text(
        "p(a)
         p(b)
         q(b)
         q(c) | p(c)
         forall x. q(x) -> p(x)",
    )
    .unwrap();
    let prover = Prover::new(t);
    let q = parse("p(x)").unwrap();
    let answers = all_answers(&prover, &q).unwrap();
    let names: Vec<String> = answers.iter().map(|t| t[0].name()).collect();
    // a, b certain; c certain too: q(c) ∨ p(c) and q(x) ⊃ p(x) force p(c).
    assert_eq!(names, vec!["a", "b", "c"]);
}

#[test]
fn demo_terminates_on_recursive_rules() {
    let t = Theory::from_text(
        "e(a, b)
         e(b, c)
         forall x, y. e(x, y) -> t(x, y)
         forall x, y, z. e(x, y) & t(y, z) -> t(x, z)",
    )
    .unwrap();
    let prover = Prover::new(t);
    let answers = all_answers(&prover, &parse("t(x, y)").unwrap()).unwrap();
    assert_eq!(answers.len(), 3); // (a,b), (b,c), (a,c)
}

#[test]
fn disjunctive_database_certain_answers() {
    // Certain answers over a disjunctive elementary DB: the classic
    // example where the canonical model alone would over-answer, but
    // entailment-based demo answers exactly.
    let t = Theory::from_text("p(a) | p(b)\np(c)").unwrap();
    let prover = Prover::new(t.clone());
    let answers = all_answers(&prover, &parse("p(x)").unwrap()).unwrap();
    assert_eq!(answers.len(), 1, "only p(c) is certain");
    assert_eq!(answers[0][0].name(), "c");
    // The canonical model S(Σ) contains both disjuncts — it is a model,
    // not the certain-answer set.
    let m = canonical_model(&t).unwrap();
    assert_eq!(m.len(), 3);
}
