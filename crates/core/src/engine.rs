//! Routing query answering through the bottom-up Datalog engine.
//!
//! The `demo`/`ask`/`closure`/`incremental` consumers all bottom out in
//! [`Prover::entails`], and the overwhelmingly common goal while
//! enumerating answers is a **ground atom**. When the database happens to
//! be a *definite* program — ground facts plus negation-free Datalog rules,
//! the workhorse shape of deductive databases — those goals are decided
//! exactly by the program's least model: `Σ ⊨ p(c̄)` iff `p(c̄)` is in the
//! model. This module materializes that model once with the compiled
//! semi-naive engine and attaches it to the prover, so every downstream
//! ground-atom question becomes a tuple lookup instead of a SAT call.

use epilog_datalog::Program;
use epilog_prover::Prover;
use epilog_storage::Database;
use epilog_syntax::Theory;

/// The theory as a definite Datalog program, when it is one: every
/// sentence a ground fact or a rule, and every body literal positive.
/// (Negated body literals select the *perfect* model, which classical
/// entailment does not match — those theories stay on the SAT path.)
pub fn definite_program(theory: &Theory) -> Option<Program> {
    let prog = Program::from_sentences(theory.sentences()).ok()?;
    if prog.rules.iter().all(|r| r.body.iter().all(|l| l.positive)) {
        Some(prog)
    } else {
        None
    }
}

/// The least model of the theory, when it is a definite program, computed
/// by the compiled semi-naive engine.
pub fn definite_model(theory: &Theory) -> Option<Database> {
    let prog = definite_program(theory)?;
    let (model, _stats) = prog.eval().ok()?;
    Some(model)
}

/// Build a prover for `theory`, attaching the least model as a
/// ground-atom fast path whenever the theory is a definite program.
pub fn prover_for(theory: Theory) -> Prover {
    match definite_model(&theory) {
        Some(model) => Prover::new(theory).with_atom_model(model),
        None => Prover::new(theory),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::parse;

    #[test]
    fn definite_theories_get_a_model() {
        let theory = Theory::from_text(
            "e(a, b)
             e(b, c)
             forall x, y. e(x, y) -> t(x, y)
             forall x, y, z. e(x, y) & t(y, z) -> t(x, z)",
        )
        .unwrap();
        let p = prover_for(theory);
        assert!(p.atom_model().is_some());
        assert!(p.entails(&parse("t(a, c)").unwrap()));
        assert!(!p.entails(&parse("t(c, a)").unwrap()));
        assert_eq!(p.sat_calls(), 0);
    }

    #[test]
    fn disjunctive_theories_stay_on_sat_path() {
        let theory = Theory::from_text("p(a) | q(a)").unwrap();
        let p = prover_for(theory);
        assert!(p.atom_model().is_none());
        assert!(p.entails(&parse("p(a) | q(a)").unwrap()));
    }

    #[test]
    fn negated_rule_bodies_stay_on_sat_path() {
        // The perfect model of {p(a), p(x) ∧ ¬q(x) → r(x)} contains r(a),
        // but Σ ⊭ r(a) classically — the fast path must refuse.
        let theory = Theory::from_text("p(a)\nforall x. p(x) & ~q(x) -> r(x)").unwrap();
        let p = prover_for(theory);
        assert!(p.atom_model().is_none());
        assert!(!p.entails(&parse("r(a)").unwrap()));
    }

    #[test]
    fn routed_and_plain_closures_agree_despite_index_warmup() {
        use crate::closure::ClosedDb;
        use epilog_prover::Prover;
        // `e` is a body predicate with no facts: the engine's index
        // warm-up must not surface a phantom empty relation in the world.
        let src = "f(b)\nforall x. e(a, x) -> g(x)";
        let theory = Theory::from_text(src).unwrap();
        let routed = prover_for(theory.clone());
        assert!(routed.atom_model().is_some());
        let plain = Prover::new(theory);
        assert_eq!(
            ClosedDb::new(&routed).world(),
            ClosedDb::new(&plain).world()
        );
    }

    #[test]
    fn fast_path_agrees_with_sat_on_definite_theories() {
        let src = "emp(Mary)
                   emp(Sue)
                   ss(Mary, n1)
                   forall x. emp(x) -> person(x)";
        let theory = Theory::from_text(src).unwrap();
        let routed = prover_for(theory.clone());
        let plain = Prover::new(theory);
        for q in [
            "person(Mary)",
            "person(Sue)",
            "person(n1)",
            "ss(Mary, n1)",
            "ss(Sue, n1)",
            "emp(n1)",
        ] {
            let w = parse(q).unwrap();
            assert_eq!(routed.entails(&w), plain.entails(&w), "divergence on {q}");
        }
    }
}
