//! Differential crash-recovery suite for the durability subsystem.
//!
//! For randomized transaction sequences (facts, rules, existentials,
//! retractions, under a random subset of the §3 constraints), the suite
//! drives a [`DurableDb`] and an in-memory oracle in lockstep, recording
//! the oracle's state after every logged record. It then:
//!
//! * **crashes at every record boundary** — truncates a copy of the log
//!   at each boundary — and **mid-record** (torn writes inside the header
//!   and inside the payload), recovers, and demands the recovered
//!   database equal the oracle's state at that prefix: theory (sentence
//!   for sentence, in order), registered constraints, constraint
//!   satisfaction, and the attached least model (against a from-scratch
//!   rebuild);
//! * checks **snapshot+replay equals full replay**: recovery from the
//!   newest snapshot and recovery-from-genesis produce identical states,
//!   before and after compaction.

use epilog::core::prover_for;
use epilog::persist::wal::WAL_FILE;
use epilog::persist::{DurableDb, FsyncPolicy, RecoveryOptions, Snapshot, Wal};
use epilog::prelude::*;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const PARAMS: usize = 3;

/// Positive, stratified rules; `hired` feeds the constrained `emp`.
const RULES: [&str; 3] = [
    "forall x. hired(x) -> emp(x)",
    "forall x. emp(x) -> person(x)",
    "forall x, y. ss(x, y) -> holder(x)",
];

const CONSTRAINTS: [&str; 3] = [
    "forall x. K emp(x) -> exists y. K ss(x, y)",
    "forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z",
    "forall x. ~K bad(x)",
];

/// One op as plain data: kind (assert/retract/existential/rule), pred,
/// two argument selectors.
type RawOp = (u8, u8, u8, u8);

fn op_formula((kind, pred, p1, p2): RawOp) -> (bool, Formula) {
    let a = p1 as usize % PARAMS;
    let n = p2 as usize % PARAMS;
    let src = match kind % 6 {
        2 => format!("exists y. ss(a{a}, y)"),
        3 | 4 => RULES[pred as usize % RULES.len()].to_string(),
        _ => match pred % 5 {
            0 => format!("emp(a{a})"),
            1 => format!("ss(a{a}, n{n})"),
            2 => format!("hobby(a{a}, n{n})"),
            3 => format!("hired(a{a})"),
            _ => format!("bad(a{a})"),
        },
    };
    // kind 0 asserts and 1 or 5 retract facts/existentials (two retract
    // kinds, so logged tails regularly contain retract records and replay
    // exercises the over-delete/re-derive path); kind 3 asserts and 4
    // retracts rules (rule-changing commits invalidate the cached routing
    // graph and replay through the rebuild path).
    let is_assert = !matches!(kind % 6, 1 | 4 | 5);
    (is_assert, parse(&src).unwrap())
}

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static N: AtomicU32 = AtomicU32::new(0);
    let d = std::env::temp_dir().join(format!(
        "epilog-prop-persist-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The oracle's view of one recoverable state: the theory and how many
/// constraints were registered by then.
#[derive(Clone)]
struct OracleState {
    theory: Theory,
    n_constraints: usize,
}

fn assert_recovered_matches(
    recovered: &EpistemicDb,
    expect: &OracleState,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        recovered.theory().sentences(),
        expect.theory.sentences(),
        "theory mismatch {}",
        context
    );
    prop_assert_eq!(
        recovered.constraints().len(),
        expect.n_constraints,
        "constraint count mismatch {}",
        context
    );
    prop_assert!(
        recovered.satisfies_constraints(),
        "recovered state violates constraints {}",
        context
    );
    // The recovered model must be indistinguishable from a from-scratch
    // rebuild of the recovered theory.
    let scratch = prover_for(expect.theory.clone());
    prop_assert_eq!(
        recovered.prover().atom_model(),
        scratch.atom_model(),
        "model mismatch {}",
        context
    );
    Ok(())
}

/// Copy the genesis snapshot and a truncated log into a fresh "crashed"
/// directory (later snapshots are omitted: a snapshot syncs the log
/// first, so a real crash can never tear records a snapshot covers).
fn crashed_copy(dir: &Path, wal_bytes: &[u8], cut: usize, tag: &str) -> PathBuf {
    let crash = temp_dir(tag);
    std::fs::copy(
        dir.join(Snapshot::file_name(0)),
        crash.join(Snapshot::file_name(0)),
    )
    .unwrap();
    std::fs::write(crash.join(WAL_FILE), &wal_bytes[..cut]).unwrap();
    crash
}

fn cases() -> impl Strategy<Value = (u8, u8, Vec<Vec<RawOp>>)> {
    (
        0u8..8, // seed-rule subset mask
        0u8..8, // constraint subset mask
        proptest::collection::vec(
            proptest::collection::vec((0u8..10, 0u8..8, 0u8..8, 0u8..8), 1..4),
            0..5,
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash anywhere, recover, equal the oracle; snapshot+replay equals
    /// full replay.
    #[test]
    fn recovery_matches_oracle_at_every_crash_point((rule_mask, ic_mask, raw) in cases()) {
        let dir = temp_dir("live");

        // Seed theory: a subset of the rules (facts arrive via commits).
        let mut src = String::new();
        for (i, rule) in RULES.iter().enumerate() {
            if rule_mask & (1 << i) != 0 {
                src.push_str(rule);
                src.push('\n');
            }
        }
        let theory = Theory::from_text(&src).unwrap();
        let mut durable = DurableDb::create(&dir, theory.clone(), FsyncPolicy::Never).unwrap();
        let mut oracle = EpistemicDb::new(theory);

        // States by LSN; index 0 = the genesis state.
        let mut by_lsn: Vec<OracleState> = vec![OracleState {
            theory: oracle.theory().clone(),
            n_constraints: 0,
        }];

        // Register a constraint subset (one log record each; the
        // fact-free seed theory satisfies them all).
        for (i, ic) in CONSTRAINTS.iter().enumerate() {
            if ic_mask & (1 << i) != 0 {
                durable.add_constraint(parse(ic).unwrap()).unwrap();
                oracle.add_constraint(parse(ic).unwrap()).unwrap();
                by_lsn.push(OracleState {
                    theory: oracle.theory().clone(),
                    n_constraints: oracle.constraints().len(),
                });
            }
        }

        // Drive both databases through the same batches.
        for raw_batch in &raw {
            let batch: Vec<(bool, Formula)> = raw_batch.iter().map(|op| op_formula(*op)).collect();
            let mut dt = durable.transaction();
            let mut ot = oracle.transaction();
            for (is_assert, w) in &batch {
                if *is_assert {
                    dt = dt.assert(w.clone());
                    ot = ot.assert(w.clone());
                } else {
                    dt = dt.retract(w.clone());
                    ot = ot.retract(w.clone());
                }
            }
            let dv = dt.commit();
            let ov = ot.commit();
            prop_assert_eq!(dv.is_ok(), ov.is_ok(), "verdict divergence on {:?}", batch);
            if let Ok(report) = dv {
                // Facts-only commits (retractions included) must stay on
                // the incremental path: no full plan, nothing compiled.
                if let ModelUpdate::Incremental { stats, .. } = &report.model {
                    prop_assert_eq!(stats.full_firings, 0, "incremental commit fired a full plan");
                    prop_assert_eq!(stats.plans_compiled, 0, "incremental commit compiled plans");
                }
                if report.asserted + report.retracted > 0 {
                    by_lsn.push(OracleState {
                        theory: oracle.theory().clone(),
                        n_constraints: oracle.constraints().len(),
                    });
                }
            }
            prop_assert_eq!(durable.theory(), oracle.theory());
        }
        prop_assert_eq!(durable.last_lsn() as usize, by_lsn.len() - 1);

        // ---- Crash at every record boundary and mid-record ------------
        let wal_bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let scan = Wal::scan_file(dir.join(WAL_FILE)).unwrap();
        prop_assert!(scan.torn.is_none());
        prop_assert_eq!(scan.records.len(), by_lsn.len() - 1);
        let mut boundaries: Vec<usize> = vec![0];
        boundaries.extend(scan.records.iter().map(|r| r.end_offset as usize));
        for (i, pair) in boundaries.windows(2).enumerate() {
            let (start, end) = (pair[0], pair[1]);
            // Boundary cut: exactly the first i records survive.
            let crash = crashed_copy(&dir, &wal_bytes, start, "cut");
            let (rec, report) = DurableDb::recover(&crash, FsyncPolicy::Never).unwrap();
            prop_assert!(report.torn_tail.is_none(), "boundary cut is not a tear");
            prop_assert_eq!(report.records_replayed as usize, i);
            prop_assert!(report.rejected.is_empty());
            assert_recovered_matches(rec.db(), &by_lsn[i], &format!("at boundary {i}"))?;
            std::fs::remove_dir_all(crash).unwrap();
            // Torn cuts inside record i+1: into the header (+3 bytes) and
            // into the payload (midpoint). Recovery must truncate back to
            // the record-i state and report the tear.
            for cut in [start + 3.min(end - start - 1), start + (end - start) / 2] {
                if cut <= start || cut >= end {
                    continue;
                }
                let crash = crashed_copy(&dir, &wal_bytes, cut, "torn");
                let (rec, report) = DurableDb::recover(&crash, FsyncPolicy::Never).unwrap();
                prop_assert!(report.torn_tail.is_some(), "mid-record cut must tear");
                prop_assert_eq!(report.records_replayed as usize, i);
                assert_recovered_matches(rec.db(), &by_lsn[i], &format!("torn in record {}", i + 1))?;
                std::fs::remove_dir_all(crash).unwrap();
            }
        }
        // Full-log boundary: recovery reproduces the live state.
        let final_state = OracleState {
            theory: oracle.theory().clone(),
            n_constraints: oracle.constraints().len(),
        };
        let crash = crashed_copy(&dir, &wal_bytes, wal_bytes.len(), "full");
        let (rec, _) = DurableDb::recover(&crash, FsyncPolicy::Never).unwrap();
        assert_recovered_matches(rec.db(), &final_state, "at the full log")?;
        std::fs::remove_dir_all(crash).unwrap();

        // ---- Snapshot + replay == full replay -------------------------
        let snap_lsn = durable.snapshot().unwrap();
        prop_assert_eq!(snap_lsn as usize, by_lsn.len() - 1);
        drop(durable);
        let (via_snapshot, r1) = DurableDb::recover(&dir, FsyncPolicy::Never).unwrap();
        prop_assert_eq!(r1.snapshot_lsn, Some(snap_lsn));
        prop_assert_eq!(r1.records_replayed, 0);
        let (via_replay, r2) = DurableDb::recover_with(
            &dir,
            FsyncPolicy::Never,
            RecoveryOptions { use_latest_snapshot: false },
        )
        .unwrap();
        prop_assert_eq!(r2.snapshot_lsn, Some(0));
        prop_assert_eq!(r2.records_replayed as usize, by_lsn.len() - 1);
        assert_recovered_matches(via_snapshot.db(), &final_state, "via snapshot")?;
        assert_recovered_matches(via_replay.db(), &final_state, "via full replay")?;
        prop_assert_eq!(
            via_snapshot.prover().atom_model(),
            via_replay.prover().atom_model()
        );

        // ---- Compaction preserves the state ---------------------------
        let mut compacted = via_snapshot;
        let _ = compacted.compact().unwrap();
        drop(compacted);
        let (rec, report) = DurableDb::recover(&dir, FsyncPolicy::Never).unwrap();
        prop_assert_eq!(report.records_replayed, 0);
        assert_recovered_matches(rec.db(), &final_state, "after compaction")?;
        drop(rec);

        std::fs::remove_dir_all(dir).unwrap();
    }

    /// [`FsyncPolicy::Batch`]`(n)`'s loss window is tight: after every
    /// commit fewer than `n` records await a sync (the `n`-th append
    /// syncs), an explicit sync empties the window, and a clean drop
    /// flushes it — the log on disk is complete and recovery reproduces
    /// the live state exactly.
    #[test]
    fn batch_policy_loss_window_is_tight(
        n in 1u32..6,
        raw in proptest::collection::vec((0u8..10, 0u8..8, 0u8..8, 0u8..8), 1..24),
    ) {
        let dir = temp_dir("batch");
        let theory = Theory::from_text(RULES[1]).unwrap();
        let mut durable = DurableDb::create(&dir, theory.clone(), FsyncPolicy::Batch(n)).unwrap();
        let mut oracle = EpistemicDb::new(theory);
        for op in &raw {
            let (is_assert, w) = op_formula(*op);
            let dv = if is_assert {
                durable.transaction().assert(w.clone()).commit()
            } else {
                durable.transaction().retract(w.clone()).commit()
            };
            let ov = if is_assert {
                oracle.transaction().assert(w.clone()).commit()
            } else {
                oracle.transaction().retract(w).commit()
            };
            prop_assert_eq!(dv.is_ok(), ov.is_ok(), "verdict divergence");
            prop_assert!(
                durable.pending_unsynced() < n,
                "window exceeded Batch({}): {} pending",
                n,
                durable.pending_unsynced()
            );
        }
        durable.sync().unwrap();
        prop_assert_eq!(durable.pending_unsynced(), 0, "explicit sync empties the window");
        // Reopen the window, then drop without ceremony: the drop-flush
        // leaves a complete, untorn log equal to the live state.
        let _ = durable.transaction().assert(parse("hired(a0)").unwrap()).commit();
        let _ = oracle.transaction().assert(parse("hired(a0)").unwrap()).commit();
        let final_state = OracleState {
            theory: oracle.theory().clone(),
            n_constraints: 0,
        };
        drop(durable);
        let scan = Wal::scan_file(dir.join(WAL_FILE)).unwrap();
        prop_assert!(scan.torn.is_none(), "clean drop left a torn log");
        let (rec, report) = DurableDb::recover(&dir, FsyncPolicy::Never).unwrap();
        prop_assert!(report.torn_tail.is_none());
        prop_assert!(report.rejected.is_empty());
        assert_recovered_matches(rec.db(), &final_state, "after clean drop under Batch(n)")?;
        drop(rec);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
