//! Delta-aware database view for semi-naive fixpoint rounds.
//!
//! Semi-naive evaluation needs two synchronized sets of facts per stratum:
//! the **total** database (everything derived so far — joined against by
//! non-delta literals and consulted by stratified negation) and the
//! **delta** (only the facts that became true in the previous round — the
//! literal designated as "new" must match here). [`DeltaDatabase`] owns
//! both and keeps them consistent through [`DeltaDatabase::advance`].

use crate::database::Database;

/// A database split into the stable total and the last round's delta.
///
/// The delta starts **empty**: round 1 of a fixpoint evaluates full join
/// plans against the total, and each subsequent round's delta is installed
/// by [`DeltaDatabase::advance`].
#[derive(Debug, Clone, Default)]
pub struct DeltaDatabase {
    total: Database,
    delta: Database,
}

impl DeltaDatabase {
    /// Wrap an initial fact set; the delta starts empty.
    pub fn new(initial: Database) -> Self {
        DeltaDatabase {
            total: initial,
            delta: Database::new(),
        }
    }

    /// Resume from an existing fixpoint: `model` is a database already
    /// closed under whatever rules produced it, and `new_facts` are the
    /// facts an update wants to add. The genuinely new ones (those absent
    /// from `model`) are absorbed into the total **and** installed as the
    /// initial delta, so a semi-naive loop can continue with delta-variant
    /// plans only — no full round 1 re-deriving the old model.
    pub fn resume(model: Database, new_facts: &Database) -> Self {
        let mut ddb = DeltaDatabase::new(model);
        ddb.advance(new_facts);
        ddb
    }

    /// Everything derived so far.
    pub fn total(&self) -> &Database {
        &self.total
    }

    /// The facts that became true in the last [`DeltaDatabase::advance`].
    pub fn delta(&self) -> &Database {
        &self.delta
    }

    /// Mutable handles to both halves (for index warm-up).
    pub fn parts_mut(&mut self) -> (&mut Database, &mut Database) {
        (&mut self.total, &mut self.delta)
    }

    /// Finish a round: keep only the candidates not already in the total,
    /// add them to the total, and install them as the new delta. Returns
    /// the number of genuinely new facts (0 means the fixpoint is reached).
    pub fn advance(&mut self, candidates: &Database) -> usize {
        let mut next = Database::new();
        for (pred, rel) in candidates.relations() {
            for t in rel.iter() {
                if !self.total.contains_tuple(pred, t) {
                    next.insert_tuple(pred, t.clone());
                }
            }
        }
        let added = next.len();
        self.total.union_with(&next);
        self.delta = next;
        added
    }

    /// Unwrap the accumulated total.
    pub fn into_total(self) -> Database {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::formula::Atom;
    use epilog_syntax::parse;

    fn ga(src: &str) -> Atom {
        match parse(src).unwrap() {
            epilog_syntax::Formula::Atom(a) => a,
            other => panic!("not an atom: {other}"),
        }
    }

    #[test]
    fn delta_starts_empty() {
        let mut base = Database::new();
        base.insert(&ga("e(a, b)"));
        let d = DeltaDatabase::new(base);
        assert_eq!(d.total().len(), 1);
        assert!(d.delta().is_empty());
    }

    #[test]
    fn resume_seeds_only_genuinely_new_facts() {
        let mut model = Database::new();
        model.insert(&ga("e(a, b)"));
        model.insert(&ga("t(a, b)"));
        let mut new_facts = Database::new();
        new_facts.insert(&ga("e(a, b)")); // already in the model
        new_facts.insert(&ga("e(b, c)")); // genuinely new
        let d = DeltaDatabase::resume(model, &new_facts);
        assert_eq!(d.total().len(), 3);
        assert_eq!(d.delta().len(), 1);
        assert!(d.delta().contains(&ga("e(b, c)")));
    }

    #[test]
    fn advance_filters_dedups_and_installs() {
        let mut base = Database::new();
        base.insert(&ga("e(a, b)"));
        let mut d = DeltaDatabase::new(base);

        let mut round = Database::new();
        round.insert(&ga("e(a, b)")); // already known
        round.insert(&ga("t(a, b)")); // new
        assert_eq!(d.advance(&round), 1);
        assert_eq!(d.total().len(), 2);
        assert_eq!(d.delta().len(), 1);
        assert!(d.delta().contains(&ga("t(a, b)")));

        // A round deriving nothing new reaches the fixpoint.
        let mut again = Database::new();
        again.insert(&ga("t(a, b)"));
        assert_eq!(d.advance(&again), 0);
        assert!(d.delta().is_empty());
        assert_eq!(d.into_total().len(), 2);
    }
}
