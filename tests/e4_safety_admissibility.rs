//! E4 — the safety and admissibility classification tables
//! (Definitions 5.1–5.3, Examples 5.1–5.5, Result 5.1, §5.2).

use epilog::prelude::*;
use epilog::syntax::{is_k1, is_normal_query, is_subjective, Admissibility};

#[test]
fn example_51_safe_formulas() {
    for src in [
        "p(x, y) & K q(x) & ~K r(x)",
        "exists x. ~r(x)",
        "~K (exists x. exists y. p(x, y) -> q(x) | r(y))",
        "p(x, y) & ~K q(x) & ~K r(y)",
        "exists x. exists y. p(x, y) & ~(K q(x) | K ~r(y))",
    ] {
        assert!(is_safe(&parse(src).unwrap()), "expected safe: {src}");
    }
}

#[test]
fn example_52_unsafe_formulas() {
    for src in [
        "exists x. ~K p(x)",
        "r(x) & ~K p(x) & ~K q(y)",
        "~K q(x) & K r(x)",
    ] {
        assert!(!is_safe(&parse(src).unwrap()), "expected unsafe: {src}");
    }
}

#[test]
fn lemma_51_right_association_preserves_safety() {
    // (w₁ ∧ w₂) ∧ w₃ safe ⇒ w₁ ∧ (w₂ ∧ w₃) safe — systematically, over a
    // family of safe conjunctions.
    let triples = [
        ("p(x, y)", "K q(x)", "~K r(y)"),
        ("p(x, y)", "~K q(x)", "~K r(y)"),
        ("e(x, y)", "K q(y)", "~K (exists z. r(z))"),
    ];
    for (a, b, c) in triples {
        let left = parse(&format!("({a} & {b}) & {c}")).unwrap();
        let right = parse(&format!("{a} & ({b} & {c})")).unwrap();
        assert!(is_safe(&left), "left-assoc: {left}");
        assert!(is_safe(&right), "Lemma 5.1: {right}");
    }
}

#[test]
fn example_53_admissibility_of_section1() {
    let admissible = [
        "Teach(Mary, CS)",
        "K Teach(Mary, CS)",
        "K ~Teach(Mary, CS)",
        "exists x. K Teach(John, x)",
        "exists x. K Teach(x, CS)",
        "K (exists x. Teach(x, CS))",
        "exists x. Teach(x, Psych)",
        "exists x. K Teach(x, Psych)",
        "exists x. Teach(x, Psych) & ~Teach(x, CS)",
    ];
    for src in admissible {
        assert!(
            is_admissible(&parse(src).unwrap()),
            "expected admissible: {src}"
        );
    }
    // The last §1 query and the extra Example 5.3 formula are not.
    assert!(matches!(
        admissibility(&parse("exists x. Teach(x, Psych) & ~K Teach(x, CS)").unwrap()),
        Admissibility::BadExistentialScope(_)
    ));
    assert!(!is_admissible(
        &parse("exists x. ~K Teach(x, CS) & K Teach(x, Psych)").unwrap()
    ));
}

#[test]
fn example_55_pair() {
    assert!(is_admissible(&parse("p(x) & K q(x)").unwrap()));
    assert!(!is_admissible(&parse("exists x. p(x) & K q(x)").unwrap()));
}

#[test]
fn result_51_subjective_k1() {
    // For subjective K₁ sentences: admissible iff safe with distinct
    // quantified variables. Exercise both directions.
    let good = parse("~(exists x. K emp(x) & ~K (exists y. ss(x, y)))").unwrap();
    assert!(is_subjective(&good) && is_k1(&good));
    assert!(is_safe(&good));
    assert!(is_admissible(&good));

    // Safe but with a duplicated quantified variable (the §5.3
    // cautionary example): not admissible.
    let dup = parse("exists x. K (exists x. p(x)) & K q(x)").unwrap();
    assert!(is_subjective(&dup) && is_k1(&dup));
    assert!(matches!(
        admissibility(&dup),
        Admissibility::VariableCollision(_)
    ));

    // Unsafe subjective K₁: not admissible.
    let unsafe_s = parse("exists x. ~K p(x)").unwrap();
    assert!(is_subjective(&unsafe_s) && is_k1(&unsafe_s));
    assert!(!is_admissible(&unsafe_s));
}

#[test]
fn normal_queries_admissible_iff_safe() {
    // §5.2, systematically: for normal queries, admissible ⇔ safe.
    let cases = [
        "p(x) & K q(x)",
        "p(x) & ~K q(x)",
        "~K q(x) & p(x)",
        "K p(x) & K q(y)",
        "p(x, y) & K q(x) & ~K r(y)",
        "~p(a)",
        "K ~p(x)",
        "~K ~p(a)",
    ];
    for src in cases {
        let w = parse(src).unwrap();
        assert!(is_normal_query(&w), "{src} is a normal query");
        assert_eq!(
            is_admissible(&w),
            is_safe(&w),
            "normal query {src}: admissible iff safe"
        );
    }
}

#[test]
fn subjective_formulas_classified() {
    // Definition 5.2's positive and negative space.
    for s in [
        "x = y",
        "K p(x)",
        "K (exists y. ss(x, y))",
        "~K male(x) & ~K female(x)",
        "exists x. K Teach(x, CS)",
        "K ~K p",
    ] {
        assert!(is_subjective(&parse(s).unwrap()), "{s} subjective");
    }
    for s in ["p(x)", "Teach(x, Psych) & ~K Teach(x, CS)", "K p & q"] {
        assert!(!is_subjective(&parse(s).unwrap()), "{s} not subjective");
    }
}

#[test]
fn lemma_52_subjective_always_decided() {
    // Σ ⊨ π or Σ ⊨ ¬π for subjective π — via the full evaluator, against
    // several databases.
    let dbs = ["p | q", "p(a)\nexists x. q(x)", ""];
    let queries = ["K (p | q)", "~K p", "K p | K q"];
    for db_src in dbs {
        let db = EpistemicDb::from_text(db_src).unwrap();
        for q in queries {
            let w = parse(q).unwrap();
            assert!(is_subjective(&w));
            assert_ne!(
                db.ask(&w),
                Answer::Unknown,
                "subjective {q} undecided against {db_src:?}"
            );
        }
    }
}
