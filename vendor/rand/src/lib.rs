//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace: `StdRng::seed_from_u64`, `Rng::gen_range` over integer
//! ranges, `Rng::gen_bool`, and `Rng::gen` for a few primitives.
//!
//! The container this repository builds in has no route to a crates.io
//! mirror, so the real crate cannot be fetched; this shim keeps the
//! public API (for the calls we make) source-compatible so the path
//! dependency can be swapped back to the registry version untouched.
//!
//! The generator is SplitMix64 — statistically fine for workload
//! generation, NOT cryptographic, and deliberately deterministic per
//! seed so benchmark inputs are reproducible.

use std::ops::Range;

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(&mut |bound| gen_index(self.next_u64(), bound))
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0, 1]");
        // 53 uniform mantissa bits, exactly rand's strategy.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Uniform sample of a primitive (subset of `rand::Rng::gen`).
    fn gen<T: UniformPrimitive>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }
}

/// Map a raw draw into `[0, bound)` without modulo bias worth worrying
/// about at our bounds (Lemire-style widening multiply).
fn gen_index(raw: u64, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((raw as u128 * bound as u128) >> 64) as u64
}

/// Half-open ranges that can be sampled (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> T;
}

/// Integers that uniform ranges can produce. The single blanket impl of
/// [`SampleRange`] below mirrors the real crate's structure so that type
/// inference unifies `gen_range(0..2)` with the use site (e.g. slice
/// indexing wants `usize`); separate per-type impls would leave the
/// literal to default to `i32`.
pub trait UniformInt: Copy {
    fn to_i128(self) -> i128;
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "empty gen_range");
        T::from_i128(lo + draw((hi - lo) as u64) as i128)
    }
}

/// Primitives `Rng::gen` can produce.
pub trait UniformPrimitive {
    fn from_u64(raw: u64) -> Self;
}

impl UniformPrimitive for u64 {
    fn from_u64(raw: u64) -> Self {
        raw
    }
}
impl UniformPrimitive for u32 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}
impl UniformPrimitive for bool {
    fn from_u64(raw: u64) -> Self {
        raw >> 63 == 1
    }
}
impl UniformPrimitive for f64 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64. The real `StdRng` is ChaCha12; we only promise
    /// determinism-per-seed, not stream compatibility.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(0..5usize);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
