//! The canonical model `S(Σ)` of Lemma 6.2.
//!
//! Every elementary theory `Σ` (Definition 6.3) has a model whose atoms
//! mention only parameters occurring in `Σ`. The construction: for
//! positive existential sentences, collect the atoms of *every* disjunct,
//! instantiating existentials with a parameter already mentioned in `Σ`;
//! then close under the rules, firing a rule whenever all its body atoms
//! are present and adding its head's atoms the same way.
//!
//! The resulting set `S(Σ)` is finite (only `Σ`'s parameters and
//! predicates appear) and is a model of `Σ` — which is what powers the
//! finiteness Lemma 6.3 and through it the completeness Theorem 6.2.

use epilog_storage::{ConjunctionPlan, Database, SlotMap};
use epilog_syntax::formula::{Atom, Formula};
use epilog_syntax::{Param, Term, Theory, Var};
use std::collections::HashMap;

/// Build the canonical model `S(Σ)` of an elementary theory.
///
/// Returns `None` when the theory is not elementary (the construction is
/// only defined — and only correct — for elementary theories).
pub fn canonical_model(theory: &Theory) -> Option<Database> {
    if !theory.is_elementary() {
        return None;
    }
    // Lemma 6.2 assumes wlog that Σ mentions a parameter; if it does not,
    // any fixed parameter works as the existential witness.
    let witness = theory
        .active_domain()
        .first()
        .copied()
        .unwrap_or_else(|| Param::new("c0"));

    let mut model = Database::new();
    // S₀: the atoms of every positive existential fact.
    for fact in theory.facts() {
        for atom in pe_atoms(fact, witness, &HashMap::new()) {
            model.insert(&atom);
        }
    }
    // Sᵢ₊₁: close under rules. Each rule body is compiled once into a
    // join plan over the model's indexed storage and re-run per round.
    let rules = theory.rules();
    let compiled: Vec<(ConjunctionPlan, SlotMap, &Formula)> = rules
        .iter()
        .map(|rule| {
            let mut slots = SlotMap::new();
            let plan = ConjunctionPlan::compile(&rule.body, &mut slots, None);
            (plan, slots, &rule.head)
        })
        .collect();
    loop {
        let mut added = false;
        for (plan, slots, head) in &compiled {
            plan.ensure_indexes(&mut model, None);
            let mut env = vec![None; slots.len()];
            let mut pending: Vec<Atom> = Vec::new();
            plan.for_each_match(&model, None, &mut env, &mut |env| {
                let binding: HashMap<Var, Param> = slots
                    .vars()
                    .iter()
                    .zip(env)
                    .filter_map(|(v, p)| p.map(|p| (*v, p)))
                    .collect();
                pending.extend(pe_atoms(head, witness, &binding));
            });
            for atom in pending {
                added |= model.insert(&atom);
            }
        }
        if !added {
            // Index warm-up creates empty relation entries for body
            // predicates without facts; S(Σ) is a set of atoms.
            model.prune_empty();
            return Some(model);
        }
    }
}

/// `M_Σ(w)` of Lemma 6.2: the atoms obtained from a positive existential
/// formula by taking *both* branches of every `∨`/`∧` and instantiating
/// every `∃` with the designated witness parameter.
fn pe_atoms(w: &Formula, witness: Param, env: &HashMap<Var, Param>) -> Vec<Atom> {
    match w {
        Formula::Atom(a) => {
            let terms: Vec<Term> = a
                .terms
                .iter()
                .map(|t| match t {
                    Term::Param(p) => Term::Param(*p),
                    Term::Var(v) => Term::Param(*env.get(v).unwrap_or_else(|| {
                        panic!("unbound variable {v} in positive existential formula")
                    })),
                })
                .collect();
            vec![Atom::new(a.pred, terms)]
        }
        Formula::And(a, b) | Formula::Or(a, b) => {
            let mut out = pe_atoms(a, witness, env);
            out.extend(pe_atoms(b, witness, env));
            out
        }
        Formula::Exists(x, body) => {
            let mut env2 = env.clone();
            env2.insert(*x, witness);
            pe_atoms(body, witness, &env2)
        }
        other => panic!("not positive existential: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluate a FOPCE sentence in a finite world over a finite universe —
    /// a little model checker used only to validate `S(Σ) ⊨ Σ`.
    fn holds(w: &Formula, db: &Database, universe: &[Param]) -> bool {
        fn go(
            w: &Formula,
            db: &Database,
            universe: &[Param],
            env: &mut HashMap<Var, Param>,
        ) -> bool {
            match w {
                Formula::Atom(a) => {
                    let terms: Vec<Term> = a
                        .terms
                        .iter()
                        .map(|t| match t {
                            Term::Param(p) => Term::Param(*p),
                            Term::Var(v) => Term::Param(env[v]),
                        })
                        .collect();
                    db.contains(&Atom::new(a.pred, terms))
                }
                Formula::Eq(a, b) => {
                    let get = |t: &Term, env: &HashMap<Var, Param>| match t {
                        Term::Param(p) => *p,
                        Term::Var(v) => env[v],
                    };
                    get(a, env) == get(b, env)
                }
                Formula::Not(a) => !go(a, db, universe, env),
                Formula::And(a, b) => go(a, db, universe, env) && go(b, db, universe, env),
                Formula::Or(a, b) => go(a, db, universe, env) || go(b, db, universe, env),
                Formula::Implies(a, b) => !go(a, db, universe, env) || go(b, db, universe, env),
                Formula::Iff(a, b) => go(a, db, universe, env) == go(b, db, universe, env),
                Formula::Forall(x, body) => universe.iter().all(|p| {
                    env.insert(*x, *p);
                    let r = go(body, db, universe, env);
                    env.remove(x);
                    r
                }),
                Formula::Exists(x, body) => universe.iter().any(|p| {
                    env.insert(*x, *p);
                    let r = go(body, db, universe, env);
                    env.remove(x);
                    r
                }),
                Formula::Know(_) => unreachable!("FOPCE only"),
            }
        }
        go(w, db, universe, &mut HashMap::new())
    }

    fn check_is_model(theory: &Theory) {
        let model = canonical_model(theory).expect("theory is elementary");
        let universe: Vec<Param> = {
            let mut u = theory.active_domain();
            if u.is_empty() {
                u.push(Param::new("c0"));
            }
            u
        };
        for s in theory.sentences() {
            assert!(
                holds(s, &model, &universe),
                "S(Σ) must satisfy `{s}`; S(Σ) = {:?}",
                model.atoms().map(|a| a.to_string()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn teach_db_canonical_model() {
        let t = Theory::from_text(
            "Teach(John, Math)
             exists x. Teach(x, CS)
             Teach(Mary, Psych) | Teach(Sue, Psych)",
        )
        .unwrap();
        let m = canonical_model(&t).unwrap();
        check_is_model(&t);
        // Both disjuncts present, existential witnessed by a Σ-parameter.
        assert!(m.len() >= 4);
        let params = m.params();
        for p in &params {
            assert!(
                !p.is_fresh(),
                "S(Σ) mentions only parameters of Σ (Lemma 6.2)"
            );
        }
    }

    #[test]
    fn rules_fire_transitively() {
        let t = Theory::from_text(
            "p(a)
             forall x. p(x) -> q(x)
             forall x. q(x) -> r(x)",
        )
        .unwrap();
        let m = canonical_model(&t).unwrap();
        check_is_model(&t);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn existential_heads_reuse_parameters() {
        let t = Theory::from_text(
            "node(a)
             forall x. node(x) -> exists y. edge(x, y)",
        )
        .unwrap();
        let m = canonical_model(&t).unwrap();
        check_is_model(&t);
        // The head's witness is a parameter of Σ, so the chase terminates
        // even for rules that would diverge under fresh-null chasing.
        assert!(m.len() >= 2);
    }

    #[test]
    fn recursive_rules_terminate() {
        let t = Theory::from_text(
            "e(a, b)
             e(b, c)
             forall x, y. e(x, y) -> t(x, y)
             forall x, y, z. t(x, y) & e(y, z) -> t(x, z)",
        )
        .unwrap();
        let m = canonical_model(&t).unwrap();
        check_is_model(&t);
        // t(a,b), t(b,c), t(a,c) and the two e-atoms.
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn non_elementary_rejected() {
        let t = Theory::from_text("~p(a)").unwrap();
        assert!(canonical_model(&t).is_none());
    }

    #[test]
    fn parameterless_theory_gets_default_witness() {
        let t = Theory::from_text("exists x. p(x)").unwrap();
        let m = canonical_model(&t).unwrap();
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn disjunctive_facts_take_both_branches() {
        let t = Theory::from_text("p(a) | q(b)").unwrap();
        let m = canonical_model(&t).unwrap();
        check_is_model(&t);
        assert_eq!(
            m.len(),
            2,
            "the construction takes the union of both disjuncts"
        );
    }
}
