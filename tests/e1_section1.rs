//! E1 — the Section 1 query table, reproduced exactly.
//!
//! Every query of the paper's introduction, with the paper's stated
//! answer, evaluated through the Levesque-style `ask` reducer; admissible
//! queries are additionally cross-checked against the `demo` evaluator,
//! and the propositional examples against the brute-force semantic
//! oracle.

use epilog::prelude::*;
use epilog::semantics::ModelSet;
use epilog::syntax::Pred;

fn teach_db() -> EpistemicDb {
    EpistemicDb::from_text(
        "Teach(John, Math)
         exists x. Teach(x, CS)
         Teach(Mary, Psych) | Teach(Sue, Psych)",
    )
    .unwrap()
}

#[test]
fn p_or_q_table() {
    let db = EpistemicDb::from_text("p | q").unwrap();
    let oracle = ModelSet::models(
        db.theory(),
        &[Param::new("c")],
        &[Pred::new("p", 0), Pred::new("q", 0)],
    );
    let table = [
        ("p", Answer::Unknown),
        ("K p", Answer::No),
        ("K p | K ~p", Answer::No),
    ];
    for (q, expected) in table {
        let w = parse(q).unwrap();
        assert_eq!(db.ask(&w), expected, "ask({q})");
        assert_eq!(oracle.answer(&w), expected, "oracle({q})");
    }
}

#[test]
fn teach_table() {
    let db = teach_db();
    let table = [
        ("Teach(Mary, CS)", Answer::Unknown),
        ("K Teach(Mary, CS)", Answer::No),
        ("K ~Teach(Mary, CS)", Answer::No),
        ("exists x. K Teach(John, x)", Answer::Yes),
        ("exists x. K Teach(x, CS)", Answer::No),
        ("K (exists x. Teach(x, CS))", Answer::Yes),
        ("exists x. Teach(x, Psych)", Answer::Yes),
        ("exists x. K Teach(x, Psych)", Answer::No),
        ("exists x. Teach(x, Psych) & ~Teach(x, CS)", Answer::Unknown),
        ("exists x. Teach(x, Psych) & ~K Teach(x, CS)", Answer::Yes),
    ];
    for (q, expected) in table {
        let w = parse(q).unwrap();
        assert_eq!(db.ask(&w), expected, "ask({q})");
    }
}

#[test]
fn teach_table_demo_agreement() {
    // Example 5.3: all but the last §1 query are admissible; on those,
    // demo's success/failure must match ask's yes/not-yes.
    let db = teach_db();
    let queries = [
        "K Teach(Mary, CS)",
        "K ~Teach(Mary, CS)",
        "exists x. K Teach(John, x)",
        "exists x. K Teach(x, CS)",
        "K (exists x. Teach(x, CS))",
        "exists x. Teach(x, Psych)",
        "exists x. K Teach(x, Psych)",
        "exists x. Teach(x, Psych) & ~Teach(x, CS)",
    ];
    for q in queries {
        let w = parse(q).unwrap();
        assert!(is_admissible(&w), "{q} should be admissible");
        let outcome = demo_sentence(db.prover(), &w).unwrap();
        assert_eq!(
            outcome == DemoOutcome::Succeeds,
            db.ask(&w) == Answer::Yes,
            "demo vs ask on {q}"
        );
    }
    // The last query is not admissible — demo refuses, ask answers.
    let last = parse("exists x. Teach(x, Psych) & ~K Teach(x, CS)").unwrap();
    assert!(!is_admissible(&last));
    assert!(db.demo(&last).is_err());
    assert_eq!(db.ask(&last), Answer::Yes);
}

#[test]
fn mary_or_sue_answer_shape() {
    // "yes, Mary or Sue": the sentence is certain but neither binding is.
    let db = teach_db();
    assert_eq!(
        db.ask(&parse("exists x. Teach(x, Psych)").unwrap()),
        Answer::Yes
    );
    assert!(db.answers(&parse("Teach(x, Psych)").unwrap()).is_empty());
    assert_eq!(
        db.ask(&parse("Teach(Mary, Psych) | Teach(Sue, Psych)").unwrap()),
        Answer::Yes
    );
    assert_eq!(
        db.ask(&parse("Teach(Mary, Psych)").unwrap()),
        Answer::Unknown
    );
    assert_eq!(
        db.ask(&parse("Teach(Sue, Psych)").unwrap()),
        Answer::Unknown
    );
}

#[test]
fn john_math_is_the_only_known_answer() {
    let db = teach_db();
    let answers = db.demo_all(&parse("K Teach(John, x)").unwrap()).unwrap();
    assert_eq!(answers.len(), 1);
    assert_eq!(answers[0][0].name(), "Math");
    // And through the non-demo path as well.
    let answers = db.answers(&parse("K Teach(John, x)").unwrap());
    assert_eq!(answers.len(), 1);
    assert_eq!(answers[0][0].name(), "Math");
}
