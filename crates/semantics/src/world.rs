//! Worlds and FOPCE truth.
//!
//! A world (§2) is a set of true atomic sentences; we represent one as an
//! `epilog_storage::Database`. Truth of a FOPCE sentence is the usual
//! recursion, with two FOPCE-specific points: equality is decided by
//! parameter identity (unique names), and quantifiers range over a
//! caller-supplied finite universe approximating the countably infinite
//! parameter domain.

use epilog_storage::Database;
use epilog_syntax::formula::{Atom, Formula};
use epilog_syntax::{Param, Term, Var};
use std::collections::HashMap;

/// Truth of a FOPCE sentence in a world, quantifiers ranging over
/// `universe`.
///
/// # Panics
/// Panics on modal formulas (use [`crate::ModelSet::truth`]) and on free
/// variables.
pub fn holds_in_world(w: &Formula, world: &Database, universe: &[Param]) -> bool {
    holds_env(w, world, universe, &mut HashMap::new())
}

pub(crate) fn holds_env(
    w: &Formula,
    world: &Database,
    universe: &[Param],
    env: &mut HashMap<Var, Param>,
) -> bool {
    match w {
        Formula::Atom(a) => world.contains(&ground(a, env)),
        Formula::Eq(a, b) => deref(a, env) == deref(b, env),
        Formula::Not(x) => !holds_env(x, world, universe, env),
        Formula::And(a, b) => {
            holds_env(a, world, universe, env) && holds_env(b, world, universe, env)
        }
        Formula::Or(a, b) => {
            holds_env(a, world, universe, env) || holds_env(b, world, universe, env)
        }
        Formula::Implies(a, b) => {
            !holds_env(a, world, universe, env) || holds_env(b, world, universe, env)
        }
        Formula::Iff(a, b) => {
            holds_env(a, world, universe, env) == holds_env(b, world, universe, env)
        }
        Formula::Forall(x, body) => {
            let shadow = env.get(x).copied();
            let ok = universe.iter().all(|p| {
                env.insert(*x, *p);
                holds_env(body, world, universe, env)
            });
            restore(env, *x, shadow);
            ok
        }
        Formula::Exists(x, body) => {
            let shadow = env.get(x).copied();
            let ok = universe.iter().any(|p| {
                env.insert(*x, *p);
                holds_env(body, world, universe, env)
            });
            restore(env, *x, shadow);
            ok
        }
        Formula::Know(_) => panic!("holds_in_world is FOPCE-only; use ModelSet::truth"),
    }
}

pub(crate) fn ground(a: &Atom, env: &HashMap<Var, Param>) -> Atom {
    let terms: Vec<Term> = a.terms.iter().map(|t| Term::Param(deref(t, env))).collect();
    Atom::new(a.pred, terms)
}

fn deref(t: &Term, env: &HashMap<Var, Param>) -> Param {
    match t {
        Term::Param(p) => *p,
        Term::Var(v) => *env
            .get(v)
            .unwrap_or_else(|| panic!("unbound variable {v} in truth evaluation")),
    }
}

fn restore(env: &mut HashMap<Var, Param>, x: Var, shadow: Option<Param>) {
    match shadow {
        Some(p) => {
            env.insert(x, p);
        }
        None => {
            env.remove(&x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::parse;

    fn world(atoms: &[&str]) -> Database {
        atoms
            .iter()
            .map(|s| match parse(s).unwrap() {
                Formula::Atom(a) => a,
                other => panic!("not an atom: {other}"),
            })
            .collect()
    }

    fn u(names: &[&str]) -> Vec<Param> {
        names.iter().map(|n| Param::new(n)).collect()
    }

    #[test]
    fn atoms_and_connectives() {
        let w = world(&["p(a)", "q(b)"]);
        let universe = u(&["a", "b"]);
        assert!(holds_in_world(&parse("p(a)").unwrap(), &w, &universe));
        assert!(!holds_in_world(&parse("p(b)").unwrap(), &w, &universe));
        assert!(holds_in_world(
            &parse("p(a) & q(b)").unwrap(),
            &w,
            &universe
        ));
        assert!(holds_in_world(
            &parse("p(b) | q(b)").unwrap(),
            &w,
            &universe
        ));
        assert!(holds_in_world(
            &parse("p(b) -> q(a)").unwrap(),
            &w,
            &universe
        ));
        assert!(holds_in_world(&parse("~p(b)").unwrap(), &w, &universe));
    }

    #[test]
    fn quantifiers_over_universe() {
        let w = world(&["p(a)", "p(b)"]);
        assert!(holds_in_world(
            &parse("forall x. p(x)").unwrap(),
            &w,
            &u(&["a", "b"])
        ));
        assert!(!holds_in_world(
            &parse("forall x. p(x)").unwrap(),
            &w,
            &u(&["a", "b", "c"])
        ));
        assert!(holds_in_world(
            &parse("exists x. p(x)").unwrap(),
            &w,
            &u(&["a", "b", "c"])
        ));
    }

    #[test]
    fn equality_unique_names() {
        let w = world(&[]);
        let universe = u(&["a", "b"]);
        assert!(holds_in_world(&parse("a = a").unwrap(), &w, &universe));
        assert!(!holds_in_world(&parse("a = b").unwrap(), &w, &universe));
        assert!(holds_in_world(
            &parse("exists x. x != a").unwrap(),
            &w,
            &universe
        ));
    }

    #[test]
    #[should_panic(expected = "FOPCE-only")]
    fn modal_rejected() {
        let w = world(&[]);
        holds_in_world(&parse("K p").unwrap(), &w, &[]);
    }
}
