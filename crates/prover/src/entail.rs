//! First-order entailment for FOPCE by grounding + SAT.
//!
//! `Σ ⊨_FOPCE g` iff `Σ ∧ ¬g` has no model. Models of FOPCE theories are
//! worlds over the countably infinite parameter domain; we ground over the
//! finite universe consisting of the active domain plus a budget of fresh
//! witness parameters and hand the result to the CDCL solver. See the crate
//! docs for the exactness discussion.

use crate::ground::GroundContext;
use epilog_sat::{tseitin, Cnf, SatResult, Solver};
use epilog_storage::Database;
use epilog_syntax::{is_first_order, transform, Formula, Param, Theory};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How the finite grounding universe is chosen.
#[derive(Debug, Clone, Copy)]
pub struct UniversePolicy {
    /// Maximum number of fresh witness parameters appended to the active
    /// domain. Existentials that are not nested under universals need one
    /// witness each for exactness; more witnesses only grow the grounding.
    pub witness_cap: usize,
}

impl Default for UniversePolicy {
    fn default() -> Self {
        UniversePolicy { witness_cap: 3 }
    }
}

/// A theorem prover for one fixed FOPCE theory `Σ`.
///
/// Entailment results are memoized per goal sentence — the `demo`
/// evaluator asks the same ground questions repeatedly while backtracking.
///
/// A `Prover` is `Sync`: queries take `&self`, and the memo and SAT-call
/// counter live behind a `Mutex`/atomic so an immutable committed state
/// can be shared across reader threads (the MVCC serving layer). Two
/// threads racing on the same uncached goal both compute it and insert
/// the same answer; the lock is never held across a SAT call.
pub struct Prover {
    theory: Theory,
    witnesses: Vec<Param>,
    memo: Mutex<HashMap<Formula, bool>>,
    /// A materialized least model answering ground-atom goals without SAT
    /// (see [`Prover::with_atom_model`]).
    atom_model: Option<Database>,
    /// Count of SAT-solver invocations (see [`Prover::sat_calls`]).
    sat_calls: AtomicU64,
}

impl Clone for Prover {
    fn clone(&self) -> Self {
        Prover {
            theory: self.theory.clone(),
            witnesses: self.witnesses.clone(),
            memo: Mutex::new(self.memo.lock().unwrap().clone()),
            atom_model: self.atom_model.clone(),
            sat_calls: AtomicU64::new(self.sat_calls.load(Ordering::Relaxed)),
        }
    }
}

impl Prover {
    /// Build a prover with the default universe policy.
    pub fn new(theory: Theory) -> Self {
        Prover::with_policy(theory, UniversePolicy::default())
    }

    /// Build a prover with an explicit universe policy.
    pub fn with_policy(theory: Theory, policy: UniversePolicy) -> Self {
        // One witness per existential node of the theory (counted on the
        // NNF so polarities are explicit), plus one spare for goal-side
        // quantifiers, at least 1 (the FOPCE domain is never empty),
        // clamped by the cap.
        let mut exists_nodes = 0usize;
        for s in theory.sentences() {
            exists_nodes += count_existentials(&transform::nnf(s));
        }
        let budget = (exists_nodes + 1).clamp(1, policy.witness_cap.max(1));
        let witnesses = (0..budget).map(|_| Param::fresh("w")).collect();
        Prover {
            theory,
            witnesses,
            memo: Mutex::new(HashMap::new()),
            atom_model: None,
            sat_calls: AtomicU64::new(0),
        }
    }

    /// Attach a materialized model that decides ground-atom goals without
    /// invoking the SAT pipeline: `entails(a)` for a ground atom `a`
    /// becomes a tuple lookup.
    ///
    /// # Soundness contract
    /// The caller must guarantee the model holds **exactly** the ground
    /// atoms entailed by the theory — true for the least model of a
    /// definite (negation- and disjunction-free) program, the routing
    /// `epilog-core` performs. All other goals still go through grounding
    /// and SAT.
    pub fn with_atom_model(mut self, model: Database) -> Self {
        self.atom_model = Some(model);
        self
    }

    /// The attached ground-atom model, if any.
    pub fn atom_model(&self) -> Option<&Database> {
        self.atom_model.as_ref()
    }

    /// Build a prover for an updated theory, reusing this prover's witness
    /// budget — the model-maintenance hook for transactional updates.
    ///
    /// The memo starts empty (entailments may have changed) and `model`,
    /// when given, becomes the attached ground-atom model (same soundness
    /// contract as [`Prover::with_atom_model`]). Carrying the witness
    /// budget over is sound when the update adds or removes only **ground
    /// atoms**: they contribute no existential nodes, so the recomputed
    /// budget would be identical. Updates that change quantified
    /// sentences should build a fresh [`Prover::new`] instead.
    pub fn updated(&self, theory: Theory, model: Option<Database>) -> Prover {
        Prover {
            theory,
            witnesses: self.witnesses.clone(),
            memo: Mutex::new(HashMap::new()),
            atom_model: model,
            sat_calls: AtomicU64::new(0),
        }
    }

    /// The theory this prover answers questions about.
    pub fn theory(&self) -> &Theory {
        &self.theory
    }

    /// The grounding universe for a goal: active domain ∪ goal parameters
    /// ∪ witnesses, deterministic order.
    pub fn universe_for(&self, goal: &Formula) -> Vec<Param> {
        let mut u = self.theory.active_domain();
        for p in goal.params() {
            if !u.contains(&p) {
                u.push(p);
            }
        }
        u.extend(self.witnesses.iter().copied());
        u
    }

    /// The candidate answer domain: active domain ∪ goal parameters (no
    /// witnesses — a fresh parameter is never a *certain* answer, because
    /// nothing in `Σ` constrains it; if it were entailed, infinitely many
    /// parameters would be, putting the goal outside the finite-instances
    /// fragment of §6).
    pub fn answer_domain(&self, goal: &Formula) -> Vec<Param> {
        let mut u = self.theory.active_domain();
        for p in goal.params() {
            if !u.contains(&p) {
                u.push(p);
            }
        }
        u
    }

    /// Whether `Σ` is satisfiable.
    pub fn satisfiable(&self) -> bool {
        // Σ satisfiable iff Σ ⊭ (p ∧ ¬p) for a fresh proposition.
        !self.entails(&Formula::and(
            Formula::prop("__absurd"),
            Formula::not(Formula::prop("__absurd")),
        ))
    }

    /// Whether `Σ ∧ g` is satisfiable (the consistency reading of
    /// integrity constraints, Definition 3.1).
    pub fn consistent_with(&self, g: &Formula) -> bool {
        !self.entails(&Formula::not(g.clone()))
    }

    /// Decide `Σ ⊨_FOPCE g` for a FOPCE sentence `g`.
    ///
    /// # Panics
    /// Panics if `g` is modal or has free variables.
    pub fn entails(&self, g: &Formula) -> bool {
        assert!(is_first_order(g), "entailment goals must be FOPCE formulas");
        assert!(g.is_sentence(), "entailment goals must be sentences");
        if let (Some(model), Formula::Atom(a)) = (&self.atom_model, g) {
            if a.is_ground() {
                return model.contains(a);
            }
        }
        if let Some(&cached) = self.memo.lock().unwrap().get(g) {
            return cached;
        }
        let result = self.entails_uncached(g);
        self.memo.lock().unwrap().insert(g.clone(), result);
        result
    }

    fn entails_uncached(&self, g: &Formula) -> bool {
        self.sat_calls.fetch_add(1, Ordering::Relaxed);
        let universe = self.universe_for(g);
        let mut ctx = GroundContext::new(universe);
        let mut cnf = Cnf::new();
        let mut roots = Vec::with_capacity(self.theory.len() + 1);
        for s in self.theory.sentences() {
            roots.push(ctx.ground(s));
        }
        roots.push(ctx.ground(&Formula::not(g.clone())));
        // Atom variables come first, then Tseitin auxiliaries.
        cnf.reserve_vars(ctx.num_atoms());
        for p in &roots {
            let root = tseitin(p, &mut cnf);
            cnf.add_unit(root);
        }
        matches!(Solver::new(&cnf).solve(), SatResult::Unsat)
    }

    /// Number of memoized entailment results (diagnostics).
    pub fn memo_len(&self) -> usize {
        self.memo.lock().unwrap().len()
    }

    /// Number of SAT-solver invocations so far (benches/tests).
    pub fn sat_calls(&self) -> u64 {
        self.sat_calls.load(Ordering::Relaxed)
    }

    /// Reset the SAT-call counter (benches).
    pub fn reset_sat_calls(&self) {
        self.sat_calls.store(0, Ordering::Relaxed);
    }
}

fn count_existentials(w: &Formula) -> usize {
    let mut n = 0;
    for s in w.subformulas() {
        if matches!(s, Formula::Exists(..)) {
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::parse;

    fn teach() -> Prover {
        Prover::new(
            Theory::from_text(
                "Teach(John, Math)
                 exists x. Teach(x, CS)
                 Teach(Mary, Psych) | Teach(Sue, Psych)",
            )
            .unwrap(),
        )
    }

    fn entails(p: &Prover, src: &str) -> bool {
        p.entails(&parse(src).unwrap())
    }

    #[test]
    fn extensional_facts() {
        let p = teach();
        assert!(entails(&p, "Teach(John, Math)"));
        assert!(!entails(&p, "Teach(John, CS)"));
        assert!(!entails(&p, "~Teach(John, CS)"));
    }

    #[test]
    fn existential_knowledge() {
        let p = teach();
        assert!(entails(&p, "exists x. Teach(x, CS)"));
        assert!(entails(&p, "exists x. Teach(x, Math)"));
        assert!(!entails(&p, "exists x. Teach(x, Philosophy)"));
    }

    #[test]
    fn disjunctive_knowledge() {
        let p = teach();
        assert!(entails(&p, "Teach(Mary, Psych) | Teach(Sue, Psych)"));
        assert!(!entails(&p, "Teach(Mary, Psych)"));
        assert!(!entails(&p, "Teach(Sue, Psych)"));
        assert!(entails(&p, "exists x. Teach(x, Psych)"));
    }

    #[test]
    fn null_value_not_a_known_individual() {
        // ∃x Teach(x,CS) holds but no particular parameter teaches CS:
        // Teach(p, CS) is not entailed for any p in the answer domain.
        let p = teach();
        for param in ["John", "Math", "CS", "Mary", "Sue", "Psych"] {
            assert!(
                !entails(&p, &format!("Teach({param}, CS)")),
                "{param} should not be a known CS teacher"
            );
        }
    }

    #[test]
    fn rules_chain() {
        let p = Prover::new(
            Theory::from_text(
                "emp(Mary)
                 forall x. emp(x) -> person(x)
                 forall x. person(x) -> mortal(x)",
            )
            .unwrap(),
        );
        assert!(entails(&p, "mortal(Mary)"));
        assert!(entails(&p, "exists x. mortal(x)"));
        assert!(!entails(&p, "mortal(John)"));
    }

    #[test]
    fn equality_semantics_unique_names() {
        let p = Prover::new(Theory::from_text("p(a)").unwrap());
        assert!(entails(&p, "a = a"));
        assert!(entails(&p, "a != b"));
        assert!(!entails(&p, "a = b"));
        // Domain closure: something exists that equals a.
        assert!(entails(&p, "exists x. x = a"));
        // Infinitely many parameters: not everything equals a.
        assert!(entails(&p, "~(forall x. x = a)"));
        assert!(entails(&p, "exists x. x != a"));
    }

    #[test]
    fn satisfiability() {
        assert!(teach().satisfiable());
        let contradictory = Prover::new(Theory::from_text("p(a)\n~p(a)").unwrap());
        assert!(!contradictory.satisfiable());
        assert!(Prover::new(Theory::empty()).satisfiable());
    }

    #[test]
    fn consistency_check_definition_31() {
        // DB = {emp(Mary)} is consistent with the first-order IC
        // ∀x (emp(x) ⊃ ∃y ss(x,y)) — the failure of Definition 3.1.
        let p = Prover::new(Theory::from_text("emp(Mary)").unwrap());
        let ic = parse("forall x. emp(x) -> exists y. ss(x, y)").unwrap();
        assert!(p.consistent_with(&ic));
        // But DB does not entail it — the failure mode of Definition 3.2
        // is on the empty database below.
        assert!(!p.entails(&ic));
        let empty = Prover::new(Theory::empty());
        assert!(
            !empty.entails(&ic),
            "even the empty DB fails the entailment reading"
        );
    }

    #[test]
    fn memoization_counts() {
        let p = teach();
        let q = parse("Teach(John, Math)").unwrap();
        assert!(p.entails(&q));
        assert!(p.entails(&q));
        assert_eq!(p.sat_calls(), 1, "second call must hit the memo");
    }

    #[test]
    fn atom_model_short_circuits_ground_atoms() {
        let theory = Theory::from_text("emp(Mary)\nforall x. emp(x) -> person(x)").unwrap();
        let mut model = Database::new();
        for s in ["emp(Mary)", "person(Mary)"] {
            let Formula::Atom(a) = parse(s).unwrap() else {
                unreachable!()
            };
            model.insert(&a);
        }
        let p = Prover::new(theory).with_atom_model(model);
        assert!(entails(&p, "person(Mary)"));
        assert!(!entails(&p, "person(Sue)"));
        assert_eq!(
            p.sat_calls(),
            0,
            "ground atoms must bypass the SAT pipeline"
        );
        // Non-atomic goals still go through grounding + SAT.
        assert!(entails(&p, "exists x. person(x)"));
        assert_eq!(p.sat_calls(), 1);
    }

    #[test]
    fn updated_prover_answers_for_the_new_theory() {
        let old = Prover::new(Theory::from_text("emp(Mary)").unwrap());
        assert!(entails(&old, "emp(Mary)"));
        assert!(!entails(&old, "emp(Sue)"));
        let mut theory = old.theory().clone();
        theory.assert(parse("emp(Sue)").unwrap()).unwrap();
        let mut model = Database::new();
        for s in ["emp(Mary)", "emp(Sue)"] {
            let Formula::Atom(a) = parse(s).unwrap() else {
                unreachable!()
            };
            model.insert(&a);
        }
        let new = old.updated(theory, Some(model));
        assert!(entails(&new, "emp(Sue)"));
        assert_eq!(new.sat_calls(), 0, "model answers ground atoms");
        // The memo did not leak across the update.
        assert_eq!(new.memo_len(), 0);
        assert!(entails(&new, "exists x. emp(x)"));
    }

    #[test]
    fn empty_theory_tautologies() {
        let p = Prover::new(Theory::empty());
        assert!(entails(&p, "p(a) | ~p(a)"));
        assert!(entails(&p, "forall x. p(x) -> p(x)"));
        assert!(!entails(&p, "p(a)"));
        assert!(!entails(&p, "~p(a)"));
    }

    #[test]
    fn existential_rule_heads() {
        let p = Prover::new(
            Theory::from_text(
                "node(a)
                 forall x. node(x) -> exists y. edge(x, y)",
            )
            .unwrap(),
        );
        assert!(entails(&p, "exists y. edge(a, y)"));
        // No self-loop is forced: a fresh witness serves as the target.
        assert!(!entails(&p, "edge(a, a)"));
        assert!(!entails(&p, "exists x. edge(x, x)"));
    }
}
