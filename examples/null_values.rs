//! Null values through the epistemic lens.
//!
//! The paper (§1, §8, and Reiter's JACM 1986 work it cites) treats a null
//! value as an individual *known to exist but not known to be any
//! particular parameter* — exactly what `∃x ss(Mary, x)` expresses. The
//! `K` operator then distinguishes, without any special null machinery:
//!
//! * `K ∃y ss(Mary, y)`  — Mary has a number on file (possibly a null);
//! * `∃y K ss(Mary, y)`  — Mary's number is actually *known*.
//!
//! This example runs a personnel database through the distinctions,
//! including the interaction of nulls with functional dependencies and
//! with the closed-world assumption.
//!
//! Run with: `cargo run --example null_values`

use epilog::prelude::*;

fn main() {
    let db = EpistemicDb::from_text(
        "emp(Mary)
         emp(Sue)
         emp(Ann)
         ss(Mary, n1)
         exists y. ss(Sue, y)         % Sue's number: a null
         ss(Ann, n2) | ss(Ann, n3)    % Ann's number: one of two candidates",
    )
    .unwrap();

    println!("== Known numbers vs numbers known to exist ==\n");
    for who in ["Mary", "Sue", "Ann"] {
        let exists_k = db.ask(&parse(&format!("K (exists y. ss({who}, y))")).unwrap());
        let known = db.ask(&parse(&format!("exists y. K ss({who}, y)")).unwrap());
        println!("  {who:<5} number on file: {exists_k:<8} number known: {known}");
    }
    // Mary: both yes. Sue: on file but not known. Ann: on file (the
    // disjunction guarantees existence) but not known.
    assert_eq!(
        db.ask(&parse("exists y. K ss(Mary, y)").unwrap()),
        Answer::Yes
    );
    assert_eq!(
        db.ask(&parse("exists y. K ss(Sue, y)").unwrap()),
        Answer::No
    );
    assert_eq!(
        db.ask(&parse("K (exists y. ss(Ann, y))").unwrap()),
        Answer::Yes
    );
    assert_eq!(
        db.ask(&parse("exists y. K ss(Ann, y)").unwrap()),
        Answer::No
    );

    println!("\n== The weak constraint tolerates nulls ==\n");
    let weak = parse("forall x. K emp(x) -> K (exists y. ss(x, y))").unwrap();
    let strong = parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap();
    println!("  weak   (number on file):  {}", db.ask(&weak));
    println!("  strong (number known):    {}", db.ask(&strong));
    assert_eq!(db.ask(&weak), Answer::Yes);
    assert_eq!(db.ask(&strong), Answer::No);

    println!("\n== Nulls and the functional dependency ==\n");
    // The FD of Example 3.5 constrains *known* numbers only, so nulls and
    // disjunctive values never trigger it.
    let fd = parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap();
    println!("  FD over known numbers: {}", db.ask(&fd));
    assert_eq!(db.ask(&fd), Answer::Yes);

    println!("\n== Nulls break the naive CWA ==\n");
    // Closure({∃y ss(Sue,y), …}) is unsatisfiable: no particular atom
    // ss(Sue, p) is entailed, so the closure denies them all while Σ
    // insists one holds — the precise sense in which classical CWA cannot
    // handle nulls (footnote 10 of the paper).
    let closed = db.closed();
    println!(
        "  Closure(Σ) satisfiable? {}  (Σ contains a null and a disjunction)",
        closed.satisfiable()
    );
    assert!(!closed.satisfiable());

    // Against a null-free projection of the database, CWA behaves.
    let definite = EpistemicDb::from_text("emp(Mary)\nss(Mary, n1)").unwrap();
    let c = definite.closed();
    println!(
        "  null-free projection:   satisfiable = {}, knows-whether everything = {}",
        c.satisfiable(),
        c.ask(&parse("forall x, y. K ss(x, y) | K ~ss(x, y)").unwrap())
    );
    assert!(c.satisfiable());
}
