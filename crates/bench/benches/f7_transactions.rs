//! F7 — transactional update latency: batched `Transaction::commit`
//! (resumed fixpoint + compiled incremental constraint checks) against
//! the rebuild-from-scratch update path, at growing registrar sizes.
//!
//! Shape expectation: the rebuild path recomputes the least model and
//! re-verifies every constraint on each commit, so its latency grows with
//! the theory; the incremental commit touches only the delta and its
//! consequences, so its latency stays near-flat as `n` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epilog_bench::workloads::{enrollment_batch, registrar_db, withdrawal_batch};
use epilog_core::{ic_satisfaction, prover_for, IcDefinition, IcReport, ModelUpdate};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Correctness gate: the incremental commit runs no full plans and its
    // spliced model matches a from-scratch rebuild.
    {
        let mut db = registrar_db(32);
        let mut txn = db.transaction();
        for w in enrollment_batch(32, 2) {
            txn = txn.assert(w);
        }
        let report = txn.commit().unwrap();
        let ModelUpdate::Incremental { stats, .. } = report.model else {
            panic!("expected an incremental commit, got {:?}", report.model);
        };
        assert_eq!(stats.full_firings, 0);
        let scratch = prover_for(db.theory().clone());
        assert_eq!(db.prover().atom_model(), scratch.atom_model());
    }
    // Retract gate: the decremental commit also runs no full plans,
    // compiles nothing, and shrinks the model to exactly the rebuild's.
    {
        let mut db = registrar_db(32);
        let mut txn = db.transaction();
        for w in withdrawal_batch(30, 2) {
            txn = txn.retract(w);
        }
        let report = txn.commit().unwrap();
        let ModelUpdate::Incremental {
            tuples_removed,
            stats,
            ..
        } = report.model
        else {
            panic!("expected a decremental commit, got {:?}", report.model);
        };
        assert_eq!(tuples_removed, 6, "emp + ss + person per employee");
        assert_eq!(stats.full_firings, 0);
        assert_eq!(stats.plans_compiled, 0);
        let scratch = prover_for(db.theory().clone());
        assert_eq!(db.prover().atom_model(), scratch.atom_model());
    }

    let mut g = c.benchmark_group("f7_transactions");
    g.sample_size(10);
    // The rebuild baseline's full constraint check expands the FD's three
    // quantifiers over the active domain (cubic in `n`), which is the
    // point of the comparison — but it caps the feasible sizes, as in
    // `e3_constraints`.
    for n in [8usize, 16, 32] {
        // A fresh size-`n` registrar per sample (setup is untimed), so
        // every measured commit runs against exactly the size the label
        // claims.
        g.bench_with_input(BenchmarkId::new("commit_incremental", n), &n, |b, &n| {
            b.iter_with_setup(
                || registrar_db(n),
                |mut db| {
                    let mut txn = db.transaction();
                    for w in enrollment_batch(n, 2) {
                        txn = txn.assert(w);
                    }
                    let _ = black_box(txn.commit().unwrap());
                    db
                },
            )
        });
        // The pre-transaction update path: clone the theory, rebuild the
        // prover (least model included), full-check every constraint.
        g.bench_with_input(BenchmarkId::new("commit_rebuild", n), &n, |b, &n| {
            let db = registrar_db(n);
            b.iter(|| {
                let mut theory = db.theory().clone();
                for w in enrollment_batch(n, 2) {
                    theory.assert(w).unwrap();
                }
                let candidate = prover_for(theory);
                for ic in db.constraints() {
                    assert_eq!(
                        ic_satisfaction(&candidate, ic, IcDefinition::Epistemic),
                        IcReport::Satisfied
                    );
                }
                black_box(candidate)
            })
        });
        // A 2-employee withdrawal through the over-delete/re-derive
        // fixpoint: like the enrollment, latency should stay near-flat
        // as `n` grows.
        g.bench_with_input(BenchmarkId::new("retract_incremental", n), &n, |b, &n| {
            b.iter_with_setup(
                || registrar_db(n),
                |mut db| {
                    let mut txn = db.transaction();
                    for w in withdrawal_batch(n - 2, 2) {
                        txn = txn.retract(w);
                    }
                    let _ = black_box(txn.commit().unwrap());
                    db
                },
            )
        });
        // The same withdrawal on the pre-DRed path: clone, retract,
        // rebuild the least model, full-check every constraint.
        g.bench_with_input(BenchmarkId::new("retract_rebuild", n), &n, |b, &n| {
            let db = registrar_db(n);
            b.iter(|| {
                let mut theory = db.theory().clone();
                for w in withdrawal_batch(n - 2, 2) {
                    theory.retract(&w);
                }
                let candidate = prover_for(theory);
                for ic in db.constraints() {
                    assert_eq!(
                        ic_satisfaction(&candidate, ic, IcDefinition::Epistemic),
                        IcReport::Satisfied
                    );
                }
                black_box(candidate)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
