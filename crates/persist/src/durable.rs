//! `DurableDb`: an [`EpistemicDb`] whose commits survive crashes.
//!
//! # Protocol
//!
//! **Log-before-apply.** A durable commit runs the core transaction's
//! `prepare` phase (validation, delta reduction, model maintenance,
//! constraint verification — everything that can fail), appends the
//! effective delta to the WAL under the commit's LSN, and only then
//! publishes the prepared state. Consequences:
//!
//! * a record reaches the log only for transactions that *will* commit —
//!   rejected batches leave no trace;
//! * a crash between append and publish loses nothing: the in-memory
//!   state dies with the process and recovery replays the record;
//! * a crash mid-append leaves a torn tail the next [`DurableDb::recover`]
//!   truncates — by the fsync policy's contract that transaction had not
//!   been acknowledged as durable.
//!
//! **Recovery replays the real commit path.** [`DurableDb::recover`] loads
//! the newest valid snapshot (falling back across corrupt ones, and to
//! genesis when none survive) and replays every log record past its LSN
//! through `Transaction::commit` itself — so recovered state re-verifies
//! its constraints and rebuilds (or, with a snapshot-restored model,
//! resumes) the incremental model exactly as the live path would.
//! `tests/prop_persist.rs` pins this: crash anywhere, recover, and the
//! state equals an in-memory oracle that applied the surviving prefix.

use crate::fault::FaultInjector;
use crate::snapshot::{Snapshot, SnapshotError};
use crate::wal::{FsyncPolicy, TornTail, Wal, WalOp, WAL_FILE};
use epilog_core::db::DbError;
use epilog_core::{CommitReport, EpistemicDb, Transaction};
use epilog_syntax::{Formula, Theory};
use std::fmt;
use std::io;
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Errors from the durability layer.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying storage failed.
    Io(io::Error),
    /// The database refused the operation (constraint violation,
    /// ill-formed sentence, …) — state and log are unchanged.
    Db(DbError),
    /// A file exists but cannot be trusted (bad checksum, bad framing,
    /// inconsistent contents).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Db(e) => write!(f, "{e}"),
            PersistError::Corrupt(why) => write!(f, "corrupt durable state: {why}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<DbError> for PersistError {
    fn from(e: DbError) -> Self {
        PersistError::Db(e)
    }
}

impl From<SnapshotError> for PersistError {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Io(e) => PersistError::Io(e),
            SnapshotError::Corrupt(why) => PersistError::Corrupt(why),
        }
    }
}

/// Options for [`DurableDb::recover_with`].
#[derive(Debug, Clone, Copy)]
pub struct RecoveryOptions {
    /// Start from the newest valid snapshot (default). When `false`,
    /// recovery starts from the *genesis* snapshot and replays the whole
    /// log — the baseline the `f8_recovery` bench compares against.
    pub use_latest_snapshot: bool,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            use_latest_snapshot: true,
        }
    }
}

/// What [`DurableDb::recover`] found and did.
#[derive(Debug)]
pub struct RecoveryReport {
    /// LSN of the snapshot recovery started from (`None`: no snapshot at
    /// all — replayed from an empty database).
    pub snapshot_lsn: Option<u64>,
    /// Whether the snapshot's stored least model was attached directly,
    /// skipping the fixpoint recomputation.
    pub model_restored: bool,
    /// Snapshot files that failed validation and were skipped.
    pub snapshots_skipped: u32,
    /// Log records replayed (those with `lsn > snapshot_lsn`).
    pub records_replayed: u64,
    /// Records the replayed commit path *refused* (possible only when a
    /// crash interleaved with a concurrent-era log, or after manual log
    /// surgery; the record is skipped and recovery continues).
    pub rejected: Vec<(u64, String)>,
    /// The torn tail, when the log did not end on a record boundary.
    pub torn_tail: Option<TornTail>,
    /// Bytes discarded by the torn-tail truncation.
    pub truncated_bytes: u64,
    /// The database's LSN after recovery.
    pub last_lsn: u64,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.snapshot_lsn {
            Some(lsn) => write!(f, "snapshot @{lsn}")?,
            None => write!(f, "no snapshot")?,
        }
        if self.model_restored {
            write!(f, " (model restored)")?;
        }
        write!(
            f,
            " + {} records replayed -> LSN {}",
            self.records_replayed, self.last_lsn
        )?;
        if let Some(t) = &self.torn_tail {
            write!(f, "; {t} ({} bytes dropped)", self.truncated_bytes)?;
        }
        if !self.rejected.is_empty() {
            write!(f, "; {} records rejected", self.rejected.len())?;
        }
        Ok(())
    }
}

/// What [`DurableDb::compact`] reclaimed.
#[derive(Debug, Clone, Copy)]
pub struct CompactStats {
    /// LSN of the snapshot the compaction wrote.
    pub snapshot_lsn: u64,
    /// Log records dropped (now covered by the snapshot).
    pub records_dropped: u64,
    /// Log bytes reclaimed.
    pub bytes_reclaimed: u64,
    /// Older snapshot files deleted.
    pub snapshots_removed: usize,
}

/// A durable [`EpistemicDb`]: every commit is written ahead to a log, and
/// [`DurableDb::recover`] rebuilds the exact state from disk.
///
/// Queries pass through via `Deref<Target = EpistemicDb>`; mutations do
/// **not** — they must go through [`DurableDb::transaction`],
/// [`DurableDb::assert`], [`DurableDb::retract`], or
/// [`DurableDb::add_constraint`] so the log stays ahead of the state.
pub struct DurableDb {
    db: EpistemicDb,
    wal: Wal,
    dir: PathBuf,
}

impl Deref for DurableDb {
    type Target = EpistemicDb;

    fn deref(&self) -> &EpistemicDb {
        &self.db
    }
}

impl DurableDb {
    /// Initialize a durable database at `dir` (created if absent) with an
    /// initial theory. Writes the genesis snapshot (LSN 0) and an empty
    /// log. Fails if `dir` already holds a log — an existing database
    /// must go through [`DurableDb::recover`].
    pub fn create(
        dir: impl AsRef<Path>,
        theory: Theory,
        policy: FsyncPolicy,
    ) -> Result<DurableDb, PersistError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        if dir.join(WAL_FILE).exists() {
            return Err(PersistError::Corrupt(format!(
                "{} already holds a write-ahead log; use DurableDb::recover",
                dir.display()
            )));
        }
        let db = EpistemicDb::new(theory);
        let _ = Snapshot::of(&db, 0, true).write(&dir)?;
        let wal = Wal::create(dir.join(WAL_FILE), policy)?;
        Ok(DurableDb { db, wal, dir })
    }

    /// Rebuild the database from `dir`: newest valid snapshot + replay of
    /// the log tail through the real commit path, torn tail truncated.
    pub fn recover(
        dir: impl AsRef<Path>,
        policy: FsyncPolicy,
    ) -> Result<(DurableDb, RecoveryReport), PersistError> {
        DurableDb::recover_with(dir, policy, RecoveryOptions::default())
    }

    /// [`DurableDb::recover`] with explicit [`RecoveryOptions`].
    pub fn recover_with(
        dir: impl AsRef<Path>,
        policy: FsyncPolicy,
        options: RecoveryOptions,
    ) -> Result<(DurableDb, RecoveryReport), PersistError> {
        let dir = dir.as_ref().to_path_buf();
        let mut snaps = Snapshot::list(&dir)?;
        if options.use_latest_snapshot {
            snaps.reverse(); // try newest first
        }
        let mut snapshots_skipped = 0u32;
        let mut base: Option<Snapshot> = None;
        for (_, path) in &snaps {
            match Snapshot::load(path) {
                Ok(s) => {
                    base = Some(s);
                    break;
                }
                Err(SnapshotError::Corrupt(_)) => snapshots_skipped += 1,
                Err(SnapshotError::Io(e)) => return Err(e.into()),
            }
        }
        let (mut db, snapshot_lsn, model_restored) = match &base {
            Some(s) => {
                let (db, model_restored) = s.restore()?;
                (db, Some(s.lsn), model_restored)
            }
            None => (EpistemicDb::new(Theory::empty()), None, false),
        };
        let (mut wal, scan) = Wal::open(dir.join(WAL_FILE), policy)?;
        let mut report = RecoveryReport {
            snapshot_lsn,
            model_restored,
            snapshots_skipped,
            records_replayed: 0,
            rejected: Vec::new(),
            torn_tail: scan.torn,
            truncated_bytes: scan.truncated_bytes,
            last_lsn: 0,
        };
        let from = snapshot_lsn.unwrap_or(0);
        for record in &scan.records {
            if record.lsn <= from {
                continue;
            }
            report.records_replayed += 1;
            if let Err(e) = replay_record(&mut db, &record.ops) {
                report.rejected.push((record.lsn, e.to_string()));
            }
        }
        wal.bump_next_lsn(from + 1);
        report.last_lsn = wal.last_lsn();
        Ok((DurableDb { db, wal, dir }, report))
    }

    /// Open a durable transaction: the durable twin of
    /// [`EpistemicDb::transaction`].
    pub fn transaction(&mut self) -> DurableTransaction<'_> {
        DurableTransaction {
            txn: self.db.transaction(),
            wal: &mut self.wal,
        }
    }

    /// Durably assert one sentence (a single-operation transaction).
    pub fn assert(&mut self, w: Formula) -> Result<(), PersistError> {
        self.transaction().assert(w).commit().map(|_| ())
    }

    /// Durably retract one sentence. Returns whether it was present.
    pub fn retract(&mut self, w: &Formula) -> Result<bool, PersistError> {
        let report = self.transaction().retract(w.clone()).commit()?;
        Ok(report.retracted > 0)
    }

    /// Route every log append/sync and snapshot write through a
    /// [`FaultInjector`] (`None` restores direct I/O). Deterministic
    /// storage-fault testing; zero-cost when never installed. The
    /// injector rides along into [`crate::ServingDb::start`].
    pub fn set_fault_injector(&mut self, injector: Option<Arc<FaultInjector>>) {
        self.wal.set_fault_injector(injector);
    }

    /// Register an integrity constraint, durably. Log-before-apply with
    /// compensation: the record is appended, then the registration runs;
    /// a refusal (constraint violated by the current state) rewinds the
    /// log so no rejected record survives.
    pub fn add_constraint(&mut self, ic: Formula) -> Result<(), PersistError> {
        let mark = self.wal.mark();
        if let Err(e) = self.wal.append(&[WalOp::Constraint(ic.clone())]) {
            let _ = self.wal.rewind(mark.0, mark.1);
            return Err(e.into());
        }
        match self.db.add_constraint(ic) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.wal.rewind(mark.0, mark.1)?;
                Err(e.into())
            }
        }
    }

    /// Write a snapshot of the current state at the current LSN. The log
    /// is synced first so the snapshot never claims records the disk does
    /// not hold. Returns the snapshot's LSN.
    pub fn snapshot(&mut self) -> Result<u64, PersistError> {
        self.wal.sync()?;
        let lsn = self.wal.last_lsn();
        let injector = self.wal.fault_injector();
        let _ = Snapshot::of(&self.db, lsn, true).write_with(&self.dir, injector.as_deref())?;
        Ok(lsn)
    }

    /// Snapshot, then truncate every log record the snapshot covers and
    /// delete older snapshot files — bounding recovery to
    /// snapshot-load + short-tail-replay.
    pub fn compact(&mut self) -> Result<CompactStats, PersistError> {
        let snapshot_lsn = self.snapshot()?;
        let (records_dropped, bytes_reclaimed) = self.wal.compact_through(snapshot_lsn)?;
        let mut snapshots_removed = 0;
        for (lsn, path) in Snapshot::list(&self.dir)? {
            if lsn < snapshot_lsn {
                std::fs::remove_file(path)?;
                snapshots_removed += 1;
            }
        }
        Ok(CompactStats {
            snapshot_lsn,
            records_dropped,
            bytes_reclaimed,
            snapshots_removed,
        })
    }

    /// Force buffered log records to stable storage (a durability point
    /// under `FsyncPolicy::Batch`/`Never`).
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.wal.sync().map_err(PersistError::Io)
    }

    /// Number of committed records not yet covered by an fsync — the
    /// loss window a crash (not a clean drop, which flushes) would
    /// open under `FsyncPolicy::Batch`/`Never`.
    pub fn pending_unsynced(&self) -> u32 {
        self.wal.pending_unsynced()
    }

    /// The wrapped in-memory database (also reachable through `Deref`).
    pub fn db(&self) -> &EpistemicDb {
        &self.db
    }

    /// The directory holding the log and snapshots.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// LSN of the last committed durable operation.
    pub fn last_lsn(&self) -> u64 {
        self.wal.last_lsn()
    }

    /// Number of records currently in the log.
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    /// Current log size in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// Decompose into `(db, wal, dir)` — the serving layer's writer
    /// thread takes ownership of the pieces directly.
    pub(crate) fn into_parts(self) -> (EpistemicDb, Wal, PathBuf) {
        (self.db, self.wal, self.dir)
    }
}

/// Replay one log record through the live commit machinery. Records are
/// homogeneous by construction (one constraint, or a batch of
/// assert/retract); interleavings are handled by flushing the batch at
/// each constraint boundary.
fn replay_record(db: &mut EpistemicDb, ops: &[WalOp]) -> Result<(), DbError> {
    let mut i = 0;
    while i < ops.len() {
        if let WalOp::Constraint(ic) = &ops[i] {
            db.add_constraint(ic.clone())?;
            i += 1;
            continue;
        }
        let mut txn = db.transaction();
        while i < ops.len() {
            match &ops[i] {
                WalOp::Assert(w) => txn = txn.assert(w.clone()),
                WalOp::Retract(w) => txn = txn.retract(w.clone()),
                WalOp::Constraint(_) => break,
            }
            i += 1;
        }
        let _ = txn.commit()?;
    }
    Ok(())
}

/// A batch of updates that will be logged ahead of application — the
/// durable twin of [`Transaction`]. Build it with `assert`/`retract`,
/// then [`DurableTransaction::commit`]; dropping it discards the batch.
#[must_use = "a durable transaction does nothing until commit() — dropping it discards the batch"]
pub struct DurableTransaction<'db> {
    txn: Transaction<'db>,
    wal: &'db mut Wal,
}

impl DurableTransaction<'_> {
    /// Queue a sentence for assertion.
    #[must_use = "assert only queues — the batch must still be committed"]
    pub fn assert(mut self, w: Formula) -> Self {
        self.txn = self.txn.assert(w);
        self
    }

    /// Queue a sentence for retraction.
    #[must_use = "retract only queues — the batch must still be committed"]
    pub fn retract(mut self, w: Formula) -> Self {
        self.txn = self.txn.retract(w);
        self
    }

    /// Number of queued operations.
    pub fn pending(&self) -> usize {
        self.txn.pending()
    }

    /// Discard the batch (log and state untouched).
    pub fn rollback(self) {}

    /// Validate, log, then apply (see the module docs for the protocol).
    /// No-op batches commit without touching the log; refused batches
    /// leave neither state nor log changed.
    pub fn commit(self) -> Result<CommitReport, PersistError> {
        let prepared = self.txn.prepare()?;
        if prepared.is_noop() {
            return Ok(prepared.commit());
        }
        let mut ops: Vec<WalOp> =
            Vec::with_capacity(prepared.added().len() + prepared.removed().len());
        ops.extend(prepared.removed().iter().cloned().map(WalOp::Retract));
        ops.extend(prepared.added().iter().cloned().map(WalOp::Assert));
        let mark = self.wal.mark();
        if let Err(e) = self.wal.append(&ops) {
            // A failed append can leave a torn prefix that would corrupt
            // every later record; rewind (best effort) before reporting.
            let _ = self.wal.rewind(mark.0, mark.1);
            return Err(e.into());
        }
        Ok(prepared.commit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_core::Answer;
    use epilog_syntax::parse;

    fn dir() -> PathBuf {
        use std::sync::atomic::{AtomicU32, Ordering};
        static N: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "epilog-durable-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn f(src: &str) -> Formula {
        parse(src).unwrap()
    }

    /// A registrar-style durable db: rule + constraint + two commits.
    fn populated(d: &Path, policy: FsyncPolicy) -> DurableDb {
        let theory = Theory::from_text("forall x. emp(x) -> person(x)").unwrap();
        let mut db = DurableDb::create(d, theory, policy).unwrap();
        db.add_constraint(f("forall x. K emp(x) -> exists y. K ss(x, y)"))
            .unwrap();
        let _ = db
            .transaction()
            .assert(f("ss(Mary, n1)"))
            .assert(f("emp(Mary)"))
            .commit()
            .unwrap();
        let _ = db
            .transaction()
            .assert(f("ss(Sue, n2)"))
            .assert(f("emp(Sue)"))
            .commit()
            .unwrap();
        db
    }

    fn assert_same_state(a: &EpistemicDb, b: &EpistemicDb) {
        assert_eq!(a.theory(), b.theory());
        assert_eq!(a.constraints(), b.constraints());
        assert_eq!(a.prover().atom_model(), b.prover().atom_model());
    }

    #[test]
    fn recover_replays_to_the_live_state() {
        for policy in [
            FsyncPolicy::Always,
            FsyncPolicy::Batch(2),
            FsyncPolicy::Never,
        ] {
            let d = dir();
            let live = populated(&d, policy);
            let live_state = live.db().theory().clone();
            drop(live); // crash: no shutdown ceremony
            let (rec, report) = DurableDb::recover(&d, policy).unwrap();
            assert_eq!(report.snapshot_lsn, Some(0), "genesis snapshot");
            assert_eq!(report.records_replayed, 3, "constraint + 2 commits");
            assert!(report.rejected.is_empty());
            assert!(report.torn_tail.is_none());
            assert_eq!(rec.theory(), &live_state);
            assert_eq!(rec.ask(&f("K person(Sue)")), Answer::Yes);
            assert!(rec.satisfies_constraints());
            assert_eq!(rec.last_lsn(), 3, "LSNs continue after recovery");
            std::fs::remove_dir_all(d).unwrap();
        }
    }

    #[test]
    fn rejected_commit_leaves_no_log_record() {
        let d = dir();
        let mut db = populated(&d, FsyncPolicy::Always);
        let records = db.wal_records();
        let err = db
            .transaction()
            .assert(f("emp(Joe)")) // no ss number: violates
            .commit()
            .unwrap_err();
        assert!(matches!(
            err,
            PersistError::Db(DbError::ConstraintViolated(_))
        ));
        assert_eq!(db.wal_records(), records, "no record for a refused batch");
        // And a rejected constraint registration is rewound.
        let err = db.add_constraint(f("forall x. ~K emp(x)")).unwrap_err();
        assert!(matches!(
            err,
            PersistError::Db(DbError::ConstraintViolated(_))
        ));
        assert_eq!(db.wal_records(), records);
        let (rec, report) = DurableDb::recover(&d, FsyncPolicy::Always).unwrap();
        assert!(report.rejected.is_empty());
        assert_same_state(rec.db(), db.db());
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn noop_commits_are_not_logged() {
        let d = dir();
        let mut db = populated(&d, FsyncPolicy::Never);
        let records = db.wal_records();
        let report = db
            .transaction()
            .assert(f("emp(Mary)")) // already present
            .assert(f("q(c)"))
            .retract(f("q(c)")) // cancels
            .commit()
            .unwrap();
        assert_eq!(report.asserted + report.retracted, 0);
        assert_eq!(db.wal_records(), records);
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn snapshot_shortcuts_replay_and_compact_truncates() {
        let d = dir();
        let mut db = populated(&d, FsyncPolicy::Never);
        let lsn = db.snapshot().unwrap();
        assert_eq!(lsn, 3);
        let _ = db
            .transaction()
            .assert(f("hobby(Sue, chess)"))
            .commit()
            .unwrap();
        let live_theory = db.theory().clone();
        drop(db);
        // Snapshot route: only the post-snapshot tail is replayed…
        let (rec, report) = DurableDb::recover(&d, FsyncPolicy::Never).unwrap();
        assert_eq!(report.snapshot_lsn, Some(3));
        assert!(report.model_restored, "definite theory: model in snapshot");
        assert_eq!(report.records_replayed, 1);
        assert_eq!(rec.theory(), &live_theory);
        // …full replay from genesis reaches the same state.
        let (full, report) = DurableDb::recover_with(
            &d,
            FsyncPolicy::Never,
            RecoveryOptions {
                use_latest_snapshot: false,
            },
        )
        .unwrap();
        assert_eq!(report.snapshot_lsn, Some(0));
        assert_eq!(report.records_replayed, 4);
        assert_same_state(full.db(), rec.db());
        // Compaction drops the covered prefix but preserves the state.
        let mut rec = rec;
        let stats = rec.compact().unwrap();
        assert_eq!(stats.snapshot_lsn, 4);
        assert_eq!(stats.records_dropped, 4);
        assert!(stats.snapshots_removed >= 1, "older snapshots deleted");
        assert_eq!(rec.wal_records(), 0);
        drop(rec);
        let (after, report) = DurableDb::recover(&d, FsyncPolicy::Never).unwrap();
        assert_eq!(report.snapshot_lsn, Some(4));
        assert_eq!(report.records_replayed, 0);
        assert_eq!(after.theory(), &live_theory);
        assert_eq!(after.last_lsn(), 4, "LSNs survive compaction");
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let d = dir();
        let db = populated(&d, FsyncPolicy::Always);
        let state_before_tear = db.theory().clone();
        drop(db);
        // Tear mid-record: chop bytes off the log's end.
        let wal_path = d.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 9]).unwrap();
        let (rec, report) = DurableDb::recover(&d, FsyncPolicy::Always).unwrap();
        let torn = report.torn_tail.expect("tear must be reported");
        assert!(report.truncated_bytes > 0);
        assert_eq!(report.records_replayed, 2, "last record lost to the tear");
        // The recovered state is the pre-tear prefix: Sue's batch is gone.
        assert_ne!(rec.theory(), &state_before_tear);
        assert_eq!(rec.ask(&f("K emp(Sue)")), Answer::No);
        assert_eq!(rec.ask(&f("K person(Mary)")), Answer::Yes);
        assert!(rec.satisfies_constraints());
        assert!(torn.offset > 0);
        // Recovery truncated the file: a second recovery is clean.
        drop(rec);
        let (_, report) = DurableDb::recover(&d, FsyncPolicy::Always).unwrap();
        assert!(report.torn_tail.is_none());
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn corrupt_latest_snapshot_falls_back_to_older() {
        let d = dir();
        let mut db = populated(&d, FsyncPolicy::Never);
        let lsn = db.snapshot().unwrap();
        let live_theory = db.theory().clone();
        drop(db);
        // Corrupt the newest snapshot's payload.
        let path = d.join(Snapshot::file_name(lsn));
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        let (rec, report) = DurableDb::recover(&d, FsyncPolicy::Never).unwrap();
        assert_eq!(report.snapshots_skipped, 1);
        assert_eq!(report.snapshot_lsn, Some(0), "fell back to genesis");
        assert_eq!(rec.theory(), &live_theory, "log replay covers the gap");
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn create_refuses_an_existing_log() {
        let d = dir();
        let db = populated(&d, FsyncPolicy::Never);
        drop(db);
        let Err(err) = DurableDb::create(&d, Theory::empty(), FsyncPolicy::Never) else {
            panic!("create over an existing log must be refused");
        };
        assert!(matches!(err, PersistError::Corrupt(_)));
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn retractions_and_rule_commits_replay_faithfully() {
        let d = dir();
        let theory = Theory::from_text("e(a, b)\ne(b, c)").unwrap();
        let mut db = DurableDb::create(&d, theory, FsyncPolicy::Always).unwrap();
        let _ = db
            .transaction()
            .assert(f("forall x, y. e(x, y) -> t(x, y)"))
            .assert(f("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)"))
            .commit()
            .unwrap();
        assert!(db.retract(&f("e(b, c)")).unwrap());
        assert!(
            !db.retract(&f("e(b, c)")).unwrap(),
            "absent: no-op, not logged"
        );
        let live_theory = db.theory().clone();
        let live_model = db.prover().atom_model().cloned();
        drop(db);
        let (rec, report) = DurableDb::recover(&d, FsyncPolicy::Always).unwrap();
        assert_eq!(report.records_replayed, 2, "rule batch + retraction");
        assert_eq!(rec.theory(), &live_theory);
        assert_eq!(rec.prover().atom_model().cloned(), live_model);
        assert_eq!(rec.ask(&f("K t(a, b)")), Answer::Yes);
        assert_eq!(rec.ask(&f("K t(a, c)")), Answer::No);
        std::fs::remove_dir_all(d).unwrap();
    }
}
