//! Integrity constraints: the paper's analysis of §3.
//!
//! A constraint is a statement about what the database *knows*, not about
//! the world; so a constraint is a KFOPCE sentence and `Σ` satisfies `IC`
//! iff `Σ ⊨ IC` (Definition 3.5). The module also implements the four
//! classical definitions the paper argues against, so the failures it
//! exhibits (the `emp`/`ss#` examples) can be reproduced side by side:
//!
//! | id | reading | applies to |
//! |---|---|---|
//! | [`IcDefinition::Consistency`] | `Σ + IC` satisfiable | open DBs (Kowalski) |
//! | [`IcDefinition::Entailment`] | `Σ ⊨ IC` (first-order) | open DBs (early Reiter) |
//! | [`IcDefinition::CompConsistency`] | `Comp(Σ) + IC` satisfiable | Prolog-like DBs (Sadri–Kowalski) |
//! | [`IcDefinition::CompEntailment`] | `Comp(Σ) ⊨ IC` | Prolog-like DBs (Lloyd–Topor) |
//! | [`IcDefinition::Epistemic`] | `Σ ⊨ IC`, IC modal | **this paper** (Def. 3.5) |

use crate::ask::certain;
use epilog_datalog::{completion, Program};
use epilog_prover::Prover;
use epilog_syntax::{is_first_order, Formula, Theory};
use std::fmt;

/// The five notions of a database satisfying an integrity constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcDefinition {
    /// Definition 3.1 — `DB + IC` is satisfiable (first-order `IC`).
    Consistency,
    /// Definition 3.2 — `DB ⊨ IC` (first-order `IC`).
    Entailment,
    /// Definition 3.3 — `Comp(DB) + IC` is satisfiable. Only defined for
    /// Prolog-like databases.
    CompConsistency,
    /// Definition 3.4 — `Comp(DB) ⊨ IC`. Only defined for Prolog-like
    /// databases.
    CompEntailment,
    /// Definition 3.5 — `DB ⊨ IC` with `IC` a KFOPCE (epistemic) sentence:
    /// the paper's proposal.
    Epistemic,
}

impl fmt::Display for IcDefinition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcDefinition::Consistency => write!(f, "3.1 consistency"),
            IcDefinition::Entailment => write!(f, "3.2 entailment"),
            IcDefinition::CompConsistency => write!(f, "3.3 Comp-consistency"),
            IcDefinition::CompEntailment => write!(f, "3.4 Comp-entailment"),
            IcDefinition::Epistemic => write!(f, "3.5 epistemic (this paper)"),
        }
    }
}

/// The verdict of one definition on one database/constraint pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcReport {
    /// The database satisfies the constraint under this definition.
    Satisfied,
    /// It does not.
    Violated,
    /// The definition does not apply (e.g. `Comp` of a disjunctive
    /// database, or a modal `IC` under a first-order definition).
    Inapplicable,
}

impl fmt::Display for IcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcReport::Satisfied => write!(f, "satisfied"),
            IcReport::Violated => write!(f, "violated"),
            IcReport::Inapplicable => write!(f, "n/a"),
        }
    }
}

/// Evaluate constraint satisfaction under a chosen definition.
///
/// For [`IcDefinition::Epistemic`], `ic` may be any KFOPCE sentence and
/// satisfaction is `Σ ⊨ IC` — which is *identical to query evaluation*
/// (§3): this function simply asks whether the constraint-as-query is
/// certain. The first-order definitions return
/// [`IcReport::Inapplicable`] on modal constraints, and the `Comp`
/// definitions additionally require the database to be Prolog-like.
pub fn ic_satisfaction(prover: &Prover, ic: &Formula, def: IcDefinition) -> IcReport {
    let verdict = |b: bool| {
        if b {
            IcReport::Satisfied
        } else {
            IcReport::Violated
        }
    };
    match def {
        IcDefinition::Epistemic => verdict(certain(prover, ic)),
        IcDefinition::Consistency => {
            if !is_first_order(ic) {
                return IcReport::Inapplicable;
            }
            verdict(prover.consistent_with(ic))
        }
        IcDefinition::Entailment => {
            if !is_first_order(ic) {
                return IcReport::Inapplicable;
            }
            verdict(prover.entails(ic))
        }
        IcDefinition::CompConsistency | IcDefinition::CompEntailment => {
            if !is_first_order(ic) {
                return IcReport::Inapplicable;
            }
            let Some(comp_prover) = completion_prover(prover.theory(), ic) else {
                return IcReport::Inapplicable;
            };
            match def {
                IcDefinition::CompConsistency => verdict(comp_prover.consistent_with(ic)),
                _ => verdict(comp_prover.entails(ic)),
            }
        }
    }
}

/// `Comp(DB)` as a prover, when `DB` is Prolog-like (facts + Horn-ish
/// rules); `None` otherwise — the paper's point that Definitions 3.3/3.4
/// "do not have general applicability". Predicates mentioned only by the
/// constraint are closed off too (`∀x̄ ¬p(x̄)`): the completion is taken
/// over the whole language of the comparison, as Clark's semantics
/// intends.
fn completion_prover(theory: &Theory, ic: &Formula) -> Option<Prover> {
    use epilog_syntax::{Term, Var};
    let prog = Program::from_sentences(theory.sentences()).ok()?;
    let mut comp = completion(&prog);
    let covered = prog.preds();
    for pred in ic.preds() {
        if !covered.contains(&pred) {
            let vars: Vec<Var> = (0..pred.arity())
                .map(|i| Var::fresh(&format!("x{i}")))
                .collect();
            let mut w = Formula::not(Formula::atom(
                &pred.name(),
                vars.iter().map(|v| Term::Var(*v)).collect(),
            ));
            for v in vars.into_iter().rev() {
                w = Formula::forall(v, w);
            }
            comp.push(w);
        }
    }
    Some(Prover::new(Theory::new(comp).ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::parse;

    fn prover(src: &str) -> Prover {
        Prover::new(Theory::from_text(src).unwrap())
    }

    /// §3: the social-security constraint, first-order form.
    fn ic_fo() -> Formula {
        parse("forall x. emp(x) -> exists y. ss(x, y)").unwrap()
    }

    /// §3: the epistemic form — "every *known* employee has a *known*
    /// social-security number" (Example 3.4 variant with known number:
    /// ∀x (Kemp(x) ⊃ ∃y K ss(x,y))).
    fn ic_modal() -> Formula {
        parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap()
    }

    #[test]
    fn definition_31_fails_on_emp_mary() {
        // DB = {emp(Mary)}: consistency says "satisfied" (wrong — Mary has
        // no number on file).
        let p = prover("emp(Mary)");
        assert_eq!(
            ic_satisfaction(&p, &ic_fo(), IcDefinition::Consistency),
            IcReport::Satisfied,
            "this is the counterintuitive verdict the paper exhibits"
        );
        // The paper's definition gets it right: violated.
        assert_eq!(
            ic_satisfaction(&p, &ic_modal(), IcDefinition::Epistemic),
            IcReport::Violated
        );
    }

    #[test]
    fn definition_32_fails_on_empty_db() {
        // DB = {}: entailment says "violated" (wrong — an empty DB should
        // satisfy the constraint).
        let p = Prover::new(Theory::empty());
        assert_eq!(
            ic_satisfaction(&p, &ic_fo(), IcDefinition::Entailment),
            IcReport::Violated,
            "the counterintuitive verdict of Definition 3.2"
        );
        assert_eq!(
            ic_satisfaction(&p, &ic_modal(), IcDefinition::Epistemic),
            IcReport::Satisfied
        );
    }

    #[test]
    fn epistemic_definition_on_complete_db() {
        let p = prover("emp(Mary)\nss(Mary, n1)");
        assert_eq!(
            ic_satisfaction(&p, &ic_modal(), IcDefinition::Epistemic),
            IcReport::Satisfied
        );
    }

    #[test]
    fn example_34_number_known_to_exist_suffices() {
        // ∀x (Kemp(x) ⊃ K∃y ss(x,y)): the number need not be known, only
        // known to exist.
        let ic = parse("forall x. K emp(x) -> K (exists y. ss(x, y))").unwrap();
        let p = prover("emp(Mary)\nexists y. ss(Mary, y)");
        assert_eq!(
            ic_satisfaction(&p, &ic, IcDefinition::Epistemic),
            IcReport::Satisfied
        );
        // But the stronger Example 3.4-variant with a known number fails:
        assert_eq!(
            ic_satisfaction(&p, &ic_modal(), IcDefinition::Epistemic),
            IcReport::Violated
        );
    }

    #[test]
    fn example_31_no_hermaphrodites() {
        let ic = parse("forall x. ~K (male(x) & female(x))").unwrap();
        let ok = prover("male(Sam)\nfemale(Sue)");
        assert_eq!(
            ic_satisfaction(&ok, &ic, IcDefinition::Epistemic),
            IcReport::Satisfied
        );
        let bad = prover("male(Sam)\nfemale(Sam)");
        assert_eq!(
            ic_satisfaction(&bad, &ic, IcDefinition::Epistemic),
            IcReport::Violated
        );
    }

    #[test]
    fn example_32_sex_must_be_assigned() {
        let ic = parse("forall x. K person(x) -> K male(x) | K female(x)").unwrap();
        let ok = prover("person(Sam)\nmale(Sam)");
        assert_eq!(
            ic_satisfaction(&ok, &ic, IcDefinition::Epistemic),
            IcReport::Satisfied
        );
        let bad = prover("person(Sam)\nmale(Sam) | female(Sam)");
        // Disjunctive knowledge is not knowledge of either disjunct.
        assert_eq!(
            ic_satisfaction(&bad, &ic, IcDefinition::Epistemic),
            IcReport::Violated
        );
    }

    #[test]
    fn example_35_functional_dependency() {
        let ic = parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap();
        let ok = prover("ss(Mary, n1)\nss(Sue, n2)");
        assert_eq!(
            ic_satisfaction(&ok, &ic, IcDefinition::Epistemic),
            IcReport::Satisfied
        );
        let bad = prover("ss(Mary, n1)\nss(Mary, n2)");
        assert_eq!(
            ic_satisfaction(&bad, &ic, IcDefinition::Epistemic),
            IcReport::Violated
        );
    }

    #[test]
    fn comp_definitions_on_prolog_like_db() {
        let p = prover("emp(Mary)");
        // Comp({emp(Mary)}) ⊨ ¬∃y ss(Mary,y): the completion *closes* ss,
        // so the first-order IC is now *violated* under Comp-entailment.
        assert_eq!(
            ic_satisfaction(&p, &ic_fo(), IcDefinition::CompEntailment),
            IcReport::Violated
        );
        assert_eq!(
            ic_satisfaction(&p, &ic_fo(), IcDefinition::CompConsistency),
            IcReport::Violated,
            "Comp decides everything, so the two Comp readings agree here"
        );
    }

    #[test]
    fn comp_inapplicable_to_disjunctive_db() {
        // The paper: completion "would not apply … to databases with
        // existentially quantified or disjunctive information".
        let p = prover("emp(Mary) | emp(Sue)");
        assert_eq!(
            ic_satisfaction(&p, &ic_fo(), IcDefinition::CompEntailment),
            IcReport::Inapplicable
        );
    }

    #[test]
    fn first_order_definitions_inapplicable_to_modal_ic() {
        let p = prover("emp(Mary)");
        for def in [
            IcDefinition::Consistency,
            IcDefinition::Entailment,
            IcDefinition::CompConsistency,
            IcDefinition::CompEntailment,
        ] {
            assert_eq!(
                ic_satisfaction(&p, &ic_modal(), def),
                IcReport::Inapplicable
            );
        }
    }

    #[test]
    fn satisfaction_is_query_evaluation() {
        // §3: "testing constraint satisfaction is identical to querying a
        // first-order database with a KFOPCE sentence".
        use crate::ask::ask;
        use epilog_semantics::Answer;
        let p = prover("emp(Mary)\nss(Mary, n1)");
        let ic = ic_modal();
        let as_query = ask(&p, &ic) == Answer::Yes;
        let as_ic = ic_satisfaction(&p, &ic, IcDefinition::Epistemic) == IcReport::Satisfied;
        assert_eq!(as_query, as_ic);
    }
}
