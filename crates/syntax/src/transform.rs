//! Formula transformations used throughout the paper.
//!
//! * [`kernel`] — expand the defined connectives `∨ ⊃ ≡ ∀` into the
//!   official primitives `¬ ∧ ∃ K` (the paper's language is built from
//!   `¬ ∧ ∀ K`; we use the dual `∃`-primitive form because the safe and
//!   admissible fragments are stated with `∃`).
//! * [`nnf`] — negation normal form (all connectives kept, negations pushed
//!   to atoms); used by the grounder.
//! * [`strip_k`] — the map `σ ↦ σ̂` of Theorem 7.1 deleting every `K`.
//! * [`modalize`] — the map `ℛ(w)` of Definition 7.1 replacing every
//!   predicate atom `a` by `Ka`.
//! * [`admissible_constraint`] — the rewriting of Example 5.4 turning the
//!   natural `∀/⊃` statements of integrity constraints into *admissible*
//!   sentences that `demo` can evaluate.
//! * [`flatten_k45`] — modal simplification valid in Levesque's semantics
//!   (a weak-S5 / KD45-style logic): `K` over a subjective formula is
//!   redundant and `K` distributes over `∧`.

use crate::classify::{is_first_order, is_subjective};
use crate::formula::Formula;

/// Expand `∨ ⊃ ≡ ∀` into `¬ ∧ ∃` (leaving atoms, equality and `K`
/// untouched). The result is logically equivalent under both FOPCE and
/// KFOPCE semantics.
pub fn kernel(w: &Formula) -> Formula {
    match w {
        Formula::Atom(_) | Formula::Eq(_, _) => w.clone(),
        Formula::Not(a) => Formula::not(kernel(a)),
        Formula::And(a, b) => Formula::and(kernel(a), kernel(b)),
        // a ∨ b  ≡  ¬(¬a ∧ ¬b)
        Formula::Or(a, b) => Formula::not(Formula::and(
            Formula::not(kernel(a)),
            Formula::not(kernel(b)),
        )),
        // a ⊃ b  ≡  ¬(a ∧ ¬b)
        Formula::Implies(a, b) => Formula::not(Formula::and(kernel(a), Formula::not(kernel(b)))),
        // a ≡ b  ≡  ¬(a ∧ ¬b) ∧ ¬(b ∧ ¬a)
        Formula::Iff(a, b) => {
            let ka = kernel(a);
            let kb = kernel(b);
            Formula::and(
                Formula::not(Formula::and(ka.clone(), Formula::not(kb.clone()))),
                Formula::not(Formula::and(kb, Formula::not(ka))),
            )
        }
        // ∀x w  ≡  ¬∃x ¬w
        Formula::Forall(x, a) => Formula::not(Formula::exists(*x, Formula::not(kernel(a)))),
        Formula::Exists(x, a) => Formula::exists(*x, kernel(a)),
        Formula::Know(a) => Formula::know(kernel(a)),
    }
}

/// Expand only the *top* connective of a defined-connective formula
/// (`∨ ⊃ ≡ ∀`) into the primitives `¬ ∧ ∃`, leaving subformulas intact.
/// Identity on all other shapes. Used by evaluators that want to expand
/// abbreviations lazily, preserving first-order subtrees.
pub fn kernel_top(w: &Formula) -> Formula {
    match w {
        Formula::Or(a, b) => Formula::not(Formula::and(
            Formula::not((**a).clone()),
            Formula::not((**b).clone()),
        )),
        Formula::Implies(a, b) => {
            Formula::not(Formula::and((**a).clone(), Formula::not((**b).clone())))
        }
        Formula::Iff(a, b) => Formula::and(
            Formula::not(Formula::and((**a).clone(), Formula::not((**b).clone()))),
            Formula::not(Formula::and((**b).clone(), Formula::not((**a).clone()))),
        ),
        Formula::Forall(x, a) => Formula::not(Formula::exists(*x, Formula::not((**a).clone()))),
        other => other.clone(),
    }
}

/// Remove double negations everywhere: `¬¬w ↝ w`.
pub fn elim_double_neg(w: &Formula) -> Formula {
    match w {
        Formula::Not(a) => match a.as_ref() {
            Formula::Not(b) => elim_double_neg(b),
            _ => Formula::not(elim_double_neg(a)),
        },
        Formula::Atom(_) | Formula::Eq(_, _) => w.clone(),
        Formula::And(a, b) => Formula::and(elim_double_neg(a), elim_double_neg(b)),
        Formula::Or(a, b) => Formula::or(elim_double_neg(a), elim_double_neg(b)),
        Formula::Implies(a, b) => Formula::implies(elim_double_neg(a), elim_double_neg(b)),
        Formula::Iff(a, b) => Formula::iff(elim_double_neg(a), elim_double_neg(b)),
        Formula::Forall(x, a) => Formula::forall(*x, elim_double_neg(a)),
        Formula::Exists(x, a) => Formula::exists(*x, elim_double_neg(a)),
        Formula::Know(a) => Formula::know(elim_double_neg(a)),
    }
}

/// Negation normal form for **first-order** formulas: `⊃/≡` eliminated,
/// negations pushed inward until they sit on atoms or equalities.
///
/// # Panics
/// Panics when given a modal formula (`K` has no NNF dual in this setting).
pub fn nnf(w: &Formula) -> Formula {
    assert!(is_first_order(w), "nnf is defined for FOPCE formulas only");
    fn pos(w: &Formula) -> Formula {
        match w {
            Formula::Atom(_) | Formula::Eq(_, _) => w.clone(),
            Formula::Not(a) => neg(a),
            Formula::And(a, b) => Formula::and(pos(a), pos(b)),
            Formula::Or(a, b) => Formula::or(pos(a), pos(b)),
            Formula::Implies(a, b) => Formula::or(neg(a), pos(b)),
            Formula::Iff(a, b) => {
                Formula::and(Formula::or(neg(a), pos(b)), Formula::or(neg(b), pos(a)))
            }
            Formula::Forall(x, a) => Formula::forall(*x, pos(a)),
            Formula::Exists(x, a) => Formula::exists(*x, pos(a)),
            Formula::Know(_) => unreachable!("checked first-order"),
        }
    }
    fn neg(w: &Formula) -> Formula {
        match w {
            Formula::Atom(_) | Formula::Eq(_, _) => Formula::not(w.clone()),
            Formula::Not(a) => pos(a),
            Formula::And(a, b) => Formula::or(neg(a), neg(b)),
            Formula::Or(a, b) => Formula::and(neg(a), neg(b)),
            Formula::Implies(a, b) => Formula::and(pos(a), neg(b)),
            Formula::Iff(a, b) => {
                Formula::or(Formula::and(pos(a), neg(b)), Formula::and(pos(b), neg(a)))
            }
            Formula::Forall(x, a) => Formula::exists(*x, neg(a)),
            Formula::Exists(x, a) => Formula::forall(*x, neg(a)),
            Formula::Know(_) => unreachable!("checked first-order"),
        }
    }
    pos(w)
}

/// The map `σ ↦ σ̂` of Theorem 7.1: delete every occurrence of `K`.
///
/// Under the closed-world assumption `Closure(Σ) ⊨ σ|p̄ iff
/// Closure(Σ) ⊨_FOPCE σ̂|p̄` — the epistemic distinctions evaporate.
pub fn strip_k(w: &Formula) -> Formula {
    match w {
        Formula::Atom(_) | Formula::Eq(_, _) => w.clone(),
        Formula::Not(a) => Formula::not(strip_k(a)),
        Formula::And(a, b) => Formula::and(strip_k(a), strip_k(b)),
        Formula::Or(a, b) => Formula::or(strip_k(a), strip_k(b)),
        Formula::Implies(a, b) => Formula::implies(strip_k(a), strip_k(b)),
        Formula::Iff(a, b) => Formula::iff(strip_k(a), strip_k(b)),
        Formula::Forall(x, a) => Formula::forall(*x, strip_k(a)),
        Formula::Exists(x, a) => Formula::exists(*x, strip_k(a)),
        Formula::Know(a) => strip_k(a),
    }
}

/// The map `ℛ(w)` of Definition 7.1: replace every predicate atom `a` of a
/// FOPCE formula by `Ka`, homomorphically through all connectives.
///
/// Equality atoms are left unchanged: `t₁ = t₂` is already *subjective*
/// (Def. 5.2 rule 1) and `K(t₁ = t₂) ≡ (t₁ = t₂)` holds in the semantics
/// because the parameters are rigid designators.
///
/// Remark 7.1: `ℛ(w)` is a subjective K₁ formula.
///
/// # Panics
/// Panics when given a modal formula — `ℛ` is defined on FOPCE only.
pub fn modalize(w: &Formula) -> Formula {
    assert!(is_first_order(w), "ℛ(w) is defined for FOPCE formulas only");
    fn go(w: &Formula) -> Formula {
        match w {
            Formula::Atom(_) => Formula::know(w.clone()),
            Formula::Eq(_, _) => w.clone(),
            Formula::Not(a) => Formula::not(go(a)),
            Formula::And(a, b) => Formula::and(go(a), go(b)),
            Formula::Or(a, b) => Formula::or(go(a), go(b)),
            Formula::Implies(a, b) => Formula::implies(go(a), go(b)),
            Formula::Iff(a, b) => Formula::iff(go(a), go(b)),
            Formula::Forall(x, a) => Formula::forall(*x, go(a)),
            Formula::Exists(x, a) => Formula::exists(*x, go(a)),
            Formula::Know(_) => unreachable!("checked first-order"),
        }
    }
    go(w)
}

/// Rewrite an integrity constraint into an equivalent **admissible**
/// sentence, following Example 5.4 (which mirrors the Lloyd–Topor
/// transformations).
///
/// The rewriting is: expand the defined connectives ([`kernel`]), then
/// delete double negations, then rename quantified variables apart. For
/// every constraint of the natural `∀x̄ (Kφ ⊃ Kψ)` shape this produces the
/// paper's `¬∃x̄ (Kφ ∧ ¬Kψ)` form. The result is KFOPCE-equivalent to the
/// input (each step is an equivalence), so by Corollary 4.1 it can be used
/// in place of the original for integrity maintenance.
///
/// Returns the rewritten sentence; use
/// [`crate::classify::admissibility`] to verify the result is admissible
/// (it is for all of the paper's examples, but not every KFOPCE sentence
/// can be made admissible).
pub fn admissible_constraint(ic: &Formula) -> Formula {
    elim_double_neg(&kernel(ic)).rename_apart()
}

/// Modal flattening, sound for Levesque's weak-S5 semantics:
///
/// * `K(w₁ ∧ w₂) ↝ Kw₁ ∧ Kw₂` (K distributes over conjunction);
/// * `Kσ ↝ σ` when `σ` is subjective — a subjective formula's truth value
///   does not depend on the world of evaluation, so prefixing `K` is
///   redundant; this yields the K45-style reductions `KKw ≡ Kw` and
///   `K¬Kw ≡ ¬Kw`;
/// * `¬¬w ↝ w`.
///
/// Applied bottom-up to a fixpoint. Every K₁-subjective formula is left
/// with modal depth exactly 1 and iterated modalities are eliminated.
pub fn flatten_k45(w: &Formula) -> Formula {
    match w {
        Formula::Atom(_) | Formula::Eq(_, _) => w.clone(),
        Formula::Not(a) => {
            let a = flatten_k45(a);
            match a {
                Formula::Not(inner) => *inner,
                _ => Formula::not(a),
            }
        }
        Formula::And(a, b) => Formula::and(flatten_k45(a), flatten_k45(b)),
        Formula::Or(a, b) => Formula::or(flatten_k45(a), flatten_k45(b)),
        Formula::Implies(a, b) => Formula::implies(flatten_k45(a), flatten_k45(b)),
        Formula::Iff(a, b) => Formula::iff(flatten_k45(a), flatten_k45(b)),
        Formula::Forall(x, a) => Formula::forall(*x, flatten_k45(a)),
        Formula::Exists(x, a) => Formula::exists(*x, flatten_k45(a)),
        Formula::Know(a) => {
            let a = flatten_k45(a);
            if is_subjective(&a) {
                a
            } else if let Formula::And(l, r) = &a {
                Formula::and(
                    flatten_k45(&Formula::know((**l).clone())),
                    flatten_k45(&Formula::know((**r).clone())),
                )
            } else {
                Formula::know(a)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{admissibility, is_k1, is_subjective};
    use crate::parse::parse;

    #[test]
    fn kernel_eliminates_sugar() {
        let w = parse("forall x. p(x) -> q(x) | r(x)").unwrap();
        let k = kernel(&w);
        assert_eq!(k.to_string(), "~(exists x. ~~(p(x) & ~~(~q(x) & ~r(x))))");
    }

    #[test]
    fn nnf_pushes_negations() {
        let w = parse("~(p & (q | ~r))").unwrap();
        assert_eq!(nnf(&w).to_string(), "~p | ~q & r");
        let w2 = parse("~ forall x. p(x)").unwrap();
        assert_eq!(nnf(&w2).to_string(), "exists x. ~p(x)");
        let w3 = parse("~(p -> q)").unwrap();
        assert_eq!(nnf(&w3).to_string(), "p & ~q");
    }

    #[test]
    #[should_panic(expected = "FOPCE")]
    fn nnf_rejects_modal() {
        let _ = nnf(&parse("K p").unwrap());
    }

    #[test]
    fn strip_k_theorem71() {
        // Example 7.1: ∀x (Kp(x) ∨ K¬p(x)) strips to ∀x (p(x) ∨ ¬p(x)).
        let w = parse("forall x. K p(x) | K ~p(x)").unwrap();
        assert_eq!(strip_k(&w).to_string(), "forall x. p(x) | ~p(x)");
    }

    #[test]
    fn modalize_example_73() {
        // ℛ(q(x) ∧ ¬∃y (r(x,y) ∧ ¬q(y))) = Kq(x) ∧ ¬∃y (Kr(x,y) ∧ ¬Kq(y))
        let w = parse("q(x) & ~(exists y. r(x, y) & ~q(y))").unwrap();
        let m = modalize(&w);
        assert_eq!(m.to_string(), "K q(x) & ~(exists y. K r(x, y) & ~K q(y))");
        assert!(is_subjective(&m), "Remark 7.1: ℛ(w) is subjective");
        assert!(is_k1(&m), "Remark 7.1: ℛ(w) is K₁");
    }

    #[test]
    fn modalize_keeps_equality_bare() {
        let w = parse("x = y & p(x)").unwrap();
        assert_eq!(modalize(&w).to_string(), "x = y & K p(x)");
    }

    #[test]
    fn example_54_social_security() {
        // ∀x (Kemp(x) ⊃ K∃y ss(x,y))  ↝  ¬∃x (Kemp(x) ∧ ¬K∃y ss(x,y))
        let ic = parse("forall x. K emp(x) -> K exists y. ss(x, y)").unwrap();
        let a = admissible_constraint(&ic);
        assert_eq!(
            a.to_string(),
            "~(exists x. K emp(x) & ~K (exists y. ss(x, y)))"
        );
        assert!(admissibility(&a).is_admissible(), "{:?}", admissibility(&a));
    }

    #[test]
    fn example_54_male_female_exclusion() {
        // ∀x ¬K(male(x) ∧ female(x))  ↝  ¬∃x K(male(x) ∧ female(x))
        let ic = parse("forall x. ~K(male(x) & female(x))").unwrap();
        let a = admissible_constraint(&ic);
        assert_eq!(a.to_string(), "~(exists x. K (male(x) & female(x)))");
        assert!(admissibility(&a).is_admissible());
    }

    #[test]
    fn example_54_male_or_female_totality() {
        // ∀x (Kperson(x) ⊃ Kmale(x) ∨ Kfemale(x))
        //   ↝ ¬∃x (Kperson(x) ∧ ¬Kmale(x) ∧ ¬Kfemale(x))
        let ic = parse("forall x. K person(x) -> K male(x) | K female(x)").unwrap();
        let a = admissible_constraint(&ic);
        assert_eq!(
            a.to_string(),
            "~(exists x. K person(x) & (~K male(x) & ~K female(x)))"
        );
        assert!(admissibility(&a).is_admissible());
    }

    #[test]
    fn example_54_mother_typing() {
        let ic =
            parse("forall x, y. K mother(x, y) -> K(person(x) & female(x) & person(y))").unwrap();
        let a = admissible_constraint(&ic);
        assert_eq!(
            a.to_string(),
            "~(exists x. exists y. K mother(x, y) & ~K (person(x) & female(x) & person(y)))"
        );
        assert!(admissibility(&a).is_admissible());
    }

    #[test]
    fn example_54_functional_dependency() {
        // ∀x,y,z (Kss(x,y) ∧ Kss(x,z) ⊃ K y=z)
        //   ↝ ¬∃x,y,z (Kss(x,y) ∧ Kss(x,z) ∧ ¬K y=z)
        let ic = parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap();
        let a = admissible_constraint(&ic);
        assert_eq!(
            a.to_string(),
            "~(exists x. exists y. exists z. K ss(x, y) & K ss(x, z) & ~K y = z)"
        );
        assert!(admissibility(&a).is_admissible());
    }

    #[test]
    fn flatten_removes_iterated_modalities() {
        let w = parse("K K p").unwrap();
        assert_eq!(flatten_k45(&w).to_string(), "K p");
        let w2 = parse("K ~K p").unwrap();
        assert_eq!(flatten_k45(&w2).to_string(), "~K p");
        let w3 = parse("K (p & q)").unwrap();
        assert_eq!(flatten_k45(&w3).to_string(), "K p & K q");
        // Equality under K is subjective, so K drops.
        let w4 = parse("K (a = b)").unwrap();
        assert_eq!(flatten_k45(&w4).to_string(), "a = b");
    }

    #[test]
    fn flatten_preserves_nonsubjective_k() {
        let w = parse("K p(x)").unwrap();
        assert_eq!(flatten_k45(&w), w);
    }
}
