//! The write-ahead log: an append-only stream of checksummed, LSN-stamped
//! textual records.
//!
//! # Record format
//!
//! One record per committed transaction (or registered constraint):
//!
//! ```text
//! @<lsn> <payload-len> <fnv1a64-hex>\n
//! <payload>\n
//! ```
//!
//! The payload is UTF-8 text, one operation per line — `assert <sentence>`,
//! `retract <sentence>`, or `constraint <sentence>` — with sentences
//! serialized by the `epilog-syntax` pretty-printer and read back with
//! [`parse()`](fn@epilog_syntax::parse). The `parse(display(w)) == w` round-trip for every sentence a
//! database can hold (pinned by `tests/prop_syntax.rs`) is the correctness
//! floor of this format. LSNs increase by exactly 1 from record to record;
//! the checksum covers the payload bytes.
//!
//! # Torn tails
//!
//! A crash mid-append leaves a partial final record. [`Wal::open`] scans
//! the log, stops at the first record that fails any framing check
//! (header shape, LSN continuity, payload length, terminator, checksum,
//! sentence syntax), truncates the file there, and reports the cut as a
//! [`TornTail`]. Everything before the cut is intact by checksum;
//! everything after it is unrecoverable by construction (records are not
//! self-synchronizing), which is exactly the log-ahead contract: the tail
//! being torn means the transaction never reported success.

use crate::fault::{self, FaultInjector};
use crate::fnv1a64;
use epilog_syntax::{parse, Formula};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of the log inside a durable database directory.
pub const WAL_FILE: &str = "wal.log";

/// When appended records are forced to stable storage.
///
/// # The loss window is crash-only
///
/// Under [`Batch`](FsyncPolicy::Batch) and [`Never`](FsyncPolicy::Never)
/// some committed records may sit in OS caches, unsynced — at most the
/// last `n` under `Batch(n)`, unboundedly many under `Never`
/// ([`Wal::pending_unsynced`] reports the live count). That window can
/// only be lost to a **crash** (power cut, `kill -9`): a clean shutdown
/// flushes it, because dropping a [`Wal`] syncs any pending records (as
/// does dropping the `DurableDb` that owns it). Either way the log stays
/// crash-*consistent* — recovery truncates at the first torn record and
/// everything before it is intact by checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: a reported commit is durable. Slowest.
    Always,
    /// `fsync` every `n` appends: bounds the crash-loss window to the
    /// last `n` transactions while amortizing the sync cost.
    Batch(u32),
    /// Never `fsync` on append; the OS flushes when it pleases (and
    /// [`Wal::sync`] forces it — the group-commit writer uses exactly
    /// this, one explicit sync per batch). Fastest, and still
    /// crash-*consistent* — just not crash-*durable*.
    Never,
}

/// One logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A sentence the transaction added.
    Assert(Formula),
    /// A sentence the transaction removed.
    Retract(Formula),
    /// An integrity constraint registered on the database.
    Constraint(Formula),
}

impl WalOp {
    fn encode(&self) -> String {
        match self {
            WalOp::Assert(w) => format!("assert {w}"),
            WalOp::Retract(w) => format!("retract {w}"),
            WalOp::Constraint(w) => format!("constraint {w}"),
        }
    }

    fn decode(line: &str) -> Result<WalOp, String> {
        let (verb, rest) = line
            .split_once(' ')
            .ok_or_else(|| format!("op line without a verb: {line:?}"))?;
        let w = parse(rest).map_err(|e| format!("unparseable sentence in {line:?}: {e}"))?;
        match verb {
            "assert" => Ok(WalOp::Assert(w)),
            "retract" => Ok(WalOp::Retract(w)),
            "constraint" => Ok(WalOp::Constraint(w)),
            _ => Err(format!("unknown op verb {verb:?}")),
        }
    }
}

/// A decoded record, with the byte offset just past it (a valid crash/cut
/// point — `tests/prop_persist.rs` truncates at and between these).
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// The record's log sequence number.
    pub lsn: u64,
    /// The operations of the record, in application order.
    pub ops: Vec<WalOp>,
    /// Byte offset of the first byte after this record.
    pub end_offset: u64,
}

/// Where and why a log scan stopped before the end of the file.
#[derive(Debug, Clone)]
pub struct TornTail {
    /// Byte offset of the first unrecoverable byte.
    pub offset: u64,
    /// What failed: framing, checksum, LSN continuity, or syntax.
    pub reason: String,
}

impl fmt::Display for TornTail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "torn tail at byte {}: {}", self.offset, self.reason)
    }
}

/// The result of scanning a log file.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Every intact record, in LSN order.
    pub records: Vec<WalRecord>,
    /// The cut point, when the scan stopped before end-of-file.
    pub torn: Option<TornTail>,
    /// Bytes after the cut point (0 when the log is intact).
    pub truncated_bytes: u64,
}

impl WalScan {
    /// LSN of the last intact record (0 when the log is empty).
    pub fn last_lsn(&self) -> u64 {
        self.records.last().map_or(0, |r| r.lsn)
    }
}

fn encode_record(lsn: u64, ops: &[WalOp]) -> Vec<u8> {
    let payload = ops.iter().map(WalOp::encode).collect::<Vec<_>>().join("\n");
    let mut out = format!(
        "@{lsn} {} {:016x}\n",
        payload.len(),
        fnv1a64(payload.as_bytes())
    )
    .into_bytes();
    out.extend_from_slice(payload.as_bytes());
    out.push(b'\n');
    out
}

/// Scan raw log bytes into records, stopping at the first defect.
fn scan_bytes(bytes: &[u8]) -> WalScan {
    let mut scan = WalScan::default();
    let mut pos: usize = 0;
    let torn = |offset: usize, reason: String| TornTail {
        offset: offset as u64,
        reason,
    };
    while pos < bytes.len() {
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            scan.torn = Some(torn(pos, "unterminated header".into()));
            break;
        };
        let header = &bytes[pos..pos + nl];
        let parsed = std::str::from_utf8(header)
            .ok()
            .and_then(|h| h.strip_prefix('@'))
            .and_then(|h| {
                let mut it = h.split(' ');
                let lsn = it.next()?.parse::<u64>().ok()?;
                let len = it.next()?.parse::<usize>().ok()?;
                let sum = u64::from_str_radix(it.next()?, 16).ok()?;
                it.next().is_none().then_some((lsn, len, sum))
            });
        let Some((lsn, len, sum)) = parsed else {
            scan.torn = Some(torn(pos, "malformed header".into()));
            break;
        };
        let expected = scan.last_lsn() + 1;
        if !scan.records.is_empty() && lsn != expected {
            scan.torn = Some(torn(
                pos,
                format!("LSN {lsn} breaks continuity (expected {expected})"),
            ));
            break;
        }
        let body = pos + nl + 1;
        // `len` comes from a possibly corrupt header: compare against the
        // bytes actually available (checked, so a huge declared length is
        // a torn tail rather than an overflow panic).
        let available = bytes.len().saturating_sub(body);
        if len >= available {
            scan.torn = Some(torn(
                pos,
                format!(
                    "payload truncated ({available} of {} bytes)",
                    len.saturating_add(1)
                ),
            ));
            break;
        }
        let payload = &bytes[body..body + len];
        if bytes[body + len] != b'\n' {
            scan.torn = Some(torn(pos, "missing record terminator".into()));
            break;
        }
        if fnv1a64(payload) != sum {
            scan.torn = Some(torn(pos, "checksum mismatch".into()));
            break;
        }
        let text = match std::str::from_utf8(payload) {
            Ok(t) => t,
            Err(_) => {
                scan.torn = Some(torn(pos, "payload is not UTF-8".into()));
                break;
            }
        };
        let mut ops = Vec::new();
        let mut defect = None;
        for line in text.lines() {
            match WalOp::decode(line) {
                Ok(op) => ops.push(op),
                Err(e) => {
                    defect = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = defect {
            scan.torn = Some(torn(pos, e));
            break;
        }
        pos = body + len + 1;
        scan.records.push(WalRecord {
            lsn,
            ops,
            end_offset: pos as u64,
        });
    }
    if let Some(t) = &scan.torn {
        scan.truncated_bytes = bytes.len() as u64 - t.offset;
    }
    scan
}

/// An open write-ahead log, positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    next_lsn: u64,
    len_bytes: u64,
    records: u64,
    unsynced: u32,
    injector: Option<Arc<FaultInjector>>,
}

impl Wal {
    /// Create a fresh log at `path`. Fails if the file already exists
    /// (an existing log must go through [`Wal::open`] so its tail is
    /// validated, never blindly appended to).
    pub fn create(path: impl Into<PathBuf>, policy: FsyncPolicy) -> io::Result<Wal> {
        let path = path.into();
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)?;
        if let Some(dir) = path.parent() {
            crate::sync_dir(dir)?;
        }
        Ok(Wal {
            file,
            path,
            policy,
            next_lsn: 1,
            len_bytes: 0,
            records: 0,
            unsynced: 0,
            injector: None,
        })
    }

    /// Open an existing log (creating an empty one if absent): scan it,
    /// truncate any torn tail, and position for appending after the last
    /// intact record. The scan — including what was cut and why — is
    /// returned for the caller's recovery report.
    pub fn open(path: impl Into<PathBuf>, policy: FsyncPolicy) -> io::Result<(Wal, WalScan)> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let scan = scan_bytes(&bytes);
        let good_len = scan.records.last().map_or(0, |r| r.end_offset);
        if (good_len as usize) < bytes.len() {
            file.set_len(good_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(good_len))?;
        let wal = Wal {
            file,
            path,
            policy,
            next_lsn: scan.last_lsn() + 1,
            len_bytes: good_len,
            records: scan.records.len() as u64,
            unsynced: 0,
            injector: None,
        };
        Ok((wal, scan))
    }

    /// Route this log's appends and syncs through a [`FaultInjector`]
    /// (`None` restores direct I/O). Appends, explicit syncs, rewinds,
    /// and the drop-flush all consult it; the recovery-side scan and
    /// truncation do not — recovery is the operator's path back to a
    /// working log.
    pub fn set_fault_injector(&mut self, injector: Option<Arc<FaultInjector>>) {
        self.injector = injector;
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.injector.clone()
    }

    /// Scan a log file read-only: no truncation, no repositioning. Used by
    /// tests and crash simulations to enumerate record boundaries.
    pub fn scan_file(path: impl AsRef<Path>) -> io::Result<WalScan> {
        let bytes = std::fs::read(path)?;
        Ok(scan_bytes(&bytes))
    }

    /// Append one record and apply the fsync policy. Returns the record's
    /// LSN. The record is written with a single `write_all`, so a crash
    /// leaves either nothing or a (possibly partial, detectable) tail.
    ///
    /// On a failed append the accounting is untouched but the file may
    /// hold a torn prefix of the record; callers that continue appending
    /// must `rewind` to the pre-append `mark` first (the serving writer
    /// and `DurableTransaction` both do).
    pub fn append(&mut self, ops: &[WalOp]) -> io::Result<u64> {
        assert!(!ops.is_empty(), "a WAL record must carry at least one op");
        let lsn = self.next_lsn;
        let bytes = encode_record(lsn, ops);
        fault::write_all(self.injector.as_deref(), &mut self.file, &bytes)?;
        self.next_lsn += 1;
        self.len_bytes += bytes.len() as u64;
        self.records += 1;
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Batch(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(lsn)
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        fault::sync_data(self.injector.as_deref(), &self.file)?;
        self.unsynced = 0;
        Ok(())
    }

    /// Number of appended records not yet covered by an fsync — the
    /// crash-loss window right now. Always 0 under
    /// [`FsyncPolicy::Always`]; at most `n-1` under `Batch(n)` (an
    /// append that reaches `n` syncs); unbounded under `Never` until
    /// [`Wal::sync`] is called.
    pub fn pending_unsynced(&self) -> u32 {
        self.unsynced
    }

    /// Drop every record with `lsn <= through` (they are covered by a
    /// snapshot), rewriting the file atomically (tmp + rename). Returns
    /// `(records_dropped, bytes_reclaimed)`.
    pub fn compact_through(&mut self, through: u64) -> io::Result<(u64, u64)> {
        self.sync()?;
        let bytes = std::fs::read(&self.path)?;
        let scan = scan_bytes(&bytes);
        let keep_from = scan
            .records
            .iter()
            .take_while(|r| r.lsn <= through)
            .last()
            .map_or(0, |r| r.end_offset) as usize;
        if keep_from == 0 {
            return Ok((0, 0));
        }
        let dropped = scan.records.iter().filter(|r| r.lsn <= through).count() as u64;
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes[keep_from..])?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            crate::sync_dir(dir)?;
        }
        // The old handle points at the unlinked inode; reopen for append.
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.file.sync_data()?;
        self.len_bytes -= keep_from as u64;
        self.records -= dropped;
        Ok((dropped, keep_from as u64))
    }

    /// Advance the next LSN (used after recovery from a snapshot newer
    /// than the last log record, so LSNs never regress).
    pub fn bump_next_lsn(&mut self, at_least: u64) {
        self.next_lsn = self.next_lsn.max(at_least);
    }

    /// LSN of the last appended record (0 when none).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Number of records currently in the file.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Current file length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Truncate the file back to `len` and restore `next_lsn` — the
    /// compensation for a logged operation whose application was then
    /// refused (used by `DurableDb::add_constraint`).
    pub(crate) fn rewind(&mut self, len: u64, next_lsn: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::Start(len))?;
        fault::sync_data(self.injector.as_deref(), &self.file)?;
        self.records -= self.next_lsn - next_lsn;
        self.len_bytes = len;
        self.next_lsn = next_lsn;
        self.unsynced = 0;
        Ok(())
    }

    pub(crate) fn mark(&self) -> (u64, u64) {
        (self.len_bytes, self.next_lsn)
    }
}

/// A cleanly dropped log leaves no loss window: any records appended
/// since the last fsync are flushed on `Drop`. A flush failure here is
/// swallowed (there is no way to report it from a destructor) — callers
/// that need the error should call [`Wal::sync`] explicitly first.
impl Drop for Wal {
    fn drop(&mut self) {
        if self.unsynced > 0 {
            let _ = fault::sync_data(self.injector.as_deref(), &self.file);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> PathBuf {
        use std::sync::atomic::{AtomicU32, Ordering};
        static N: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "epilog-wal-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn f(src: &str) -> Formula {
        parse(src).unwrap()
    }

    #[test]
    fn append_scan_roundtrip() {
        let d = dir();
        let mut wal = Wal::create(d.join(WAL_FILE), FsyncPolicy::Never).unwrap();
        assert_eq!(wal.append(&[WalOp::Assert(f("p(a)"))]).unwrap(), 1);
        assert_eq!(
            wal.append(&[WalOp::Retract(f("p(a)")), WalOp::Assert(f("q(b)"))])
                .unwrap(),
            2
        );
        assert_eq!(
            wal.append(&[WalOp::Constraint(f("forall x. ~K bad(x)"))])
                .unwrap(),
            3
        );
        wal.sync().unwrap();
        let scan = Wal::scan_file(d.join(WAL_FILE)).unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[1].ops.len(), 2);
        assert_eq!(
            scan.records[2].ops,
            vec![WalOp::Constraint(f("forall x. ~K bad(x)"))]
        );
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let d = dir();
        let path = d.join(WAL_FILE);
        let mut wal = Wal::create(&path, FsyncPolicy::Always).unwrap();
        let _ = wal.append(&[WalOp::Assert(f("p(a)"))]).unwrap();
        let good = wal.len_bytes();
        let _ = wal.append(&[WalOp::Assert(f("q(b)"))]).unwrap();
        drop(wal);
        // Tear the second record: chop 3 bytes off the end.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (wal, scan) = Wal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(scan.records.len(), 1);
        let torn = scan.torn.expect("tear must be reported");
        assert_eq!(torn.offset, good);
        assert_eq!(wal.last_lsn(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good);
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let d = dir();
        let path = d.join(WAL_FILE);
        let mut wal = Wal::create(&path, FsyncPolicy::Always).unwrap();
        let _ = wal.append(&[WalOp::Assert(f("p(a)"))]).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte, keeping the length intact.
        let n = bytes.len();
        bytes[n - 2] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let scan = Wal::scan_file(&path).unwrap();
        assert!(scan.records.is_empty());
        let reason = scan.torn.unwrap().reason;
        assert!(
            reason.contains("checksum") || reason.contains("sentence"),
            "unexpected reason: {reason}"
        );
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn huge_declared_length_is_a_torn_tail_not_a_panic() {
        // A corrupt header declaring a near-usize::MAX payload length
        // must be reported as a torn tail, not overflow the scanner.
        let d = dir();
        let path = d.join(WAL_FILE);
        std::fs::write(&path, format!("@1 {} 0000000000000000\np(a)\n", u64::MAX)).unwrap();
        let scan = Wal::scan_file(&path).unwrap();
        assert!(scan.records.is_empty());
        let reason = scan.torn.unwrap().reason;
        assert!(reason.contains("truncated"), "unexpected reason: {reason}");
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn appends_resume_after_open() {
        let d = dir();
        let path = d.join(WAL_FILE);
        let mut wal = Wal::create(&path, FsyncPolicy::Batch(2)).unwrap();
        let _ = wal.append(&[WalOp::Assert(f("p(a)"))]).unwrap();
        drop(wal);
        let (mut wal, scan) = Wal::open(&path, FsyncPolicy::Batch(2)).unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(wal.append(&[WalOp::Assert(f("q(b)"))]).unwrap(), 2);
        wal.sync().unwrap();
        let scan = Wal::scan_file(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.last_lsn(), 2);
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn pending_unsynced_tracks_the_loss_window() {
        let d = dir();
        let path = d.join(WAL_FILE);
        let mut wal = Wal::create(&path, FsyncPolicy::Batch(3)).unwrap();
        assert_eq!(wal.pending_unsynced(), 0);
        let _ = wal.append(&[WalOp::Assert(f("p(a)"))]).unwrap();
        let _ = wal.append(&[WalOp::Assert(f("p(b)"))]).unwrap();
        assert_eq!(wal.pending_unsynced(), 2, "below the batch threshold");
        let _ = wal.append(&[WalOp::Assert(f("p(c)"))]).unwrap();
        assert_eq!(wal.pending_unsynced(), 0, "the n-th append syncs");

        // Always keeps the window permanently closed; Never only counts.
        let mut always = Wal::create(d.join("a.log"), FsyncPolicy::Always).unwrap();
        let _ = always.append(&[WalOp::Assert(f("p(a)"))]).unwrap();
        assert_eq!(always.pending_unsynced(), 0);
        let mut never = Wal::create(d.join("n.log"), FsyncPolicy::Never).unwrap();
        for i in 0..5 {
            let _ = never
                .append(&[WalOp::Assert(f(&format!("p(a{i})")))])
                .unwrap();
        }
        assert_eq!(never.pending_unsynced(), 5);
        never.sync().unwrap();
        assert_eq!(never.pending_unsynced(), 0);
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn drop_flushes_pending_records() {
        // Batch(100) with 1 append: the record sits unsynced until the
        // Wal is dropped, after which the file must scan complete. (The
        // scan would *usually* see it even without the drop-flush — the
        // data is in OS caches — so also assert the accounting that the
        // window was open.)
        let d = dir();
        let path = d.join(WAL_FILE);
        let mut wal = Wal::create(&path, FsyncPolicy::Batch(100)).unwrap();
        let _ = wal.append(&[WalOp::Assert(f("p(a)"))]).unwrap();
        assert_eq!(wal.pending_unsynced(), 1, "window open before drop");
        drop(wal);
        let scan = Wal::scan_file(&path).unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(scan.last_lsn(), 1);
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn compaction_drops_covered_prefix() {
        let d = dir();
        let path = d.join(WAL_FILE);
        let mut wal = Wal::create(&path, FsyncPolicy::Never).unwrap();
        for i in 0..5 {
            let _ = wal
                .append(&[WalOp::Assert(f(&format!("p(a{i})")))])
                .unwrap();
        }
        let (dropped, reclaimed) = wal.compact_through(3).unwrap();
        assert_eq!(dropped, 3);
        assert!(reclaimed > 0);
        assert_eq!(wal.records(), 2);
        // The survivors keep their LSNs and the log stays appendable.
        assert_eq!(wal.append(&[WalOp::Assert(f("p(b)"))]).unwrap(), 6);
        wal.sync().unwrap();
        let scan = Wal::scan_file(&path).unwrap();
        assert_eq!(
            scan.records.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn sentences_round_trip_through_the_text_format() {
        // Sentence shapes a database can hold, incl. the $-escaped
        // parameter that collides with the variable convention.
        let d = dir();
        let path = d.join(WAL_FILE);
        let mut wal = Wal::create(&path, FsyncPolicy::Never).unwrap();
        let ws = [
            f("p(a)"),
            f("exists x. Teach(x, CS)"),
            f("Teach(Mary, Psych) | Teach(Sue, Psych)"),
            f("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)"),
            f("~(p(a) & q(b))"),
            f("a != b"),
            epilog_syntax::Formula::atom("p", vec![epilog_syntax::Param::new("x").into()]),
        ];
        let _ = wal
            .append(&ws.iter().cloned().map(WalOp::Assert).collect::<Vec<_>>())
            .unwrap();
        wal.sync().unwrap();
        let scan = Wal::scan_file(&path).unwrap();
        assert!(scan.torn.is_none());
        let got: Vec<Formula> = scan.records[0]
            .ops
            .iter()
            .map(|op| match op {
                WalOp::Assert(w) => w.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got.as_slice(), ws.as_slice());
        std::fs::remove_dir_all(d).unwrap();
    }
}
