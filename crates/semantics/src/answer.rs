//! The three-valued answer to a query sentence (Definition 2.1).

use std::fmt;

/// The answer to a KFOPCE *sentence* query against a database `Σ`:
///
/// * [`Answer::Yes`] — `Σ ⊨ q`;
/// * [`Answer::No`] — `Σ ⊨ ¬q`;
/// * [`Answer::Unknown`] — neither.
///
/// For *subjective* sentences the `Unknown` case is impossible
/// (Lemma 5.2): the database always knows what it knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Answer {
    /// The query is entailed.
    Yes,
    /// The query's negation is entailed.
    No,
    /// Neither the query nor its negation is entailed.
    Unknown,
}

impl Answer {
    /// Combine the two entailment checks into an answer.
    ///
    /// # Panics
    /// Panics if both are claimed entailed — that would mean `Σ` is
    /// unsatisfiable, which callers are expected to rule out first (the
    /// soundness theorem 5.1 assumes a satisfiable `Σ`).
    pub fn from_entailments(yes: bool, no: bool) -> Answer {
        match (yes, no) {
            (true, true) => {
                panic!("both q and ~q entailed: the database is unsatisfiable")
            }
            (true, false) => Answer::Yes,
            (false, true) => Answer::No,
            (false, false) => Answer::Unknown,
        }
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Answer::Yes => write!(f, "yes"),
            Answer::No => write!(f, "no"),
            Answer::Unknown => write!(f, "unknown"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination() {
        assert_eq!(Answer::from_entailments(true, false), Answer::Yes);
        assert_eq!(Answer::from_entailments(false, true), Answer::No);
        assert_eq!(Answer::from_entailments(false, false), Answer::Unknown);
    }

    #[test]
    #[should_panic(expected = "unsatisfiable")]
    fn contradiction_panics() {
        let _ = Answer::from_entailments(true, true);
    }

    #[test]
    fn display() {
        assert_eq!(Answer::Yes.to_string(), "yes");
        assert_eq!(Answer::No.to_string(), "no");
        assert_eq!(Answer::Unknown.to_string(), "unknown");
    }
}
