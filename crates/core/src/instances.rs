//! The finiteness machinery of §6: `Instances(w, Σ)` and the class `F_Σ`.
//!
//! * **Definition 6.1** — `Instances(w, Σ)` is the set of parameter tuples
//!   `p̄` with `Σ ⊨ w|p̄`; [`instances`] computes it for first-order `w`
//!   (over the answer domain — exactly the set Lemma 6.3 proves finite for
//!   the Theorem 6.2 fragment).
//! * **Theorem 6.2's `F_Σ`** — positive existential formulas with
//!   disjunctively linked variables, plus the equality atoms
//!   `p = p'`, `p ≠ p'`, `x = p`, `p = x`. [`in_f_sigma`] is the
//!   membership test; [`admissible_wrt_f_sigma`] combines it with the
//!   almost-admissibility closure of Definition 6.2 and the
//!   distinct-variables condition of Remark 6.2 — the exact hypothesis of
//!   the completeness Theorems 6.1/6.2.
//!
//! `demo` is guaranteed *sound and complete* (returns, and enumerates
//! exactly the certain answers) on queries passing
//! [`admissible_wrt_f_sigma`] against elementary databases with finitely
//! many parameters — the property the `e6` test suite verifies.

use epilog_prover::Prover;
use epilog_syntax::classify::almost_admissible;
use epilog_syntax::{is_first_order, is_positive_existential, Formula, Param, Term, Theory, Var};
use std::collections::BTreeSet;

/// `Instances(w, Σ)` (Definition 6.1) for a first-order formula, computed
/// over the answer domain. For formulas admissible wrt `F_Σ` this is the
/// complete instance set (Lemma 6.3: answers mention only `Σ`'s
/// parameters).
pub fn instances(prover: &Prover, w: &Formula) -> Vec<Vec<Param>> {
    assert!(is_first_order(w), "Instances is defined for FOPCE formulas");
    epilog_prover::AnswerIter::new(prover, w).collect()
}

/// Membership in the `F_Σ` of Theorem 6.2: positive existential with
/// disjunctively linked variables, or one of the permitted equality-atom
/// shapes. `bound` holds the variables an enclosing conjunction has
/// already bound (they count as parameters for the linkage check).
pub fn in_f_sigma(w: &Formula, bound: &BTreeSet<Var>) -> bool {
    match w {
        // p = p' and p ≠ p' (ground equality literals).
        Formula::Eq(a, b) => eq_side_ok(a, bound) && eq_side_ok(b, bound),
        Formula::Not(inner) => {
            matches!(inner.as_ref(), Formula::Eq(a, b) if eq_side_ok(a, bound) && eq_side_ok(b, bound))
        }
        _ => {
            if !is_positive_existential(w) {
                return false;
            }
            // Disjunctive linkage wrt the formula's *unbound* free
            // variables (bound ones behave as parameters).
            disjunctively_linked_mod(w, bound)
        }
    }
}

/// An equality side is a parameter, or a variable (the paper permits
/// `x = p` / `p = x`; a variable side bound by conjunction is a parameter
/// anyway).
fn eq_side_ok(t: &Term, _bound: &BTreeSet<Var>) -> bool {
    matches!(t, Term::Param(_) | Term::Var(_))
}

/// Disjunctive linkage (Definition 6.4), with conjunction-bound variables
/// treated as parameters.
fn disjunctively_linked_mod(w: &Formula, bound: &BTreeSet<Var>) -> bool {
    let top: BTreeSet<Var> = w
        .free_vars()
        .into_iter()
        .filter(|v| !bound.contains(v))
        .collect();
    for s in w.subformulas() {
        if let Formula::Or(a, b) = s {
            let fa: BTreeSet<Var> = a
                .free_vars()
                .into_iter()
                .filter(|v| top.contains(v))
                .collect();
            let fb: BTreeSet<Var> = b
                .free_vars()
                .into_iter()
                .filter(|v| top.contains(v))
                .collect();
            if fa != fb {
                return false;
            }
        }
    }
    true
}

/// The hypothesis of Theorems 6.1/6.2: almost admissible wrt `F_Σ`
/// (Definition 6.2) with quantified variables distinct from one another
/// and from the free variables (Remark 6.2). On queries passing this
/// check, `demo` terminates and enumerates exactly the certain answers
/// against any elementary database with finitely many parameters.
pub fn admissible_wrt_f_sigma(w: &Formula) -> bool {
    // Remark 6.2's variable condition.
    let free: BTreeSet<Var> = w.free_vars().into_iter().collect();
    let mut seen = BTreeSet::new();
    for q in w.quantified_vars() {
        if free.contains(&q) || !seen.insert(q) {
            return false;
        }
    }
    almost_admissible(w, &|f, bound| in_f_sigma(f, bound))
}

/// Check that `Instances(w, Σ)` is finite *by construction* for a query
/// admissible wrt `F_Σ` over an elementary theory (Lemma 6.1 + 6.3):
/// returns the instance count, or `None` if the hypotheses do not hold.
pub fn certified_instance_count(prover: &Prover, w: &Formula) -> Option<usize> {
    if !prover.theory().is_elementary() || !admissible_wrt_f_sigma(w) {
        return None;
    }
    if is_first_order(w) {
        Some(instances(prover, w).len())
    } else {
        Some(crate::demo::all_answers(prover, w).ok()?.len())
    }
}

/// Convenience: the finiteness hypothesis of Theorem 6.2 for the theory —
/// elementary and mentioning finitely many parameters (always true for
/// our in-memory [`Theory`], kept explicit for documentation value).
pub fn theorem_62_applies(theory: &Theory, w: &Formula) -> bool {
    theory.is_elementary() && admissible_wrt_f_sigma(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::parse;

    fn prover(src: &str) -> Prover {
        Prover::new(Theory::from_text(src).unwrap())
    }

    #[test]
    fn instances_of_simple_queries() {
        let p = prover("p(a)\np(b)\nq(b)");
        assert_eq!(instances(&p, &parse("p(x)").unwrap()).len(), 2);
        assert_eq!(instances(&p, &parse("p(x) & q(x)").unwrap()).len(), 1);
        assert_eq!(instances(&p, &parse("x = a").unwrap()).len(), 1);
    }

    #[test]
    fn f_sigma_membership() {
        let b = BTreeSet::new();
        assert!(in_f_sigma(&parse("p(x)").unwrap(), &b));
        assert!(in_f_sigma(&parse("p(x) & q(x)").unwrap(), &b));
        assert!(in_f_sigma(&parse("p(x) | q(x)").unwrap(), &b));
        assert!(in_f_sigma(&parse("a = b").unwrap(), &b));
        assert!(in_f_sigma(&parse("a != b").unwrap(), &b));
        assert!(in_f_sigma(&parse("x = a").unwrap(), &b));
        // Unlinked disjunction is out.
        assert!(!in_f_sigma(&parse("p(x) | q(y)").unwrap(), &b));
        // Negation of a non-equality formula is out.
        assert!(!in_f_sigma(&parse("~p(x)").unwrap(), &b));
        // Binding both variables (they then act as parameters) repairs the
        // linkage; binding only one does not.
        let mut bound = BTreeSet::new();
        bound.insert(epilog_syntax::Var::new("y"));
        assert!(!in_f_sigma(&parse("p(x) | q(y)").unwrap(), &bound));
        bound.insert(epilog_syntax::Var::new("x"));
        assert!(in_f_sigma(&parse("p(x) | q(y)").unwrap(), &bound));
    }

    #[test]
    fn admissible_wrt_f_sigma_examples() {
        for good in [
            "p(x)",
            "p(x) & q(x)",
            "p(x) | q(x)",
            "K p(x)",
            "exists x. K p(x)",
            "~(exists x. K p(x))",
            "p(x) & ~K q(x)",
            "K p(x) & x != a",
        ] {
            assert!(
                admissible_wrt_f_sigma(&parse(good).unwrap()),
                "expected admissible wrt F_Σ: {good}"
            );
        }
        for bad in [
            // Negation of a world formula is not in F_Σ's closure.
            "~p(a) & q(x)",
            // Unsafe.
            "~K p(x)",
            // Unlinked disjunction as the leading conjunct.
            "(p(x) | q(y)) & K p(x)",
        ] {
            assert!(
                !admissible_wrt_f_sigma(&parse(bad).unwrap()),
                "expected NOT admissible wrt F_Σ: {bad}"
            );
        }
    }

    #[test]
    fn certified_counts_are_finite_and_exact() {
        let p = prover("p(a)\np(b)\nq(b)\nforall x. q(x) -> p(x)");
        assert_eq!(
            certified_instance_count(&p, &parse("p(x)").unwrap()),
            Some(2)
        );
        assert_eq!(
            certified_instance_count(&p, &parse("K p(x) & ~K q(x)").unwrap()),
            Some(1)
        );
        // Non-elementary theory: no certificate.
        let p2 = prover("~p(a)");
        assert_eq!(certified_instance_count(&p2, &parse("p(x)").unwrap()), None);
    }

    #[test]
    fn theorem_62_hypothesis_check() {
        let t = Theory::from_text("p(a) | q(b)").unwrap();
        assert!(theorem_62_applies(&t, &parse("p(x)").unwrap()));
        assert!(!theorem_62_applies(&t, &parse("~p(x)").unwrap()));
        let neg = Theory::from_text("~p(a)").unwrap();
        assert!(!theorem_62_applies(&neg, &parse("p(x)").unwrap()));
    }
}
