//! Workload generators shared by the benches and the report binary.
//!
//! Each generator is deterministic given its arguments (seeded RNG where
//! randomness is wanted), so every figure in EXPERIMENTS.md is exactly
//! reproducible.

use epilog_sat::{Cnf, Lit};
use epilog_syntax::{Pred, Theory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Section 1 Teach database.
pub fn teach_db() -> Theory {
    Theory::from_text(
        "Teach(John, Math)
         exists x. Teach(x, CS)
         Teach(Mary, Psych) | Teach(Sue, Psych)",
    )
    .expect("static text parses")
}

/// The Section 1 query table (query text, paper's answer).
pub fn section1_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        ("Teach(Mary, CS)", "unknown"),
        ("K Teach(Mary, CS)", "no"),
        ("K ~Teach(Mary, CS)", "no"),
        ("exists x. K Teach(John, x)", "yes"),
        ("exists x. K Teach(x, CS)", "no"),
        ("K (exists x. Teach(x, CS))", "yes"),
        ("exists x. Teach(x, Psych)", "yes"),
        ("exists x. K Teach(x, Psych)", "no"),
        ("exists x. Teach(x, Psych) & ~Teach(x, CS)", "unknown"),
        ("exists x. Teach(x, Psych) & ~K Teach(x, CS)", "yes"),
    ]
}

/// A tiny propositional database family for the demo-vs-oracle figure:
/// `n` propositions `p0..p(n-1)`, one disjunction `p0 ∨ p1`, the rest
/// asserted. Herbrand base = `n` atoms → the oracle enumerates `2^n`
/// candidate worlds while `demo` does O(1) entailment checks.
pub fn propositional_db(n: usize) -> (Theory, Vec<Pred>) {
    assert!(n >= 2, "need at least the disjunctive pair");
    let mut src = String::from("p0 | p1\n");
    for i in 2..n {
        src.push_str(&format!("p{i}\n"));
    }
    let theory = Theory::from_text(&src).expect("generated text parses");
    let preds = (0..n).map(|i| Pred::new(&format!("p{i}"), 0)).collect();
    (theory, preds)
}

/// An employees database with `n` employees, all with numbers on file
/// (satisfies the §3 constraint).
pub fn employees_db(n: usize) -> Theory {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("emp(e{i})\nss(e{i}, n{i})\n"));
    }
    Theory::from_text(&src).expect("generated text parses")
}

/// The `f7_transactions` workload: a registrar of `n` employees — `emp` +
/// `ss` facts and the `emp ⊃ person` rule (so the theory is definite and
/// commits have derived consequences) — under the §3 epistemic
/// constraints (known number per employee, unique numbers).
pub fn registrar_db(n: usize) -> epilog_core::EpistemicDb {
    let mut src = String::from("forall x. emp(x) -> person(x)\n");
    for i in 0..n {
        src.push_str(&format!("emp(e{i})\nss(e{i}, n{i})\n"));
    }
    let mut db = epilog_core::EpistemicDb::from_text(&src).expect("generated text parses");
    db.add_constraint(epilog_syntax::parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap())
        .expect("registrar satisfies the emp constraint");
    db.add_constraint(
        epilog_syntax::parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap(),
    )
    .expect("registrar satisfies the FD constraint");
    db
}

/// The sentences enrolling employees `start .. start + k` into a
/// registrar: one `emp` and one `ss` fact each.
pub fn enrollment_batch(start: usize, k: usize) -> Vec<epilog_syntax::Formula> {
    let mut out = Vec::with_capacity(2 * k);
    for i in start..start + k {
        out.push(epilog_syntax::parse(&format!("ss(e{i}, n{i})")).unwrap());
        out.push(epilog_syntax::parse(&format!("emp(e{i})")).unwrap());
    }
    out
}

/// The sentences withdrawing employees `start .. start + k` from a
/// registrar: exactly the facts [`enrollment_batch`] enrolls, to be
/// *retracted*. Each withdrawn employee takes 3 model tuples with them
/// (`emp`, `ss`, and the derived `person`), exercising the
/// over-delete/re-derive path.
pub fn withdrawal_batch(start: usize, k: usize) -> Vec<epilog_syntax::Formula> {
    let mut out = Vec::with_capacity(2 * k);
    for i in start..start + k {
        out.push(epilog_syntax::parse(&format!("emp(e{i})")).unwrap());
        out.push(epilog_syntax::parse(&format!("ss(e{i}, n{i})")).unwrap());
    }
    out
}

/// The `f8_recovery` workload: the registrar built *durably* at `dir` —
/// `DurableDb::create` with the `emp ⊃ person` rule, the two §3
/// constraints (2 log records), then `n` single-employee enrollment
/// commits (`n` log records of 2 sentences each). Deterministic: the log
/// always holds `n + 2` records and the state equals `registrar_db(n)`.
pub fn durable_registrar(
    dir: &std::path::Path,
    n: usize,
    policy: epilog_persist::FsyncPolicy,
) -> epilog_persist::DurableDb {
    let theory =
        epilog_syntax::Theory::from_text("forall x. emp(x) -> person(x)").expect("static text");
    let mut db = epilog_persist::DurableDb::create(dir, theory, policy)
        .expect("fresh directory initializes");
    db.add_constraint(epilog_syntax::parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap())
        .expect("fact-free registrar satisfies the emp constraint");
    db.add_constraint(
        epilog_syntax::parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap(),
    )
    .expect("fact-free registrar satisfies the FD constraint");
    for i in 0..n {
        let mut txn = db.transaction();
        for w in enrollment_batch(i, 1) {
            txn = txn.assert(w);
        }
        let _ = txn.commit().expect("enrollment satisfies the constraints");
    }
    db
}

/// The `f11_serving` workload: the registrar *served* from `dir` — a
/// [`epilog_persist::ServingDb`] with the `emp ⊃ person` rule, the two
/// §3 constraints, then `n` single-employee enrollments driven through
/// the commit queue. Deterministic: the final state equals
/// [`registrar_db`]`(n)` and the head LSN is `n + 2`.
pub fn serving_registrar(dir: &std::path::Path, n: usize) -> epilog_persist::ServingDb {
    let theory =
        epilog_syntax::Theory::from_text("forall x. emp(x) -> person(x)").expect("static text");
    let db =
        epilog_persist::ServingDb::create(dir, theory, epilog_persist::ServeOptions::default())
            .expect("fresh directory initializes");
    db.add_constraint(epilog_syntax::parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap())
        .expect("fact-free registrar satisfies the emp constraint");
    db.add_constraint(
        epilog_syntax::parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap(),
    )
    .expect("fact-free registrar satisfies the FD constraint");
    for i in 0..n {
        let ops = enrollment_batch(i, 1)
            .into_iter()
            .map(epilog_persist::TxOp::Assert)
            .collect();
        db.commit_wait(ops)
            .expect("enrollment satisfies the constraints");
    }
    db
}

/// A definite chain database `p(a0), a_i → a_{i+1}`-style facts for the
/// all-answers figure: `n` facts, all certain answers.
pub fn facts_db(n: usize) -> Theory {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("p(a{i})\n"));
    }
    src.push_str("q(a0)\n");
    Theory::from_text(&src).expect("generated text parses")
}

/// A random elementary database over `n_params` parameters: ground facts,
/// disjunctions, existentials and p→q rules. Seeded, hence reproducible.
pub fn random_elementary(seed: u64, n_params: usize, n_sentences: usize) -> Theory {
    let mut rng = StdRng::seed_from_u64(seed);
    let preds = ["p", "q"];
    let mut src = String::new();
    for _ in 0..n_sentences {
        let pr = preds[rng.gen_range(0..2)];
        let pa = rng.gen_range(0..n_params);
        match rng.gen_range(0..4) {
            0 => src.push_str(&format!("{pr}(a{pa})\n")),
            1 => {
                let pr2 = preds[rng.gen_range(0..2)];
                let pa2 = rng.gen_range(0..n_params);
                src.push_str(&format!("{pr}(a{pa}) | {pr2}(a{pa2})\n"));
            }
            2 => src.push_str(&format!("exists x. {pr}(x)\n")),
            _ => {
                let pr2 = preds[rng.gen_range(0..2)];
                src.push_str(&format!("forall x. {pr}(x) -> {pr2}(x)\n"));
            }
        }
    }
    Theory::from_text(&src).expect("generated text parses")
}

/// A transitive-closure Datalog program over an `n`-edge chain.
pub fn datalog_chain(n: usize) -> epilog_datalog::Program {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("e(n{i}, n{})\n", i + 1));
    }
    src.push_str("forall x, y. e(x, y) -> t(x, y)\n");
    src.push_str("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)\n");
    epilog_datalog::Program::from_text(&src).expect("generated text parses")
}

/// The evaluation-pipeline scaling workload: a `k`-way chain join plus
/// transitive closure over an `n`-edge chain, in one program.
///
/// EDB: relations `r0 … r{k-1}`, each holding the same `n`-edge chain
/// `ri(n_j, n_{j+1})`. Rules:
///
/// * `join(x0, xk) ← r0(x0,x1) ∧ r1(x1,x2) ∧ … ∧ r{k-1}(x{k-1},xk)` —
///   the chain join, deriving the `n − k + 1` length-`k` paths;
/// * `t(x, y) ← r0(x, y)` and `t(x, z) ← r0(x, y) ∧ t(y, z)` — the
///   transitive closure, deriving `n(n+1)/2` pairs.
///
/// Expected sizes (asserted by `f6_scaling` and the report binary):
/// `|join| = n − k + 1` (for `n ≥ k ≥ 1`), `|t| = n(n+1)/2`.
pub fn scaling_program(n: usize, k: usize) -> epilog_datalog::Program {
    assert!(k >= 1 && n >= k, "need n >= k >= 1");
    let mut src = String::new();
    for r in 0..k {
        for j in 0..n {
            src.push_str(&format!("r{r}(n{j}, n{})\n", j + 1));
        }
    }
    let vars: Vec<String> = (0..=k).map(|i| format!("x{i}")).collect();
    let body: Vec<String> = (0..k)
        .map(|r| format!("r{r}({}, {})", vars[r], vars[r + 1]))
        .collect();
    src.push_str(&format!(
        "forall {}. {} -> join(x0, x{k})\n",
        vars.join(", "),
        body.join(" & "),
    ));
    src.push_str("forall x, y. r0(x, y) -> t(x, y)\n");
    src.push_str("forall x, y, z. r0(x, y) & t(y, z) -> t(x, z)\n");
    epilog_datalog::Program::from_text(&src).expect("generated text parses")
}

/// The `f12_provenance` deletion workload: transitive closure over a
/// dense digraph — `e(i, j)` for every ordered pair of `m` distinct
/// nodes (minus `without`, the edge the bench retracts). Every `t(x, y)`
/// has many derivations, so retracting one edge over-deletes a cone of
/// tuples that nearly all survive through *alternative* supports —
/// exactly the shape where a recorded support table saves DRed
/// re-derivation probes ([`EvalStats::support_hits`] vs
/// [`EvalStats::support_checks`]).
///
/// [`EvalStats::support_hits`]: epilog_datalog::EvalStats::support_hits
/// [`EvalStats::support_checks`]: epilog_datalog::EvalStats::support_checks
pub fn dense_closure_program(m: usize, without: Option<(usize, usize)>) -> epilog_datalog::Program {
    epilog_datalog::Program::from_text(&dense_closure_text(m, without))
        .expect("generated text parses")
}

/// The [`dense_closure_program`] workload as theory text, for feeding the
/// same graph to an [`epilog_core::EpistemicDb`].
pub fn dense_closure_text(m: usize, without: Option<(usize, usize)>) -> String {
    assert!(m >= 3, "need a graph dense enough for alternative paths");
    let mut src = String::new();
    for i in 0..m {
        for j in 0..m {
            if i != j && without != Some((i, j)) {
                src.push_str(&format!("e(n{i}, n{j})\n"));
            }
        }
    }
    src.push_str("forall x, y. e(x, y) -> t(x, y)\n");
    src.push_str("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)\n");
    src
}

/// The `f9_joins` hash-vs-probe workload: an equi-join on **both**
/// columns of a skewed relation.
///
/// EDB: `q` and `big` each hold the `n` tuples `(k_{i mod d}, val_i)` —
/// column 0 takes only `d` distinct values, column 1 is unique. Rule:
/// `hit(x, y) ← q(x, y) ∧ big(x, y)`, so `|hit| = n`.
///
/// The seed greedy planner scans `q` and, per outer row, probes `big`'s
/// single-column index on the skewed column 0 — a bucket of `n/d` tuples
/// residually filtered on column 1, `Θ(n²/d)` rows examined. The
/// cost-based planner upgrades the `big` step to hash build+probe keyed
/// on both columns: `Θ(n)` rows (one build, singleton buckets).
pub fn join_heavy_program(n: usize, d: usize) -> epilog_datalog::Program {
    assert!(d >= 1 && n >= d, "need n >= d >= 1");
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("q(k{}, val{i})\nbig(k{}, val{i})\n", i % d, i % d));
    }
    src.push_str("forall x, y. q(x, y) & big(x, y) -> hit(x, y)\n");
    epilog_datalog::Program::from_text(&src).expect("generated text parses")
}

/// The `f9_joins` ordering workload: a two-literal body written big
/// relation first.
///
/// EDB: `big` holds `n` tuples `(b_i, c_i)` (both columns unique),
/// `small` holds the `m ≤ n` tuples `b_0 … b_{m-1}`. Rule:
/// `out(x, y) ← big(x, y) ∧ small(x)`, so `|out| = m`.
///
/// Bound-column counts tie at zero, so the greedy planner keeps the
/// written order and scans all of `big`; the cost-based planner flips to
/// `small` first (`m` rows) and probes `big`'s unique column — rows
/// examined drop from `Θ(n)` to `Θ(m)`.
pub fn order_sensitive_program(n: usize, m: usize) -> epilog_datalog::Program {
    assert!(m >= 1 && n >= m, "need n >= m >= 1");
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("big(b{i}, c{i})\n"));
    }
    for j in 0..m {
        src.push_str(&format!("small(b{j})\n"));
    }
    src.push_str("forall x, y. big(x, y) & small(x) -> out(x, y)\n");
    epilog_datalog::Program::from_text(&src).expect("generated text parses")
}

/// The pigeonhole CNF PHP(holes+1, holes) — unsatisfiable; the classic
/// separator between clause-learning and plain DPLL.
pub fn pigeonhole(holes: u32) -> Cnf {
    let pigeons = holes + 1;
    let mut cnf = Cnf::new();
    cnf.reserve_vars(pigeons * holes);
    let v = |p: u32, h: u32| p * holes + h;
    for p in 0..pigeons {
        let c: Vec<Lit> = (0..holes).map(|h| Lit::pos(v(p, h))).collect();
        cnf.add_clause(&c);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause(&[Lit::neg(v(p1, h)), Lit::neg(v(p2, h))]);
            }
        }
    }
    cnf
}

/// Random 3-SAT at a given clause/variable ratio (seeded).
pub fn random_3sat(seed: u64, vars: u32, clauses: u32) -> Cnf {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cnf = Cnf::new();
    cnf.reserve_vars(vars);
    for _ in 0..clauses {
        let lits: Vec<Lit> = (0..3)
            .map(|_| {
                let v = rng.gen_range(0..vars);
                if rng.gen_bool(0.5) {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                }
            })
            .collect();
        cnf.add_clause(&lits);
    }
    cnf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_elementary(7, 3, 5), random_elementary(7, 3, 5));
        let a = random_3sat(1, 10, 30);
        let b = random_3sat(1, 10, 30);
        assert_eq!(a.clauses(), b.clauses());
    }

    #[test]
    fn propositional_db_shapes() {
        let (t, preds) = propositional_db(5);
        assert_eq!(t.len(), 4);
        assert_eq!(preds.len(), 5);
    }

    #[test]
    fn employees_db_satisfies_constraint() {
        use epilog_prover::Prover;
        let t = employees_db(4);
        let p = Prover::new(t);
        let ic = epilog_syntax::parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap();
        assert!(epilog_core::ask::certain(&p, &ic));
    }

    #[test]
    fn registrar_commits_incrementally() {
        use epilog_core::ModelUpdate;
        let mut db = registrar_db(4);
        let mut txn = db.transaction();
        for w in enrollment_batch(4, 2) {
            txn = txn.assert(w);
        }
        let report = txn.commit().unwrap();
        assert_eq!(report.asserted, 4);
        assert!(matches!(report.model, ModelUpdate::Incremental { .. }));
        assert!(db.satisfies_constraints());
    }

    #[test]
    fn registrar_withdrawals_take_the_decremental_path() {
        use epilog_core::ModelUpdate;
        let mut db = registrar_db(4);
        let mut txn = db.transaction();
        for w in withdrawal_batch(2, 2) {
            txn = txn.retract(w);
        }
        let report = txn.commit().unwrap();
        assert_eq!(report.retracted, 4);
        let ModelUpdate::Incremental {
            tuples_removed,
            stats,
            ..
        } = report.model
        else {
            panic!("expected the decremental path, got {:?}", report.model);
        };
        // Each employee takes emp, ss, and the derived person fact.
        assert_eq!(tuples_removed, 6);
        assert_eq!(stats.full_firings, 0);
        assert_eq!(stats.plans_compiled, 0);
        assert!(db.satisfies_constraints());
    }

    #[test]
    fn join_workload_shapes_and_planner_agreement() {
        use epilog_datalog::PlannerMode;
        let prog = join_heavy_program(32, 4);
        let (a, cost) = prog.eval_with(true, PlannerMode::CostBased).unwrap();
        let (b, greedy) = prog.eval_with(true, PlannerMode::Greedy).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.relation(Pred::new("hit", 2)).unwrap().len(), 32);
        assert!(cost.hash_steps > 0 && greedy.hash_steps == 0);
        assert!(cost.rows_examined < greedy.rows_examined);

        let prog = order_sensitive_program(32, 4);
        let (a, cost) = prog.eval_with(true, PlannerMode::CostBased).unwrap();
        let (b, greedy) = prog.eval_with(true, PlannerMode::Greedy).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.relation(Pred::new("out", 2)).unwrap().len(), 4);
        assert!(cost.rows_examined < greedy.rows_examined);
    }

    #[test]
    fn pigeonhole_is_unsat() {
        use epilog_sat::{SatResult, Solver};
        assert_eq!(Solver::new(&pigeonhole(4)).solve(), SatResult::Unsat);
    }

    #[test]
    fn datalog_chain_runs() {
        let p = datalog_chain(4);
        let (db, _) = p.eval().unwrap();
        assert_eq!(db.relation(Pred::new("t", 2)).unwrap().len(), 10);
    }

    #[test]
    fn scaling_program_sizes() {
        for (n, k) in [(4, 2), (8, 3), (6, 1)] {
            let p = scaling_program(n, k);
            let (db, fast) = p.eval().unwrap();
            assert_eq!(
                db.relation(Pred::new("join", 2)).unwrap().len(),
                n - k + 1,
                "join size for n={n} k={k}"
            );
            assert_eq!(
                db.relation(Pred::new("t", 2)).unwrap().len(),
                n * (n + 1) / 2,
                "closure size for n={n}"
            );
            let (db2, slow) = p.eval_naive().unwrap();
            assert_eq!(db, db2);
            assert!(fast.rule_firings < slow.rule_firings, "n={n} k={k}");
        }
    }
}
