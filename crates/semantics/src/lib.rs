//! # epilog-semantics — model theory for FOPCE and KFOPCE
//!
//! This crate implements §2 of the paper directly:
//!
//! * a **world** is a set of true atomic sentences; truth of a FOPCE
//!   sentence in a world is the usual recursion, with quantifiers ranging
//!   over the parameters and equality fixed by unique names ([`world`]);
//! * the truth of a KFOPCE sentence is relative to a pair `(W, 𝒮)` of a
//!   world and a set of worlds; `Kw` is true iff `w` is true in `(S, 𝒮)`
//!   for every `S ∈ 𝒮` ([`oracle::ModelSet::truth`]);
//! * `Σ ⊨ q|p̄` (Definition 2.1, the paper's notion of *answer*) holds iff
//!   `q|p̄` is true in `(W, ℳ(Σ))` for every model `W` of `Σ`
//!   ([`oracle::ModelSet::certain`]);
//! * the three-valued [`Answer`] of a query sentence: *yes* when
//!   `Σ ⊨ q`, *no* when `Σ ⊨ ¬q`, *unknown* otherwise.
//!
//! The model set `ℳ(Σ)` is computed by **brute-force enumeration** of all
//! subsets of a finite Herbrand base — exponential by construction. That is
//! deliberate: this crate is the *oracle* every soundness property of the
//! `demo` evaluator is tested against, and the baseline the `e5` bench
//! figure compares `demo` to. Quantifiers are evaluated over a caller-fixed
//! finite universe; this approximates FOPCE's countably infinite parameter
//! domain and is exact for the finite-instances fragments the experiments
//! use (add spare parameters to the universe to tighten the approximation).
//!
//! [`circumscription`] implements the minimal-model semantics and the
//! generalized closed-world assumption needed for Example 7.2, which shows
//! that — unlike Reiter's `Closure` — circumscription and the GCWA do
//! *not* collapse the `K` operator.

pub mod answer;
pub mod circumscription;
pub mod oracle;
pub mod world;

pub use answer::Answer;
pub use circumscription::{gcwa_negations, minimal_worlds};
pub use oracle::ModelSet;
pub use world::holds_in_world;
