//! `ServingDb`: the concurrent serving layer — MVCC snapshot reads plus
//! a single-writer thread doing durable group commit.
//!
//! # Architecture
//!
//! A knowledge base is queried far more often than it is revised, so the
//! serving layer splits the two paths completely:
//!
//! * **Readers** call [`ServingDb::snapshot`] and get an
//!   [`epilog_core::ReadHandle`] — an `Arc` clone of the immutable
//!   committed state (theory, constraints, materialized model, compiled
//!   plans). Queries run on the handle with no locks and no coordination
//!   with commits in flight; a snapshot pins its state until dropped.
//! * **The writer** is one thread (spawned through
//!   `threadpool::spawn_named`) draining a bounded commit queue. It
//!   owns the working [`EpistemicDb`] and the [`Wal`] outright, so
//!   validation runs against the true head state with no locking at all.
//!
//! # Group commit
//!
//! The writer drains whatever has queued up (up to a batch cap) and
//! processes the batch as one durability unit: each transaction is
//! validated via [`Transaction::prepare`] and its effective delta
//! appended to the log (rejected transactions are answered immediately
//! and never logged), then the whole batch is forced with **one**
//! `fdatasync`, the new state is published with a pointer swap, and only
//! then are the callers' completion handles fed their [`CommitReceipt`]s
//! — an acknowledged commit is both durable and visible to subsequent
//! snapshots. This generalizes [`FsyncPolicy::Batch`]'s every-`n`
//! amortization into real cross-transaction batching: under load, many
//! transactions share each fsync ([`ServingDb::stats`] reports the
//! ratio), while an idle writer degenerates to one fsync per commit —
//! the same durability as [`FsyncPolicy::Always`] with none of the
//! batch policies' crash-loss window.
//!
//! The on-disk format is unchanged: a directory served by `ServingDb`
//! is a `DurableDb` directory, and either API can recover it.

use crate::durable::{DurableDb, PersistError, RecoveryReport};
use crate::wal::{FsyncPolicy, Wal, WalOp, WAL_FILE};
use epilog_core::db::DbError;
use epilog_core::{CommitReport, CommittedState, EpistemicDb, ReadHandle, StateCell, Transaction};
use epilog_syntax::{Formula, Theory};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Tuning knobs for a [`ServingDb`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Commit-queue capacity; enqueueing callers block (backpressure)
    /// when the writer falls this far behind.
    pub queue_depth: usize,
    /// Most transactions the writer folds into one durability unit
    /// (one WAL sync + one publish).
    pub max_batch: usize,
    /// Enable derivation tracking on the served database: the writer
    /// maintains a provenance support table across commits, snapshots
    /// expose [`EpistemicDb::why`] proof trees, and constraint
    /// rejections carry ground witnesses with derivations. No-op when
    /// the theory is not a definite program. Off by default — untraced
    /// fixpoints pay nothing for the feature.
    pub provenance: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            queue_depth: 128,
            max_batch: 64,
            provenance: false,
        }
    }
}

/// Errors surfaced through a [`CommitHandle`].
#[derive(Debug)]
pub enum ServeError {
    /// The database refused the transaction (constraint violation,
    /// ill-formed sentence, …); state and log are unchanged. Carries
    /// the head LSN at rejection time, so a rejection can be reported
    /// against the exact state it was validated on.
    Db(DbError, u64),
    /// The log append or sync failed; the transaction was not applied.
    Io(String),
    /// The serving database shut down before answering.
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Db(e, _) => write!(f, "{e}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Closed => write!(f, "serving database is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One queued update operation.
#[derive(Debug, Clone)]
pub enum TxOp {
    /// Add a sentence to the theory.
    Assert(Formula),
    /// Remove a sentence from the theory.
    Retract(Formula),
}

/// What an acknowledged commit got: its WAL position and the usual
/// commit report. By the time the handle yields a receipt the record is
/// fsynced and the state published — a snapshot taken afterwards is
/// guaranteed to reflect it.
#[derive(Debug)]
pub struct CommitReceipt {
    /// LSN of the commit's log record (unchanged head LSN for no-ops).
    pub lsn: u64,
    /// The core engine's commit report (deltas, model update, checks).
    pub report: CommitReport,
}

/// Completion handle for a queued commit.
#[must_use = "a commit is not acknowledged until the handle is waited on"]
pub struct CommitHandle {
    rx: Receiver<Result<CommitReceipt, ServeError>>,
}

impl CommitHandle {
    /// Block until the writer answers (durable + published, or
    /// rejected).
    pub fn wait(self) -> Result<CommitReceipt, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }
}

/// Holds the writer between batches — a deterministic way for benches
/// and tests to force a group: take the gate, enqueue transactions,
/// then [`WriterGate::open`]; everything enqueued meanwhile lands in
/// one batch (up to [`ServeOptions::max_batch`]).
#[must_use = "dropping the gate opens it immediately"]
pub struct WriterGate {
    _tx: SyncSender<()>,
}

impl WriterGate {
    /// Release the writer.
    pub fn open(self) {}
}

/// Writer-side counters, snapshotted by [`ServingDb::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Accepted (durable, published) transactions.
    pub commits: u64,
    /// Rejected transactions (constraint violations etc.).
    pub rejected: u64,
    /// Batches published.
    pub batches: u64,
    /// WAL syncs issued — `commits / fsyncs` is the group-commit
    /// amortization ratio.
    pub fsyncs: u64,
}

#[derive(Default)]
struct Metrics {
    commits: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    fsyncs: AtomicU64,
}

enum Request {
    Commit {
        ops: Vec<TxOp>,
        reply: SyncSender<Result<CommitReceipt, ServeError>>,
    },
    Constraint {
        ic: Formula,
        reply: SyncSender<Result<u64, ServeError>>,
    },
    Flush(SyncSender<u64>),
    Gate(Receiver<()>),
}

/// A durable [`EpistemicDb`] served concurrently: any number of
/// lock-free snapshot readers, one group-committing writer thread.
///
/// See the [module docs](self) for the architecture. All methods take
/// `&self`; a `ServingDb` is typically wrapped in an `Arc` and shared
/// across reader/session threads.
pub struct ServingDb {
    head: Arc<StateCell>,
    queue: Option<SyncSender<Request>>,
    writer: Option<JoinHandle<()>>,
    metrics: Arc<Metrics>,
    dir: PathBuf,
}

impl ServingDb {
    /// Initialize a fresh durable database at `dir` and start serving
    /// it. Fails like [`DurableDb::create`] if `dir` already holds one.
    pub fn create(
        dir: impl AsRef<Path>,
        theory: Theory,
        opts: ServeOptions,
    ) -> Result<ServingDb, PersistError> {
        let durable = DurableDb::create(dir, theory, FsyncPolicy::Never)?;
        Ok(ServingDb::start(durable, opts))
    }

    /// Recover the database at `dir` (snapshot + log replay) and start
    /// serving it.
    pub fn recover(
        dir: impl AsRef<Path>,
        opts: ServeOptions,
    ) -> Result<(ServingDb, RecoveryReport), PersistError> {
        let (durable, report) = DurableDb::recover(dir, FsyncPolicy::Never)?;
        Ok((ServingDb::start(durable, opts), report))
    }

    /// Recover `dir` if it holds a database, otherwise create one with
    /// `theory` — the server binary's entry point.
    pub fn open(
        dir: impl AsRef<Path>,
        theory: Theory,
        opts: ServeOptions,
    ) -> Result<(ServingDb, Option<RecoveryReport>), PersistError> {
        if dir.as_ref().join(WAL_FILE).exists() {
            let (db, report) = ServingDb::recover(dir, opts)?;
            Ok((db, Some(report)))
        } else {
            Ok((ServingDb::create(dir, theory, opts)?, None))
        }
    }

    /// Wrap an already-recovered [`DurableDb`] and start the writer.
    /// The handed-in fsync policy is irrelevant from here on: the
    /// writer syncs explicitly, once per batch.
    pub fn start(durable: DurableDb, opts: ServeOptions) -> ServingDb {
        let (mut db, wal, dir) = durable.into_parts();
        if opts.provenance {
            // Trace before the first publication so even the initial
            // snapshot answers `why`. Recovery may already have adopted
            // a table from the snapshot's `[supports]` section; this is
            // then an idempotent no-op.
            db.enable_provenance();
        }
        let head = Arc::new(StateCell::new(db.clone(), wal.last_lsn()));
        let metrics = Arc::new(Metrics::default());
        let (tx, rx) = sync_channel(opts.queue_depth.max(1));
        let writer = {
            let head = Arc::clone(&head);
            let metrics = Arc::clone(&metrics);
            let max_batch = opts.max_batch.max(1);
            threadpool::spawn_named("epilog-commit-writer", move || {
                writer_loop(db, wal, &head, &rx, &metrics, max_batch)
            })
        };
        ServingDb {
            head,
            queue: Some(tx),
            writer: Some(writer),
            metrics,
            dir,
        }
    }

    /// Pin the current committed state. Never blocks on the writer: the
    /// head cell is locked only for the pointer swap itself.
    pub fn snapshot(&self) -> ReadHandle {
        self.head.snapshot()
    }

    /// LSN of the currently published state.
    pub fn head_lsn(&self) -> u64 {
        self.head.head_lsn()
    }

    /// The directory holding the log and snapshots.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Queue a transaction; blocks only if the commit queue is full.
    /// The returned handle yields the receipt once the commit is
    /// durable and published (or the rejection as soon as validation
    /// fails).
    pub fn commit(&self, ops: Vec<TxOp>) -> CommitHandle {
        let (reply, rx) = sync_channel(1);
        self.send(Request::Commit { ops, reply });
        CommitHandle { rx }
    }

    /// [`ServingDb::commit`] and wait for the receipt.
    pub fn commit_wait(&self, ops: Vec<TxOp>) -> Result<CommitReceipt, ServeError> {
        self.commit(ops).wait()
    }

    /// Durably register an integrity constraint through the writer.
    /// Returns its LSN.
    pub fn add_constraint(&self, ic: Formula) -> Result<u64, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.send(Request::Constraint { ic, reply });
        rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Force every acknowledged commit to stable storage and return the
    /// head LSN. Acknowledged commits are already synced — this is a
    /// barrier that drains the queue ahead of it.
    pub fn flush(&self) -> Result<u64, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.send(Request::Flush(reply));
        rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Hold the writer between batches until the gate is opened — the
    /// deterministic group-formation hook ([`WriterGate`]).
    pub fn gate(&self) -> WriterGate {
        let (tx, rx) = sync_channel(1);
        self.send(Request::Gate(rx));
        WriterGate { _tx: tx }
    }

    /// Snapshot of the writer's counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            commits: self.metrics.commits.load(Ordering::Relaxed),
            rejected: self.metrics.rejected.load(Ordering::Relaxed),
            batches: self.metrics.batches.load(Ordering::Relaxed),
            fsyncs: self.metrics.fsyncs.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stop accepting work, let the writer drain and
    /// acknowledge everything already queued, sync the log, and join
    /// the thread.
    pub fn shutdown(mut self) -> Result<(), PersistError> {
        self.queue = None; // disconnects the channel; the writer drains then exits
        match self.writer.take().map(JoinHandle::join) {
            Some(Err(_)) => Err(PersistError::Corrupt(
                "commit writer panicked; the log is still crash-consistent".into(),
            )),
            _ => Ok(()),
        }
    }

    fn send(&self, req: Request) {
        // A disconnected queue (shutdown raced us) surfaces as Closed
        // through the reply channel the request carried.
        if let Some(q) = &self.queue {
            let _ = q.send(req);
        }
    }
}

/// Dropping without [`ServingDb::shutdown`] still drains and joins the
/// writer (and the [`Wal`]'s own `Drop` flushes), so no queued commit
/// is silently discarded.
impl Drop for ServingDb {
    fn drop(&mut self) {
        self.queue = None;
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
    }
}

fn writer_loop(
    mut working: EpistemicDb,
    mut wal: Wal,
    head: &StateCell,
    rx: &Receiver<Request>,
    metrics: &Metrics,
    max_batch: usize,
) {
    // Exits when every ServingDb handle (and thus every sender) is gone
    // and the queue is drained.
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }

        let mut commit_acks = Vec::new();
        let mut constraint_acks = Vec::new();
        let mut flushes = Vec::new();
        for req in batch {
            match req {
                Request::Commit { ops, reply } => {
                    let mut txn: Transaction<'_> = working.transaction();
                    for op in ops {
                        txn = match op {
                            TxOp::Assert(w) => txn.assert(w),
                            TxOp::Retract(w) => txn.retract(w),
                        };
                    }
                    match txn.prepare() {
                        Err(e) => {
                            metrics.rejected.fetch_add(1, Ordering::Relaxed);
                            let _ = reply.send(Err(ServeError::Db(e, wal.last_lsn())));
                        }
                        Ok(p) if p.is_noop() => {
                            // Nothing to log or publish: acknowledge at
                            // the current position.
                            let receipt = CommitReceipt {
                                lsn: wal.last_lsn(),
                                report: p.commit(),
                            };
                            let _ = reply.send(Ok(receipt));
                        }
                        Ok(p) => {
                            let mut ops = Vec::with_capacity(p.removed().len() + p.added().len());
                            ops.extend(p.removed().iter().cloned().map(WalOp::Retract));
                            ops.extend(p.added().iter().cloned().map(WalOp::Assert));
                            match wal.append(&ops) {
                                Err(e) => {
                                    // Log-before-apply: the prepared
                                    // state is dropped unapplied.
                                    let _ = reply.send(Err(ServeError::Io(e.to_string())));
                                }
                                Ok(lsn) => {
                                    let report = p.commit();
                                    commit_acks.push((reply, CommitReceipt { lsn, report }));
                                }
                            }
                        }
                    }
                }
                Request::Constraint { ic, reply } => {
                    // Same compensation protocol as DurableDb: append,
                    // apply, rewind the record if the state refuses it.
                    let mark = wal.mark();
                    match wal.append(&[WalOp::Constraint(ic.clone())]) {
                        Err(e) => {
                            let _ = reply.send(Err(ServeError::Io(e.to_string())));
                        }
                        Ok(lsn) => match working.add_constraint(ic) {
                            Ok(()) => constraint_acks.push((reply, lsn)),
                            Err(e) => {
                                metrics.rejected.fetch_add(1, Ordering::Relaxed);
                                let ack = match wal.rewind(mark.0, mark.1) {
                                    Ok(()) => ServeError::Db(e, wal.last_lsn()),
                                    Err(io) => ServeError::Io(io.to_string()),
                                };
                                let _ = reply.send(Err(ack));
                            }
                        },
                    }
                }
                Request::Flush(reply) => flushes.push(reply),
                // Hold here; opening (or dropping) the gate unblocks.
                Request::Gate(gate) => {
                    let _ = gate.recv();
                }
            }
        }

        let accepted = commit_acks.len() + constraint_acks.len();
        if accepted > 0 || !flushes.is_empty() {
            // One fdatasync covers the whole batch. A failed sync means
            // durability can no longer be promised for state already
            // applied to the working database; following the
            // no-fsync-retry doctrine, fail loudly instead of serving
            // acknowledgments the disk may not honor.
            wal.sync()
                .expect("WAL fsync failed; cannot acknowledge commits");
            metrics.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        if accepted > 0 {
            // Publish after durability, acknowledge after publication:
            // an acknowledged commit is visible to every later snapshot.
            head.publish(Arc::new(CommittedState::new(
                working.clone(),
                wal.last_lsn(),
            )));
            metrics.batches.fetch_add(1, Ordering::Relaxed);
            metrics
                .commits
                .fetch_add(commit_acks.len() as u64, Ordering::Relaxed);
        }
        for (reply, receipt) in commit_acks {
            let _ = reply.send(Ok(receipt));
        }
        for (reply, lsn) in constraint_acks {
            let _ = reply.send(Ok(lsn));
        }
        let lsn = wal.last_lsn();
        for reply in flushes {
            let _ = reply.send(lsn);
        }
    }
    let _ = wal.sync();
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_core::Answer;
    use epilog_syntax::parse;

    fn dir() -> PathBuf {
        use std::sync::atomic::AtomicU32;
        static N: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "epilog-serve-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn f(src: &str) -> Formula {
        parse(src).unwrap()
    }

    fn registrar(d: &Path) -> ServingDb {
        let theory = Theory::from_text("forall x. emp(x) -> person(x)").unwrap();
        let db = ServingDb::create(d, theory, ServeOptions::default()).unwrap();
        db.add_constraint(f("forall x. K emp(x) -> exists y. K ss(x, y)"))
            .unwrap();
        db
    }

    #[test]
    fn acknowledged_commits_are_visible_and_old_snapshots_pinned() {
        let d = dir();
        let db = registrar(&d);
        let before = db.snapshot();
        let receipt = db
            .commit_wait(vec![
                TxOp::Assert(f("ss(Mary, n1)")),
                TxOp::Assert(f("emp(Mary)")),
            ])
            .unwrap();
        assert_eq!(receipt.report.asserted, 2);
        let after = db.snapshot();
        assert!(after.lsn() >= receipt.lsn);
        let q = parse("K person(Mary)").unwrap();
        assert_eq!(before.ask(&q), Answer::No, "pinned snapshot");
        assert_eq!(after.ask(&q), Answer::Yes, "ack implies visibility");
        db.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn rejected_commits_leave_no_trace() {
        let d = dir();
        let db = registrar(&d);
        let err = db
            .commit_wait(vec![TxOp::Assert(f("emp(Joe)"))])
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Db(DbError::ConstraintViolated(_), _)
        ));
        assert_eq!(db.head_lsn(), 1, "only the constraint record exists");
        assert_eq!(db.stats().rejected, 1);
        db.shutdown().unwrap();
        // Nothing of the rejected commit reached the log.
        let scan = Wal::scan_file(d.join(WAL_FILE)).unwrap();
        assert_eq!(scan.records.len(), 1);
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn gated_burst_forms_one_batch_with_one_fsync() {
        let d = dir();
        let db = registrar(&d);
        let base = db.stats();
        let gate = db.gate();
        let handles: Vec<CommitHandle> = (0..8)
            .map(|i| {
                db.commit(vec![
                    TxOp::Assert(f(&format!("ss(E{i}, n{i})"))),
                    TxOp::Assert(f(&format!("emp(E{i})"))),
                ])
            })
            .collect();
        gate.open();
        for h in handles {
            let _ = h.wait().unwrap();
        }
        let s = db.stats();
        assert_eq!(s.commits - base.commits, 8);
        assert_eq!(s.batches - base.batches, 1, "one group");
        assert_eq!(s.fsyncs - base.fsyncs, 1, "one fsync for 8 commits");
        let snap = db.snapshot();
        assert_eq!(snap.ask(&parse("K emp(E7)").unwrap()), Answer::Yes);
        db.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn rejection_inside_a_batch_spares_the_others() {
        let d = dir();
        let db = registrar(&d);
        let gate = db.gate();
        let ok1 = db.commit(vec![
            TxOp::Assert(f("ss(Sue, n2)")),
            TxOp::Assert(f("emp(Sue)")),
        ]);
        let bad = db.commit(vec![TxOp::Assert(f("emp(Joe)"))]); // no ss number
        let ok2 = db.commit(vec![
            TxOp::Assert(f("ss(Ann, n3)")),
            TxOp::Assert(f("emp(Ann)")),
        ]);
        gate.open();
        assert!(ok1.wait().is_ok());
        assert!(matches!(bad.wait(), Err(ServeError::Db(..))));
        assert!(ok2.wait().is_ok());
        let snap = db.snapshot();
        assert_eq!(snap.ask(&parse("K emp(Sue)").unwrap()), Answer::Yes);
        assert_eq!(snap.ask(&parse("K emp(Joe)").unwrap()), Answer::No);
        assert_eq!(snap.ask(&parse("K emp(Ann)").unwrap()), Answer::Yes);
        db.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn shutdown_flushes_and_recovery_restores_the_served_state() {
        let d = dir();
        let db = registrar(&d);
        // Enqueue without waiting, then shut down immediately: the
        // graceful path must still drain, sync, and apply everything.
        let pending: Vec<CommitHandle> = (0..5)
            .map(|i| {
                db.commit(vec![
                    TxOp::Assert(f(&format!("ss(W{i}, m{i})"))),
                    TxOp::Assert(f(&format!("emp(W{i})"))),
                ])
            })
            .collect();
        let last = pending.into_iter().last().unwrap().wait().unwrap();
        db.shutdown().unwrap();

        let (db2, report) = ServingDb::recover(&d, ServeOptions::default()).unwrap();
        assert!(report.torn_tail.is_none());
        assert_eq!(report.last_lsn, last.lsn);
        let snap = db2.snapshot();
        assert_eq!(snap.lsn(), last.lsn);
        for i in 0..5 {
            let q = parse(&format!("K person(W{i})")).unwrap();
            assert_eq!(snap.ask(&q), Answer::Yes);
        }
        db2.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn provenance_option_traces_commits_and_stamps_rejections() {
        let d = dir();
        let theory = Theory::from_text(
            "edge(a, b)\nforall x. forall y. edge(x, y) -> path(x, y)\n\
             forall x. forall y. forall z. edge(x, y) & path(y, z) -> path(x, z)",
        )
        .unwrap();
        let opts = ServeOptions {
            provenance: true,
            ..Default::default()
        };
        let db = ServingDb::create(&d, theory, opts).unwrap();
        assert!(db.snapshot().provenance_enabled());
        db.commit_wait(vec![TxOp::Assert(f("edge(b, c)"))]).unwrap();
        let snap = db.snapshot();
        let q = match f("path(a, c)") {
            Formula::Atom(a) => a,
            other => panic!("expected atom, got {other}"),
        };
        let proof = snap.why(&q).expect("transitive tuple has a proof");
        assert!(proof.height() >= 2, "needs the recursive rule");

        db.add_constraint(f("forall x. ~K path(x, x)")).unwrap();
        let head = db.head_lsn();
        let err = db
            .commit_wait(vec![TxOp::Assert(f("edge(c, a)"))])
            .unwrap_err();
        match err {
            ServeError::Db(DbError::ConstraintViolated(rej), lsn) => {
                assert_eq!(lsn, head, "rejection stamped with the head LSN");
                assert!(!rej.witnesses.is_empty(), "ground witness extracted");
                assert!(!rej.proofs.is_empty(), "witness carries a proof tree");
            }
            other => panic!("expected a stamped constraint rejection, got {other:?}"),
        }
        db.shutdown().unwrap();

        // Recovery re-enables provenance from the snapshot marker (and
        // the option keeps it on for the working database regardless).
        let (db2, _) = ServingDb::recover(&d, opts).unwrap();
        assert!(db2.snapshot().provenance_enabled());
        assert!(db2.snapshot().why(&q).is_some());
        db2.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn noop_commit_acks_without_logging() {
        let d = dir();
        let db = registrar(&d);
        let r = db.commit_wait(vec![]).unwrap();
        assert_eq!(r.lsn, 1);
        assert_eq!(db.stats().commits, 0, "no-ops are not group members");
        db.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn flush_is_a_queue_barrier() {
        let d = dir();
        let db = registrar(&d);
        let gate = db.gate();
        let h = db.commit(vec![
            TxOp::Assert(f("ss(Zoe, n9)")),
            TxOp::Assert(f("emp(Zoe)")),
        ]);
        gate.open();
        let lsn = db.flush().unwrap();
        // The flush was queued after the commit, so its LSN covers it.
        assert_eq!(lsn, h.wait().unwrap().lsn);
        db.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }
}
