//! Cross-substrate validation: on definite (Datalog-expressible)
//! databases, three independent engines must agree atom for atom —
//!
//! 1. the grounding+SAT theorem prover (`epilog-prover`),
//! 2. bottom-up semi-naive Datalog evaluation (`epilog-datalog`),
//! 3. top-down SLDNF resolution (`epilog-datalog::sld`).
//!
//! For definite programs the perfect model is the minimal Herbrand model
//! and coincides with first-order entailment of atoms — so any divergence
//! is a bug in one of the three. This is the repository's strongest
//! internal consistency check, run over randomized programs.

use epilog::datalog::{Program, SldEngine};
use epilog::prelude::*;
use epilog::syntax::formula::Atom;
use proptest::prelude::*;

const PARAMS: [&str; 3] = ["a", "b", "c"];

fn random_definite_program() -> impl Strategy<Value = String> {
    let fact = (0..2usize, 0..PARAMS.len(), 0..PARAMS.len()).prop_map(|(pr, x, y)| {
        if pr == 0 {
            format!("e({}, {})", PARAMS[x], PARAMS[y])
        } else {
            format!("p({})", PARAMS[x])
        }
    });
    let rule = prop_oneof![
        Just("forall x, y. e(x, y) -> t(x, y)".to_string()),
        Just("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)".to_string()),
        Just("forall x. p(x) -> q(x)".to_string()),
        Just("forall x, y. e(x, y) & p(x) -> q(y)".to_string()),
    ];
    (
        proptest::collection::vec(fact, 1..5),
        proptest::collection::vec(rule, 0..3),
    )
        .prop_map(|(facts, rules)| {
            let mut all = facts;
            all.extend(rules);
            all.join("\n")
        })
}

fn ground_atoms() -> Vec<Atom> {
    let mut out = Vec::new();
    for pred in ["p", "q"] {
        for a in PARAMS {
            if let Formula::Atom(at) = parse(&format!("{pred}({a})")).unwrap() {
                out.push(at);
            }
        }
    }
    for pred in ["e", "t"] {
        for a in PARAMS {
            for b in PARAMS {
                if let Formula::Atom(at) = parse(&format!("{pred}({a}, {b})")).unwrap() {
                    out.push(at);
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn three_engines_agree(src in random_definite_program()) {
        // Engine 1: the FOPCE prover over the same sentences.
        let theory = Theory::from_text(&src).unwrap();
        let prover = Prover::new(theory);
        // Engine 2: bottom-up Datalog.
        let program = Program::from_text(&src).unwrap();
        let (model, _) = program.eval().unwrap();
        // Engine 3: top-down SLDNF.
        let sld = SldEngine::new(&program);

        for atom in ground_atoms() {
            let w = Formula::Atom(atom.clone());
            let by_prover = prover.entails(&w);
            let by_bottom_up = model.contains(&atom);
            let by_sld = sld.proves(&atom);
            prop_assert_eq!(
                by_prover, by_bottom_up,
                "prover vs bottom-up on {} over\n{}", atom, src
            );
            prop_assert_eq!(
                Some(by_bottom_up), by_sld,
                "bottom-up vs SLD on {} over\n{}", atom, src
            );
        }
    }

    /// And the `demo` evaluator's open-query answers coincide with the
    /// bottom-up model's rows for each predicate.
    #[test]
    fn demo_matches_datalog_rows(src in random_definite_program()) {
        let theory = Theory::from_text(&src).unwrap();
        let prover = Prover::new(theory);
        let program = Program::from_text(&src).unwrap();
        let (model, _) = program.eval().unwrap();

        for (pred, arity) in [("p", 1usize), ("q", 1), ("t", 2)] {
            let q = if arity == 1 {
                parse(&format!("{pred}(x)")).unwrap()
            } else {
                parse(&format!("{pred}(x, y)")).unwrap()
            };
            let mut got = epilog::core::all_answers(&prover, &q).unwrap();
            got.sort();
            let pred_sym = epilog::syntax::Pred::new(pred, arity);
            let mut expect: Vec<Vec<Param>> = model
                .relation(pred_sym)
                .map(|r| r.iter().cloned().collect())
                .unwrap_or_default();
            expect.sort();
            prop_assert_eq!(got, expect, "rows differ for {} over\n{}", pred, src);
        }
    }
}

// ---------------------------------------------------------------------------
// Differential: demo vs the brute-force ModelSet oracle.
//
// The oracle enumerates every subset of the Herbrand base, so this block
// shrinks the vocabulary to two parameters (base = p/1 + q/1 + e/2 + t/2
// over {a, b} = 12 atoms → 4096 candidate worlds) to keep enumeration
// cheap, then checks `demo` agrees with certainty exactly.
// ---------------------------------------------------------------------------

const SMALL_PARAMS: [&str; 2] = ["a", "b"];

fn small_definite_program() -> impl Strategy<Value = String> {
    let fact = (0..2usize, 0..SMALL_PARAMS.len(), 0..SMALL_PARAMS.len()).prop_map(|(pr, x, y)| {
        if pr == 0 {
            format!("e({}, {})", SMALL_PARAMS[x], SMALL_PARAMS[y])
        } else {
            format!("p({})", SMALL_PARAMS[x])
        }
    });
    let rule = prop_oneof![
        Just("forall x, y. e(x, y) -> t(x, y)".to_string()),
        Just("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)".to_string()),
        Just("forall x. p(x) -> q(x)".to_string()),
        Just("forall x, y. e(x, y) & p(x) -> q(y)".to_string()),
    ];
    (
        proptest::collection::vec(fact, 1..4),
        proptest::collection::vec(rule, 0..3),
    )
        .prop_map(|(facts, rules)| {
            let mut all = facts;
            all.extend(rules);
            all.join("\n")
        })
}

fn small_oracle(theory: &Theory) -> epilog::semantics::ModelSet {
    let universe: Vec<Param> = SMALL_PARAMS.iter().map(|n| Param::new(n)).collect();
    let preds = vec![
        Pred::new("p", 1),
        Pred::new("q", 1),
        Pred::new("e", 2),
        Pred::new("t", 2),
    ];
    epilog::semantics::ModelSet::models(theory, &universe, &preds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On every ground atom of the vocabulary, `demo_sentence` succeeds
    /// iff the atom is certain under brute-force model enumeration.
    #[test]
    fn demo_matches_oracle_on_ground_atoms(src in small_definite_program()) {
        let theory = Theory::from_text(&src).unwrap();
        let prover = Prover::new(theory.clone());
        let oracle = small_oracle(&theory);

        for pred in ["p", "q"] {
            for a in SMALL_PARAMS {
                let w = parse(&format!("{pred}({a})")).unwrap();
                check_demo_vs_oracle(&prover, &oracle, &w, &src)?;
            }
        }
        for pred in ["e", "t"] {
            for a in SMALL_PARAMS {
                for b in SMALL_PARAMS {
                    let w = parse(&format!("{pred}({a}, {b})")).unwrap();
                    check_demo_vs_oracle(&prover, &oracle, &w, &src)?;
                }
            }
        }
    }

    /// Open queries: `all_answers` returns exactly the oracle's certain
    /// bindings for each predicate.
    #[test]
    fn all_answers_matches_oracle_bindings(src in small_definite_program()) {
        let theory = Theory::from_text(&src).unwrap();
        let prover = Prover::new(theory.clone());
        let oracle = small_oracle(&theory);

        for (pred, arity) in [("p", 1usize), ("q", 1), ("t", 2)] {
            let q = if arity == 1 {
                parse(&format!("{pred}(x)")).unwrap()
            } else {
                parse(&format!("{pred}(x, y)")).unwrap()
            };
            let mut got = epilog::core::all_answers(&prover, &q).unwrap();
            got.sort();
            let mut expect = oracle.answers(&q);
            expect.sort();
            prop_assert_eq!(got, expect, "bindings differ for {} over\n{}", pred, src);
        }
    }
}

/// Shared assertion for the differential test above, factored out so the
/// property body stays readable. Returns the `proptest` error type so
/// failures propagate with context.
fn check_demo_vs_oracle(
    prover: &Prover,
    oracle: &epilog::semantics::ModelSet,
    w: &Formula,
    src: &str,
) -> Result<(), TestCaseError> {
    let via_demo = matches!(
        epilog::core::demo_sentence(prover, w).unwrap(),
        epilog::core::DemoOutcome::Succeeds
    );
    let via_oracle = oracle.certain(w);
    if via_demo != via_oracle {
        return Err(TestCaseError::fail(format!(
            "demo={via_demo} but oracle={via_oracle} on {w} over\n{src}"
        )));
    }
    Ok(())
}
