//! E2 — cost of constraint checking under each of the five definitions of
//! §3, as the database grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epilog_bench::workloads::employees_db;
use epilog_core::{ic_satisfaction, IcDefinition, IcReport};
use epilog_prover::Prover;
use epilog_syntax::parse;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ic_fo = parse("forall x. emp(x) -> exists y. ss(x, y)").unwrap();
    let ic_modal = parse("forall x. K emp(x) -> K (exists y. ss(x, y))").unwrap();

    // Correctness gate.
    {
        let p = Prover::new(employees_db(4));
        assert_eq!(
            ic_satisfaction(&p, &ic_modal, IcDefinition::Epistemic),
            IcReport::Satisfied
        );
    }

    let mut g = c.benchmark_group("e2_ic_definitions");
    g.sample_size(10);
    for n in [2usize, 4, 8, 16] {
        let theory = employees_db(n);
        for (label, ic, def) in [
            ("3.1_consistency", &ic_fo, IcDefinition::Consistency),
            ("3.2_entailment", &ic_fo, IcDefinition::Entailment),
            ("3.4_comp_entailment", &ic_fo, IcDefinition::CompEntailment),
            ("3.5_epistemic", &ic_modal, IcDefinition::Epistemic),
        ] {
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter_with_setup(
                    || Prover::new(theory.clone()),
                    |prover| black_box(ic_satisfaction(&prover, ic, def)),
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
