//! E5 — Theorem 5.1 (soundness of `demo`), property-tested against the
//! brute-force semantic oracle.
//!
//! For random small databases `Σ` and random admissible queries `w`:
//!
//! 1. if `demo(w, Σ)` succeeds with bindings `p̄`, then `Σ ⊨ w|p̄`
//!    according to the oracle (enumerating *all* models of `Σ`);
//! 2. if `demo(w, Σ)` finitely fails, then no parameter tuple is an
//!    answer.
//!
//! The oracle evaluates over the theory's parameters plus one spare
//! parameter (standing in for the infinitely many unmentioned
//! individuals), keeping the bounded-universe approximation aligned with
//! the prover's witness semantics at quantifier depth ≤ 1 — which is all
//! the generated queries use.

use epilog::core::{demo, demo_sentence, DemoOutcome};
use epilog::prelude::*;
use epilog::semantics::ModelSet;
use epilog::syntax::Pred;
use proptest::prelude::*;

const PARAMS: [&str; 3] = ["a", "b", "c"];

fn preds() -> Vec<Pred> {
    vec![Pred::new("p", 1), Pred::new("q", 1), Pred::new("r", 0)]
}

/// A random database sentence, elementary by construction.
fn sentence_strategy() -> impl Strategy<Value = String> {
    let atom = (0..2usize, 0..PARAMS.len())
        .prop_map(|(pr, pa)| format!("{}({})", ["p", "q"][pr], PARAMS[pa]));
    prop_oneof![
        atom.clone(),
        Just("r".to_string()),
        (atom.clone(), atom.clone()).prop_map(|(a, b)| format!("{a} | {b}")),
        (0..2usize).prop_map(|pr| format!("exists x. {}(x)", ["p", "q"][pr])),
        (0..2usize, 0..2usize).prop_map(|(f, t)| format!(
            "forall x. {}(x) -> {}(x)",
            ["p", "q"][f],
            ["p", "q"][t]
        )),
    ]
}

fn theory_strategy() -> impl Strategy<Value = Theory> {
    proptest::collection::vec(sentence_strategy(), 0..5).prop_filter_map(
        "theory must be satisfiable for Theorem 5.1",
        |sentences| {
            let t = Theory::from_text(&sentences.join("\n")).ok()?;
            // Elementary theories are always satisfiable (Lemma 6.2), so
            // this filter is vacuous here, but keep the check explicit.
            Some(t)
        },
    )
}

/// A random admissible query. Shapes, all admissible by construction:
/// `L₁ ∧ … ∧ Lₙ` (normal queries, left conjunct first-order positive), a
/// subjective existential, a negated subjective sentence, `K` of a
/// first-order sentence.
fn query_strategy() -> impl Strategy<Value = String> {
    let pred = |i: usize| ["p", "q"][i];
    prop_oneof![
        // Normal query: p(x) [& K q(x)] [& ~K p(x)]
        (
            0..2usize,
            proptest::option::of(0..2usize),
            proptest::option::of(0..2usize)
        )
            .prop_map(move |(first, klit, nk)| {
                let mut s = format!("{}(x)", pred(first));
                if let Some(k) = klit {
                    s.push_str(&format!(" & K {}(x)", pred(k)));
                }
                if let Some(n) = nk {
                    s.push_str(&format!(" & ~K {}(x)", pred(n)));
                }
                s
            }),
        // Ground normal query.
        (0..2usize, 0..PARAMS.len(), 0..2usize, 0..PARAMS.len()).prop_map(
            move |(p1, a1, p2, a2)| format!(
                "K {}({}) & ~K {}({})",
                pred(p1),
                PARAMS[a1],
                pred(p2),
                PARAMS[a2]
            )
        ),
        // Subjective existential.
        (0..2usize).prop_map(move |p1| format!("exists x. K {}(x)", pred(p1))),
        // K over a first-order sentence.
        (0..2usize).prop_map(move |p1| format!("K (exists x. {}(x))", pred(p1))),
        (0..2usize, 0..PARAMS.len(), 0..2usize, 0..PARAMS.len()).prop_map(
            move |(p1, a1, p2, a2)| format!(
                "K ({}({}) | {}({}))",
                pred(p1),
                PARAMS[a1],
                pred(p2),
                PARAMS[a2]
            )
        ),
        // Negated subjective sentence.
        (0..2usize).prop_map(move |p1| format!("~(exists x. K {}(x))", pred(p1))),
        // First-order query with negation (clause 1 handles any shape).
        (0..2usize, 0..2usize).prop_map(move |(p1, p2)| format!(
            "{}(x) & ~{}(x)",
            pred(p1),
            pred(p2)
        )),
    ]
}

fn oracle_for(theory: &Theory) -> ModelSet {
    let mut universe: Vec<Param> = PARAMS.iter().map(|n| Param::new(n)).collect();
    universe.push(Param::new("spare"));
    ModelSet::models(theory, &universe, &preds())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 5.1(1): every binding demo returns is a certain answer.
    #[test]
    fn demo_success_implies_certain(t in theory_strategy(), q in query_strategy()) {
        let w = parse(&q).unwrap();
        prop_assume!(is_admissible(&w));
        let prover = Prover::new(t.clone());
        let oracle = oracle_for(&t);
        let answers: Vec<_> = demo(&prover, &w).unwrap().take(32).collect();
        for tuple in &answers {
            let bound = w.bind_free(tuple);
            prop_assert!(
                oracle.certain(&bound),
                "demo returned {tuple:?} for `{q}` over\n{t}\nbut the oracle rejects it"
            );
        }
    }

    /// Theorem 5.1(2): finite failure means no tuple is an answer.
    #[test]
    fn demo_failure_implies_no_answers(t in theory_strategy(), q in query_strategy()) {
        let w = parse(&q).unwrap();
        prop_assume!(is_admissible(&w));
        let prover = Prover::new(t.clone());
        let failed = demo(&prover, &w).unwrap().next().is_none();
        if failed {
            let oracle = oracle_for(&t);
            let oracle_answers = oracle.answers(&w);
            prop_assert!(
                oracle_answers.is_empty(),
                "demo finitely failed on `{q}` over\n{t}\nbut the oracle finds {oracle_answers:?}"
            );
        }
    }

    /// Sentence queries: demo's success/failure matches certainty, and on
    /// subjective sentences failure implies the negation is certain
    /// (Lemma 5.2).
    #[test]
    fn demo_sentence_outcomes(t in theory_strategy(), q in query_strategy()) {
        let w = parse(&q).unwrap();
        prop_assume!(w.is_sentence());
        prop_assume!(is_admissible(&w));
        let prover = Prover::new(t.clone());
        let oracle = oracle_for(&t);
        let outcome = demo_sentence(&prover, &w).unwrap();
        match outcome {
            DemoOutcome::Succeeds => prop_assert!(oracle.certain(&w)),
            DemoOutcome::FinitelyFails => {
                prop_assert!(!oracle.certain(&w));
                if epilog::syntax::is_subjective(&w) {
                    prop_assert!(oracle.certain(&Formula::not(w.clone())));
                }
            }
        }
    }

    /// The `ask` reducer agrees with the oracle on all generated queries
    /// (sentences), admissible or not.
    #[test]
    fn ask_matches_oracle(t in theory_strategy(), q in query_strategy()) {
        let w = parse(&q).unwrap();
        prop_assume!(w.is_sentence());
        let db = EpistemicDb::new(t.clone());
        let oracle = oracle_for(&t);
        prop_assert_eq!(
            db.ask(&w),
            oracle.answer(&w),
            "ask vs oracle on `{}` over\n{}", q, t
        );
    }
}
