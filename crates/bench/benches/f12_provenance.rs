//! F12 — provenance: derivation-tracking overhead on the F6 scaling
//! fixpoint, and support-accelerated DRed deletion on a dense closure
//! graph where over-deleted tuples survive through alternative supports.
//!
//! Shape expectation: `eval_traced` stays within a small constant factor
//! of `eval` (the flat sink records without allocating; interning is one
//! pass at the end of the run) — the gap is pure tracking overhead, worth
//! watching because this workload's fixpoint is nothing but cheap joins.
//! On deletion, `dred_supports` trades strictly fewer re-derivation
//! probes (the correctness gate pins `support_checks` below the
//! probe-only path's) against maintaining the table through the
//! re-derivation fixpoint; wall-clock favors it as probes get more
//! expensive relative to the model, not on micro graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epilog_bench::workloads::{dense_closure_program, scaling_program};
use epilog_datalog::{EvalOptions, Program, RulePlan, SupportTable};
use epilog_storage::Database;
use std::hint::black_box;

/// The retract workload: full graph, post-retraction program, the removed
/// edge as a delta database, and compiled plans for the DRed paths.
fn retract_setup(m: usize) -> (Program, Database, Database, Vec<RulePlan>, SupportTable) {
    let full = dense_closure_program(m, None);
    let post = dense_closure_program(m, Some((0, 1)));
    let removed = Program::from_text("e(n0, n1)").unwrap().edb;
    let mut table = SupportTable::new();
    let (model, _) = full
        .eval_traced(EvalOptions::default(), &mut table)
        .unwrap();
    let plans: Vec<RulePlan> = post
        .rules
        .iter()
        .map(|r| RulePlan::compile_with_stats(r, Some(&model)))
        .collect();
    (post, model, removed, plans, table)
}

fn bench(c: &mut Criterion) {
    // Correctness gate: tracking is invisible — identical model, identical
    // pre-existing counters — and the table covers the whole IDB.
    {
        let prog = scaling_program(16, 3);
        let (plain_db, plain) = prog.eval().unwrap();
        let mut table = SupportTable::new();
        let (traced_db, traced) = prog
            .eval_traced(EvalOptions::default(), &mut table)
            .unwrap();
        assert_eq!(plain_db, traced_db);
        assert!(traced.supports_recorded > 0);
        assert!(table.consistent_with(&traced_db, prog.rules.len()));
        let mut scrubbed = traced;
        scrubbed.supports_recorded = 0;
        scrubbed.support_hits = 0;
        assert_eq!(scrubbed, plain);
    }
    // Deletion gate: the support-accelerated path reaches the identical
    // final model while strictly skipping re-derivation probes.
    {
        let (post, model, removed, plans, table) = retract_setup(6);
        let (plain_db, plain) = post
            .eval_decremental_with(&plans, model.clone(), &removed)
            .unwrap();
        let mut table = table;
        let (traced_db, traced) = post
            .eval_decremental_traced(&plans, model, &removed, &mut table)
            .unwrap();
        let (oracle, _) = post.eval().unwrap();
        assert_eq!(traced_db, plain_db);
        assert_eq!(traced_db, oracle);
        assert!(traced.support_hits > 0, "dense graph must yield hits");
        assert!(traced.support_checks < plain.support_checks);
        assert_eq!(
            traced.support_hits + traced.support_checks,
            plain.support_checks
        );
    }

    let mut g = c.benchmark_group("f12_provenance");
    g.sample_size(10);
    // Tracking overhead on the F6 scaling workload: the same fixpoint
    // with and without the sink attached.
    for n in [16usize, 32, 64] {
        g.bench_with_input(BenchmarkId::new("eval_untraced", n), &n, |b, &n| {
            let prog = scaling_program(n, 3);
            b.iter(|| black_box(prog.eval().unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("eval_traced", n), &n, |b, &n| {
            let prog = scaling_program(n, 3);
            b.iter(|| {
                let mut table = SupportTable::new();
                black_box(
                    prog.eval_traced(EvalOptions::default(), &mut table)
                        .unwrap(),
                )
            })
        });
    }
    // DRed deletion with and without the recorded supports. Setup (clone
    // of the pre-deletion model and table) is untimed.
    for m in [6usize, 8, 10] {
        g.bench_with_input(BenchmarkId::new("dred_probe_only", m), &m, |b, &m| {
            let (post, model, removed, plans, _) = retract_setup(m);
            b.iter_with_setup(
                || model.clone(),
                |model| black_box(post.eval_decremental_with(&plans, model, &removed).unwrap()),
            )
        });
        g.bench_with_input(BenchmarkId::new("dred_supports", m), &m, |b, &m| {
            let (post, model, removed, plans, table) = retract_setup(m);
            b.iter_with_setup(
                || (model.clone(), table.clone()),
                |(model, mut table)| {
                    black_box(
                        post.eval_decremental_traced(&plans, model, &removed, &mut table)
                            .unwrap(),
                    )
                },
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
