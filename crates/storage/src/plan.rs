//! Compiled join plans over indexed relations.
//!
//! A [`ConjunctionPlan`] turns a conjunction of atoms into an executable
//! join: variables are numbered into dense **slots** (so a binding
//! environment is a flat `Vec<Option<Param>>` rather than a hash map),
//! atoms are reordered so cheap literals join first, and each step's
//! selection shape — which columns are constants, which are bound by
//! earlier steps, which bind fresh slots — is computed once at compile
//! time. Execution walks borrowed tuples; nothing is cloned until a full
//! match reaches the caller's callback.
//!
//! Two planners share the machinery ([`ConjunctionPlan::compile_with`]):
//!
//! * **greedy** (no statistics): literals ordered by descending
//!   bound-column count, every step an index probe or a scan — the seed
//!   nested-loop planner, kept as the ablation baseline;
//! * **cost-based** (statistics from a [`Database`]): literals ordered by
//!   ascending estimated match count (relation cardinality divided by the
//!   distinct counts of its bound columns, [`Relation::distinct_count`]),
//!   and each step assigned a [`StepStrategy`] — single-column index
//!   probe, **hash build + probe** keyed on every bound column at once,
//!   or full scan.
//!
//! The hash strategy exists because the persistent per-column indexes
//! probe exactly one column: a step whose selection binds several columns
//! probes one index and *residually filters* the rest, which degrades to
//! a bucket scan per outer row when the probed column is skewed. A hash
//! step instead builds a transient table over the relation once per plan
//! execution, keyed on the full bound-column tuple, and answers each
//! outer row with one lookup.
//!
//! The Datalog engine compiles one plan per rule and delta position
//! (`epilog-datalog`'s `RulePlan`); the canonical-model grounder in
//! `epilog-prover` compiles one per rule body.
//!
//! [`Relation::distinct_count`]: crate::relation::Relation::distinct_count

use crate::database::Database;
use crate::relation::Selection;
use crate::Tuple;
use epilog_syntax::formula::Atom;
use epilog_syntax::{Param, Pred, Term, Var};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Minimum (estimated) relation size before a hash build pays for itself;
/// below it the plan keeps the probe-or-scan step the seed planner used.
const HASH_MIN_ROWS: usize = 4;

/// Default minimum estimated outer cardinality at a hash build+probe step
/// before partitioning its probes across threads pays for the spawn and
/// merge overhead ([`ConjunctionPlan::for_each_match_partitioned`]).
pub const PAR_MIN_PROBE_OUTER: u64 = 512;

/// Dense numbering of the variables appearing in a rule: slot `i` holds
/// the binding of `vars()[i]`.
#[derive(Debug, Clone, Default)]
pub struct SlotMap {
    vars: Vec<Var>,
}

impl SlotMap {
    /// An empty slot map.
    pub fn new() -> Self {
        SlotMap::default()
    }

    /// The slot of `v`, allocating the next dense slot on first sight.
    pub fn intern(&mut self, v: Var) -> usize {
        match self.get(v) {
            Some(s) => s,
            None => {
                self.vars.push(v);
                self.vars.len() - 1
            }
        }
    }

    /// The slot of `v`, if allocated.
    pub fn get(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|w| *w == v)
    }

    /// Number of allocated slots (= the environment length to allocate).
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no variable has been interned.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Slot-indexed variable names.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }
}

/// One argument position of a compiled atom: a constant parameter or a
/// variable slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatTerm {
    /// A constant in the rule text.
    Const(Param),
    /// The variable numbered into this slot.
    Slot(usize),
}

/// An atom with its variables compiled to slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomTemplate {
    /// The predicate.
    pub pred: Pred,
    /// Per column, a constant or a slot.
    pub args: Vec<PatTerm>,
}

impl AtomTemplate {
    /// Compile an atom, interning its variables.
    pub fn compile(atom: &Atom, slots: &mut SlotMap) -> AtomTemplate {
        AtomTemplate {
            pred: atom.pred,
            args: atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Param(p) => PatTerm::Const(*p),
                    Term::Var(v) => PatTerm::Slot(slots.intern(*v)),
                })
                .collect(),
        }
    }

    /// The selection pattern induced by the current environment.
    pub fn pattern(&self, env: &[Option<Param>]) -> Selection {
        self.args
            .iter()
            .map(|a| match a {
                PatTerm::Const(p) => Some(*p),
                PatTerm::Slot(s) => env[*s],
            })
            .collect()
    }

    /// The ground tuple under a complete environment.
    ///
    /// # Panics
    /// Panics when a slot the template mentions is unbound (ruled out for
    /// rule heads and negated literals by Datalog safety).
    pub fn ground(&self, env: &[Option<Param>]) -> Tuple {
        self.args
            .iter()
            .map(|a| match a {
                PatTerm::Const(p) => *p,
                PatTerm::Slot(s) => env[*s].expect("unbound slot in ground template"),
            })
            .collect()
    }

    /// [`AtomTemplate::ground`] appended to a shared buffer — the traced
    /// evaluation's allocation-free recording path.
    ///
    /// # Panics
    /// Panics when a slot the template mentions is unbound (ruled out for
    /// rule heads and negated literals by Datalog safety).
    pub fn ground_into(&self, env: &[Option<Param>], out: &mut Vec<Param>) {
        out.extend(self.args.iter().map(|a| match a {
            PatTerm::Const(p) => *p,
            PatTerm::Slot(s) => env[*s].expect("unbound slot in ground template"),
        }));
    }
}

/// How one join step enumerates its candidate tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStrategy {
    /// Probe the relation's persistent single-column index on
    /// [`JoinStep::index_col`], residually filtering any other bound
    /// columns inside the probed bucket.
    IndexProbe,
    /// Build a transient hash table over the relation once per plan
    /// execution, keyed on **all** bound-slot columns (constant columns
    /// are filtered out at build time), and probe it per outer row.
    HashBuildProbe,
    /// Full scan: the step has no bound columns.
    Scan,
}

/// One join step of a compiled plan. The selection shape is static: which
/// columns are constants or bound by earlier steps (and therefore filter),
/// which columns bind fresh slots, and which repeat a slot first bound by
/// an earlier column of the same atom.
#[derive(Debug, Clone)]
pub struct JoinStep {
    /// The compiled atom.
    pub template: AtomTemplate,
    /// Whether this literal matches the delta instead of the total.
    pub from_delta: bool,
    /// The first column known bound at compile time — the column whose
    /// index makes this step sub-linear; `None` means a full scan.
    pub index_col: Option<usize>,
    /// How this step enumerates candidates (chosen by the planner).
    pub strategy: StepStrategy,
    /// Estimated matches this step emits per outer row — the quantity the
    /// cost-based ordering minimizes. `None` when compiled without
    /// statistics (the greedy planner).
    pub est: Option<u64>,
    /// Estimated rows flowing *into* this step (the product of the earlier
    /// steps' per-row estimates). `None` when compiled without statistics.
    /// A large value at a hash step marks it **parallel-eligible**: its
    /// outer rows can be partitioned across threads probing the shared
    /// table ([`ConjunctionPlan::for_each_match_partitioned`]).
    pub est_outer: Option<u64>,
    /// Columns that bind a fresh slot (first occurrence in this atom).
    binders: Vec<(usize, usize)>,
    /// Columns that repeat a slot bound earlier in this same atom.
    checks: Vec<(usize, usize)>,
    /// For [`StepStrategy::HashBuildProbe`]: constant columns, filtered
    /// while building the table.
    hash_consts: Vec<(usize, Param)>,
    /// For [`StepStrategy::HashBuildProbe`]: (column, slot) pairs forming
    /// the composite probe key.
    hash_keys: Vec<(usize, usize)>,
}

impl JoinStep {
    /// Whether partitioning this step's probes across threads is
    /// worthwhile at the default [`PAR_MIN_PROBE_OUTER`] threshold.
    #[must_use]
    pub fn parallel_eligible(&self) -> bool {
        self.parallel_eligible_at(PAR_MIN_PROBE_OUTER)
    }

    /// [`JoinStep::parallel_eligible`] at a caller-chosen threshold: a
    /// hash build+probe step whose estimated outer cardinality reaches
    /// `min_outer` rows.
    #[must_use]
    pub fn parallel_eligible_at(&self, min_outer: u64) -> bool {
        self.strategy == StepStrategy::HashBuildProbe
            && self.est_outer.is_some_and(|o| o >= min_outer)
    }
}

/// A transient hash table built by a [`StepStrategy::HashBuildProbe`]
/// step: probe key (values of the step's bound-slot columns) to the
/// matching tuples, in the relation's deterministic iteration order.
/// Built at most once per plan execution behind a [`OnceLock`], so
/// partitioned workers share one immutable table.
type HashTable<'a> = HashMap<Tuple, Vec<&'a Tuple>>;

/// A compiled conjunction of atoms: steps in join order.
#[derive(Debug, Clone)]
pub struct ConjunctionPlan {
    steps: Vec<JoinStep>,
    /// Whether any step hashes (gates the per-execution scratch alloc).
    has_hash: bool,
}

/// Relation statistics consulted while compiling a plan: live
/// cardinalities and per-column distinct counts read from a [`Database`]
/// (typically the program's EDB, or a cached least model). Predicates the
/// database does not hold — intensional relations whose size is unknown
/// before the fixpoint runs — are estimated at the size of the largest
/// known relation, which makes the cost order degrade gracefully to the
/// greedy one instead of gambling on recursion being small.
///
/// Distinct counts are memoized, and a rule compiler producing several
/// plan variants over the same database should build **one** `PlanStats`
/// and pass it to every [`ConjunctionPlan::compile_planned`] call, so an
/// unindexed column's counting scan is paid once per rule, not once per
/// variant.
pub struct PlanStats<'a> {
    db: &'a Database,
    /// Fallback cardinality for unknown predicates.
    default_len: usize,
    /// Memoized per-(predicate, column) distinct counts: the ordering
    /// loop re-estimates every remaining literal per iteration, and an
    /// unindexed `distinct_count` is a relation scan — pay it once.
    distinct_memo: std::cell::RefCell<HashMap<(Pred, usize), usize>>,
}

impl<'a> PlanStats<'a> {
    /// Snapshot a statistics view over `db`.
    pub fn new(db: &'a Database) -> Self {
        let default_len = db
            .relations()
            .map(|(_, r)| r.len())
            .max()
            .unwrap_or(1)
            .max(1);
        PlanStats {
            db,
            default_len,
            distinct_memo: std::cell::RefCell::new(HashMap::new()),
        }
    }

    fn len_of(&self, pred: Pred) -> usize {
        self.db
            .relation(pred)
            .map(|r| r.len())
            .unwrap_or(self.default_len)
    }

    fn distinct_of(&self, pred: Pred, c: usize) -> usize {
        *self
            .distinct_memo
            .borrow_mut()
            .entry((pred, c))
            .or_insert_with(|| {
                self.db
                    .relation(pred)
                    .map(|r| r.distinct_count(c))
                    .unwrap_or(self.default_len)
                    .max(1)
            })
    }

    /// Estimated matches per outer row for `template` given which slots
    /// are bound: cardinality over the product of the bound columns'
    /// distinct counts (clamped, integer arithmetic — deterministic).
    fn estimate(&self, template: &AtomTemplate, bound: &[bool]) -> u64 {
        let mut est = self.len_of(template.pred) as u64;
        for (c, arg) in template.args.iter().enumerate() {
            let is_bound = match arg {
                PatTerm::Const(_) => true,
                PatTerm::Slot(s) => bound[*s],
            };
            if is_bound {
                est /= self.distinct_of(template.pred, c) as u64;
            }
        }
        est
    }
}

impl ConjunctionPlan {
    /// Compile a conjunction against a (shared) slot map with the seed
    /// **greedy** planner: no statistics, literals ordered by descending
    /// bound-column count, every step an index probe or a scan.
    /// Equivalent to [`ConjunctionPlan::compile_with`] with `stats: None`.
    pub fn compile(atoms: &[Atom], slots: &mut SlotMap, delta_pos: Option<usize>) -> Self {
        Self::compile_with(atoms, slots, delta_pos, None)
    }

    /// Compile a conjunction against a (shared) slot map.
    ///
    /// When `delta_pos` is `Some(d)`, literal `d` joins first and matches
    /// the delta database — the delta is the smallest relation in sight
    /// by construction, so it is pinned to the outermost position rather
    /// than costed. The remaining literals all match the total and are
    /// ordered:
    ///
    /// * **without statistics** (`stats: None`): greedily by descending
    ///   bound-column count, ties broken by written order, each step an
    ///   index probe or scan — bit-for-bit the seed planner;
    /// * **with statistics** (`stats: Some(db)`): by ascending estimated
    ///   match count (cardinality over bound-column distinct counts, read
    ///   live from `db`), ties broken by bound-column count then written
    ///   order; a step binding several columns (at least one via a slot)
    ///   is upgraded to [`StepStrategy::HashBuildProbe`] when the
    ///   estimated outer cardinality amortizes the per-execution build.
    pub fn compile_with(
        atoms: &[Atom],
        slots: &mut SlotMap,
        delta_pos: Option<usize>,
        stats: Option<&Database>,
    ) -> Self {
        let view = stats.map(PlanStats::new);
        Self::compile_planned(atoms, slots, delta_pos, view.as_ref())
    }

    /// [`ConjunctionPlan::compile_with`] over a prebuilt [`PlanStats`]
    /// view. Compilers producing several plan variants against the same
    /// database (e.g. `RulePlan`'s full + per-literal delta variants)
    /// share one view here so its memoized column statistics are
    /// collected once per rule rather than once per variant.
    pub fn compile_planned(
        atoms: &[Atom],
        slots: &mut SlotMap,
        delta_pos: Option<usize>,
        stats: Option<&PlanStats<'_>>,
    ) -> Self {
        Self::compile_inner(atoms, slots, delta_pos, &[], stats)
    }

    /// Compile a conjunction whose `prebound` slots are already bound when
    /// the plan runs — the caller seeds the environment before
    /// [`ConjunctionPlan::for_each_match`]. Prebound slots are treated as
    /// bound throughout planning, so they route into index probes and
    /// composite hash keys (never into binders that would clobber the
    /// seeded values on unwind). This is the shape of a *support query*:
    /// given a ground head, does any body match re-derive it?
    pub fn compile_support(
        atoms: &[Atom],
        slots: &mut SlotMap,
        prebound: &[usize],
        stats: Option<&PlanStats<'_>>,
    ) -> Self {
        Self::compile_inner(atoms, slots, None, prebound, stats)
    }

    fn compile_inner(
        atoms: &[Atom],
        slots: &mut SlotMap,
        delta_pos: Option<usize>,
        prebound: &[usize],
        stats: Option<&PlanStats<'_>>,
    ) -> Self {
        // Intern every variable up front so slot numbering follows written
        // order regardless of the join order chosen below.
        let templates: Vec<AtomTemplate> = atoms
            .iter()
            .map(|a| AtomTemplate::compile(a, slots))
            .collect();

        let mut bound = vec![false; slots.len()];
        for &s in prebound {
            bound[s] = true;
        }
        let mut steps = Vec::with_capacity(templates.len());
        let mut remaining: Vec<usize> = (0..templates.len()).collect();
        // Estimated rows flowing *into* the next step (the product of the
        // chosen steps' per-row estimates). Gates the hash upgrade: a
        // transient table is rebuilt every plan execution, so it only
        // pays when enough outer rows amortize the build.
        let mut est_outer: u64 = 1;

        if let Some(d) = delta_pos {
            remaining.retain(|&i| i != d);
            let step = Self::make_step(&templates[d], true, &mut bound, stats, est_outer);
            if let Some(e) = step.est {
                est_outer = est_outer.saturating_mul(e.max(1));
            }
            steps.push(step);
        }
        while !remaining.is_empty() {
            let bound_count = |i: usize| {
                templates[i]
                    .args
                    .iter()
                    .filter(|a| match a {
                        PatTerm::Const(_) => true,
                        PatTerm::Slot(s) => bound[*s],
                    })
                    .count()
            };
            let pos = match stats {
                // Cost-based: the literal expected to emit the fewest
                // matches per outer row joins next.
                Some(sv) => (0..remaining.len())
                    .min_by_key(|&pos| {
                        let i = remaining[pos];
                        (
                            sv.estimate(&templates[i], &bound),
                            usize::MAX - bound_count(i),
                            pos,
                        )
                    })
                    .expect("remaining is nonempty"),
                // Greedy: the literal with the most bound columns joins
                // next (ties resolve to the earliest written literal).
                None => (0..remaining.len())
                    .max_by_key(|&pos| (bound_count(remaining[pos]), usize::MAX - pos))
                    .expect("remaining is nonempty"),
            };
            let i = remaining.remove(pos);
            let step = Self::make_step(&templates[i], false, &mut bound, stats, est_outer);
            if let Some(e) = step.est {
                est_outer = est_outer.saturating_mul(e.max(1));
            }
            steps.push(step);
        }
        let has_hash = steps
            .iter()
            .any(|s| s.strategy == StepStrategy::HashBuildProbe);
        ConjunctionPlan { steps, has_hash }
    }

    fn make_step(
        template: &AtomTemplate,
        from_delta: bool,
        bound: &mut [bool],
        stats: Option<&PlanStats<'_>>,
        outer_est: u64,
    ) -> JoinStep {
        let mut index_col = None;
        let mut binders = Vec::new();
        let mut checks = Vec::new();
        let mut fresh_here = Vec::new();
        let mut hash_consts = Vec::new();
        let mut hash_keys = Vec::new();
        // A delta literal is estimated at its true (small) size — one
        // row — not at its predicate's total cardinality: the delta holds
        // only the last round's new facts. This is what keeps expensive
        // strategies out of semi-naive rounds whose real outer
        // cardinality is tiny.
        let est = if from_delta {
            stats.map(|_| 1)
        } else {
            stats.map(|sv| sv.estimate(template, bound))
        };
        for (c, arg) in template.args.iter().enumerate() {
            match arg {
                PatTerm::Const(p) => {
                    if index_col.is_none() {
                        index_col = Some(c);
                    }
                    hash_consts.push((c, *p));
                }
                PatTerm::Slot(s) => {
                    if bound[*s] {
                        if index_col.is_none() {
                            index_col = Some(c);
                        }
                        hash_keys.push((c, *s));
                    } else if fresh_here.contains(s) {
                        checks.push((c, *s));
                    } else {
                        binders.push((c, *s));
                        fresh_here.push(*s);
                    }
                }
            }
        }
        for s in fresh_here {
            bound[s] = true;
        }
        // Strategy: delta steps and stat-less compiles keep the seed
        // probe-or-scan behavior. With statistics, a total-side step that
        // binds several columns — at least one through a slot — *may*
        // hash: one composite-key lookup per outer row instead of a
        // single-column index probe plus residual bucket filtering. The
        // transient table costs a relation pass per plan execution, so
        // the upgrade happens only when the estimated residual work the
        // probe path would do (outer rows × probed-bucket size, minus
        // the rows both paths must emit) exceeds the build.
        let bound_cols = hash_consts.len() + hash_keys.len();
        let strategy = if bound_cols == 0 {
            StepStrategy::Scan
        } else if from_delta || stats.is_none() || bound_cols == 1 || hash_keys.is_empty() {
            StepStrategy::IndexProbe
        } else {
            let sv = stats.expect("stats are present on this branch");
            let n = sv.len_of(template.pred) as u64;
            let probed_col = index_col.expect("bound_cols >= 1 implies an index column");
            let bucket_est = n / sv.distinct_of(template.pred, probed_col) as u64;
            let step_est = est.expect("stats are present on this branch");
            let residual_est = outer_est.saturating_mul(bucket_est.saturating_sub(step_est));
            if n >= HASH_MIN_ROWS as u64 && residual_est > n {
                StepStrategy::HashBuildProbe
            } else {
                StepStrategy::IndexProbe
            }
        };
        if strategy != StepStrategy::HashBuildProbe {
            hash_consts.clear();
            hash_keys.clear();
        }
        JoinStep {
            template: template.clone(),
            from_delta,
            index_col,
            strategy,
            est,
            est_outer: stats.map(|_| outer_est),
            binders,
            checks,
            hash_consts,
            hash_keys,
        }
    }

    /// The steps in join order.
    pub fn steps(&self) -> &[JoinStep] {
        &self.steps
    }

    /// Build (once) the indexes every probing step needs; incrementally
    /// maintained storage keeps them warm afterwards. Hash steps build
    /// their own transient tables at execution time and need no
    /// persistent index.
    pub fn ensure_indexes(&self, total: &mut Database, mut delta: Option<&mut Database>) {
        for step in &self.steps {
            if step.strategy == StepStrategy::HashBuildProbe {
                continue;
            }
            let Some(c) = step.index_col else { continue };
            if step.from_delta {
                if let Some(d) = delta.as_deref_mut() {
                    d.ensure_index(step.template.pred, c);
                }
            } else {
                total.ensure_index(step.template.pred, c);
            }
        }
    }

    /// Run the join, invoking `f` with the environment of every complete
    /// match. `env` must hold at least `slots.len()` entries with every
    /// slot this plan binds set to `None`; it is restored on return.
    pub fn for_each_match(
        &self,
        total: &Database,
        delta: Option<&Database>,
        env: &mut [Option<Param>],
        f: &mut dyn FnMut(&[Option<Param>]),
    ) {
        let mut rows = 0;
        self.for_each_match_counting(total, delta, env, &mut rows, f);
    }

    /// Like [`ConjunctionPlan::for_each_match`], additionally adding to
    /// `rows` every candidate tuple the join examined: tuples pulled from
    /// scans and probed buckets (including ones residual filtering then
    /// rejected), tuples read while building a hash table, and bucket
    /// entries returned by hash probes. This is the deterministic
    /// work-done measure behind `EvalStats::rows_examined`.
    pub fn for_each_match_counting(
        &self,
        total: &Database,
        delta: Option<&Database>,
        env: &mut [Option<Param>],
        rows: &mut u64,
        f: &mut dyn FnMut(&[Option<Param>]),
    ) {
        let tables = self.fresh_tables();
        self.run_step(0, total, delta, env, &tables, rows, f);
    }

    /// Per-execution scratch for hash steps: one cell per step, built on
    /// first visit ([`OnceLock::get_or_init`]) and immutable afterwards,
    /// so partitioned workers can share the tables without copying.
    fn fresh_tables<'a>(&self) -> Vec<OnceLock<HashTable<'a>>> {
        if self.has_hash {
            (0..self.steps.len()).map(|_| OnceLock::new()).collect()
        } else {
            Vec::new()
        }
    }

    /// Whether this plan contains a hash step worth partitioning at the
    /// given outer-cardinality threshold: such a step's probes can be
    /// split across threads by
    /// [`ConjunctionPlan::for_each_match_partitioned`]. The first step
    /// must not itself hash (it is the one being partitioned).
    #[must_use]
    pub fn parallel_eligible_at(&self, min_outer: u64) -> bool {
        self.steps.len() >= 2
            && self.steps[0].strategy != StepStrategy::HashBuildProbe
            && self.steps.iter().any(|s| s.parallel_eligible_at(min_outer))
    }

    /// Like [`ConjunctionPlan::for_each_match_counting`], but with the
    /// **first** step's candidate rows partitioned across up to `threads`
    /// worker threads, each joining the remaining steps against its own
    /// environment clone; hash tables are built at most once and shared
    /// immutably. Matches are buffered per worker and replayed to `f` in
    /// chunk order — the callback sequence, the final environment, and
    /// the count added to `rows` are **bit-for-bit identical** to the
    /// sequential run, regardless of thread count.
    ///
    /// Returns the number of worker threads engaged (`1` when the work
    /// was too small to partition and ran inline).
    pub fn for_each_match_partitioned(
        &self,
        total: &Database,
        delta: Option<&Database>,
        env: &mut [Option<Param>],
        threads: usize,
        rows: &mut u64,
        f: &mut dyn FnMut(&[Option<Param>]),
    ) -> usize {
        let hash_first = self
            .steps
            .first()
            .is_some_and(|s| s.strategy == StepStrategy::HashBuildProbe);
        if threads < 2 || self.steps.len() < 2 || hash_first {
            self.for_each_match_counting(total, delta, env, rows, f);
            return 1;
        }
        // Enumerate the outer rows exactly as the sequential first step
        // would: same selection, same residual checks, same examined-row
        // accounting.
        let first = &self.steps[0];
        let db0 = if first.from_delta {
            delta.expect("plan has a delta step but no delta database was given")
        } else {
            total
        };
        let pattern = first.template.pattern(env);
        let mut matches = db0.select(first.template.pred, &pattern);
        let mut outer: Vec<&Tuple> = Vec::new();
        for tuple in matches.by_ref() {
            for &(c, s) in &first.binders {
                env[s] = Some(tuple[c]);
            }
            if first.checks.iter().all(|&(c, s)| env[s] == Some(tuple[c])) {
                outer.push(tuple);
            }
        }
        *rows += matches.examined();
        for &(_, s) in &first.binders {
            env[s] = None;
        }

        let tables = self.fresh_tables();
        let workers = threads.min(outer.len());
        if workers < 2 {
            for &tuple in &outer {
                for &(c, s) in &first.binders {
                    env[s] = Some(tuple[c]);
                }
                self.run_step(1, total, delta, env, &tables, rows, f);
            }
            for &(_, s) in &first.binders {
                env[s] = None;
            }
            return 1;
        }
        let base: Vec<Option<Param>> = env.to_vec();
        let chunk = outer.len().div_ceil(workers);
        let results = threadpool::parallel_map(workers, workers, |w| {
            let lo = (w * chunk).min(outer.len());
            let hi = ((w + 1) * chunk).min(outer.len());
            let mut env = base.clone();
            let mut local_rows = 0u64;
            let mut hits: Vec<Vec<Option<Param>>> = Vec::new();
            for &tuple in &outer[lo..hi] {
                for &(c, s) in &first.binders {
                    env[s] = Some(tuple[c]);
                }
                self.run_step(
                    1,
                    total,
                    delta,
                    &mut env,
                    &tables,
                    &mut local_rows,
                    &mut |e| {
                        hits.push(e.to_vec());
                    },
                );
            }
            (hits, local_rows)
        });
        for (hits, local_rows) in results {
            *rows += local_rows;
            for e in hits {
                f(&e);
            }
        }
        workers
    }

    #[allow(clippy::too_many_arguments)]
    fn run_step<'a>(
        &self,
        i: usize,
        total: &'a Database,
        delta: Option<&'a Database>,
        env: &mut [Option<Param>],
        tables: &[OnceLock<HashTable<'a>>],
        rows: &mut u64,
        f: &mut dyn FnMut(&[Option<Param>]),
    ) {
        let Some(step) = self.steps.get(i) else {
            f(env);
            return;
        };
        let db = if step.from_delta {
            delta.expect("plan has a delta step but no delta database was given")
        } else {
            total
        };
        if step.strategy == StepStrategy::HashBuildProbe {
            // Build once per plan execution (first visit), probe per
            // outer row. Bucket order follows the relation's set order,
            // so enumeration stays deterministic. Under partitioned
            // execution the first worker to arrive builds; the build's
            // examined rows land in that worker's counter shard exactly
            // once, keeping the merged total equal to the sequential one.
            let table = tables[i].get_or_init(|| {
                let mut map = HashTable::new();
                if let Some(rel) = db.relation(step.template.pred) {
                    *rows += rel.len() as u64;
                    for t in rel.iter() {
                        if step.hash_consts.iter().all(|&(c, p)| t[c] == p) {
                            let key: Tuple = step.hash_keys.iter().map(|&(c, _)| t[c]).collect();
                            map.entry(key).or_default().push(t);
                        }
                    }
                }
                map
            });
            let key: Tuple = step
                .hash_keys
                .iter()
                .map(|&(_, s)| env[s].expect("hash key slot is bound by an earlier step"))
                .collect();
            if let Some(bucket) = table.get(&key) {
                for &tuple in bucket {
                    *rows += 1;
                    for &(c, s) in &step.binders {
                        env[s] = Some(tuple[c]);
                    }
                    if step.checks.iter().all(|&(c, s)| env[s] == Some(tuple[c])) {
                        self.run_step(i + 1, total, delta, env, tables, rows, f);
                    }
                }
            }
            for &(_, s) in &step.binders {
                env[s] = None;
            }
            return;
        }
        let pattern = step.template.pattern(env);
        let mut matches = db.select(step.template.pred, &pattern);
        for tuple in matches.by_ref() {
            for &(c, s) in &step.binders {
                env[s] = Some(tuple[c]);
            }
            if step.checks.iter().all(|&(c, s)| env[s] == Some(tuple[c])) {
                self.run_step(i + 1, total, delta, env, tables, rows, f);
            }
        }
        *rows += matches.examined();
        for &(_, s) in &step.binders {
            env[s] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::parse;

    fn atom(src: &str) -> Atom {
        match parse(src).unwrap() {
            epilog_syntax::Formula::Atom(a) => a,
            other => panic!("not an atom: {other}"),
        }
    }

    fn db(facts: &[&str]) -> Database {
        let mut db = Database::new();
        for f in facts {
            let a = atom(f);
            db.insert(&a);
        }
        db
    }

    fn matches(plan: &ConjunctionPlan, slots: &SlotMap, db: &Database) -> Vec<Vec<Option<Param>>> {
        let mut env = vec![None; slots.len()];
        let mut out = Vec::new();
        plan.for_each_match(db, None, &mut env, &mut |e| out.push(e.to_vec()));
        out
    }

    #[test]
    fn joins_bind_across_atoms() {
        let atoms = vec![atom("e(x, y)"), atom("e(y, z)")];
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile(&atoms, &mut slots, None);
        let db = db(&["e(a, b)", "e(b, c)", "e(b, d)"]);
        let got = matches(&plan, &slots, &db);
        // Paths of length 2: a-b-c and a-b-d.
        assert_eq!(got.len(), 2);
        for env in &got {
            assert!(env.iter().all(Option::is_some), "all slots bound");
        }
    }

    #[test]
    fn greedy_reorder_puts_constant_literal_first() {
        // Written order starts with the unbound scan; the plan flips it.
        let atoms = vec![atom("e(x, y)"), atom("p(a, x)")];
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile(&atoms, &mut slots, None);
        assert_eq!(plan.steps()[0].template.pred, Pred::new("p", 2));
        assert_eq!(plan.steps()[0].index_col, Some(0));
        // Second step: x is bound by then, so column 0 is indexable.
        assert_eq!(plan.steps()[1].template.pred, Pred::new("e", 2));
        assert_eq!(plan.steps()[1].index_col, Some(0));
    }

    #[test]
    fn repeated_variable_within_atom_checked() {
        let atoms = vec![atom("e(x, x)")];
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile(&atoms, &mut slots, None);
        let db = db(&["e(a, a)", "e(a, b)"]);
        let got = matches(&plan, &slots, &db);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0][0].unwrap().name(), "a");
    }

    #[test]
    fn empty_conjunction_matches_once() {
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile(&[], &mut slots, None);
        let got = matches(&plan, &slots, &Database::new());
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn delta_step_joins_first_and_matches_delta_only() {
        // Rule body: e(x,y), t(y,z) — delta position on t.
        let atoms = vec![atom("e(x, y)"), atom("t(y, z)")];
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile(&atoms, &mut slots, Some(1));
        assert!(plan.steps()[0].from_delta);
        assert_eq!(plan.steps()[0].template.pred, Pred::new("t", 2));

        let total = db(&["e(a, b)", "t(b, c)", "t(b, d)"]);
        let delta = db(&["t(b, d)"]);
        let mut env = vec![None; slots.len()];
        let mut out = Vec::new();
        plan.for_each_match(&total, Some(&delta), &mut env, &mut |e| {
            out.push(e.to_vec());
        });
        // Only the delta tuple t(b,d) seeds the join.
        assert_eq!(out.len(), 1);
        let z = slots.get(Var::new("z")).unwrap();
        assert_eq!(out[0][z].unwrap().name(), "d");
    }

    #[test]
    fn ensure_indexes_builds_probed_columns() {
        let atoms = vec![atom("p(a, x)"), atom("e(x, y)")];
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile(&atoms, &mut slots, None);
        let mut total = db(&["p(a, b)", "e(b, c)"]);
        plan.ensure_indexes(&mut total, None);
        let p = Pred::new("p", 2);
        let e = Pred::new("e", 2);
        assert!(total.relation(p).unwrap().has_index(0));
        assert!(total.relation(e).unwrap().has_index(0));
        // Results agree with the unindexed run.
        let got = matches(&plan, &slots, &total);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn hash_step_chosen_and_agrees_with_probe() {
        // big(x, y) joined on both columns: the cost-based planner hashes
        // it, the greedy planner probes col 0 and residually filters.
        let atoms = vec![atom("q(x, y)"), atom("big(x, y)")];
        let mut total = Database::new();
        for i in 0..8 {
            total.insert(&atom(&format!("big(k{}, val{i})", i % 2)));
            total.insert(&atom(&format!("q(k{}, val{i})", i % 2)));
        }
        let mut slots = SlotMap::new();
        let greedy = ConjunctionPlan::compile(&atoms, &mut slots, None);
        let mut slots2 = SlotMap::new();
        let cost = ConjunctionPlan::compile_with(&atoms, &mut slots2, None, Some(&total));
        assert!(greedy
            .steps()
            .iter()
            .all(|s| s.strategy != StepStrategy::HashBuildProbe));
        assert_eq!(cost.steps()[1].strategy, StepStrategy::HashBuildProbe);

        greedy.ensure_indexes(&mut total, None);
        let a = matches(&greedy, &slots, &total);
        let b = matches(&cost, &slots2, &total);
        assert_eq!(a.len(), 8);
        assert_eq!(a, b, "hash and probe plans must agree");

        // The hash path touches fewer rows: 8 (scan q) + 8 (build big) +
        // 8 probes of singleton buckets, vs 8 + 8 × 4 residual bucket
        // rows for the probe path.
        let (mut probe_rows, mut hash_rows) = (0, 0);
        let mut env = vec![None; slots.len()];
        greedy.for_each_match_counting(&total, None, &mut env, &mut probe_rows, &mut |_| {});
        let mut env = vec![None; slots2.len()];
        cost.for_each_match_counting(&total, None, &mut env, &mut hash_rows, &mut |_| {});
        assert!(
            hash_rows < probe_rows,
            "hash rows {hash_rows} must undercut probe rows {probe_rows}"
        );
    }

    #[test]
    fn cost_order_puts_small_relation_first() {
        // Written order starts with the big relation; bound counts tie at
        // zero, so the greedy planner keeps it while the cost-based one
        // flips to the 1-tuple relation.
        let atoms = vec![atom("big(x, y)"), atom("small(x)")];
        let mut total = Database::new();
        for i in 0..8 {
            total.insert(&atom(&format!("big(b{i}, c{i})")));
        }
        total.insert(&atom("small(b0)"));
        let mut slots = SlotMap::new();
        let greedy = ConjunctionPlan::compile(&atoms, &mut slots, None);
        assert_eq!(greedy.steps()[0].template.pred, Pred::new("big", 2));
        let mut slots2 = SlotMap::new();
        let cost = ConjunctionPlan::compile_with(&atoms, &mut slots2, None, Some(&total));
        assert_eq!(cost.steps()[0].template.pred, Pred::new("small", 1));
        assert_eq!(cost.steps()[0].est, Some(1));
        // Same matches either way.
        greedy.ensure_indexes(&mut total, None);
        cost.ensure_indexes(&mut total, None);
        assert_eq!(matches(&cost, &slots2, &total).len(), 1);
        assert_eq!(matches(&greedy, &slots, &total).len(), 1);
    }

    #[test]
    fn const_only_bound_columns_never_hash() {
        // A fully-ground literal has no slot keys: an empty-key hash
        // table returns exactly the probed bucket and costs a build
        // pass per execution — the planner must keep the index probe.
        let atoms = vec![atom("q(x)"), atom("p(c0, d0)")];
        let mut total = Database::new();
        for i in 0..8 {
            total.insert(&atom(&format!("p(c{i}, d{i})")));
            total.insert(&atom(&format!("q(e{i})")));
        }
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile_with(&atoms, &mut slots, None, Some(&total));
        assert!(plan
            .steps()
            .iter()
            .all(|s| s.strategy != StepStrategy::HashBuildProbe));
    }

    #[test]
    fn tiny_outer_cardinality_never_hashes() {
        // One outer row cannot amortize an O(|big|) table build: the
        // two-bound-column step must stay an index probe.
        let atoms = vec![atom("tiny(x, y)"), atom("big(x, y)")];
        let mut total = Database::new();
        total.insert(&atom("tiny(b0, c0)"));
        for i in 0..32 {
            total.insert(&atom(&format!("big(b{i}, c{i})")));
        }
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile_with(&atoms, &mut slots, None, Some(&total));
        assert_eq!(plan.steps()[0].template.pred, Pred::new("tiny", 2));
        assert_eq!(plan.steps()[1].strategy, StepStrategy::IndexProbe);
    }

    #[test]
    fn stats_compile_without_relation_falls_back() {
        // A predicate absent from the stats database (an IDB relation)
        // is estimated at the largest known size — the plan still
        // compiles and runs.
        let atoms = vec![atom("e(x, y)"), atom("t(y, z)")];
        let mut total = db(&["e(a, b)"]);
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile_with(&atoms, &mut slots, None, Some(&total));
        assert_eq!(plan.steps()[0].template.pred, Pred::new("e", 2));
        plan.ensure_indexes(&mut total, None);
        total.insert(&atom("t(b, c)"));
        assert_eq!(matches(&plan, &slots, &total).len(), 1);
    }

    #[test]
    fn support_plan_respects_preseeded_environment() {
        // Head t(x, z) over body e(x, y), e(y, z): with x and z prebound
        // the support plan must only enumerate matching y-paths, and must
        // leave the seeded slots intact after the run.
        let mut slots = SlotMap::new();
        let head = AtomTemplate::compile(&atom("t(x, z)"), &mut slots);
        let prebound: Vec<usize> = head
            .args
            .iter()
            .filter_map(|a| match a {
                PatTerm::Slot(s) => Some(*s),
                PatTerm::Const(_) => None,
            })
            .collect();
        let body = vec![atom("e(x, y)"), atom("e(y, z)")];
        let plan = ConjunctionPlan::compile_support(&body, &mut slots, &prebound, None);
        // Every step filters on an already-bound column: no full scans.
        assert!(plan.steps().iter().all(|s| s.index_col.is_some()));

        let db = db(&["e(a, b)", "e(b, c)", "e(a, d)", "e(d, e)"]);
        let mut env = vec![None; slots.len()];
        let x = slots.get(Var::new("x")).unwrap();
        let z = slots.get(Var::new("z")).unwrap();
        env[x] = Some(Param::new("a"));
        env[z] = Some(Param::new("c"));
        let mut hits = 0;
        plan.for_each_match(&db, None, &mut env, &mut |e| {
            assert_eq!(e[x], Some(Param::new("a")));
            assert_eq!(e[z], Some(Param::new("c")));
            hits += 1;
        });
        assert_eq!(hits, 1, "only the a-b-c path supports t(a, c)");
        assert_eq!(env[x], Some(Param::new("a")), "seed survives the run");
        assert_eq!(env[z], Some(Param::new("c")));
        // A head with no support: same environment shape, zero matches.
        env[z] = Some(Param::new("b"));
        let mut misses = 0;
        plan.for_each_match(&db, None, &mut env, &mut |_| misses += 1);
        assert_eq!(misses, 0, "t(a, b) has no two-step path");
    }

    #[test]
    fn partitioned_probe_matches_sequential_bit_for_bit() {
        // Skewed two-column join: the cost-based planner hashes step 1,
        // and step 0's outer rows can be partitioned across workers.
        let atoms = vec![atom("q(x, y)"), atom("big(x, y)")];
        let mut total = Database::new();
        for i in 0..64 {
            total.insert(&atom(&format!("big(k{}, val{i})", i % 4)));
            total.insert(&atom(&format!("q(k{}, val{i})", i % 4)));
        }
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile_with(&atoms, &mut slots, None, Some(&total));
        assert_eq!(plan.steps()[1].strategy, StepStrategy::HashBuildProbe);
        assert!(plan.steps()[1].parallel_eligible_at(32));
        assert!(plan.parallel_eligible_at(32));
        plan.ensure_indexes(&mut total, None);

        let mut env = vec![None; slots.len()];
        let mut seq_rows = 0;
        let mut seq = Vec::new();
        plan.for_each_match_counting(&total, None, &mut env, &mut seq_rows, &mut |e| {
            seq.push(e.to_vec());
        });
        for threads in [1, 2, 3, 4, 64] {
            let mut env = vec![None; slots.len()];
            let mut rows = 0;
            let mut got = Vec::new();
            let used = plan.for_each_match_partitioned(
                &total,
                None,
                &mut env,
                threads,
                &mut rows,
                &mut |e| got.push(e.to_vec()),
            );
            assert_eq!(got, seq, "matches and their order at {threads} threads");
            assert_eq!(rows, seq_rows, "examined rows at {threads} threads");
            assert!(env.iter().all(Option::is_none), "environment restored");
            assert!(used >= 1 && used <= threads.max(1));
            if threads >= 2 {
                assert!(used >= 2, "64 outer rows should engage workers");
            }
        }
    }

    #[test]
    fn partitioned_handles_probe_only_plans() {
        // A probe-only plan is never parallel-eligible (nothing to hash),
        // but the partitioned entry point still answers it correctly.
        let atoms = vec![atom("e(x, y)"), atom("e(y, z)")];
        let mut slots = SlotMap::new();
        let plan = ConjunctionPlan::compile(&atoms, &mut slots, None);
        assert!(!plan.parallel_eligible_at(0));
        let db = db(&["e(a, b)", "e(b, c)", "e(b, d)"]);
        let mut env = vec![None; slots.len()];
        let mut rows = 0;
        let mut got = Vec::new();
        let used = plan.for_each_match_partitioned(&db, None, &mut env, 4, &mut rows, &mut |e| {
            got.push(e.to_vec())
        });
        assert_eq!(got.len(), 2);
        assert_eq!(got, matches(&plan, &slots, &db));
        assert_eq!(used, 3, "three outer rows cap the worker count");
    }

    #[test]
    fn ground_template_instantiates_head() {
        let mut slots = SlotMap::new();
        let body = ConjunctionPlan::compile(&[atom("e(x, y)")], &mut slots, None);
        let head = AtomTemplate::compile(&atom("t(y, x)"), &mut slots);
        let db = db(&["e(a, b)"]);
        let mut env = vec![None; slots.len()];
        let mut tuples = Vec::new();
        body.for_each_match(&db, None, &mut env, &mut |e| tuples.push(head.ground(e)));
        assert_eq!(tuples, vec![vec![Param::new("b"), Param::new("a")]]);
    }
}
