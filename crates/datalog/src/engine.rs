//! Bottom-up evaluation: naive and semi-naive fixpoints over stratified
//! programs.

use crate::program::{DatalogError, Program, Rule};
use epilog_storage::Database;
use epilog_syntax::formula::Atom;
use epilog_syntax::{Param, Term, Var};
use std::collections::HashMap;

/// Counters reported by an evaluation run (for the `f2_datalog` bench and
/// for tests asserting that semi-naive does strictly less work).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of rule-body join attempts.
    pub rule_firings: u64,
    /// Number of head atoms derived (including duplicates).
    pub derivations: u64,
    /// Number of fixpoint iterations across all strata.
    pub iterations: u64,
}

impl Program {
    /// Compute the perfect model by **semi-naive** evaluation: per stratum,
    /// only join against the delta of the previous iteration.
    pub fn eval(&self) -> Result<(Database, EvalStats), DatalogError> {
        self.run(true)
    }

    /// Compute the perfect model by **naive** evaluation: re-derive
    /// everything from scratch each iteration. Kept as the ablation
    /// baseline.
    pub fn eval_naive(&self) -> Result<(Database, EvalStats), DatalogError> {
        self.run(false)
    }

    fn run(&self, seminaive: bool) -> Result<(Database, EvalStats), DatalogError> {
        let strata = self.stratify()?;
        let max_stratum = strata.values().copied().max().unwrap_or(0);
        let mut db = self.edb.clone();
        let mut stats = EvalStats::default();

        for level in 0..=max_stratum {
            let rules: Vec<&Rule> = self
                .rules
                .iter()
                .filter(|r| strata[&r.head.pred] == level)
                .collect();
            if rules.is_empty() {
                continue;
            }
            // Delta starts as the whole database: facts from lower strata
            // can trigger this stratum's rules.
            let mut delta = db.clone();
            loop {
                stats.iterations += 1;
                let mut new_facts = Database::new();
                for rule in &rules {
                    if seminaive {
                        // One join per positive literal designated as the
                        // delta position.
                        let positives: Vec<usize> = rule
                            .body
                            .iter()
                            .enumerate()
                            .filter(|(_, l)| l.positive)
                            .map(|(i, _)| i)
                            .collect();
                        if positives.is_empty() {
                            stats.rule_firings += 1;
                            derive(rule, &db, None, usize::MAX, &mut new_facts, &mut stats);
                        } else {
                            for &dpos in &positives {
                                stats.rule_firings += 1;
                                derive(rule, &db, Some(&delta), dpos, &mut new_facts, &mut stats);
                            }
                        }
                    } else {
                        stats.rule_firings += 1;
                        derive(rule, &db, None, usize::MAX, &mut new_facts, &mut stats);
                    }
                }
                // Keep only the genuinely new facts.
                let mut next_delta = Database::new();
                for atom in new_facts.atoms() {
                    if !db.contains(&atom) {
                        next_delta.insert(&atom);
                    }
                }
                if next_delta.is_empty() {
                    break;
                }
                db.union_with(&next_delta);
                delta = next_delta;
                if !seminaive {
                    // Naive mode ignores the delta and recomputes fully.
                    delta = db.clone();
                }
            }
        }
        Ok((db, stats))
    }
}

/// Join the rule body against `db`, requiring the literal at `delta_pos`
/// (when `delta` is given) to match the delta instead; insert instantiated
/// heads into `out`.
fn derive(
    rule: &Rule,
    db: &Database,
    delta: Option<&Database>,
    delta_pos: usize,
    out: &mut Database,
    stats: &mut EvalStats,
) {
    let mut envs: Vec<HashMap<Var, Param>> = vec![HashMap::new()];
    for (i, lit) in rule.body.iter().enumerate() {
        if !lit.positive {
            continue; // negative literals filter afterwards
        }
        let source = match delta {
            Some(d) if i == delta_pos => d,
            _ => db,
        };
        let mut next = Vec::new();
        for env in &envs {
            extend_matches(&lit.atom, source, env, &mut next);
        }
        envs = next;
        if envs.is_empty() {
            return;
        }
    }
    // Negative literals: none of them may hold in the (stratum-complete)
    // database.
    envs.retain(|env| {
        rule.body.iter().filter(|l| !l.positive).all(|l| {
            let ground = ground_atom(&l.atom, env);
            !db.contains(&ground)
        })
    });
    for env in envs {
        let head = ground_atom(&rule.head, &env);
        stats.derivations += 1;
        out.insert(&head);
    }
}

fn extend_matches(
    atom: &Atom,
    source: &Database,
    env: &HashMap<Var, Param>,
    out: &mut Vec<HashMap<Var, Param>>,
) {
    let pattern: Vec<Option<Param>> = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Param(p) => Some(*p),
            Term::Var(v) => env.get(v).copied(),
        })
        .collect();
    for tuple in source.select(atom.pred, &pattern) {
        let mut env2 = env.clone();
        let mut ok = true;
        for (t, val) in atom.terms.iter().zip(&tuple) {
            if let Term::Var(v) = t {
                match env2.get(v) {
                    Some(bound) if bound != val => {
                        ok = false;
                        break;
                    }
                    _ => {
                        env2.insert(*v, *val);
                    }
                }
            }
        }
        if ok {
            out.push(env2);
        }
    }
}

fn ground_atom(atom: &Atom, env: &HashMap<Var, Param>) -> Atom {
    let terms: Vec<Term> = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Param(p) => Term::Param(*p),
            Term::Var(v) => Term::Param(
                *env.get(v)
                    .unwrap_or_else(|| panic!("unbound variable {v} in head")),
            ),
        })
        .collect();
    Atom::new(atom.pred, terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::parse;
    use epilog_syntax::Pred;

    fn atom(src: &str) -> Atom {
        match parse(src).unwrap() {
            epilog_syntax::Formula::Atom(a) => a,
            other => panic!("not an atom: {other}"),
        }
    }

    fn chain(n: usize) -> Program {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("e(n{i}, n{})\n", i + 1));
        }
        src.push_str("forall x, y. e(x, y) -> t(x, y)\n");
        src.push_str("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)\n");
        Program::from_text(&src).unwrap()
    }

    #[test]
    fn transitive_closure_chain() {
        let p = chain(5);
        let (db, _) = p.eval().unwrap();
        let t = Pred::new("t", 2);
        // 5+4+3+2+1 = 15 pairs.
        assert_eq!(db.relation(t).unwrap().len(), 15);
        assert!(db.contains(&atom("t(n0, n5)")));
        assert!(!db.contains(&atom("t(n5, n0)")));
    }

    #[test]
    fn naive_and_seminaive_agree() {
        for n in [1, 3, 6] {
            let p = chain(n);
            let (a, _) = p.eval().unwrap();
            let (b, _) = p.eval_naive().unwrap();
            assert_eq!(a, b, "models differ for chain({n})");
        }
    }

    #[test]
    fn seminaive_derives_less() {
        let p = chain(12);
        let (_, fast) = p.eval().unwrap();
        let (_, slow) = p.eval_naive().unwrap();
        assert!(
            fast.derivations < slow.derivations,
            "semi-naive {} vs naive {}",
            fast.derivations,
            slow.derivations
        );
    }

    #[test]
    fn stratified_negation() {
        // Reachability complement: unreachable pairs of nodes.
        let p = Program::from_text(
            "node(a)
             node(b)
             node(c)
             e(a, b)
             forall x, y. e(x, y) -> reach(x, y)
             forall x, y, z. reach(x, y) & e(y, z) -> reach(x, z)
             forall x, y. node(x) & node(y) & ~reach(x, y) -> sep(x, y)",
        )
        .unwrap();
        let (db, _) = p.eval().unwrap();
        assert!(db.contains(&atom("sep(b, a)")));
        assert!(db.contains(&atom("sep(a, a)")));
        assert!(!db.contains(&atom("sep(a, b)")));
        let sep = Pred::new("sep", 2);
        assert_eq!(db.relation(sep).unwrap().len(), 8); // 9 pairs − reach(a,b)
    }

    #[test]
    fn same_generation() {
        let p = Program::from_text(
            "par(c1, p1)
             par(c2, p1)
             par(p1, g1)
             par(p2, g1)
             forall x, y, z. par(x, z) & par(y, z) -> sg(x, y)
             forall x, y, u, v. par(x, u) & sg(u, v) & par(y, v) -> sg(x, y)",
        )
        .unwrap();
        let (db, _) = p.eval().unwrap();
        assert!(db.contains(&atom("sg(c1, c2)")));
        assert!(db.contains(&atom("sg(p1, p2)")));
        assert!(db.contains(&atom("sg(c1, c1)")));
        // Children are not same-generation with parents.
        assert!(!db.contains(&atom("sg(c1, p1)")));
    }

    #[test]
    fn facts_only_program() {
        let p = Program::from_text("p(a)\np(b)").unwrap();
        let (db, stats) = p.eval().unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(stats.derivations, 0);
    }

    #[test]
    fn non_ground_fact_rule() {
        // A body-less rule with variables would be unsafe; check rejection.
        let err = Program::from_text("forall x. p(x) -> q(x)\n")
            .and_then(|_| Program::from_text("q(x)").map(|_| ()));
        // `q(x)` alone: parse_theory gives a non-sentence... it parses as a
        // formula with free var; from_sentences sees a non-ground atom rule
        // with empty body → unsafe.
        assert!(err.is_err());
    }
}
