//! Semantic query optimization via KFOPCE reasoning (§4).
//!
//! Corollary 4.1: KFOPCE-equivalent constraints are interchangeable.
//! Corollary 4.2: under a satisfied constraint, KFOPCE-equivalent queries
//! have the same answers — so a query can be *rewritten to a cheaper
//! equivalent before evaluation*. This example optimizes a conjunctive
//! epistemic query under a functional-dependency-style constraint and
//! measures the saved prover work.
//!
//! Run with: `cargo run --example optimizer`

use epilog::core::optimize::{eliminate_redundant_conjuncts, equivalent_under};
use epilog::prelude::*;
use epilog::syntax::{admissible_constraint, flatten_k45, Pred};

fn main() {
    // ----- Corollary 4.1: constraint rewriting --------------------------
    println!("== Corollary 4.1: interchangeable constraint forms ==\n");
    let ic = parse("forall x. K emp(x) -> K ok(x)").unwrap();
    let rewritten = admissible_constraint(&ic);
    println!("  natural form    : {ic}");
    println!("  admissible form : {rewritten}");
    println!(
        "  KFOPCE-equivalent over bounded structures: {}\n",
        epilog::core::valid_kfopce(
            &Formula::iff(ic.clone(), rewritten.clone()),
            &[Param::new("c")],
            &[Pred::new("emp", 1), Pred::new("ok", 1)],
        )
    );

    // ----- Corollary 4.2: query optimization ------------------------------
    println!("== Corollary 4.2: conjunct elimination under a constraint ==\n");
    let universe = [Param::new("c")];
    let preds = vec![Pred::new("p", 1), Pred::new("q", 1)];
    let constraint = parse("forall x. K p(x) -> K q(x)").unwrap();
    let query = parse("K p(x) & K q(x)").unwrap();
    let optimized = eliminate_redundant_conjuncts(&constraint, &query, &universe, &preds);
    println!("  constraint : {constraint}");
    println!("  query      : {query}");
    println!("  optimized  : {optimized}");
    assert!(equivalent_under(
        &constraint,
        &query,
        &optimized,
        &universe,
        &preds
    ));

    // Verify identical answers on a database satisfying the constraint,
    // and compare the prover work saved.
    let mut src = String::new();
    for i in 0..8 {
        src.push_str(&format!("p(a{i})\nq(a{i})\n"));
    }
    src.push_str("q(extra)\n");
    let db = EpistemicDb::from_text(&src).unwrap();
    assert_eq!(
        db.ask(&constraint),
        Answer::Yes,
        "DB satisfies the constraint"
    );

    // Fresh databases per run so the prover's memo table cannot blur the
    // comparison.
    let full = db.demo_all(&query).unwrap();
    let calls_full = db.prover().sat_calls();
    let db2 = EpistemicDb::from_text(&src).unwrap();
    let opt = db2.demo_all(&optimized).unwrap();
    let calls_opt = db2.prover().sat_calls();
    assert_eq!(full, opt, "Corollary 4.2: same answers");
    println!(
        "\n  answers agree ({} tuples); prover calls {} -> {} ({}% saved)\n",
        full.len(),
        calls_full,
        calls_opt,
        (100 * (calls_full.saturating_sub(calls_opt))) / calls_full.max(1)
    );

    // ----- Modal flattening ------------------------------------------------
    println!("== K45 modal flattening (valid in the weak-S5 semantics) ==\n");
    for src in ["K K p", "K ~K p", "K (p & q)", "K (K p & q)"] {
        let w = parse(src).unwrap();
        println!("  {src:<14} ~> {}", flatten_k45(&w));
    }
}
