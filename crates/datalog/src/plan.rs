//! Compiled rule plans for bottom-up evaluation.
//!
//! A [`RulePlan`] is compiled once per rule before the fixpoint starts and
//! reused every round (or, via `epilog-core`'s cross-commit plan cache,
//! across many fixpoints):
//!
//! * the rule's variables are numbered into dense slots, so a binding
//!   environment is a flat `Vec<Option<Param>>` instead of a cloned
//!   `HashMap<Var, Param>` per candidate match;
//! * the positive body literals are reordered — greedily by bound-column
//!   count, or by estimated intermediate size when relation statistics
//!   are supplied ([`RulePlan::compile_with_stats`]) — with selection
//!   shapes and a per-step [`StepStrategy`] (index probe, hash
//!   build+probe, scan) precomputed per step
//!   ([`epilog_storage::ConjunctionPlan`]);
//! * one plan variant exists per positive literal, designating it as the
//!   **delta position** for semi-naive rounds, plus a full variant used by
//!   naive evaluation and the first round of each stratum;
//! * the head and the negated literals are compiled to
//!   [`AtomTemplate`]s grounded directly from the slot environment.
//!
//! [`RulePlan::explain`] renders the chosen literal order, per-step
//! strategy, and estimated cardinalities — the debugging surface for
//! ordering regressions.

use crate::program::Rule;
use epilog_storage::{
    AtomTemplate, ConjunctionPlan, Database, PatTerm, PlanStats, SlotMap, StepStrategy,
};
use epilog_syntax::formula::Atom;
use epilog_syntax::{Param, Pred};
use std::fmt::Write as _;

/// A rule compiled for bottom-up evaluation.
#[derive(Debug, Clone)]
pub struct RulePlan {
    /// The head, grounded from the slot environment on each derivation.
    pub head: AtomTemplate,
    /// The negated body literals (checked against the total database once
    /// the positive join completes; safety guarantees they ground).
    pub negatives: Vec<AtomTemplate>,
    /// The variable numbering shared by every variant.
    pub slots: SlotMap,
    /// Join over all positive literals against the total database.
    pub full: ConjunctionPlan,
    /// Per positive literal: its predicate (for empty-delta skipping) and
    /// the variant joining that literal against the delta first.
    pub variants: Vec<(Pred, ConjunctionPlan)>,
    /// The positive body compiled as a **support query**: the head's
    /// slots are prebound (the caller seeds them from a ground head tuple
    /// via [`RulePlan::bind_head`]), so running it answers "does any body
    /// match still derive this tuple?" without a full firing. Used by the
    /// deletion fixpoint's re-derivation phase.
    pub support: ConjunctionPlan,
}

impl RulePlan {
    /// Compile a rule with the seed greedy planner (no statistics).
    pub fn compile(rule: &Rule) -> RulePlan {
        Self::compile_with_stats(rule, None)
    }

    /// Compile a rule, optionally threading live relation statistics into
    /// literal ordering and join-strategy selection (see
    /// [`ConjunctionPlan::compile_with`]). `stats` is typically the
    /// program's EDB, or — on the cross-commit cache path — the theory's
    /// current least model, which also covers intensional relations.
    pub fn compile_with_stats(rule: &Rule, stats: Option<&Database>) -> RulePlan {
        let mut slots = SlotMap::new();
        let positives: Vec<Atom> = rule
            .body
            .iter()
            .filter(|l| l.positive)
            .map(|l| l.atom.clone())
            .collect();
        // One statistics view shared by the full plan and every delta
        // variant, so per-column distinct counts are collected once per
        // rule rather than once per variant.
        let view = stats.map(PlanStats::new);
        let full = ConjunctionPlan::compile_planned(&positives, &mut slots, None, view.as_ref());
        let variants = (0..positives.len())
            .map(|d| {
                (
                    positives[d].pred,
                    ConjunctionPlan::compile_planned(
                        &positives,
                        &mut slots,
                        Some(d),
                        view.as_ref(),
                    ),
                )
            })
            .collect();
        let negatives = rule
            .body
            .iter()
            .filter(|l| !l.positive)
            .map(|l| AtomTemplate::compile(&l.atom, &mut slots))
            .collect();
        let head = AtomTemplate::compile(&rule.head, &mut slots);
        // The support variant is compiled after the head so the head's
        // slots exist: they are the prebound seed of every support query.
        let prebound: Vec<usize> = head
            .args
            .iter()
            .filter_map(|a| match a {
                PatTerm::Slot(s) => Some(*s),
                PatTerm::Const(_) => None,
            })
            .collect();
        let support =
            ConjunctionPlan::compile_support(&positives, &mut slots, &prebound, view.as_ref());
        RulePlan {
            head,
            negatives,
            slots,
            full,
            variants,
            support,
        }
    }

    /// Seed `env` with the head bindings a ground `tuple` induces: head
    /// constants must match, repeated head slots must agree. Returns
    /// `false` (with `env` partially written) when the tuple cannot be an
    /// instance of this head. On `true`, `env` is ready to drive the
    /// [`RulePlan::support`] plan.
    pub fn bind_head(&self, tuple: &[Param], env: &mut [Option<Param>]) -> bool {
        for (arg, p) in self.head.args.iter().zip(tuple) {
            match arg {
                PatTerm::Const(c) => {
                    if c != p {
                        return false;
                    }
                }
                PatTerm::Slot(s) => match env[*s] {
                    Some(prev) if prev != *p => return false,
                    _ => env[*s] = Some(*p),
                },
            }
        }
        true
    }

    /// Warm up the total-side indexes every variant probes.
    pub fn ensure_total_indexes(&self, total: &mut Database) {
        self.full.ensure_indexes(total, None);
        for (_, v) in &self.variants {
            v.ensure_indexes(total, None);
        }
    }

    /// Warm up the indexes the support variant probes. Kept separate from
    /// [`RulePlan::ensure_total_indexes`]: the assert-only path never runs
    /// support queries and should not pay for their indexes.
    pub fn ensure_support_indexes(&self, total: &mut Database) {
        self.support.ensure_indexes(total, None);
    }

    /// Render an atom template back to source-ish text using the plan's
    /// slot-numbered variable names.
    fn render(&self, t: &AtomTemplate) -> String {
        let args: Vec<String> = t
            .args
            .iter()
            .map(|a| match a {
                PatTerm::Const(p) => p.name(),
                PatTerm::Slot(s) => self.slots.vars()[*s].name(),
            })
            .collect();
        if args.is_empty() {
            t.pred.name()
        } else {
            format!("{}({})", t.pred.name(), args.join(", "))
        }
    }

    fn explain_plan(&self, out: &mut String, label: &str, plan: &ConjunctionPlan) {
        let _ = writeln!(out, "  {label}:");
        for (i, step) in plan.steps().iter().enumerate() {
            let strategy = match step.strategy {
                StepStrategy::IndexProbe => format!(
                    "index-probe col {}",
                    step.index_col.expect("probe steps have an index column")
                ),
                StepStrategy::HashBuildProbe => "hash build+probe".to_string(),
                StepStrategy::Scan => "scan".to_string(),
            };
            let est = match step.est {
                Some(e) => format!(", est {e}/row"),
                None => String::new(),
            };
            // A hash step expecting enough outer rows is parallel-eligible:
            // the engine may partition its probes across threads.
            let par = if step.parallel_eligible() {
                format!(
                    ", outer est {}, parallel-eligible",
                    step.est_outer.expect("eligibility implies statistics")
                )
            } else {
                String::new()
            };
            let delta = if step.from_delta { " [delta]" } else { "" };
            let _ = writeln!(
                out,
                "    {}. {}{delta}  ({strategy}{est}{par})",
                i + 1,
                self.render(&step.template)
            );
        }
    }

    /// Pretty-print the compiled plan: the head, the chosen literal order
    /// of the full variant and of every delta variant, each step's join
    /// strategy, and (when compiled with statistics) the planner's
    /// estimated matches per outer row. The debugging surface for
    /// literal-ordering regressions.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(&mut out, "plan for {}:", self.render(&self.head));
        self.explain_plan(&mut out, "full", &self.full);
        for (pred, v) in &self.variants {
            self.explain_plan(&mut out, &format!("delta[{}]", pred.name()), v);
        }
        self.explain_plan(&mut out, "support", &self.support);
        for n in &self.negatives {
            let _ = writeln!(&mut out, "  negated check: ~{}", self.render(n));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use epilog_storage::PatTerm;
    use epilog_syntax::Var;

    fn plan_of(src: &str) -> RulePlan {
        let p = Program::from_text(src).unwrap();
        RulePlan::compile(&p.rules[0])
    }

    #[test]
    fn slots_are_dense_and_shared() {
        let plan = plan_of("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)");
        assert_eq!(plan.slots.len(), 3);
        // The head reuses the body's slots.
        let x = plan.slots.get(Var::new("x")).unwrap();
        let z = plan.slots.get(Var::new("z")).unwrap();
        assert_eq!(plan.head.args, vec![PatTerm::Slot(x), PatTerm::Slot(z)]);
    }

    #[test]
    fn one_variant_per_positive_literal() {
        let plan = plan_of("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)");
        assert_eq!(plan.variants.len(), 2);
        assert_eq!(plan.variants[0].0, Pred::new("e", 2));
        assert_eq!(plan.variants[1].0, Pred::new("t", 2));
        for (_, v) in &plan.variants {
            assert!(v.steps()[0].from_delta, "delta literal joins first");
            assert!(v.steps()[1..].iter().all(|s| !s.from_delta));
        }
    }

    #[test]
    fn negatives_compiled_not_joined() {
        let plan = plan_of("forall x, y. node(x) & node(y) & ~e(x, y) -> sep(x, y)");
        assert_eq!(plan.full.steps().len(), 2);
        assert_eq!(plan.negatives.len(), 1);
        assert_eq!(plan.negatives[0].pred, Pred::new("e", 2));
        assert_eq!(plan.variants.len(), 2);
    }

    #[test]
    fn explain_renders_order_strategy_and_estimates() {
        let mut src = String::new();
        for i in 0..8 {
            src.push_str(&format!("q(k{}, val{i})\nbig(k{}, val{i})\n", i % 2, i % 2));
        }
        src.push_str("forall x, y. q(x, y) & big(x, y) -> hit(x, y)\n");
        let p = Program::from_text(&src).unwrap();
        let plan = RulePlan::compile_with_stats(&p.rules[0], Some(&p.edb));
        let text = plan.explain();
        assert!(text.contains("plan for hit(x, y)"), "{text}");
        assert!(text.contains("full:"), "{text}");
        assert!(text.contains("hash build+probe"), "{text}");
        assert!(text.contains("est"), "{text}");
        assert!(text.contains("delta[q]"), "{text}");
        assert!(text.contains("[delta]"), "{text}");
        // The seed planner has no statistics: no estimates, no hashing.
        let greedy = RulePlan::compile(&p.rules[0]).explain();
        assert!(!greedy.contains("est"), "{greedy}");
        assert!(!greedy.contains("hash"), "{greedy}");
    }

    #[test]
    fn explain_marks_parallel_eligible_hash_steps() {
        // 1024 outer rows clear the PAR_MIN_PROBE_OUTER threshold, so the
        // hash step is annotated; the 8-row variant of the same join is
        // not.
        let mut big_src = String::new();
        for i in 0..1024 {
            big_src.push_str(&format!("q(k{}, val{i})\nbig(k{}, val{i})\n", i % 4, i % 4));
        }
        big_src.push_str("forall x, y. q(x, y) & big(x, y) -> hit(x, y)\n");
        let p = Program::from_text(&big_src).unwrap();
        let plan = RulePlan::compile_with_stats(&p.rules[0], Some(&p.edb));
        let text = plan.explain();
        assert!(text.contains("parallel-eligible"), "{text}");
        assert!(text.contains("outer est 1024"), "{text}");

        let mut small_src = String::new();
        for i in 0..8 {
            small_src.push_str(&format!("q(k{}, val{i})\nbig(k{}, val{i})\n", i % 2, i % 2));
        }
        small_src.push_str("forall x, y. q(x, y) & big(x, y) -> hit(x, y)\n");
        let p = Program::from_text(&small_src).unwrap();
        let plan = RulePlan::compile_with_stats(&p.rules[0], Some(&p.edb));
        let text = plan.explain();
        assert!(text.contains("hash build+probe"), "{text}");
        assert!(
            !text.contains("parallel-eligible"),
            "8 outer rows are below the threshold: {text}"
        );
    }

    #[test]
    fn explain_covers_negated_literals() {
        let plan = plan_of("forall x, y. node(x) & node(y) & ~e(x, y) -> sep(x, y)");
        let text = plan.explain();
        assert!(text.contains("negated check: ~e(x, y)"), "{text}");
    }

    #[test]
    fn support_plan_answers_alternative_derivations() {
        use epilog_storage::Database;
        let plan = plan_of("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)");
        let mut db = Database::new();
        for f in ["e(a, b)", "t(b, c)", "e(a, d)"] {
            match epilog_syntax::parse(f).unwrap() {
                epilog_syntax::Formula::Atom(a) => db.insert(&a),
                other => panic!("not an atom: {other}"),
            };
        }
        plan.ensure_support_indexes(&mut db);
        let supported = |t: &[Param], db: &Database| {
            let mut env = vec![None; plan.slots.len()];
            assert!(plan.bind_head(t, &mut env));
            let mut found = false;
            plan.support
                .for_each_match(db, None, &mut env, &mut |_| found = true);
            found
        };
        let (a, c, d) = (Param::new("a"), Param::new("c"), Param::new("d"));
        assert!(supported(&[a, c], &db), "e(a,b) & t(b,c) supports t(a,c)");
        assert!(!supported(&[a, d], &db), "no body derives t(a,d)");
    }

    #[test]
    fn bind_head_rejects_mismatched_constants_and_repeats() {
        let p = Program::from_text("forall x. e(x, x) -> loop(x)").unwrap();
        let plan = RulePlan::compile(&p.rules[0]);
        let mut env = vec![None; plan.slots.len()];
        assert!(plan.bind_head(&[Param::new("a")], &mut env));
        assert_eq!(
            env[plan.slots.get(Var::new("x")).unwrap()],
            Some(Param::new("a"))
        );
        // A constant head column must match the tuple exactly.
        let q = Program::from_text("forall x. e(x) -> mark(x, gold)").unwrap();
        let qplan = RulePlan::compile(&q.rules[0]);
        let mut env = vec![None; qplan.slots.len()];
        assert!(qplan.bind_head(&[Param::new("a"), Param::new("gold")], &mut env));
        let mut env = vec![None; qplan.slots.len()];
        assert!(!qplan.bind_head(&[Param::new("a"), Param::new("lead")], &mut env));
        // A repeated head slot must agree across columns.
        let r = Program::from_text("forall x. p(x) -> d(x, x)").unwrap();
        let rplan = RulePlan::compile(&r.rules[0]);
        let mut env = vec![None; rplan.slots.len()];
        assert!(rplan.bind_head(&[Param::new("a"), Param::new("a")], &mut env));
        let mut env = vec![None; rplan.slots.len()];
        assert!(!rplan.bind_head(&[Param::new("a"), Param::new("b")], &mut env));
    }

    #[test]
    fn body_less_rule_has_no_variants() {
        let p = Program::from_text("forall x. p(x) -> q(x)").unwrap();
        // Grab a fact-like rule by constructing one directly.
        let rule = Rule {
            head: p.rules[0].head.clone(),
            body: vec![],
        };
        // An unsafe rule on its own, but plan compilation is shape-only.
        let plan = RulePlan::compile(&rule);
        assert!(plan.variants.is_empty());
        assert!(plan.full.steps().is_empty());
    }
}
