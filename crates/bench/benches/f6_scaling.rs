//! F6 — evaluation-pipeline scaling: compiled plans over incrementally
//! indexed storage on a chain join + transitive closure, runtime vs size.
//!
//! Shape expectation: the compiled semi-naive engine touches each
//! derivation once and skips every empty-delta plan variant, so both
//! wall-clock and `EvalStats::rule_firings` grow far slower than the
//! naive ablation's — the gap widens roughly linearly with `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epilog_bench::workloads::scaling_program;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Correctness gate: same model, strictly fewer firings.
    {
        let p = scaling_program(16, 3);
        let (a, fast) = p.eval().unwrap();
        let (b, slow) = p.eval_naive().unwrap();
        assert_eq!(a, b);
        assert!(fast.rule_firings < slow.rule_firings);
        assert!(fast.derivations < slow.derivations);
    }

    let mut g = c.benchmark_group("f6_scaling");
    g.sample_size(10);
    for n in [16usize, 32, 64] {
        let prog = scaling_program(n, 3);
        g.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval().unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval_naive().unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
