//! Snapshots: the full database state at a log position, so recovery is
//! snapshot-load + tail-replay instead of replay-from-genesis.
//!
//! # File format
//!
//! `snapshot-<lsn, zero-padded>.snap`, atomically written (tmp + rename):
//!
//! ```text
//! #epilog-snapshot v1 <lsn> <payload-len> <fnv1a64-hex>\n
//! [theory]\n
//! <sentence per line>
//! [constraints]\n
//! <sentence per line>
//! [model]\n            (only for definite theories, when requested)
//! <ground atom per line>
//! [supports]\n         (only when provenance is enabled on the db)
//! <rule_idx>|<head atom>|<parent atom>|…
//! ```
//!
//! Sentences are serialized with the `epilog-syntax` pretty-printer and
//! read back with [`parse()`](fn@epilog_syntax::parse) — the same round-trip contract as the WAL.
//! The optional `[model]` section is the materialized least model of a
//! definite theory; restoring it skips the fixpoint recomputation at
//! recovery (debug builds re-derive and verify it).
//!
//! The optional `[supports]` section is the provenance side table: one
//! line per recorded support, `|`-separated (atom text never contains
//! `|`), parents possibly empty for body-less rules. The **marker's
//! presence** — even over zero lines — means provenance was enabled when
//! the snapshot was taken, so restore re-enables it; its absence restores
//! a provenance-off database.

use crate::fault::{self, FaultInjector};
use crate::fnv1a64;
use epilog_core::EpistemicDb;
use epilog_storage::Database;
use epilog_syntax::formula::Atom;
use epilog_syntax::{parse, Formula, Theory};
use std::fmt;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};

/// Why a snapshot failed to load.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The file exists but its header, checksum, or contents are invalid.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// A materialized database state bound to a log position: every record
/// with `lsn <= self.lsn` is reflected in it.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The log position this snapshot covers.
    pub lsn: u64,
    /// The theory's sentences, in storage order.
    pub sentences: Vec<Formula>,
    /// The registered integrity constraints, in registration order.
    pub constraints: Vec<Formula>,
    /// The materialized least model (definite theories only), sorted.
    pub model: Option<Vec<Atom>>,
    /// The provenance support table as `(head, rule_idx, parents)`
    /// entries, sorted; `Some` (possibly empty) exactly when provenance
    /// was enabled on the captured database.
    pub supports: Option<Vec<(Atom, u32, Vec<Atom>)>>,
}

impl Snapshot {
    /// Capture the state of `db` as of log position `lsn`.
    pub fn of(db: &EpistemicDb, lsn: u64, include_model: bool) -> Snapshot {
        let model = if include_model {
            db.prover().atom_model().map(|m: &Database| {
                let mut atoms: Vec<Atom> = m.atoms().collect();
                atoms.sort_by_cached_key(|a| a.to_string());
                atoms
            })
        } else {
            None
        };
        let supports = db.support_table().map(|t| {
            let mut entries: Vec<(Atom, u32, Vec<Atom>)> = t.entries().collect();
            entries.sort_by_cached_key(|(head, rule, parents)| {
                (
                    head.to_string(),
                    *rule,
                    parents.iter().map(Atom::to_string).collect::<Vec<_>>(),
                )
            });
            entries
        });
        Snapshot {
            lsn,
            sentences: db.theory().sentences().to_vec(),
            constraints: db.constraints().to_vec(),
            model,
            supports,
        }
    }

    /// The file name a snapshot at `lsn` is stored under (zero-padded so
    /// lexicographic order is LSN order).
    pub fn file_name(lsn: u64) -> String {
        format!("snapshot-{lsn:020}.snap")
    }

    /// Write atomically into `dir`, returning the file path.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        self.write_with(dir, None)
    }

    /// [`Snapshot::write`] with an optional [`FaultInjector`] over the
    /// data writes and the pre-rename sync. A failed write never renames
    /// — the half-written temp file is removed (best effort) and no
    /// existing snapshot is disturbed.
    pub fn write_with(&self, dir: &Path, injector: Option<&FaultInjector>) -> io::Result<PathBuf> {
        let mut payload = String::from("[theory]\n");
        for w in &self.sentences {
            payload.push_str(&w.to_string());
            payload.push('\n');
        }
        payload.push_str("[constraints]\n");
        for ic in &self.constraints {
            payload.push_str(&ic.to_string());
            payload.push('\n');
        }
        if let Some(model) = &self.model {
            payload.push_str("[model]\n");
            for a in model {
                payload.push_str(&a.to_string());
                payload.push('\n');
            }
        }
        if let Some(supports) = &self.supports {
            payload.push_str("[supports]\n");
            for (head, rule, parents) in supports {
                payload.push_str(&rule.to_string());
                payload.push('|');
                payload.push_str(&head.to_string());
                for p in parents {
                    payload.push('|');
                    payload.push_str(&p.to_string());
                }
                payload.push('\n');
            }
        }
        let header = format!(
            "#epilog-snapshot v1 {} {} {:016x}\n",
            self.lsn,
            payload.len(),
            fnv1a64(payload.as_bytes())
        );
        let path = dir.join(Snapshot::file_name(self.lsn));
        let tmp = path.with_extension("snap.tmp");
        let written = (|| -> io::Result<()> {
            let mut f = File::create(&tmp)?;
            fault::write_all(injector, &mut f, header.as_bytes())?;
            fault::write_all(injector, &mut f, payload.as_bytes())?;
            fault::sync_data(injector, &f)
        })();
        if let Err(e) = written {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::rename(&tmp, &path)?;
        crate::sync_dir(dir)?;
        Ok(path)
    }

    /// Load and validate a snapshot file.
    pub fn load(path: &Path) -> Result<Snapshot, SnapshotError> {
        let bytes = std::fs::read(path)?;
        let text =
            std::str::from_utf8(&bytes).map_err(|_| SnapshotError::Corrupt("not UTF-8".into()))?;
        let (header, payload) = text
            .split_once('\n')
            .ok_or_else(|| SnapshotError::Corrupt("missing header line".into()))?;
        let fields: Vec<&str> = header.split(' ').collect();
        let [magic, version, lsn, len, sum] = fields.as_slice() else {
            return Err(SnapshotError::Corrupt("malformed header".into()));
        };
        if *magic != "#epilog-snapshot" || *version != "v1" {
            return Err(SnapshotError::Corrupt(format!(
                "bad magic/version {header:?}"
            )));
        }
        let lsn: u64 = lsn
            .parse()
            .map_err(|_| SnapshotError::Corrupt("bad lsn".into()))?;
        let len: usize = len
            .parse()
            .map_err(|_| SnapshotError::Corrupt("bad length".into()))?;
        let sum = u64::from_str_radix(sum, 16)
            .map_err(|_| SnapshotError::Corrupt("bad checksum".into()))?;
        if payload.len() != len {
            return Err(SnapshotError::Corrupt(format!(
                "payload length {} != declared {len}",
                payload.len()
            )));
        }
        if fnv1a64(payload.as_bytes()) != sum {
            return Err(SnapshotError::Corrupt("checksum mismatch".into()));
        }
        let mut sentences = Vec::new();
        let mut constraints = Vec::new();
        let mut model: Option<Vec<Atom>> = None;
        let mut supports: Option<Vec<(Atom, u32, Vec<Atom>)>> = None;
        enum Section {
            None,
            Theory,
            Constraints,
            Model,
            Supports,
        }
        fn ground_atom(text: &str) -> Result<Atom, SnapshotError> {
            let w = parse(text)
                .map_err(|e| SnapshotError::Corrupt(format!("unparseable line {text:?}: {e}")))?;
            match w {
                Formula::Atom(a) if a.is_ground() => Ok(a),
                other => Err(SnapshotError::Corrupt(format!(
                    "expected a ground atom, got: {other}"
                ))),
            }
        }
        let mut section = Section::None;
        for line in payload.lines() {
            match line {
                "[theory]" => section = Section::Theory,
                "[constraints]" => section = Section::Constraints,
                "[model]" => {
                    section = Section::Model;
                    model = Some(Vec::new());
                }
                "[supports]" => {
                    section = Section::Supports;
                    supports = Some(Vec::new());
                }
                _ => match section {
                    Section::None => {
                        return Err(SnapshotError::Corrupt(format!(
                            "content before any section marker: {line:?}"
                        )))
                    }
                    Section::Theory | Section::Constraints => {
                        let w = parse(line).map_err(|e| {
                            SnapshotError::Corrupt(format!("unparseable line {line:?}: {e}"))
                        })?;
                        match section {
                            Section::Theory => sentences.push(w),
                            _ => constraints.push(w),
                        }
                    }
                    Section::Model => model
                        .as_mut()
                        .expect("section set")
                        .push(ground_atom(line)?),
                    Section::Supports => {
                        let mut fields = line.split('|');
                        let rule: u32 =
                            fields.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                                SnapshotError::Corrupt(format!("bad support rule idx: {line:?}"))
                            })?;
                        let head = ground_atom(fields.next().ok_or_else(|| {
                            SnapshotError::Corrupt(format!("support line missing head: {line:?}"))
                        })?)?;
                        let parents = fields.map(ground_atom).collect::<Result<Vec<_>, _>>()?;
                        supports
                            .as_mut()
                            .expect("section set")
                            .push((head, rule, parents));
                    }
                },
            }
        }
        Ok(Snapshot {
            lsn,
            sentences,
            constraints,
            model,
            supports,
        })
    }

    /// Every snapshot in `dir`, as `(lsn, path)` sorted ascending by LSN.
    /// Files are identified by name only; validation happens at load.
    pub fn list(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(lsn) = name
                .strip_prefix("snapshot-")
                .and_then(|s| s.strip_suffix(".snap"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                out.push((lsn, entry.path()));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Rebuild the database this snapshot captured. Returns the database
    /// and whether the stored model was attached (skipping the fixpoint).
    ///
    /// Constraints are re-registered through
    /// `EpistemicDb::adopt_constraint`: they held when the (checksummed)
    /// snapshot was written, so the full satisfaction check is not re-run
    /// here — re-verifying the whole state would make snapshot recovery
    /// slower than the log replay it exists to avoid. Debug builds still
    /// verify; the log records replayed *after* the snapshot go through
    /// the fully checked commit path.
    pub fn restore(&self) -> Result<(EpistemicDb, bool), SnapshotError> {
        let theory = Theory::new(self.sentences.clone())
            .map_err(|e| SnapshotError::Corrupt(format!("invalid sentence: {e}")))?;
        let (mut db, model_restored) = match &self.model {
            Some(atoms) => {
                let mut m = Database::new();
                for a in atoms {
                    m.insert(a);
                }
                (EpistemicDb::with_attached_model(theory, m), true)
            }
            None => (EpistemicDb::new(theory), false),
        };
        for ic in &self.constraints {
            db.adopt_constraint(ic.clone())
                .map_err(|e| SnapshotError::Corrupt(format!("invalid constraint: {e}")))?;
        }
        if let Some(entries) = &self.supports {
            if model_restored {
                let mut table = epilog_core::SupportTable::new();
                for (head, rule, parents) in entries {
                    let tuple = epilog_datalog::provenance::params_of(head).ok_or_else(|| {
                        SnapshotError::Corrupt(format!("non-constant support head: {head}"))
                    })?;
                    let parents = parents
                        .iter()
                        .map(|p| {
                            epilog_datalog::provenance::params_of(p)
                                .map(|t| (p.pred, t))
                                .ok_or_else(|| {
                                    SnapshotError::Corrupt(format!(
                                        "non-constant support parent: {p}"
                                    ))
                                })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    table.record(head.pred, &tuple, *rule, &parents);
                }
                db.adopt_provenance(table);
            } else {
                // No materialized model to attach the table to — re-derive
                // it so the marker's "provenance was on" promise still holds.
                db.enable_provenance();
            }
        }
        Ok((db, model_restored))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> PathBuf {
        use std::sync::atomic::{AtomicU32, Ordering};
        static N: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "epilog-snap-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_db() -> EpistemicDb {
        let mut db =
            EpistemicDb::from_text("emp(Mary)\nss(Mary, n1)\nforall x. emp(x) -> person(x)")
                .unwrap();
        db.add_constraint(parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap())
            .unwrap();
        db
    }

    #[test]
    fn write_load_restore_roundtrip() {
        let d = dir();
        let db = sample_db();
        let snap = Snapshot::of(&db, 7, true);
        assert!(snap.model.is_some(), "definite theory has a model");
        let path = snap.write(&d).unwrap();
        let loaded = Snapshot::load(&path).unwrap();
        assert_eq!(loaded.lsn, 7);
        assert_eq!(loaded.sentences, snap.sentences);
        assert_eq!(loaded.constraints, snap.constraints);
        assert_eq!(loaded.model, snap.model);
        let (restored, model_restored) = loaded.restore().unwrap();
        assert!(model_restored);
        assert_eq!(restored.theory(), db.theory());
        assert_eq!(restored.constraints(), db.constraints());
        assert_eq!(restored.prover().atom_model(), db.prover().atom_model());
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn provenance_table_roundtrips_and_reenables() {
        let d = dir();
        let mut db = EpistemicDb::from_text(
            "edge(a, b)\nedge(b, c)\nforall x. forall y. edge(x, y) -> path(x, y)\n\
             forall x. forall y. forall z. edge(x, y) & path(y, z) -> path(x, z)",
        )
        .unwrap();
        assert!(db.enable_provenance());
        let (atoms, supports) = db.provenance_size();
        assert!(atoms > 0 && supports > 0);
        let snap = Snapshot::of(&db, 9, true);
        assert!(snap.supports.as_ref().is_some_and(|s| !s.is_empty()));
        let path = snap.write(&d).unwrap();
        let loaded = Snapshot::load(&path).unwrap();
        assert_eq!(loaded.supports, snap.supports);
        let (restored, model_restored) = loaded.restore().unwrap();
        assert!(model_restored);
        assert!(restored.provenance_enabled());
        assert_eq!(restored.provenance_size(), db.provenance_size());
        let q: Atom = match parse("path(a, c)").unwrap() {
            Formula::Atom(a) => a,
            other => panic!("expected atom, got {other}"),
        };
        let proof = restored.why(&q).expect("derived tuple has a proof");
        assert!(proof.height() >= 2, "path(a,c) needs the recursive rule");
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn provenance_off_snapshots_restore_provenance_off() {
        let d = dir();
        let db = sample_db();
        let path = Snapshot::of(&db, 2, true).write(&d).unwrap();
        let loaded = Snapshot::load(&path).unwrap();
        assert!(loaded.supports.is_none());
        let (restored, _) = loaded.restore().unwrap();
        assert!(!restored.provenance_enabled());
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn non_definite_theories_snapshot_without_model() {
        let d = dir();
        let db = EpistemicDb::from_text("p(a) | q(a)").unwrap();
        let snap = Snapshot::of(&db, 1, true);
        assert!(snap.model.is_none());
        let path = snap.write(&d).unwrap();
        let (restored, model_restored) = Snapshot::load(&path).unwrap().restore().unwrap();
        assert!(!model_restored);
        assert_eq!(restored.theory(), db.theory());
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let d = dir();
        let db = sample_db();
        let path = Snapshot::of(&db, 3, true).write(&d).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 5] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Snapshot::load(&path),
            Err(SnapshotError::Corrupt(_))
        ));
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn listing_sorts_by_lsn() {
        let d = dir();
        let db = sample_db();
        for lsn in [12u64, 3, 7] {
            let _ = Snapshot::of(&db, lsn, false).write(&d).unwrap();
        }
        let lsns: Vec<u64> = Snapshot::list(&d)
            .unwrap()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(lsns, vec![3, 7, 12]);
        std::fs::remove_dir_all(d).unwrap();
    }
}
