//! Provenance: derivation tracking, `why` explanations, and
//! self-explaining constraint rejections.
//!
//! The engine's fixpoint can record one `Support` (rule + ground
//! premises) per derived tuple. With tracking on, `why(atom)` rebuilds
//! a minimal derivation tree down to extensional facts, commits
//! maintain the table incrementally, and a rejected batch names the
//! violated constraint together with ground witness tuples and *their*
//! derivations — the database explains both what it knows and why it
//! refused to change.
//!
//! Run with: `cargo run --example provenance`

use epilog::prelude::*;

fn main() {
    // A definite program: a chain of edges and the transitive closure.
    let mut db = EpistemicDb::from_text(
        "edge(a, b)
         edge(b, c)
         edge(c, d)
         forall x. forall y. edge(x, y) -> path(x, y)
         forall x. forall y. forall z. edge(x, y) & path(y, z) -> path(x, z)",
    )
    .unwrap();

    // Opt in. Tracking re-runs the fixpoint once with a sink attached;
    // untraced databases pay nothing for the feature existing.
    assert!(db.enable_provenance());
    let (atoms, supports) = db.provenance_size();
    println!("tracking {atoms} derived atoms, {supports} supports\n");

    // ----- why: a replayable derivation ---------------------------------
    let proof = db.why(&atom("path(a, d)")).expect("in the least model");
    println!("why path(a, d)?");
    for line in proof.render() {
        println!("  {line}");
    }
    // Three hops: the recursive rule twice over the base case.
    assert_eq!(proof.height(), 3);
    assert_eq!(proof.atom(), &atom("path(a, d)"));

    // ----- why not: absence has no proof --------------------------------
    assert!(db.why(&atom("path(d, a)")).is_none());
    println!("\nwhy path(d, a)? nothing — not in the least model\n");

    // ----- commits maintain the table incrementally ---------------------
    let report = db
        .transaction()
        .assert(parse("edge(d, e)").unwrap())
        .commit()
        .unwrap();
    assert_eq!(report.asserted, 1);
    let proof = db
        .why(&atom("path(a, e)"))
        .expect("maintained across commits");
    println!(
        "after committing edge(d, e): path(a, e) proved with {} nodes\n",
        proof.size()
    );

    // ----- rejections explain themselves --------------------------------
    // Forbid cycles, then try to close one: the batch is rejected, and
    // the error carries the constraint, the ground witnesses, and a
    // proof tree for each witness — computed against the hypothetical
    // state, then discarded with it.
    db.add_constraint(parse("forall x. ~K path(x, x)").unwrap())
        .unwrap();
    let err = db
        .transaction()
        .assert(parse("edge(e, a)").unwrap())
        .commit()
        .unwrap_err();
    println!("committing edge(e, a): {err}\n");
    match err {
        DbError::ConstraintViolated(rej) => {
            println!("violated constraint: {}", rej.constraint);
            assert!(!rej.witnesses.is_empty(), "ground witnesses extracted");
            assert!(!rej.proofs.is_empty(), "witnesses carry derivations");
            for (w, p) in rej.witnesses.iter().zip(&rej.proofs) {
                println!("witness {w}:");
                for line in p.render() {
                    println!("  {line}");
                }
            }
        }
        other => panic!("expected a constraint violation, got {other}"),
    }

    // The rejected batch left no trace — in the model or the table.
    assert!(db.why(&atom("path(a, a)")).is_none());
    let (atoms_after, _) = db.provenance_size();
    println!("\nrejected batch left no trace ({atoms_after} tracked atoms)");
}

fn atom(src: &str) -> epilog::syntax::formula::Atom {
    match parse(src).unwrap() {
        Formula::Atom(a) => a,
        other => panic!("expected an atom, got {other}"),
    }
}
