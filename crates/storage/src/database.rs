//! A database: a catalog of relations keyed by predicate.

use crate::relation::{Matches, Relation, Selection};
use crate::Tuple;
use epilog_syntax::formula::Atom;
use epilog_syntax::{Param, Pred, Term};
use std::collections::{BTreeMap, BTreeSet};

/// A set of ground atoms organised as one [`Relation`] per predicate.
///
/// This is simultaneously the storage behind the Datalog engine's
/// extensional/intensional databases and the representation of a *world*
/// (a set of true atomic sentences, §2 of the paper) in `epilog-semantics`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Database {
    relations: BTreeMap<Pred, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Insert a ground atom; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the atom is not ground.
    pub fn insert(&mut self, atom: &Atom) -> bool {
        let t = atom
            .param_tuple()
            .expect("Database::insert requires a ground atom");
        self.relations
            .entry(atom.pred)
            .or_insert_with(|| Relation::new(atom.pred.arity()))
            .insert(t)
    }

    /// Insert a tuple directly under a predicate.
    pub fn insert_tuple(&mut self, pred: Pred, t: Tuple) -> bool {
        self.relations
            .entry(pred)
            .or_insert_with(|| Relation::new(pred.arity()))
            .insert(t)
    }

    /// Remove a ground atom; returns `true` if it was present.
    pub fn remove(&mut self, atom: &Atom) -> bool {
        let t = atom
            .param_tuple()
            .expect("Database::remove requires a ground atom");
        self.relations
            .get_mut(&atom.pred)
            .is_some_and(|r| r.remove(&t))
    }

    /// Remove a tuple directly under a predicate; returns `true` if it
    /// was present. Any column indexes are maintained incrementally.
    pub fn remove_tuple(&mut self, pred: Pred, t: &Tuple) -> bool {
        self.relations.get_mut(&pred).is_some_and(|r| r.remove(t))
    }

    /// Whether a ground atom is present.
    pub fn contains(&self, atom: &Atom) -> bool {
        match atom.param_tuple() {
            Some(t) => self.contains_tuple(atom.pred, &t),
            None => false,
        }
    }

    /// Whether a tuple is present under a predicate.
    pub fn contains_tuple(&self, pred: Pred, t: &Tuple) -> bool {
        self.relations.get(&pred).is_some_and(|r| r.contains(t))
    }

    /// The relation stored under `pred`, if any.
    pub fn relation(&self, pred: Pred) -> Option<&Relation> {
        self.relations.get(&pred)
    }

    /// Mutable access, creating an empty relation if absent.
    pub fn relation_mut(&mut self, pred: Pred) -> &mut Relation {
        self.relations
            .entry(pred)
            .or_insert_with(|| Relation::new(pred.arity()))
    }

    /// The predicates with at least one stored relation (possibly empty).
    pub fn preds(&self) -> Vec<Pred> {
        self.relations.keys().copied().collect()
    }

    /// Iterate over the stored relations, keyed by predicate, in
    /// deterministic order.
    pub fn relations(&self) -> impl Iterator<Item = (Pred, &Relation)> + '_ {
        self.relations.iter().map(|(p, r)| (*p, r))
    }

    /// Total number of stored atoms.
    pub fn len(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Whether no atoms are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over all stored atoms in deterministic order.
    pub fn atoms(&self) -> impl Iterator<Item = Atom> + '_ {
        self.relations.iter().flat_map(|(pred, rel)| {
            rel.iter()
                .map(move |t| Atom::new(*pred, t.iter().map(|p| Term::Param(*p)).collect()))
        })
    }

    /// All tuples of `pred` matching a partial binding pattern, as a
    /// borrowing iterator. Uses any index built for `pred` via
    /// [`Database::ensure_index`]; otherwise scans.
    pub fn select<'a>(&'a self, pred: Pred, pattern: &'a Selection) -> Matches<'a> {
        self.relations
            .get(&pred)
            .map(|r| r.select(pattern))
            .unwrap_or_else(Matches::empty)
    }

    /// Build (if absent) the column-`col` index of `pred`'s relation; the
    /// index is then maintained incrementally across mutations. Creates an
    /// empty relation when `pred` has no tuples yet, so indexes survive the
    /// predicate's first insert — callers handing the database onward as a
    /// set of atoms should [`Database::prune_empty`] afterwards.
    pub fn ensure_index(&mut self, pred: Pred, col: usize) {
        self.relation_mut(pred).ensure_index(col);
    }

    /// Drop relations holding no tuples. Index warm-up
    /// ([`Database::ensure_index`]) can create empty relation entries;
    /// semantically a database is a set of atoms, and derived equality /
    /// [`Database::preds`] compare the catalog, so producers prune before
    /// publishing a result.
    pub fn prune_empty(&mut self) {
        self.relations.retain(|_, r| !r.is_empty());
    }

    /// Every parameter stored anywhere.
    pub fn params(&self) -> BTreeSet<Param> {
        self.relations.values().flat_map(Relation::params).collect()
    }

    /// Set-union with another database; returns the number of new atoms.
    pub fn union_with(&mut self, other: &Database) -> usize {
        let mut added = 0;
        for (pred, rel) in &other.relations {
            added += self
                .relations
                .entry(*pred)
                .or_insert_with(|| Relation::new(rel.arity()))
                .union_with(rel);
        }
        added
    }

    /// The set difference `self ∖ other` as a fresh database: every
    /// tuple stored here that `other` does not contain.
    pub fn difference(&self, other: &Database) -> Database {
        let mut out = Database::new();
        for (pred, rel) in &self.relations {
            for t in rel.iter() {
                if !other.contains_tuple(*pred, t) {
                    out.insert_tuple(*pred, t.clone());
                }
            }
        }
        out
    }

    /// Whether `self ⊆ other` as sets of atoms.
    pub fn subset_of(&self, other: &Database) -> bool {
        self.relations.iter().all(|(pred, rel)| {
            rel.iter()
                .all(|t| other.relations.get(pred).is_some_and(|o| o.contains(t)))
        })
    }
}

impl FromIterator<Atom> for Database {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        let mut db = Database::new();
        for a in iter {
            db.insert(&a);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::parse;

    fn ga(src: &str) -> Atom {
        match parse(src).unwrap() {
            epilog_syntax::Formula::Atom(a) => a,
            other => panic!("not an atom: {other}"),
        }
    }

    #[test]
    fn insert_contains_remove() {
        let mut db = Database::new();
        assert!(db.insert(&ga("Teach(John, Math)")));
        assert!(!db.insert(&ga("Teach(John, Math)")));
        assert!(db.contains(&ga("Teach(John, Math)")));
        assert!(!db.contains(&ga("Teach(John, CS)")));
        assert!(db.remove(&ga("Teach(John, Math)")));
        assert!(db.is_empty());
    }

    #[test]
    fn atoms_round_trip() {
        let mut db = Database::new();
        db.insert(&ga("p(a)"));
        db.insert(&ga("q(a, b)"));
        db.insert(&ga("r"));
        let all: Vec<Atom> = db.atoms().collect();
        assert_eq!(all.len(), 3);
        let db2: Database = all.into_iter().collect();
        assert_eq!(db, db2);
    }

    #[test]
    fn select_by_pattern() {
        let mut db = Database::new();
        db.insert(&ga("e(a, b)"));
        db.insert(&ga("e(a, c)"));
        db.insert(&ga("e(b, c)"));
        let pred = Pred::new("e", 2);
        let pattern = vec![Some(Param::new("a")), None];
        assert_eq!(db.select(pred, &pattern).count(), 2);
        db.ensure_index(pred, 0);
        assert_eq!(db.select(pred, &pattern).count(), 2);
        let missing = vec![None];
        assert_eq!(db.select(Pred::new("missing", 1), &missing).count(), 0);
    }

    #[test]
    fn subset_and_union() {
        let mut small = Database::new();
        small.insert(&ga("p(a)"));
        let mut big = small.clone();
        big.insert(&ga("p(b)"));
        assert!(small.subset_of(&big));
        assert!(!big.subset_of(&small));
        assert_eq!(small.union_with(&big), 1);
        assert!(big.subset_of(&small));
    }

    #[test]
    fn difference_and_remove_tuple() {
        let mut a = Database::new();
        a.insert(&ga("p(a)"));
        a.insert(&ga("p(b)"));
        a.insert(&ga("q(a, b)"));
        let mut b = Database::new();
        b.insert(&ga("p(b)"));
        let diff = a.difference(&b);
        assert_eq!(diff.len(), 2);
        assert!(diff.contains(&ga("p(a)")));
        assert!(diff.contains(&ga("q(a, b)")));
        assert!(!diff.contains(&ga("p(b)")));
        let t = vec![Param::new("a")];
        assert!(a.remove_tuple(Pred::new("p", 1), &t));
        assert!(!a.remove_tuple(Pred::new("p", 1), &t));
        assert!(!a.remove_tuple(Pred::new("missing", 1), &t));
    }

    #[test]
    fn params_across_relations() {
        let mut db = Database::new();
        db.insert(&ga("p(a)"));
        db.insert(&ga("q(b, c)"));
        assert_eq!(db.params().len(), 3);
    }

    #[test]
    fn zero_ary_atoms() {
        let mut db = Database::new();
        assert!(db.insert(&ga("raining")));
        assert!(db.contains(&ga("raining")));
        assert_eq!(db.len(), 1);
    }
}
