//! E7 — closed-world evaluation: `demo(ℛ(w), Σ)` (Theorem 7.3, no closure
//! computed) versus materializing `Closure(Σ)` and evaluating in the
//! unique model.
//!
//! Shape expectation: materialization pays a per-database cost that grows
//! with the Herbrand base (it decides every atom), while `demo(ℛ(w))`
//! only proves what the query touches — the gap widens with database
//! size. Once materialized, the closed model answers queries nearly for
//! free, which is the classical space/time trade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epilog_core::closure::{cwa_demo, ClosedDb};
use epilog_prover::Prover;
use epilog_syntax::{parse, Theory};
use std::hint::black_box;

fn graph_db(n: usize) -> Theory {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("q(g{i})\n"));
        if i + 1 < n {
            src.push_str(&format!("r(g{i}, g{})\n", i + 1));
        }
    }
    Theory::from_text(&src).expect("generated text parses")
}

fn bench(c: &mut Criterion) {
    let w = parse("q(x) & ~(exists y. r(x, y) & q(y))").unwrap();

    // Correctness gate: both paths find exactly the chain's last vertex.
    {
        let prover = Prover::new(graph_db(5));
        let via_demo: Vec<_> = cwa_demo(&prover, &w).unwrap().collect();
        assert_eq!(via_demo.len(), 1);
        let closed = ClosedDb::new(&prover);
        assert_eq!(closed.answers(&w), via_demo);
    }

    let mut g = c.benchmark_group("e7_cwa");
    g.sample_size(10);
    for n in [4usize, 6, 8] {
        let theory = graph_db(n);
        g.bench_with_input(BenchmarkId::new("demo_modalized", n), &n, |b, _| {
            b.iter_with_setup(
                || Prover::new(theory.clone()),
                |prover| {
                    let got: Vec<_> = cwa_demo(&prover, &w).unwrap().collect();
                    black_box(got)
                },
            )
        });
        g.bench_with_input(BenchmarkId::new("materialize_closure", n), &n, |b, _| {
            b.iter_with_setup(
                || Prover::new(theory.clone()),
                |prover| {
                    let closed = ClosedDb::new(&prover);
                    black_box(closed.answers(&w))
                },
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
