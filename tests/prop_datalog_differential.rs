//! Differential property suite for the bottom-up Datalog engine: on
//! randomized stratified programs, semi-naive evaluation under compiled
//! rule plans must produce exactly the database naive evaluation produces,
//! while executing no more join plans — and the cost-based planner with
//! hash-join steps must produce exactly the model of the seed greedy
//! nested-loop planner.
//!
//! Programs are drawn from a pool of safe, stratified-by-construction
//! rules (recursion is positive; negation only reaches down to lower
//! strata) over randomized extensional facts, so every sample is inside
//! the perfect-model fragment both evaluators implement.
//!
//! A second family of properties pins the cross-commit plan cache of
//! `EpistemicDb`: ground-atom commits compile zero rule plans, and a
//! rule-changing commit invalidates the cache — the cached-plan state
//! always equals a fresh from-scratch rebuild.

use epilog::core::{prover_for, EpistemicDb, ModelUpdate};
use epilog::datalog::{EvalOptions, EvalStats, PlannerMode, Program, RulePlan};
use epilog::syntax::parse;
use proptest::prelude::*;

const PARAMS: usize = 4;

/// The rule pool. Each rule is safe and has at most one literal of a
/// recursive predicate, and the negated predicates (`reach`, `q`) never
/// appear in a head above them — so any subset is stratified. The last
/// two rules join literals with **two** bound columns, which is what
/// makes the cost-based planner emit hash build+probe steps.
const RULES: [&str; 8] = [
    "forall x, y. e(x, y) -> reach(x, y)",
    "forall x, y, z. e(x, y) & reach(y, z) -> reach(x, z)",
    "forall x. f(x) -> q(x)",
    "forall x, y. e(x, y) & f(x) -> q(y)",
    "forall x, y. e(x, y) & ~reach(y, x) -> oneway(x, y)",
    "forall x. f(x) & ~q(x) -> isolated(x)",
    "forall x, y. reach(x, y) & e(x, y) -> direct(x, y)",
    "forall x, y, z. e(x, y) & e(y, z) & e(x, z) -> tri(x, y, z)",
];

fn program_text() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec((0..PARAMS, 0..PARAMS), 0..10),
        proptest::collection::vec(0..PARAMS, 0..5),
        1u16..256,
    )
        .prop_map(|(edges, units, mask)| {
            let mut src = String::new();
            for (a, b) in edges {
                src.push_str(&format!("e(a{a}, a{b})\n"));
            }
            for a in units {
                src.push_str(&format!("f(a{a})\n"));
            }
            for (i, rule) in RULES.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    src.push_str(rule);
                    src.push('\n');
                }
            }
            src
        })
}

/// Like [`program_text`] but drawn from the negation-free rules only, so
/// every sample is a definite program eligible for the resumed fixpoint
/// (`eval_incremental_with` falls back to full evaluation under
/// negation, which would defeat the stale-vs-recosted comparison).
fn definite_program_text() -> impl Strategy<Value = String> {
    const DEFINITE: [usize; 6] = [0, 1, 2, 3, 6, 7];
    (
        proptest::collection::vec((0..PARAMS, 0..PARAMS), 0..10),
        proptest::collection::vec(0..PARAMS, 0..5),
        1u8..64,
    )
        .prop_map(|(edges, units, mask)| {
            let mut src = String::new();
            for (a, b) in edges {
                src.push_str(&format!("e(a{a}, a{b})\n"));
            }
            for a in units {
                src.push_str(&format!("f(a{a})\n"));
            }
            for (i, &rule) in DEFINITE.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    src.push_str(RULES[rule]);
                    src.push('\n');
                }
            }
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Semi-naive and naive evaluation agree on the perfect model.
    #[test]
    fn seminaive_matches_naive(src in program_text()) {
        let program = Program::from_text(&src).unwrap();
        let (fast_db, fast) = program.eval().unwrap();
        let (slow_db, slow) = program.eval_naive().unwrap();
        prop_assert_eq!(&fast_db, &slow_db, "models differ on:\n{}", src);
        // Empty-delta variants are skipped, so the compiled semi-naive
        // engine never runs more join plans than the naive ablation.
        prop_assert!(
            fast.rule_firings <= slow.rule_firings,
            "semi-naive fired {} > naive {} on:\n{}",
            fast.rule_firings,
            slow.rule_firings,
            src
        );
        // Work actually done is bounded the same way.
        prop_assert!(
            fast.derivations <= slow.derivations,
            "semi-naive derived {} > naive {} on:\n{}",
            fast.derivations,
            slow.derivations,
            src
        );
    }

    /// Planner differential: the cost-based planner (statistics-driven
    /// literal order, hash build+probe steps) computes exactly the model
    /// of the seed greedy nested-loop planner, with identical firing and
    /// derivation counts — only the join work differs.
    #[test]
    fn cost_based_planner_matches_greedy(src in program_text()) {
        let program = Program::from_text(&src).unwrap();
        let (cost_db, cost) = program.eval_with(true, PlannerMode::CostBased).unwrap();
        let (greedy_db, greedy) = program.eval_with(true, PlannerMode::Greedy).unwrap();
        prop_assert_eq!(&cost_db, &greedy_db, "planners disagree on:\n{}", src);
        prop_assert_eq!(cost.rule_firings, greedy.rule_firings, "on:\n{}", src);
        prop_assert_eq!(cost.derivations, greedy.derivations, "on:\n{}", src);
        prop_assert_eq!(greedy.hash_steps, 0, "the seed planner must never hash");
        // Both agree with the naive ablation as well.
        let (naive_db, _) = program.eval_with(false, PlannerMode::Greedy).unwrap();
        prop_assert_eq!(&cost_db, &naive_db, "cost vs naive on:\n{}", src);
        // Skipped-variant accounting: skipped + fired delta variants are
        // disjoint, so the disambiguated counters never double-count.
        prop_assert_eq!(cost.variants_skipped, greedy.variants_skipped, "on:\n{}", src);
    }

    /// Growing chains: the canonical recursive workload, exact sizes.
    #[test]
    fn chain_closure_size_is_exact(n in 1usize..24) {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("e(n{i}, n{})\n", i + 1));
        }
        src.push_str("forall x, y. e(x, y) -> t(x, y)\n");
        src.push_str("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)\n");
        let program = Program::from_text(&src).unwrap();
        let (db, fast) = program.eval().unwrap();
        let (db2, slow) = program.eval_naive().unwrap();
        prop_assert_eq!(&db, &db2);
        let t = epilog::syntax::Pred::new("t", 2);
        prop_assert_eq!(db.relation(t).unwrap().len(), n * (n + 1) / 2);
        prop_assert!(fast.rule_firings <= slow.rule_firings);
    }

    /// Cross-commit plan-cache coherence: a random run of ground-atom
    /// batches with a rule-changing commit injected mid-stream. Every
    /// incremental commit must reuse the cached plans (zero compilations)
    /// — including after the rule commit rebuilt them — and the final
    /// attached model must equal a from-scratch rebuild of the theory,
    /// which fails if an invalidation is ever missed.
    #[test]
    fn plan_cache_coherent_across_rule_commits(
        batches in proptest::collection::vec(
            proptest::collection::vec((0..PARAMS, 0..PARAMS), 1..4),
            1..5,
        ),
        rule_at in 0..5usize,
        which_rule in 0..3usize,
    ) {
        const EXTRA_RULES: [&str; 3] = [
            "forall x, y. e(x, y) -> linked(y, x)",
            "forall x, y. e(x, y) & reach(y, x) -> cyc(x, y)",
            "forall x, y, z. e(x, y) & e(y, z) & e(x, z) -> tri(x, y, z)",
        ];
        let mut db = EpistemicDb::from_text(
            "e(a0, a1)
             forall x, y. e(x, y) -> reach(x, y)
             forall x, y, z. e(x, y) & reach(y, z) -> reach(x, z)",
        )
        .unwrap();
        for (i, batch) in batches.iter().enumerate() {
            if i == rule_at {
                let report = db
                    .transaction()
                    .assert(parse(EXTRA_RULES[which_rule]).unwrap())
                    .commit()
                    .unwrap();
                prop_assert_eq!(&report.model, &ModelUpdate::Rebuilt);
            }
            let mut txn = db.transaction();
            for (a, b) in batch {
                txn = txn.assert(parse(&format!("e(a{a}, a{b})")).unwrap());
            }
            let report = txn.commit().unwrap();
            if let ModelUpdate::Incremental { stats, .. } = report.model {
                prop_assert_eq!(
                    stats.plans_compiled, 0,
                    "ground-atom commit {} must ride the plan cache", i
                );
                prop_assert_eq!(stats.full_firings, 0);
            }
        }
        // Cached-plan evolution == from-scratch rebuild (state + model).
        let scratch = prover_for(db.theory().clone());
        prop_assert_eq!(db.prover().atom_model(), scratch.atom_model());
    }

    /// Parallel evaluation is invisible except in wall-clock time: on
    /// randomized stratified programs (negation included), a 4-thread run
    /// with the work-size thresholds zeroed — so rule-variant fan-out and
    /// partitioned hash probes engage even on toy inputs — produces the
    /// identical model and identical merged counters to the 1-thread
    /// sequential run. Thread-local stat shards merge order-independently.
    #[test]
    fn parallel_eval_matches_sequential(src in program_text()) {
        fn opts(threads: usize) -> EvalOptions {
            EvalOptions {
                threads,
                par_fanout_min_rows: 0,
                par_probe_min_outer: 0,
                ..EvalOptions::default()
            }
        }
        /// Everything but the parallelism observables themselves.
        fn scrubbed(mut s: EvalStats) -> EvalStats {
            s.parallel_rounds = 0;
            s.threads_used = 0;
            s
        }
        let program = Program::from_text(&src).unwrap();
        let (seq_db, seq) = program.eval_opts(opts(1)).unwrap();
        let (par_db, par) = program.eval_opts(opts(4)).unwrap();
        prop_assert_eq!(&par_db, &seq_db, "thread counts disagree on:\n{}", src);
        prop_assert_eq!(par.derivations, seq.derivations, "on:\n{}", src);
        prop_assert_eq!(par.rule_firings, seq.rule_firings, "on:\n{}", src);
        prop_assert_eq!(par.variants_skipped, seq.variants_skipped, "on:\n{}", src);
        prop_assert_eq!(par.rows_examined, seq.rows_examined, "on:\n{}", src);
        prop_assert_eq!(scrubbed(par), scrubbed(seq), "merged stats on:\n{}", src);
        prop_assert_eq!(seq.parallel_rounds, 0, "1 thread must stay sequential");
        prop_assert_eq!(seq.threads_used, 0);
    }

    /// Plan re-costing is a pure performance knob: resuming the fixpoint
    /// with plans costed against the **stale** (pre-growth) model and
    /// with plans re-costed against the **current** model must produce
    /// the identical model — equal to the from-scratch oracle — with
    /// identical firing and derivation counts. Only join strategy and
    /// literal order may differ.
    #[test]
    fn recosted_plans_match_stale_plans(
        src in definite_program_text(),
        extra in proptest::collection::vec((0..PARAMS, 0..PARAMS), 1..6),
    ) {
        let base = Program::from_text(&src).unwrap();
        let (model, _) = base.eval().unwrap();
        // Growth delta on fresh `b`-constants, so every new fact is
        // genuinely absent from the base EDB (the resume contract).
        let mut grown_src = src.clone();
        let mut facts_src = String::new();
        for (a, b) in &extra {
            let fact = format!("e(b{a}, a{b})\n");
            grown_src.push_str(&fact);
            facts_src.push_str(&fact);
        }
        let grown = Program::from_text(&grown_src).unwrap();
        let new_facts = Program::from_text(&facts_src).unwrap().edb;
        let (oracle, _) = grown.eval().unwrap();

        let stale: Vec<RulePlan> = grown
            .rules
            .iter()
            .map(|r| RulePlan::compile_with_stats(r, Some(&model)))
            .collect();
        let fresh: Vec<RulePlan> = grown
            .rules
            .iter()
            .map(|r| RulePlan::compile_with_stats(r, Some(&oracle)))
            .collect();
        let (stale_db, stale_stats) = grown
            .eval_incremental_with(&stale, model.clone(), &new_facts)
            .unwrap();
        let (fresh_db, fresh_stats) = grown
            .eval_incremental_with(&fresh, model, &new_facts)
            .unwrap();
        prop_assert_eq!(&stale_db, &fresh_db, "stale vs re-costed on:\n{}", grown_src);
        prop_assert_eq!(&stale_db, &oracle, "resume vs oracle on:\n{}", grown_src);
        prop_assert_eq!(stale_stats.rule_firings, fresh_stats.rule_firings);
        prop_assert_eq!(stale_stats.derivations, fresh_stats.derivations);
        // The cached-plan entry point never compiles, re-costed or not.
        prop_assert_eq!(stale_stats.plans_compiled, 0);
        prop_assert_eq!(fresh_stats.plans_compiled, 0);
    }
}

/// `RulePlan::explain` makes a re-cost observable: costing the same rule
/// against inverted relation statistics flips the leading literal of the
/// join order (smallest estimated relation first).
#[test]
fn recosting_flips_the_explained_order() {
    let rule = Program::from_text("forall x, y. big(x, y) & small(x) -> out(x, y)")
        .unwrap()
        .rules
        .remove(0);

    let mut small_heavy = String::from("big(a0, a1)\n");
    let mut big_heavy = String::from("small(a0)\n");
    for i in 0..50 {
        small_heavy.push_str(&format!("small(c{i})\n"));
        big_heavy.push_str(&format!("big(c{i}, d{i})\n"));
    }
    let small_heavy = Program::from_text(&small_heavy).unwrap().edb;
    let big_heavy = Program::from_text(&big_heavy).unwrap().edb;

    let lean_big = RulePlan::compile_with_stats(&rule, Some(&small_heavy)).explain();
    let lean_small = RulePlan::compile_with_stats(&rule, Some(&big_heavy)).explain();
    assert_ne!(
        lean_big, lean_small,
        "inverted statistics must change the explained plan"
    );
    assert!(
        lean_big.contains("1. big("),
        "big holds one row, so it must lead:\n{lean_big}"
    );
    assert!(
        lean_small.contains("1. small("),
        "small holds one row, so it must lead:\n{lean_small}"
    );
    // The support section (the DRed re-derivation probe) is explained too.
    assert!(
        lean_big.contains("support:"),
        "missing support section:\n{lean_big}"
    );
    assert!(
        lean_small.contains("support:"),
        "missing support section:\n{lean_small}"
    );
}
