//! Relations: ordered sets of fixed-arity tuples with incrementally
//! maintained per-column hash indexes.

use crate::Tuple;
use epilog_syntax::Param;
use std::collections::{btree_set, BTreeSet, HashMap};

/// A selection pattern: per column, either a required parameter or a
/// wildcard.
pub type Selection = Vec<Option<Param>>;

/// A relation instance: a set of tuples of a fixed arity.
///
/// Tuples are kept in a `BTreeSet` for deterministic iteration (important
/// for the reproducibility of every experiment). Per-column hash indexes
/// are built on demand via [`Relation::ensure_index`] and from then on
/// maintained **incrementally** by `insert`/`remove`/`union_with` — a
/// mutation never tears an index down, which is what lets the semi-naive
/// fixpoint keep its indexes warm across iterations.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Tuple>,
    /// `indexes[c]` maps a parameter to the tuples whose column `c` holds
    /// it; each bucket iterates in set order, and mutation is logarithmic
    /// even for heavily skewed keys. `None` when never built.
    indexes: Vec<Option<HashMap<Param, BTreeSet<Tuple>>>>,
}

/// Borrowing iterator over the tuples matching a selection pattern, in
/// deterministic (lexicographic within the probed bucket) order.
pub struct Matches<'a> {
    inner: MatchesInner<'a>,
    pattern: &'a [Option<Param>],
    examined: u64,
}

enum MatchesInner<'a> {
    Empty,
    Scan(btree_set::Iter<'a, Tuple>),
    Bucket(btree_set::Iter<'a, Tuple>),
}

impl<'a> Matches<'a> {
    /// An iterator yielding nothing (for absent relations).
    pub fn empty() -> Matches<'a> {
        Matches {
            inner: MatchesInner::Empty,
            pattern: &[],
            examined: 0,
        }
    }

    /// Number of candidate tuples pulled from storage so far — including
    /// the ones the residual pattern filter rejected. The join executor
    /// reads this after draining the iterator to report true work done
    /// (`EvalStats::rows_examined`), which is what separates an index
    /// probe that lands on a selective bucket from one that residually
    /// scans a large one.
    pub fn examined(&self) -> u64 {
        self.examined
    }
}

impl<'a> Iterator for Matches<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        loop {
            let t = match &mut self.inner {
                MatchesInner::Empty => return None,
                MatchesInner::Scan(it) => it.next()?,
                MatchesInner::Bucket(it) => it.next()?,
            };
            self.examined += 1;
            if Relation::matches(t, self.pattern) {
                return Some(t);
            }
        }
    }
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: BTreeSet::new(),
            indexes: vec![None; arity],
        }
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple; returns `true` if it was new. Built indexes are
    /// updated in place.
    ///
    /// # Panics
    /// Panics if the tuple's length differs from the relation's arity.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.len(), self.arity, "tuple arity mismatch");
        if self.tuples.contains(&t) {
            return false;
        }
        for (c, idx) in self.indexes.iter_mut().enumerate() {
            if let Some(idx) = idx {
                idx.entry(t[c]).or_default().insert(t.clone());
            }
        }
        self.tuples.insert(t);
        true
    }

    /// Remove a tuple; returns `true` if it was present. Built indexes are
    /// updated in place.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let removed = self.tuples.remove(t);
        if removed {
            for (c, idx) in self.indexes.iter_mut().enumerate() {
                if let Some(idx) = idx {
                    if let Some(bucket) = idx.get_mut(&t[c]) {
                        bucket.remove(t);
                    }
                }
            }
        }
        removed
    }

    /// Whether the exact tuple is present.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Iterate over all tuples in deterministic (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Build the index for column `c` if it is not built yet; once built it
    /// is maintained incrementally by every mutation.
    pub fn ensure_index(&mut self, c: usize) {
        if self.indexes[c].is_some() {
            return;
        }
        let mut idx: HashMap<Param, BTreeSet<Tuple>> = HashMap::new();
        for t in &self.tuples {
            idx.entry(t[c]).or_default().insert(t.clone());
        }
        self.indexes[c] = Some(idx);
    }

    /// Whether the index for column `c` has been built.
    pub fn has_index(&self, c: usize) -> bool {
        self.indexes[c].is_some()
    }

    /// Number of distinct parameters in column `c` — the per-column
    /// statistic the cost-based planner divides by. When the column's
    /// index is built this is its (incrementally maintained) key count;
    /// otherwise one scan computes it. Planners call this once per plan
    /// compilation, not per probe.
    pub fn distinct_count(&self, c: usize) -> usize {
        match &self.indexes[c] {
            Some(idx) => idx.iter().filter(|(_, b)| !b.is_empty()).count(),
            None => self
                .tuples
                .iter()
                .map(|t| t[c])
                .collect::<BTreeSet<_>>()
                .len(),
        }
    }

    /// All tuples matching a partial binding pattern, as a **borrowing**
    /// iterator — no tuple is cloned.
    ///
    /// Probes the first bound column whose index is built (see
    /// [`Relation::ensure_index`]) and filters residually; with no usable
    /// index this is a full scan.
    pub fn select<'a>(&'a self, pattern: &'a Selection) -> Matches<'a> {
        assert_eq!(pattern.len(), self.arity, "selection arity mismatch");
        for (c, p) in pattern.iter().enumerate() {
            let Some(key) = p else { continue };
            let Some(idx) = &self.indexes[c] else {
                continue;
            };
            let inner = match idx.get(key) {
                Some(bucket) => MatchesInner::Bucket(bucket.iter()),
                None => MatchesInner::Empty,
            };
            return Matches {
                inner,
                pattern,
                examined: 0,
            };
        }
        Matches {
            inner: MatchesInner::Scan(self.tuples.iter()),
            pattern,
            examined: 0,
        }
    }

    fn matches(t: &Tuple, pattern: &[Option<Param>]) -> bool {
        t.iter()
            .zip(pattern)
            .all(|(v, p)| p.is_none_or(|q| q == *v))
    }

    /// Set-union with another relation of the same arity; returns the
    /// number of new tuples. Built indexes are maintained.
    pub fn union_with(&mut self, other: &Relation) -> usize {
        assert_eq!(self.arity, other.arity, "relation arity mismatch");
        let before = self.len();
        for t in other.iter() {
            self.insert(t.clone());
        }
        self.len() - before
    }

    /// The set of parameters appearing anywhere in the relation.
    pub fn params(&self) -> BTreeSet<Param> {
        self.tuples.iter().flatten().copied().collect()
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl FromIterator<Tuple> for Relation {
    /// Build a relation from tuples; the arity is taken from the first
    /// tuple (empty input yields a 0-ary relation).
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map(Vec::len).unwrap_or(0);
        let mut r = Relation::new(arity);
        for t in it {
            r.insert(t);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: &str) -> Param {
        Param::new(n)
    }

    fn rel() -> Relation {
        let mut r = Relation::new(2);
        r.insert(vec![p("a"), p("b")]);
        r.insert(vec![p("a"), p("c")]);
        r.insert(vec![p("d"), p("b")]);
        r
    }

    fn sel(r: &Relation, pattern: &Selection) -> Vec<Tuple> {
        r.select(pattern).cloned().collect()
    }

    #[test]
    fn insert_and_contains() {
        let mut r = rel();
        assert_eq!(r.len(), 3);
        assert!(r.contains(&vec![p("a"), p("b")]));
        assert!(
            !r.insert(vec![p("a"), p("b")]),
            "duplicate insert returns false"
        );
        assert_eq!(r.len(), 3);
        assert!(r.remove(&vec![p("a"), p("b")]));
        assert!(!r.contains(&vec![p("a"), p("b")]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_enforced() {
        let mut r = Relation::new(2);
        r.insert(vec![p("a")]);
    }

    #[test]
    fn select_scans_without_index() {
        let r = rel();
        assert_eq!(sel(&r, &vec![Some(p("a")), None]).len(), 2);
        assert_eq!(sel(&r, &vec![None, Some(p("b"))]).len(), 2);
        assert_eq!(
            sel(&r, &vec![Some(p("a")), Some(p("c"))]),
            vec![vec![p("a"), p("c")]]
        );
        assert_eq!(sel(&r, &vec![None, None]).len(), 3);
    }

    #[test]
    fn indexed_select_matches_scan() {
        let scan = rel();
        let mut indexed = rel();
        indexed.ensure_index(0);
        indexed.ensure_index(1);
        for pattern in [
            vec![Some(p("a")), None],
            vec![None, Some(p("b"))],
            vec![None, None],
            vec![Some(p("zz")), None],
            vec![Some(p("a")), Some(p("c"))],
        ] {
            assert_eq!(sel(&indexed, &pattern), sel(&scan, &pattern));
        }
    }

    #[test]
    fn index_maintained_incrementally() {
        let mut r = rel();
        r.ensure_index(0);
        assert_eq!(sel(&r, &vec![Some(p("a")), None]).len(), 2);
        r.insert(vec![p("a"), p("z")]);
        assert!(r.has_index(0), "mutation must not drop the index");
        assert_eq!(
            sel(&r, &vec![Some(p("a")), None]).len(),
            3,
            "index must see the new tuple"
        );
        r.remove(&vec![p("a"), p("b")]);
        assert_eq!(
            sel(&r, &vec![Some(p("a")), None]).len(),
            2,
            "index must forget the removed tuple"
        );
    }

    #[test]
    fn index_buckets_stay_sorted() {
        let mut r = Relation::new(2);
        r.ensure_index(0);
        r.insert(vec![p("a"), p("z")]);
        r.insert(vec![p("a"), p("b")]);
        r.insert(vec![p("a"), p("m")]);
        let got = sel(&r, &vec![Some(p("a")), None]);
        let scan: Vec<Tuple> = r.iter().cloned().collect();
        assert_eq!(
            got, scan,
            "bucket iteration follows the relation's set order"
        );
    }

    #[test]
    fn union_counts_new_and_maintains_index() {
        let mut r = rel();
        r.ensure_index(1);
        let mut other = Relation::new(2);
        other.insert(vec![p("a"), p("b")]); // dup
        other.insert(vec![p("x"), p("b")]); // new
        assert_eq!(r.union_with(&other), 1);
        assert_eq!(r.len(), 4);
        assert_eq!(sel(&r, &vec![None, Some(p("b"))]).len(), 3);
    }

    #[test]
    fn distinct_counts_with_and_without_index() {
        let mut r = rel();
        assert_eq!(r.distinct_count(0), 2); // a, d
        assert_eq!(r.distinct_count(1), 2); // b, c
        r.ensure_index(0);
        assert_eq!(r.distinct_count(0), 2, "indexed count agrees");
        r.insert(vec![p("e"), p("b")]);
        assert_eq!(r.distinct_count(0), 3, "maintained on insert");
        r.remove(&vec![p("d"), p("b")]);
        r.remove(&vec![p("e"), p("b")]);
        assert_eq!(
            r.distinct_count(0),
            1,
            "emptied buckets must not be counted"
        );
        assert_eq!(r.distinct_count(1), 2);
    }

    #[test]
    fn matches_counts_examined_tuples() {
        let mut r = rel();
        r.ensure_index(0);
        // Bucket for `a` holds 2 tuples; the residual filter on col 1
        // rejects one — both were examined.
        let pattern = vec![Some(p("a")), Some(p("c"))];
        let mut it = r.select(&pattern);
        assert_eq!(it.by_ref().count(), 1);
        assert_eq!(it.examined(), 2);
        // A full scan examines everything.
        let all = vec![None, Some(p("zz"))];
        let mut it = r.select(&all);
        assert_eq!(it.by_ref().count(), 0);
        assert_eq!(it.examined(), 3);
    }

    #[test]
    fn params_collected() {
        let r = rel();
        let names: Vec<String> = r.params().iter().map(|q| q.name()).collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn deterministic_iteration() {
        let r = rel();
        let order1: Vec<Tuple> = r.iter().cloned().collect();
        let r2 = rel();
        let order2: Vec<Tuple> = r2.iter().cloned().collect();
        assert_eq!(order1, order2);
    }

    #[test]
    fn from_iterator() {
        let r: Relation = vec![vec![p("a")], vec![p("b")]].into_iter().collect();
        assert_eq!(r.arity(), 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn empty_matches_iterator() {
        assert_eq!(Matches::empty().count(), 0);
    }
}
