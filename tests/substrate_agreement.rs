//! Cross-substrate validation: on definite (Datalog-expressible)
//! databases, three independent engines must agree atom for atom —
//!
//! 1. the grounding+SAT theorem prover (`epilog-prover`),
//! 2. bottom-up semi-naive Datalog evaluation (`epilog-datalog`),
//! 3. top-down SLDNF resolution (`epilog-datalog::sld`).
//!
//! For definite programs the perfect model is the minimal Herbrand model
//! and coincides with first-order entailment of atoms — so any divergence
//! is a bug in one of the three. This is the repository's strongest
//! internal consistency check, run over randomized programs.

use epilog::datalog::{Program, SldEngine};
use epilog::prelude::*;
use epilog::syntax::formula::Atom;
use proptest::prelude::*;

const PARAMS: [&str; 3] = ["a", "b", "c"];

fn random_definite_program() -> impl Strategy<Value = String> {
    let fact = (0..2usize, 0..PARAMS.len(), 0..PARAMS.len()).prop_map(|(pr, x, y)| {
        if pr == 0 {
            format!("e({}, {})", PARAMS[x], PARAMS[y])
        } else {
            format!("p({})", PARAMS[x])
        }
    });
    let rule = prop_oneof![
        Just("forall x, y. e(x, y) -> t(x, y)".to_string()),
        Just("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)".to_string()),
        Just("forall x. p(x) -> q(x)".to_string()),
        Just("forall x, y. e(x, y) & p(x) -> q(y)".to_string()),
    ];
    (
        proptest::collection::vec(fact, 1..5),
        proptest::collection::vec(rule, 0..3),
    )
        .prop_map(|(facts, rules)| {
            let mut all = facts;
            all.extend(rules);
            all.join("\n")
        })
}

fn ground_atoms() -> Vec<Atom> {
    let mut out = Vec::new();
    for pred in ["p", "q"] {
        for a in PARAMS {
            if let Formula::Atom(at) = parse(&format!("{pred}({a})")).unwrap() {
                out.push(at);
            }
        }
    }
    for pred in ["e", "t"] {
        for a in PARAMS {
            for b in PARAMS {
                if let Formula::Atom(at) = parse(&format!("{pred}({a}, {b})")).unwrap() {
                    out.push(at);
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn three_engines_agree(src in random_definite_program()) {
        // Engine 1: the FOPCE prover over the same sentences.
        let theory = Theory::from_text(&src).unwrap();
        let prover = Prover::new(theory);
        // Engine 2: bottom-up Datalog.
        let program = Program::from_text(&src).unwrap();
        let (model, _) = program.eval().unwrap();
        // Engine 3: top-down SLDNF.
        let sld = SldEngine::new(&program);

        for atom in ground_atoms() {
            let w = Formula::Atom(atom.clone());
            let by_prover = prover.entails(&w);
            let by_bottom_up = model.contains(&atom);
            let by_sld = sld.proves(&atom);
            prop_assert_eq!(
                by_prover, by_bottom_up,
                "prover vs bottom-up on {} over\n{}", atom, src
            );
            prop_assert_eq!(
                Some(by_bottom_up), by_sld,
                "bottom-up vs SLD on {} over\n{}", atom, src
            );
        }
    }

    /// And the `demo` evaluator's open-query answers coincide with the
    /// bottom-up model's rows for each predicate.
    #[test]
    fn demo_matches_datalog_rows(src in random_definite_program()) {
        let theory = Theory::from_text(&src).unwrap();
        let prover = Prover::new(theory);
        let program = Program::from_text(&src).unwrap();
        let (model, _) = program.eval().unwrap();

        for (pred, arity) in [("p", 1usize), ("q", 1), ("t", 2)] {
            let q = if arity == 1 {
                parse(&format!("{pred}(x)")).unwrap()
            } else {
                parse(&format!("{pred}(x, y)")).unwrap()
            };
            let mut got = epilog::core::all_answers(&prover, &q).unwrap();
            got.sort();
            let pred_sym = epilog::syntax::Pred::new(pred, arity);
            let mut expect: Vec<Vec<Param>> = model
                .relation(pred_sym)
                .map(|r| r.iter().cloned().collect())
                .unwrap_or_default();
            expect.sort();
            prop_assert_eq!(got, expect, "rows differ for {} over\n{}", pred, src);
        }
    }
}
