//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! Standard architecture: two-watched-literal propagation, first-UIP
//! conflict analysis with clause learning, VSIDS variable activities with
//! phase saving, and Luby-scheduled restarts. No clause deletion — the
//! workloads this repository generates stay far below the sizes where
//! database reduction pays off.

use crate::cnf::{Cnf, Lit};

/// The outcome of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witnessing total assignment indexed by variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

const UNASSIGNED: i8 = 0;

/// The CDCL solver. Create with [`Solver::new`], run with
/// [`Solver::solve`]; a solver instance is single-shot (build a fresh one
/// per query — construction is linear in the formula).
pub struct Solver {
    num_vars: usize,
    /// All clauses, original then learned. Clause ids index this vector.
    clauses: Vec<Vec<Lit>>,
    /// `watches[l.index()]`: ids of clauses currently watching literal `l`.
    watches: Vec<Vec<usize>>,
    /// Assignment by variable: 0 unassigned, +1 true, −1 false.
    assign: Vec<i8>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Reason clause for each propagated variable.
    reason: Vec<Option<usize>>,
    /// Assignment trail, in order.
    trail: Vec<Lit>,
    /// Trail indexes where each decision level starts.
    trail_lim: Vec<usize>,
    /// Propagation queue head (index into `trail`).
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    /// Saved phase per variable.
    phase: Vec<bool>,
    /// Set when an original clause is empty (immediately unsat).
    empty_clause: bool,
    /// Unit original clauses, queued for level-0 propagation.
    units: Vec<Lit>,
    /// Statistics: number of conflicts seen (exposed for benches).
    pub conflicts: u64,
}

impl Solver {
    /// Build a solver over a CNF.
    pub fn new(cnf: &Cnf) -> Self {
        let num_vars = cnf.num_vars() as usize;
        let mut s = Solver {
            num_vars,
            clauses: Vec::with_capacity(cnf.clauses().len()),
            watches: vec![Vec::new(); num_vars * 2],
            assign: vec![UNASSIGNED; num_vars],
            level: vec![0; num_vars],
            reason: vec![None; num_vars],
            trail: Vec::with_capacity(num_vars),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            phase: vec![false; num_vars],
            empty_clause: false,
            units: Vec::new(),
            conflicts: 0,
        };
        for c in cnf.clauses() {
            s.add_clause(c.clone());
        }
        s
    }

    fn add_clause(&mut self, c: Vec<Lit>) {
        match c.len() {
            0 => self.empty_clause = true,
            1 => self.units.push(c[0]),
            _ => {
                let id = self.clauses.len();
                self.watches[c[0].index()].push(id);
                self.watches[c[1].index()].push(id);
                self.clauses.push(c);
            }
        }
    }

    fn value(&self, l: Lit) -> i8 {
        let a = self.assign[l.var() as usize];
        if l.is_pos() {
            a
        } else {
            -a
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) -> bool {
        match self.value(l) {
            1 => true,
            -1 => false,
            _ => {
                let v = l.var() as usize;
                self.assign[v] = if l.is_pos() { 1 } else { -1 };
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Propagate until fixpoint; returns the id of a conflicting clause.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;
            let fl = l.negate(); // literals watching `fl` just became false
            let mut ws = std::mem::take(&mut self.watches[fl.index()]);
            let mut i = 0;
            let mut conflict = None;
            'outer: while i < ws.len() {
                let ci = ws[i];
                // Make sure the false literal sits at position 1.
                if self.clauses[ci][0] == fl {
                    self.clauses[ci].swap(0, 1);
                }
                let first = self.clauses[ci][0];
                if self.value(first) == 1 {
                    i += 1;
                    continue; // clause already satisfied
                }
                // Look for a non-false literal to watch instead.
                for k in 2..self.clauses[ci].len() {
                    if self.value(self.clauses[ci][k]) != -1 {
                        self.clauses[ci].swap(1, k);
                        let nw = self.clauses[ci][1];
                        self.watches[nw.index()].push(ci);
                        ws.swap_remove(i);
                        continue 'outer;
                    }
                }
                // No replacement: clause is unit (first) or conflicting.
                if self.value(first) == -1 {
                    conflict = Some(ci);
                    break;
                }
                let ok = self.enqueue(first, Some(ci));
                debug_assert!(ok, "enqueue of unit literal cannot fail here");
                i += 1;
            }
            self.watches[fl.index()] = ws;
            if let Some(ci) = conflict {
                self.qhead = self.trail.len();
                return Some(ci);
            }
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: usize) -> (Vec<Lit>, u32) {
        let current = self.decision_level();
        let mut seen = vec![false; self.num_vars];
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0u32;
        let mut idx = self.trail.len();
        let mut p: Option<Lit> = None;

        loop {
            let skip = usize::from(p.is_some()); // reason clauses: clause[0] == p
            for k in skip..self.clauses[confl].len() {
                let q = self.clauses[confl][k];
                let v = q.var() as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(v);
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                idx -= 1;
                if seen[self.trail[idx].var() as usize] {
                    break;
                }
            }
            let pl = self.trail[idx];
            counter -= 1;
            if counter == 0 {
                p = Some(pl);
                break;
            }
            confl =
                self.reason[pl.var() as usize].expect("non-decision literal must have a reason");
            p = Some(pl);
        }

        let uip = p.expect("loop sets p before breaking").negate();
        let mut clause = Vec::with_capacity(learnt.len() + 1);
        clause.push(uip);
        clause.extend(learnt);

        // Backjump to the second-highest level in the clause; put a literal
        // of that level in watch position 1.
        let mut bl = 0;
        let mut pos = 0;
        for (k, l) in clause.iter().enumerate().skip(1) {
            let lv = self.level[l.var() as usize];
            if lv > bl {
                bl = lv;
                pos = k;
            }
        }
        if pos != 0 {
            clause.swap(1, pos);
        }
        (clause, bl)
    }

    fn backtrack(&mut self, to_level: u32) {
        while self.decision_level() > to_level {
            let start = self.trail_lim.pop().expect("level > 0 implies a limit");
            for l in self.trail.drain(start..) {
                let v = l.var() as usize;
                self.phase[v] = l.is_pos();
                self.assign[v] = UNASSIGNED;
                self.reason[v] = None;
            }
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<usize> = None;
        for v in 0..self.num_vars {
            if self.assign[v] == UNASSIGNED
                && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        best.map(|v| {
            if self.phase[v] {
                Lit::pos(v as u32)
            } else {
                Lit::neg(v as u32)
            }
        })
    }

    /// Run the CDCL loop to completion.
    pub fn solve(&mut self) -> SatResult {
        if self.empty_clause {
            return SatResult::Unsat;
        }
        for &u in &self.units.clone() {
            if !self.enqueue(u, None) {
                return SatResult::Unsat;
            }
        }
        let mut restart_count = 0u32;
        let mut conflicts_since_restart = 0u64;

        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    return SatResult::Unsat;
                }
                let (clause, bl) = self.analyze(confl);
                self.backtrack(bl);
                let assert_lit = clause[0];
                let reason = if clause.len() == 1 {
                    None
                } else {
                    let id = self.clauses.len();
                    self.watches[clause[0].index()].push(id);
                    self.watches[clause[1].index()].push(id);
                    self.clauses.push(clause);
                    Some(id)
                };
                let ok = self.enqueue(assert_lit, reason);
                debug_assert!(ok, "asserting literal must be enqueueable after backjump");
                self.var_inc /= 0.95;
            } else if conflicts_since_restart >= 64 * u64::from(luby(restart_count)) {
                restart_count += 1;
                conflicts_since_restart = 0;
                self.backtrack(0);
            } else {
                match self.decide() {
                    None => {
                        // Total assignment, no conflict: a model.
                        let model = self.assign.iter().map(|&a| a == 1).collect::<Vec<bool>>();
                        return SatResult::Sat(model);
                    }
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(l, None);
                        debug_assert!(ok, "decision variable was unassigned");
                    }
                }
            }
        }
    }

    /// Enumerate models of `cnf`, projected onto the first `project`
    /// variables (the "real" atom variables, as opposed to Tseitin
    /// auxiliaries). Returns the distinct projected models, up to `limit`,
    /// together with a flag saying whether enumeration was exhaustive.
    ///
    /// Each found model is excluded with a blocking clause over the
    /// projection and the solver is re-run; complexity is `limit` full
    /// solves, which is fine at the scales of the semantic oracle.
    pub fn enumerate(cnf: &Cnf, project: u32, limit: usize) -> (Vec<Vec<bool>>, bool) {
        assert!(
            project <= cnf.num_vars(),
            "projection exceeds variable count"
        );
        let mut blocked = cnf.clone();
        let mut models = Vec::new();
        while models.len() < limit {
            match Solver::new(&blocked).solve() {
                SatResult::Unsat => return (models, true),
                SatResult::Sat(m) => {
                    let proj: Vec<bool> = m[..project as usize].to_vec();
                    let blocking: Vec<Lit> = proj
                        .iter()
                        .enumerate()
                        .map(|(v, &b)| {
                            let v = v as u32;
                            if b {
                                Lit::neg(v)
                            } else {
                                Lit::pos(v)
                            }
                        })
                        .collect();
                    blocked.add_clause(&blocking);
                    models.push(proj);
                    if project == 0 {
                        // Projection is trivial; one (empty) model is all
                        // there is.
                        return (models, true);
                    }
                }
            }
        }
        // Check whether anything is left.
        let exhausted = matches!(Solver::new(&blocked).solve(), SatResult::Unsat);
        (models, exhausted)
    }
}

/// The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
/// (`luby(0)` is the first element).
fn luby(i: u32) -> u32 {
    // Standard recurrence on 1-based index n: if n = 2^k − 1 the value is
    // 2^(k−1); otherwise recurse on n − (2^(k−1) − 1) where k is maximal
    // with 2^(k−1) − 1 < n.
    let mut n = i + 1;
    loop {
        // Smallest k with 2^k − 1 >= n.
        let mut k = 1u32;
        while (1u32 << k) - 1 < n {
            k += 1;
        }
        if (1u32 << k) - 1 == n {
            return 1 << (k - 1);
        }
        n -= (1u32 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;

    fn cnf_of(num_vars: u32, clauses: &[&[i32]]) -> Cnf {
        // DIMACS-ish: positive k = Lit::pos(k-1), negative = neg.
        let mut cnf = Cnf::new();
        cnf.reserve_vars(num_vars);
        for c in clauses {
            let lits: Vec<Lit> = c
                .iter()
                .map(|&k| {
                    let v = k.unsigned_abs() - 1;
                    if k > 0 {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    }
                })
                .collect();
            cnf.add_clause(&lits);
        }
        cnf
    }

    fn check_model(cnf: &Cnf, m: &[bool]) {
        for c in cnf.clauses() {
            assert!(
                c.iter().any(|l| if l.is_pos() {
                    m[l.var() as usize]
                } else {
                    !m[l.var() as usize]
                }),
                "model violates clause {c:?}"
            );
        }
    }

    #[test]
    fn trivial_cases() {
        let cnf = cnf_of(1, &[]);
        assert!(Solver::new(&cnf).solve().is_sat());
        let cnf = cnf_of(1, &[&[1], &[-1]]);
        assert_eq!(Solver::new(&cnf).solve(), SatResult::Unsat);
        let mut cnf = Cnf::new();
        cnf.add_clause(&[]); // empty clause
        assert_eq!(Solver::new(&cnf).solve(), SatResult::Unsat);
    }

    #[test]
    fn simple_sat() {
        let cnf = cnf_of(3, &[&[1, 2], &[-1, 3], &[-2, -3], &[2, 3]]);
        match Solver::new(&cnf).solve() {
            SatResult::Sat(m) => check_model(&cnf, &m),
            SatResult::Unsat => panic!("satisfiable instance reported unsat"),
        }
    }

    #[test]
    fn chain_of_implications_unsat() {
        // x1, x1→x2, …, x9→x10, ¬x10
        let mut clauses: Vec<Vec<i32>> = vec![vec![1]];
        for i in 1..10 {
            clauses.push(vec![-i, i + 1]);
        }
        clauses.push(vec![-10]);
        let refs: Vec<&[i32]> = clauses.iter().map(Vec::as_slice).collect();
        let cnf = cnf_of(10, &refs);
        assert_eq!(Solver::new(&cnf).solve(), SatResult::Unsat);
    }

    /// Pigeonhole principle PHP(n+1, n): unsatisfiable, requires real
    /// conflict analysis to finish quickly.
    fn pigeonhole(holes: u32) -> Cnf {
        let pigeons = holes + 1;
        let mut cnf = Cnf::new();
        cnf.reserve_vars(pigeons * holes);
        let v = |p: u32, h: u32| p * holes + h;
        // Every pigeon in some hole.
        for p in 0..pigeons {
            let c: Vec<Lit> = (0..holes).map(|h| Lit::pos(v(p, h))).collect();
            cnf.add_clause(&c);
        }
        // No two pigeons share a hole.
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    cnf.add_clause(&[Lit::neg(v(p1, h)), Lit::neg(v(p2, h))]);
                }
            }
        }
        cnf
    }

    #[test]
    fn pigeonhole_unsat() {
        for holes in 2..=6 {
            let cnf = pigeonhole(holes);
            assert_eq!(Solver::new(&cnf).solve(), SatResult::Unsat, "PHP({holes})");
        }
    }

    #[test]
    fn satisfiable_assignment_verified() {
        // A slightly larger random-ish satisfiable instance.
        let cnf = cnf_of(
            6,
            &[
                &[1, -2, 3],
                &[-1, 2],
                &[2, 4, -5],
                &[-3, -4],
                &[5, 6],
                &[-6, 1],
                &[-2, -6, 4],
            ],
        );
        match Solver::new(&cnf).solve() {
            SatResult::Sat(m) => check_model(&cnf, &m),
            SatResult::Unsat => panic!("satisfiable instance reported unsat"),
        }
    }

    #[test]
    fn enumerate_all_models() {
        // x0 ∨ x1 over 2 vars: 3 models.
        let cnf = cnf_of(2, &[&[1, 2]]);
        let (models, complete) = Solver::enumerate(&cnf, 2, 10);
        assert!(complete);
        assert_eq!(models.len(), 3);
    }

    #[test]
    fn enumerate_respects_limit() {
        let cnf = cnf_of(3, &[]); // 8 models
        let (models, complete) = Solver::enumerate(&cnf, 3, 5);
        assert_eq!(models.len(), 5);
        assert!(!complete);
    }

    #[test]
    fn enumerate_projected() {
        // x0 free, x1 forced true: projecting onto x0 gives 2 models.
        let cnf = cnf_of(2, &[&[2]]);
        let (models, complete) = Solver::enumerate(&cnf, 1, 10);
        assert!(complete);
        assert_eq!(models.len(), 2);
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u32> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }
}
