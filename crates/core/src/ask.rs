//! Levesque-style evaluation of arbitrary KFOPCE queries.
//!
//! §5.1 recalls Levesque's result that *all* KFOPCE queries can be soundly
//! and completely evaluated using only first-order theorem proving
//! (although "his method suffers from serious computational problems" —
//! which is why the paper develops `demo` for the admissible fragment).
//! This module implements that reduction:
//!
//! * the truth value of a `K`-subformula in `(W, ℳ(Σ))` does not depend on
//!   `W`, so each ground `Kw` can be replaced by a truth constant once
//!   `Σ ⊨ w` is decided (recursively, innermost first);
//! * quantifiers whose scope mentions `K` ("quantifying in") range over
//!   the known individuals; we expand them over the answer domain (active
//!   domain plus query parameters) — exact for the finite-instances
//!   fragments every experiment uses, and the documented approximation
//!   otherwise;
//! * what remains is a first-order sentence, decided by `epilog-prover`.
//!
//! The result is the paper's three-valued [`Answer`]: *yes* if `Σ ⊨ q`,
//! *no* if `Σ ⊨ ¬q`, *unknown* otherwise.

use epilog_prover::Prover;
use epilog_semantics::Answer;
use epilog_syntax::{is_first_order, Formula, Param, Term, Var};
use std::collections::HashMap;

/// Answer a KFOPCE sentence query against `Σ` (Definition 2.1).
///
/// # Panics
/// Panics if `q` has free variables (bind them, or use
/// [`answers`]).
pub fn ask(prover: &Prover, q: &Formula) -> Answer {
    assert!(
        q.is_sentence(),
        "ask() takes sentence queries; use answers() for open ones"
    );
    let yes = certain(prover, q);
    let no = certain(prover, &Formula::not(q.clone()));
    Answer::from_entailments(yes, no)
}

/// All answers to an open KFOPCE query: tuples over the answer domain
/// whose substitution makes the query certain.
pub fn answers(prover: &Prover, q: &Formula) -> Vec<Vec<Param>> {
    let vars = q.free_vars();
    if vars.is_empty() {
        return if certain(prover, q) {
            vec![vec![]]
        } else {
            vec![]
        };
    }
    let domain = prover.answer_domain(q);
    let mut out = Vec::new();
    if domain.is_empty() {
        return out;
    }
    let total = domain
        .len()
        .checked_pow(vars.len() as u32)
        .expect("answer space overflow");
    for mut idx in 0..total {
        let mut tuple = vec![domain[0]; vars.len()];
        for slot in tuple.iter_mut().rev() {
            *slot = domain[idx % domain.len()];
            idx /= domain.len();
        }
        if certain(prover, &q.bind_free(&tuple)) {
            out.push(tuple);
        }
    }
    out
}

/// `Σ ⊨ q` for a KFOPCE sentence: reduce `K`-subformulas to constants,
/// then decide the first-order remainder by entailment.
pub fn certain(prover: &Prover, q: &Formula) -> bool {
    // Quantifiers into modal contexts range over *all* parameters, not
    // just the mentioned ones; spare parameters (about which the database
    // knows nothing) represent the unmentioned individuals. One spare per
    // level of modal-scoped quantifier nesting makes depth-≤3 expansion
    // exact; deeper nesting keeps the last spare (documented
    // approximation).
    let spares: Vec<Param> = (0..modal_quantifier_depth(q).clamp(1, 3))
        .map(|i| Param::new(&format!("__spare{i}")))
        .collect();
    let reduced = reduce_with(prover, q, &HashMap::new(), &spares);
    prover.entails(&reduced)
}

/// Nesting depth of quantifiers whose scope mentions `K`.
fn modal_quantifier_depth(w: &Formula) -> usize {
    match w {
        Formula::Atom(_) | Formula::Eq(_, _) => 0,
        Formula::Not(a) | Formula::Know(a) => modal_quantifier_depth(a),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            modal_quantifier_depth(a).max(modal_quantifier_depth(b))
        }
        Formula::Forall(_, a) | Formula::Exists(_, a) => {
            let inner = modal_quantifier_depth(a);
            if is_first_order(a) {
                inner
            } else {
                inner + 1
            }
        }
    }
}

/// Replace every `K`-subformula by a truth constant, expanding quantifiers
/// that scope over `K` across the answer domain extended with the spare
/// parameters. Returns a FOPCE formula.
fn reduce_with(
    prover: &Prover,
    q: &Formula,
    env: &HashMap<Var, Param>,
    spares: &[Param],
) -> Formula {
    if is_first_order(q) {
        return apply(q, env);
    }
    match q {
        Formula::Know(w) => {
            // Truth of Kw is world-independent: decide Σ ⊨ w recursively.
            let inner = reduce_with(prover, w, env, spares);
            constant(prover.entails(&inner))
        }
        Formula::Not(a) => Formula::not(reduce_with(prover, a, env, spares)),
        Formula::And(a, b) => Formula::and(
            reduce_with(prover, a, env, spares),
            reduce_with(prover, b, env, spares),
        ),
        Formula::Or(a, b) => Formula::or(
            reduce_with(prover, a, env, spares),
            reduce_with(prover, b, env, spares),
        ),
        Formula::Implies(a, b) => Formula::implies(
            reduce_with(prover, a, env, spares),
            reduce_with(prover, b, env, spares),
        ),
        Formula::Iff(a, b) => Formula::iff(
            reduce_with(prover, a, env, spares),
            reduce_with(prover, b, env, spares),
        ),
        Formula::Exists(x, body) => {
            // Quantifying into a modal context: expand over the known
            // individuals plus the spares.
            let disjuncts: Vec<Formula> = expansion_domain(prover, q, spares)
                .iter()
                .map(|p| {
                    let mut env2 = env.clone();
                    env2.insert(*x, *p);
                    reduce_with(prover, body, &env2, spares)
                })
                .collect();
            Formula::or_all(disjuncts).unwrap_or_else(|| constant(false))
        }
        Formula::Forall(x, body) => {
            let conjuncts: Vec<Formula> = expansion_domain(prover, q, spares)
                .iter()
                .map(|p| {
                    let mut env2 = env.clone();
                    env2.insert(*x, *p);
                    reduce_with(prover, body, &env2, spares)
                })
                .collect();
            Formula::and_all(conjuncts).unwrap_or_else(|| constant(true))
        }
        Formula::Atom(_) | Formula::Eq(_, _) => apply(q, env),
    }
}

fn expansion_domain(prover: &Prover, q: &Formula, spares: &[Param]) -> Vec<Param> {
    let mut domain = prover.answer_domain(q);
    for s in spares {
        if !domain.contains(s) {
            domain.push(*s);
        }
    }
    domain
}

/// A FOPCE truth constant: `c₀ = c₀` for true, its negation for false.
fn constant(b: bool) -> Formula {
    let c = Param::new("c0");
    if b {
        Formula::eq(c, c)
    } else {
        Formula::not(Formula::eq(c, c))
    }
}

fn apply(w: &Formula, env: &HashMap<Var, Param>) -> Formula {
    if env.is_empty() {
        return w.clone();
    }
    let map: HashMap<Var, Term> = env.iter().map(|(v, p)| (*v, Term::Param(*p))).collect();
    w.subst(&map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::{parse, Theory};

    fn teach() -> Prover {
        Prover::new(
            Theory::from_text(
                "Teach(John, Math)
                 exists x. Teach(x, CS)
                 Teach(Mary, Psych) | Teach(Sue, Psych)",
            )
            .unwrap(),
        )
    }

    fn a(p: &Prover, q: &str) -> Answer {
        ask(p, &parse(q).unwrap())
    }

    #[test]
    fn section1_full_query_table() {
        // The complete table of §1, including the non-admissible last
        // query that demo cannot evaluate.
        let p = teach();
        assert_eq!(a(&p, "Teach(Mary, CS)"), Answer::Unknown);
        assert_eq!(a(&p, "K Teach(Mary, CS)"), Answer::No);
        assert_eq!(a(&p, "K ~Teach(Mary, CS)"), Answer::No);
        assert_eq!(a(&p, "exists x. K Teach(John, x)"), Answer::Yes);
        assert_eq!(a(&p, "exists x. K Teach(x, CS)"), Answer::No);
        assert_eq!(a(&p, "K (exists x. Teach(x, CS))"), Answer::Yes);
        assert_eq!(a(&p, "exists x. Teach(x, Psych)"), Answer::Yes);
        assert_eq!(a(&p, "exists x. K Teach(x, Psych)"), Answer::No);
        assert_eq!(
            a(&p, "exists x. Teach(x, Psych) & ~Teach(x, CS)"),
            Answer::Unknown
        );
        assert_eq!(
            a(&p, "exists x. Teach(x, Psych) & ~K Teach(x, CS)"),
            Answer::Yes
        );
    }

    #[test]
    fn p_or_q_intro() {
        let p = Prover::new(Theory::from_text("p | q").unwrap());
        assert_eq!(a(&p, "p"), Answer::Unknown);
        assert_eq!(a(&p, "K p"), Answer::No);
        assert_eq!(a(&p, "K p | K ~p"), Answer::No);
        assert_eq!(a(&p, "K (p | q)"), Answer::Yes);
    }

    #[test]
    fn iterated_modalities() {
        let p = Prover::new(Theory::from_text("p | q").unwrap());
        assert_eq!(a(&p, "K K (p | q)"), Answer::Yes);
        assert_eq!(a(&p, "K ~K p"), Answer::Yes, "negative introspection");
        assert_eq!(a(&p, "~K K p"), Answer::Yes);
    }

    #[test]
    fn open_answers() {
        let p = teach();
        // Known courses of John.
        let got = answers(&p, &parse("K Teach(John, x)").unwrap());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0][0].name(), "Math");
        // The last §1 query, open form: who teaches Psych but is not known
        // to teach CS? Mary and Sue are *not* individually certain — the
        // sentence form was yes, but no single binding is.
        let got = answers(&p, &parse("Teach(x, Psych) & ~K Teach(x, CS)").unwrap());
        assert!(got.is_empty());
    }

    #[test]
    fn certain_matches_demo_on_admissible() {
        use crate::demo::{demo_sentence, DemoOutcome};
        let p = teach();
        for q in [
            "K Teach(John, Math)",
            "K Teach(Mary, CS)",
            "exists x. K Teach(John, x)",
            "exists x. K Teach(x, CS)",
            "K (exists x. Teach(x, CS))",
            "~K Teach(Mary, Psych)",
        ] {
            let w = parse(q).unwrap();
            let via_demo = demo_sentence(&p, &w).unwrap() == DemoOutcome::Succeeds;
            let via_ask = certain(&p, &w);
            assert_eq!(via_demo, via_ask, "divergence on {q}");
        }
    }

    #[test]
    fn unknown_individuals_example() {
        // The Teach/null-value distinctions of §1 again but through ask().
        let p = teach();
        // Someone teaches Psych — Mary or Sue — but there is no known one.
        assert_eq!(a(&p, "exists x. Teach(x, Psych)"), Answer::Yes);
        assert_eq!(a(&p, "exists x. K Teach(x, Psych)"), Answer::No);
    }

    #[test]
    #[should_panic(expected = "sentence")]
    fn open_query_rejected_by_ask() {
        let p = teach();
        let _ = ask(&p, &parse("Teach(x, CS)").unwrap());
    }
}
