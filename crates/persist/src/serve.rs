//! `ServingDb`: the concurrent serving layer — MVCC snapshot reads plus
//! a single-writer thread doing durable group commit.
//!
//! # Architecture
//!
//! A knowledge base is queried far more often than it is revised, so the
//! serving layer splits the two paths completely:
//!
//! * **Readers** call [`ServingDb::snapshot`] and get an
//!   [`epilog_core::ReadHandle`] — an `Arc` clone of the immutable
//!   committed state (theory, constraints, materialized model, compiled
//!   plans). Queries run on the handle with no locks and no coordination
//!   with commits in flight; a snapshot pins its state until dropped.
//! * **The writer** is one thread (spawned through
//!   `threadpool::spawn_named`) draining a bounded commit queue. It
//!   owns the working [`EpistemicDb`] and the [`Wal`] outright, so
//!   validation runs against the true head state with no locking at all.
//!
//! # Group commit
//!
//! The writer drains whatever has queued up (up to a batch cap) and
//! processes the batch as one durability unit: each transaction is
//! validated via [`Transaction::prepare`] and its effective delta
//! appended to the log (rejected transactions are answered immediately
//! and never logged), then the whole batch is forced with **one**
//! `fdatasync`, the new state is published with a pointer swap, and only
//! then are the callers' completion handles fed their [`CommitReceipt`]s
//! — an acknowledged commit is both durable and visible to subsequent
//! snapshots. This generalizes [`FsyncPolicy::Batch`]'s every-`n`
//! amortization into real cross-transaction batching: under load, many
//! transactions share each fsync ([`ServingDb::stats`] reports the
//! ratio), while an idle writer degenerates to one fsync per commit —
//! the same durability as [`FsyncPolicy::Always`] with none of the
//! batch policies' crash-loss window.
//!
//! The on-disk format is unchanged: a directory served by `ServingDb`
//! is a `DurableDb` directory, and either API can recover it.
//!
//! # Degraded mode and healing
//!
//! An I/O failure on the commit path (append or batch fsync — injectable
//! via [`FaultInjector`](crate::FaultInjector), real on a failing disk)
//! never panics the writer. The failed batch's handles get
//! [`ServeError::Io`], the log and working state are rolled back to the
//! last durable LSN (so nothing un-acknowledged can survive a later
//! crash), and when the rollback itself cannot be trusted the writer
//! enters **degraded read-only mode**: snapshots keep answering at the
//! durable head, commits are rejected fast with [`ServeError::Degraded`],
//! and [`ServingDb::stats`] reports the state. [`ServingDb::heal`]
//! truncates any un-acknowledged log bytes, re-runs ordinary recovery,
//! probes the disk, and resumes write service — or leaves the database
//! degraded (and heal retryable) if the storage is still failing.

use crate::durable::{DurableDb, PersistError, RecoveryReport};
use crate::wal::{FsyncPolicy, Wal, WalOp, WAL_FILE};
use epilog_core::db::DbError;
use epilog_core::{CommitReport, CommittedState, EpistemicDb, ReadHandle, StateCell, Transaction};
use epilog_syntax::{Formula, Theory};
use std::fmt;
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for a [`ServingDb`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Commit-queue capacity; enqueueing callers block (backpressure)
    /// when the writer falls this far behind.
    pub queue_depth: usize,
    /// Most transactions the writer folds into one durability unit
    /// (one WAL sync + one publish).
    pub max_batch: usize,
    /// Enable derivation tracking on the served database: the writer
    /// maintains a provenance support table across commits, snapshots
    /// expose [`EpistemicDb::why`] proof trees, and constraint
    /// rejections carry ground witnesses with derivations. No-op when
    /// the theory is not a definite program. Off by default — untraced
    /// fixpoints pay nothing for the feature.
    pub provenance: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            queue_depth: 128,
            max_batch: 64,
            provenance: false,
        }
    }
}

/// Errors surfaced through a [`CommitHandle`].
#[derive(Debug)]
pub enum ServeError {
    /// The database refused the transaction (constraint violation,
    /// ill-formed sentence, …); state and log are unchanged. Carries
    /// the head LSN at rejection time, so a rejection can be reported
    /// against the exact state it was validated on.
    Db(DbError, u64),
    /// The log append or sync failed; the transaction was not applied.
    Io(String),
    /// The writer is in degraded read-only mode after an I/O failure:
    /// snapshots keep answering, commits are rejected fast until
    /// [`ServingDb::heal`] succeeds. Carries the reason the mode was
    /// entered. Transient by design — a retry after a heal can succeed.
    Degraded(String),
    /// The serving database shut down before answering; says how the
    /// writer exited.
    Closed(WriterExit),
}

impl ServeError {
    /// Whether a retry could succeed without the caller changing
    /// anything — true for [`ServeError::Degraded`] (after a heal) and
    /// [`ServeError::Io`] (the fault may be transient), never for a
    /// database rejection or a shutdown.
    pub fn is_transient(&self) -> bool {
        matches!(self, ServeError::Io(_) | ServeError::Degraded(_))
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Db(e, _) => write!(f, "{e}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Degraded(why) => write!(f, "degraded (read-only): {why}"),
            ServeError::Closed(exit) => write!(f, "serving database is shut down ({exit})"),
        }
    }
}

impl std::error::Error for ServeError {}

/// How the writer thread ended — carried by [`ServeError::Closed`] so
/// "shut down" also says *which way* it went down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriterExit {
    /// Drained its queue and exited normally (shutdown or drop).
    Clean,
    /// Exited while in degraded read-only mode — the log may hold less
    /// than the callers were told *failed*, never less than they were
    /// told succeeded.
    Degraded,
    /// Died by panic; anything still queued was dropped unanswered.
    Panicked,
    /// Not exited (the request never reached the queue) or the fate is
    /// otherwise undeterminable.
    Unknown,
}

impl fmt::Display for WriterExit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriterExit::Clean => write!(f, "writer exited cleanly"),
            WriterExit::Degraded => write!(f, "writer exited in degraded mode"),
            WriterExit::Panicked => write!(f, "writer panicked"),
            WriterExit::Unknown => write!(f, "writer state unknown"),
        }
    }
}

/// One queued update operation.
#[derive(Debug, Clone)]
pub enum TxOp {
    /// Add a sentence to the theory.
    Assert(Formula),
    /// Remove a sentence from the theory.
    Retract(Formula),
}

/// What an acknowledged commit got: its WAL position and the usual
/// commit report. By the time the handle yields a receipt the record is
/// fsynced and the state published — a snapshot taken afterwards is
/// guaranteed to reflect it.
#[derive(Debug)]
pub struct CommitReceipt {
    /// LSN of the commit's log record (unchanged head LSN for no-ops).
    pub lsn: u64,
    /// The core engine's commit report (deltas, model update, checks).
    pub report: CommitReport,
}

/// Completion handle for a queued commit.
#[must_use = "a commit is not acknowledged until the handle is waited on"]
pub struct CommitHandle {
    rx: Receiver<Result<CommitReceipt, ServeError>>,
    metrics: Arc<Metrics>,
}

impl CommitHandle {
    /// Block until the writer answers (durable + published, or
    /// rejected).
    pub fn wait(self) -> Result<CommitReceipt, ServeError> {
        match self.rx.recv() {
            Ok(answer) => answer,
            Err(_) => Err(self.metrics.closed()),
        }
    }

    /// [`CommitHandle::wait`], but give up after `timeout`: `Err` hands
    /// the still-pending handle back so the caller can keep waiting (or
    /// drop it — the commit itself is unaffected either way; a queued
    /// transaction cannot be recalled).
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<CommitReceipt, ServeError>, CommitHandle> {
        match self.rx.recv_timeout(timeout) {
            Ok(answer) => Ok(answer),
            Err(RecvTimeoutError::Disconnected) => {
                let closed = self.metrics.closed();
                Ok(Err(closed))
            }
            Err(RecvTimeoutError::Timeout) => Err(self),
        }
    }
}

/// Holds the writer between batches — a deterministic way for benches
/// and tests to force a group: take the gate, enqueue transactions,
/// then [`WriterGate::open`]; everything enqueued meanwhile lands in
/// one batch (up to [`ServeOptions::max_batch`]).
#[must_use = "dropping the gate opens it immediately"]
pub struct WriterGate {
    _tx: SyncSender<()>,
}

impl WriterGate {
    /// Release the writer.
    pub fn open(self) {}
}

/// Writer-side counters, snapshotted by [`ServingDb::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Accepted (durable, published) transactions.
    pub commits: u64,
    /// Rejected transactions (constraint violations etc.).
    pub rejected: u64,
    /// Batches published.
    pub batches: u64,
    /// WAL syncs issued — `commits / fsyncs` is the group-commit
    /// amortization ratio.
    pub fsyncs: u64,
    /// I/O failures the writer observed (and survived) on the commit
    /// path.
    pub io_errors: u64,
    /// Successful [`ServingDb::heal`]s out of degraded mode.
    pub heals: u64,
    /// Whether the writer is in degraded read-only mode right now.
    pub degraded: bool,
}

// Writer-exit codes in `Metrics::exit`; 0 (the default) = still running.
const EXIT_CLEAN: u8 = 1;
const EXIT_PANICKED: u8 = 2;

#[derive(Default)]
struct Metrics {
    commits: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    fsyncs: AtomicU64,
    io_errors: AtomicU64,
    heals: AtomicU64,
    degraded: AtomicBool,
    exit: AtomicU8,
}

impl Metrics {
    fn writer_exit(&self) -> WriterExit {
        match self.exit.load(Ordering::Relaxed) {
            EXIT_PANICKED => WriterExit::Panicked,
            _ if self.degraded.load(Ordering::Relaxed) => WriterExit::Degraded,
            EXIT_CLEAN => WriterExit::Clean,
            _ => WriterExit::Unknown,
        }
    }

    fn closed(&self) -> ServeError {
        ServeError::Closed(self.writer_exit())
    }
}

/// Stamps how the writer thread ended, whichever way control leaves it.
struct ExitStamp(Arc<Metrics>);

impl Drop for ExitStamp {
    fn drop(&mut self) {
        let code = if std::thread::panicking() {
            EXIT_PANICKED
        } else {
            EXIT_CLEAN
        };
        self.0.exit.store(code, Ordering::Relaxed);
    }
}

enum Request {
    Commit {
        ops: Vec<TxOp>,
        reply: SyncSender<Result<CommitReceipt, ServeError>>,
    },
    Constraint {
        ic: Formula,
        reply: SyncSender<Result<u64, ServeError>>,
    },
    Flush(SyncSender<u64>),
    Gate(Receiver<()>),
    Heal(SyncSender<Result<u64, ServeError>>),
}

/// A durable [`EpistemicDb`] served concurrently: any number of
/// lock-free snapshot readers, one group-committing writer thread.
///
/// See the [module docs](self) for the architecture. All methods take
/// `&self`; a `ServingDb` is typically wrapped in an `Arc` and shared
/// across reader/session threads.
pub struct ServingDb {
    head: Arc<StateCell>,
    queue: Option<SyncSender<Request>>,
    writer: Option<JoinHandle<()>>,
    metrics: Arc<Metrics>,
    dir: PathBuf,
}

impl ServingDb {
    /// Initialize a fresh durable database at `dir` and start serving
    /// it. Fails like [`DurableDb::create`] if `dir` already holds one.
    pub fn create(
        dir: impl AsRef<Path>,
        theory: Theory,
        opts: ServeOptions,
    ) -> Result<ServingDb, PersistError> {
        let durable = DurableDb::create(dir, theory, FsyncPolicy::Never)?;
        Ok(ServingDb::start(durable, opts))
    }

    /// Recover the database at `dir` (snapshot + log replay) and start
    /// serving it.
    pub fn recover(
        dir: impl AsRef<Path>,
        opts: ServeOptions,
    ) -> Result<(ServingDb, RecoveryReport), PersistError> {
        let (durable, report) = DurableDb::recover(dir, FsyncPolicy::Never)?;
        Ok((ServingDb::start(durable, opts), report))
    }

    /// Recover `dir` if it holds a database, otherwise create one with
    /// `theory` — the server binary's entry point.
    pub fn open(
        dir: impl AsRef<Path>,
        theory: Theory,
        opts: ServeOptions,
    ) -> Result<(ServingDb, Option<RecoveryReport>), PersistError> {
        if dir.as_ref().join(WAL_FILE).exists() {
            let (db, report) = ServingDb::recover(dir, opts)?;
            Ok((db, Some(report)))
        } else {
            Ok((ServingDb::create(dir, theory, opts)?, None))
        }
    }

    /// Wrap an already-recovered [`DurableDb`] and start the writer.
    /// The handed-in fsync policy is irrelevant from here on: the
    /// writer syncs explicitly, once per batch. A
    /// [`FaultInjector`](crate::FaultInjector) installed on the
    /// `DurableDb` rides along into the writer.
    pub fn start(durable: DurableDb, opts: ServeOptions) -> ServingDb {
        let (mut db, wal, dir) = durable.into_parts();
        if opts.provenance {
            // Trace before the first publication so even the initial
            // snapshot answers `why`. Recovery may already have adopted
            // a table from the snapshot's `[supports]` section; this is
            // then an idempotent no-op.
            db.enable_provenance();
        }
        let head = Arc::new(StateCell::new(db.clone(), wal.last_lsn()));
        let metrics = Arc::new(Metrics::default());
        let (tx, rx) = sync_channel(opts.queue_depth.max(1));
        let writer = {
            let head = Arc::clone(&head);
            let metrics = Arc::clone(&metrics);
            let max_batch = opts.max_batch.max(1);
            let dir = dir.clone();
            let provenance = opts.provenance;
            threadpool::spawn_named("epilog-commit-writer", move || {
                let _stamp = ExitStamp(Arc::clone(&metrics));
                let mut writer = Writer {
                    working: db,
                    wal,
                    dir,
                    provenance,
                    head: &head,
                    metrics: &metrics,
                    degraded: None,
                };
                writer.run(&rx, max_batch);
            })
        };
        ServingDb {
            head,
            queue: Some(tx),
            writer: Some(writer),
            metrics,
            dir,
        }
    }

    /// Pin the current committed state. Never blocks on the writer: the
    /// head cell is locked only for the pointer swap itself.
    pub fn snapshot(&self) -> ReadHandle {
        self.head.snapshot()
    }

    /// LSN of the currently published state.
    pub fn head_lsn(&self) -> u64 {
        self.head.head_lsn()
    }

    /// The directory holding the log and snapshots.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Queue a transaction; blocks only if the commit queue is full.
    /// The returned handle yields the receipt once the commit is
    /// durable and published (or the rejection as soon as validation
    /// fails).
    pub fn commit(&self, ops: Vec<TxOp>) -> CommitHandle {
        let (reply, rx) = sync_channel(1);
        self.send(Request::Commit { ops, reply });
        CommitHandle {
            rx,
            metrics: Arc::clone(&self.metrics),
        }
    }

    /// [`ServingDb::commit`] and wait for the receipt.
    pub fn commit_wait(&self, ops: Vec<TxOp>) -> Result<CommitReceipt, ServeError> {
        self.commit(ops).wait()
    }

    /// Durably register an integrity constraint through the writer.
    /// Returns its LSN.
    pub fn add_constraint(&self, ic: Formula) -> Result<u64, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.send(Request::Constraint { ic, reply });
        rx.recv().unwrap_or_else(|_| Err(self.metrics.closed()))
    }

    /// Force every acknowledged commit to stable storage and return the
    /// head LSN. Acknowledged commits are already synced — this is a
    /// barrier that drains the queue ahead of it.
    pub fn flush(&self) -> Result<u64, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.send(Request::Flush(reply));
        rx.recv().map_err(|_| self.metrics.closed())
    }

    /// Attempt to leave degraded read-only mode: truncate every
    /// un-acknowledged log byte past the durable head, re-run ordinary
    /// recovery, probe the disk, and resume write service. Returns the
    /// head LSN — trivially, without touching anything, when the writer
    /// is not degraded. On error the database *stays* degraded
    /// (snapshots keep answering) and the heal can be retried once the
    /// storage behaves again.
    pub fn heal(&self) -> Result<u64, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.send(Request::Heal(reply));
        rx.recv().unwrap_or_else(|_| Err(self.metrics.closed()))
    }

    /// Whether the writer is in degraded read-only mode.
    pub fn is_degraded(&self) -> bool {
        self.metrics.degraded.load(Ordering::Relaxed)
    }

    /// Hold the writer between batches until the gate is opened — the
    /// deterministic group-formation hook ([`WriterGate`]).
    pub fn gate(&self) -> WriterGate {
        let (tx, rx) = sync_channel(1);
        self.send(Request::Gate(rx));
        WriterGate { _tx: tx }
    }

    /// Snapshot of the writer's counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            commits: self.metrics.commits.load(Ordering::Relaxed),
            rejected: self.metrics.rejected.load(Ordering::Relaxed),
            batches: self.metrics.batches.load(Ordering::Relaxed),
            fsyncs: self.metrics.fsyncs.load(Ordering::Relaxed),
            io_errors: self.metrics.io_errors.load(Ordering::Relaxed),
            heals: self.metrics.heals.load(Ordering::Relaxed),
            degraded: self.metrics.degraded.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stop accepting work, let the writer drain and
    /// acknowledge everything already queued, sync the log, and join
    /// the thread.
    pub fn shutdown(mut self) -> Result<(), PersistError> {
        self.queue = None; // disconnects the channel; the writer drains then exits
        match self.writer.take().map(JoinHandle::join) {
            Some(Err(_)) => Err(PersistError::Corrupt(
                "commit writer panicked; the log is still crash-consistent".into(),
            )),
            _ => Ok(()),
        }
    }

    fn send(&self, req: Request) {
        // A disconnected queue (shutdown raced us) surfaces as Closed
        // through the reply channel the request carried.
        if let Some(q) = &self.queue {
            let _ = q.send(req);
        }
    }
}

/// Dropping without [`ServingDb::shutdown`] still drains and joins the
/// writer (and the [`Wal`]'s own `Drop` flushes), so no queued commit
/// is silently discarded.
impl Drop for ServingDb {
    fn drop(&mut self) {
        self.queue = None;
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
    }
}

type CommitAcks = Vec<(SyncSender<Result<CommitReceipt, ServeError>>, CommitReceipt)>;
type ConstraintAcks = Vec<(SyncSender<Result<u64, ServeError>>, u64)>;

/// The writer thread's state: sole owner of the working database and
/// the log, plus the degraded-mode flag and everything a heal needs to
/// rebuild both.
struct Writer<'a> {
    working: EpistemicDb,
    wal: Wal,
    dir: PathBuf,
    provenance: bool,
    head: &'a StateCell,
    metrics: &'a Metrics,
    /// `Some(reason)` while in degraded read-only mode.
    degraded: Option<String>,
}

impl Writer<'_> {
    fn run(&mut self, rx: &Receiver<Request>, max_batch: usize) {
        // Exits when every ServingDb handle (and thus every sender) is
        // gone and the queue is drained.
        while let Ok(first) = rx.recv() {
            let mut batch = vec![first];
            while batch.len() < max_batch {
                match rx.try_recv() {
                    Ok(req) => batch.push(req),
                    Err(_) => break,
                }
            }
            self.process(batch);
        }
        let _ = self.wal.sync();
    }

    fn process(&mut self, batch: Vec<Request>) {
        // The durable boundary: every prior batch either synced or was
        // rolled back to its own boundary, so the log holds exactly the
        // acknowledged records up to this mark.
        let mark = self.wal.mark();
        let mut commit_acks: CommitAcks = Vec::new();
        let mut constraint_acks: ConstraintAcks = Vec::new();
        let mut flushes = Vec::new();
        for req in batch {
            if self.degraded.is_some() {
                self.answer_degraded(req);
                continue;
            }
            match req {
                Request::Commit { ops, reply } => {
                    self.commit(ops, reply, mark, &mut commit_acks, &mut constraint_acks);
                }
                Request::Constraint { ic, reply } => {
                    self.constraint(ic, reply, mark, &mut commit_acks, &mut constraint_acks);
                }
                Request::Flush(reply) => flushes.push(reply),
                // Hold here; opening (or dropping) the gate unblocks.
                Request::Gate(gate) => {
                    let _ = gate.recv();
                }
                // Not degraded: a heal is a successful no-op.
                Request::Heal(reply) => {
                    let _ = reply.send(Ok(self.head.head_lsn()));
                }
            }
        }

        let accepted = commit_acks.len() + constraint_acks.len();
        if self.degraded.is_none() && (accepted > 0 || !flushes.is_empty()) {
            // One fdatasync covers the whole batch. A failed sync means
            // durability cannot be promised for anything this batch
            // appended: fail the batch's handles with Io, roll the log
            // and the working state back to the durable boundary, and
            // drop to degraded read-only mode instead of serving
            // acknowledgments the disk may not honor.
            match self.wal.sync() {
                Ok(()) => {
                    self.metrics.fsyncs.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    self.metrics.io_errors.fetch_add(1, Ordering::Relaxed);
                    self.enter_degraded(
                        format!("batch fsync failed: {e}"),
                        mark,
                        &mut commit_acks,
                        &mut constraint_acks,
                    );
                }
            }
        }
        if self.degraded.is_none() && accepted > 0 {
            // Publish after durability, acknowledge after publication:
            // an acknowledged commit is visible to every later snapshot.
            self.head.publish(Arc::new(CommittedState::new(
                self.working.clone(),
                self.wal.last_lsn(),
            )));
            self.metrics.batches.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .commits
                .fetch_add(commit_acks.len() as u64, Ordering::Relaxed);
        }
        // Empty when the batch degraded: enter_degraded fails them all.
        for (reply, receipt) in commit_acks {
            let _ = reply.send(Ok(receipt));
        }
        for (reply, lsn) in constraint_acks {
            let _ = reply.send(Ok(lsn));
        }
        // Acknowledged commits are synced even when this batch failed,
        // so a degraded flush barrier holds at the durable head.
        let lsn = if self.degraded.is_some() {
            self.head.head_lsn()
        } else {
            self.wal.last_lsn()
        };
        for reply in flushes {
            let _ = reply.send(lsn);
        }
    }

    fn commit(
        &mut self,
        ops: Vec<TxOp>,
        reply: SyncSender<Result<CommitReceipt, ServeError>>,
        mark: (u64, u64),
        commit_acks: &mut CommitAcks,
        constraint_acks: &mut ConstraintAcks,
    ) {
        let mut txn: Transaction<'_> = self.working.transaction();
        for op in ops {
            txn = match op {
                TxOp::Assert(w) => txn.assert(w),
                TxOp::Retract(w) => txn.retract(w),
            };
        }
        match txn.prepare() {
            Err(e) => {
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Err(ServeError::Db(e, self.wal.last_lsn())));
            }
            Ok(p) if p.is_noop() => {
                // Nothing to log or publish: acknowledge at the batch's
                // durable boundary. NOT `wal.last_lsn()` — that may
                // count unsynced same-batch appends, and if the batch
                // fsync later fails those roll back, leaving this ack
                // claiming an LSN that never became durable.
                let receipt = CommitReceipt {
                    lsn: mark.1 - 1,
                    report: p.commit(),
                };
                let _ = reply.send(Ok(receipt));
            }
            Ok(p) => {
                let mut wal_ops = Vec::with_capacity(p.removed().len() + p.added().len());
                wal_ops.extend(p.removed().iter().cloned().map(WalOp::Retract));
                wal_ops.extend(p.added().iter().cloned().map(WalOp::Assert));
                let pre = self.wal.mark();
                match self.wal.append(&wal_ops) {
                    Ok(lsn) => {
                        let report = p.commit();
                        commit_acks.push((reply, CommitReceipt { lsn, report }));
                    }
                    Err(e) => {
                        // Log-before-apply: the prepared state is
                        // dropped unapplied; only this handle fails.
                        drop(p);
                        self.metrics.io_errors.fetch_add(1, Ordering::Relaxed);
                        let msg = e.to_string();
                        let _ = reply.send(Err(ServeError::Io(msg.clone())));
                        // The failed append may have torn the log; the
                        // batch can only continue on a clean tail.
                        if let Err(re) = self.wal.rewind(pre.0, pre.1) {
                            self.enter_degraded(
                                format!("append failed ({msg}); rewind failed ({re})"),
                                mark,
                                commit_acks,
                                constraint_acks,
                            );
                        }
                    }
                }
            }
        }
    }

    fn constraint(
        &mut self,
        ic: Formula,
        reply: SyncSender<Result<u64, ServeError>>,
        mark: (u64, u64),
        commit_acks: &mut CommitAcks,
        constraint_acks: &mut ConstraintAcks,
    ) {
        // Same compensation protocol as DurableDb: append, apply,
        // rewind the record if the state refuses it.
        let pre = self.wal.mark();
        match self.wal.append(&[WalOp::Constraint(ic.clone())]) {
            Err(e) => {
                self.metrics.io_errors.fetch_add(1, Ordering::Relaxed);
                let msg = e.to_string();
                let _ = reply.send(Err(ServeError::Io(msg.clone())));
                if let Err(re) = self.wal.rewind(pre.0, pre.1) {
                    self.enter_degraded(
                        format!("append failed ({msg}); rewind failed ({re})"),
                        mark,
                        commit_acks,
                        constraint_acks,
                    );
                }
            }
            Ok(lsn) => match self.working.add_constraint(ic) {
                Ok(()) => constraint_acks.push((reply, lsn)),
                Err(e) => {
                    self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                    match self.wal.rewind(pre.0, pre.1) {
                        Ok(()) => {
                            let _ = reply.send(Err(ServeError::Db(e, self.wal.last_lsn())));
                        }
                        Err(io) => {
                            self.metrics.io_errors.fetch_add(1, Ordering::Relaxed);
                            let msg = io.to_string();
                            let _ = reply.send(Err(ServeError::Io(msg.clone())));
                            self.enter_degraded(
                                format!("constraint rewind failed: {msg}"),
                                mark,
                                commit_acks,
                                constraint_acks,
                            );
                        }
                    }
                }
            },
        }
    }

    /// Answer a request while in degraded read-only mode: commits and
    /// constraints are rejected fast, flush holds at the durable head,
    /// gates still gate, heal attempts the repair.
    fn answer_degraded(&mut self, req: Request) {
        let reason = self.degraded.clone().unwrap_or_default();
        match req {
            Request::Commit { reply, .. } => {
                let _ = reply.send(Err(ServeError::Degraded(reason)));
            }
            Request::Constraint { reply, .. } => {
                let _ = reply.send(Err(ServeError::Degraded(reason)));
            }
            Request::Flush(reply) => {
                let _ = reply.send(self.head.head_lsn());
            }
            Request::Gate(gate) => {
                let _ = gate.recv();
            }
            Request::Heal(reply) => {
                let healed = self.try_heal();
                let _ = reply.send(healed);
            }
        }
    }

    /// Fail every pending acknowledgment of this batch with `Io`, roll
    /// the log and working state back to the durable boundary `mark`,
    /// and enter degraded read-only mode.
    ///
    /// The disk rollback matters for the durability contract: records
    /// appended by this batch are well-formed but un-acknowledged — if
    /// they survived here, a later crash would replay commits whose
    /// callers were told they failed.
    fn enter_degraded(
        &mut self,
        reason: String,
        mark: (u64, u64),
        commit_acks: &mut CommitAcks,
        constraint_acks: &mut ConstraintAcks,
    ) {
        if self.wal.rewind(mark.0, mark.1).is_err() {
            // The Wal's own handle (or its injector) is still failing;
            // truncate through a fresh handle — the operator's path,
            // deliberately not injected. Best effort: if even this
            // fails, the heal below re-truncates before recovery.
            if let Ok(f) = OpenOptions::new().write(true).open(self.dir.join(WAL_FILE)) {
                let _ = f.set_len(mark.0);
                let _ = f.sync_data();
            }
        }
        // The head is the last state every acknowledged commit reached;
        // anything newer in `working` belongs to failed commits.
        self.working = self.head.snapshot().db().clone();
        // Flag before the failure replies: a caller that sees its
        // handle fail must also see the database degraded.
        self.metrics.degraded.store(true, Ordering::Relaxed);
        for (reply, _) in commit_acks.drain(..) {
            let _ = reply.send(Err(ServeError::Io(reason.clone())));
        }
        for (reply, _) in constraint_acks.drain(..) {
            let _ = reply.send(Err(ServeError::Io(reason.clone())));
        }
        self.degraded = Some(reason);
    }

    /// The repair path out of degraded mode: truncate the log to the
    /// last acknowledged record, re-run ordinary recovery, re-install
    /// the injector, probe the disk with a sync, and republish. Any
    /// failure leaves the writer degraded and the heal retryable.
    fn try_heal(&mut self) -> Result<u64, ServeError> {
        let durable = self.head.head_lsn();
        let path = self.dir.join(WAL_FILE);
        let scan = Wal::scan_file(&path).map_err(|e| ServeError::Io(e.to_string()))?;
        let keep = scan
            .records
            .iter()
            .take_while(|r| r.lsn <= durable)
            .last()
            .map_or(0, |r| r.end_offset);
        let truncated = (|| {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(keep)?;
            f.sync_data()
        })();
        truncated.map_err(|e| ServeError::Io(format!("heal truncation failed: {e}")))?;
        let injector = self.wal.fault_injector();
        let (durable_db, _report) = DurableDb::recover(&self.dir, FsyncPolicy::Never)
            .map_err(|e| ServeError::Io(format!("heal recovery failed: {e}")))?;
        let (mut db, mut wal, _dir) = durable_db.into_parts();
        if self.provenance {
            db.enable_provenance();
        }
        wal.set_fault_injector(injector);
        // Probe through the injected path: a still-failing disk keeps
        // the writer degraded rather than resuming doomed service.
        wal.sync()
            .map_err(|e| ServeError::Io(format!("heal probe sync failed: {e}")))?;
        debug_assert_eq!(
            wal.last_lsn(),
            durable,
            "heal must land on the durable head"
        );
        self.working = db;
        self.wal = wal;
        self.degraded = None;
        self.metrics.degraded.store(false, Ordering::Relaxed);
        self.metrics.heals.fetch_add(1, Ordering::Relaxed);
        self.head.publish(Arc::new(CommittedState::new(
            self.working.clone(),
            self.wal.last_lsn(),
        )));
        Ok(self.wal.last_lsn())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;
    use epilog_core::Answer;
    use epilog_syntax::parse;

    fn dir() -> PathBuf {
        use std::sync::atomic::AtomicU32;
        static N: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "epilog-serve-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn f(src: &str) -> Formula {
        parse(src).unwrap()
    }

    fn registrar(d: &Path) -> ServingDb {
        let theory = Theory::from_text("forall x. emp(x) -> person(x)").unwrap();
        let db = ServingDb::create(d, theory, ServeOptions::default()).unwrap();
        db.add_constraint(f("forall x. K emp(x) -> exists y. K ss(x, y)"))
            .unwrap();
        db
    }

    #[test]
    fn acknowledged_commits_are_visible_and_old_snapshots_pinned() {
        let d = dir();
        let db = registrar(&d);
        let before = db.snapshot();
        let receipt = db
            .commit_wait(vec![
                TxOp::Assert(f("ss(Mary, n1)")),
                TxOp::Assert(f("emp(Mary)")),
            ])
            .unwrap();
        assert_eq!(receipt.report.asserted, 2);
        let after = db.snapshot();
        assert!(after.lsn() >= receipt.lsn);
        let q = parse("K person(Mary)").unwrap();
        assert_eq!(before.ask(&q), Answer::No, "pinned snapshot");
        assert_eq!(after.ask(&q), Answer::Yes, "ack implies visibility");
        db.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn rejected_commits_leave_no_trace() {
        let d = dir();
        let db = registrar(&d);
        let err = db
            .commit_wait(vec![TxOp::Assert(f("emp(Joe)"))])
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Db(DbError::ConstraintViolated(_), _)
        ));
        assert_eq!(db.head_lsn(), 1, "only the constraint record exists");
        assert_eq!(db.stats().rejected, 1);
        db.shutdown().unwrap();
        // Nothing of the rejected commit reached the log.
        let scan = Wal::scan_file(d.join(WAL_FILE)).unwrap();
        assert_eq!(scan.records.len(), 1);
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn gated_burst_forms_one_batch_with_one_fsync() {
        let d = dir();
        let db = registrar(&d);
        let base = db.stats();
        let gate = db.gate();
        let handles: Vec<CommitHandle> = (0..8)
            .map(|i| {
                db.commit(vec![
                    TxOp::Assert(f(&format!("ss(E{i}, n{i})"))),
                    TxOp::Assert(f(&format!("emp(E{i})"))),
                ])
            })
            .collect();
        gate.open();
        for h in handles {
            let _ = h.wait().unwrap();
        }
        let s = db.stats();
        assert_eq!(s.commits - base.commits, 8);
        assert_eq!(s.batches - base.batches, 1, "one group");
        assert_eq!(s.fsyncs - base.fsyncs, 1, "one fsync for 8 commits");
        let snap = db.snapshot();
        assert_eq!(snap.ask(&parse("K emp(E7)").unwrap()), Answer::Yes);
        db.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn rejection_inside_a_batch_spares_the_others() {
        let d = dir();
        let db = registrar(&d);
        let gate = db.gate();
        let ok1 = db.commit(vec![
            TxOp::Assert(f("ss(Sue, n2)")),
            TxOp::Assert(f("emp(Sue)")),
        ]);
        let bad = db.commit(vec![TxOp::Assert(f("emp(Joe)"))]); // no ss number
        let ok2 = db.commit(vec![
            TxOp::Assert(f("ss(Ann, n3)")),
            TxOp::Assert(f("emp(Ann)")),
        ]);
        gate.open();
        assert!(ok1.wait().is_ok());
        assert!(matches!(bad.wait(), Err(ServeError::Db(..))));
        assert!(ok2.wait().is_ok());
        let snap = db.snapshot();
        assert_eq!(snap.ask(&parse("K emp(Sue)").unwrap()), Answer::Yes);
        assert_eq!(snap.ask(&parse("K emp(Joe)").unwrap()), Answer::No);
        assert_eq!(snap.ask(&parse("K emp(Ann)").unwrap()), Answer::Yes);
        db.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn shutdown_flushes_and_recovery_restores_the_served_state() {
        let d = dir();
        let db = registrar(&d);
        // Enqueue without waiting, then shut down immediately: the
        // graceful path must still drain, sync, and apply everything.
        let pending: Vec<CommitHandle> = (0..5)
            .map(|i| {
                db.commit(vec![
                    TxOp::Assert(f(&format!("ss(W{i}, m{i})"))),
                    TxOp::Assert(f(&format!("emp(W{i})"))),
                ])
            })
            .collect();
        let last = pending.into_iter().last().unwrap().wait().unwrap();
        db.shutdown().unwrap();

        let (db2, report) = ServingDb::recover(&d, ServeOptions::default()).unwrap();
        assert!(report.torn_tail.is_none());
        assert_eq!(report.last_lsn, last.lsn);
        let snap = db2.snapshot();
        assert_eq!(snap.lsn(), last.lsn);
        for i in 0..5 {
            let q = parse(&format!("K person(W{i})")).unwrap();
            assert_eq!(snap.ask(&q), Answer::Yes);
        }
        db2.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn provenance_option_traces_commits_and_stamps_rejections() {
        let d = dir();
        let theory = Theory::from_text(
            "edge(a, b)\nforall x. forall y. edge(x, y) -> path(x, y)\n\
             forall x. forall y. forall z. edge(x, y) & path(y, z) -> path(x, z)",
        )
        .unwrap();
        let opts = ServeOptions {
            provenance: true,
            ..Default::default()
        };
        let db = ServingDb::create(&d, theory, opts).unwrap();
        assert!(db.snapshot().provenance_enabled());
        db.commit_wait(vec![TxOp::Assert(f("edge(b, c)"))]).unwrap();
        let snap = db.snapshot();
        let q = match f("path(a, c)") {
            Formula::Atom(a) => a,
            other => panic!("expected atom, got {other}"),
        };
        let proof = snap.why(&q).expect("transitive tuple has a proof");
        assert!(proof.height() >= 2, "needs the recursive rule");

        db.add_constraint(f("forall x. ~K path(x, x)")).unwrap();
        let head = db.head_lsn();
        let err = db
            .commit_wait(vec![TxOp::Assert(f("edge(c, a)"))])
            .unwrap_err();
        match err {
            ServeError::Db(DbError::ConstraintViolated(rej), lsn) => {
                assert_eq!(lsn, head, "rejection stamped with the head LSN");
                assert!(!rej.witnesses.is_empty(), "ground witness extracted");
                assert!(!rej.proofs.is_empty(), "witness carries a proof tree");
            }
            other => panic!("expected a stamped constraint rejection, got {other:?}"),
        }
        db.shutdown().unwrap();

        // Recovery re-enables provenance from the snapshot marker (and
        // the option keeps it on for the working database regardless).
        let (db2, _) = ServingDb::recover(&d, opts).unwrap();
        assert!(db2.snapshot().provenance_enabled());
        assert!(db2.snapshot().why(&q).is_some());
        db2.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn noop_commit_acks_without_logging() {
        let d = dir();
        let db = registrar(&d);
        let r = db.commit_wait(vec![]).unwrap();
        assert_eq!(r.lsn, 1);
        assert_eq!(db.stats().commits, 0, "no-ops are not group members");
        db.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    /// Like [`registrar`], but with a [`FaultInjector`] installed on
    /// the underlying log before the writer starts.
    fn registrar_with_injector(d: &Path, seed: u64) -> (ServingDb, Arc<crate::FaultInjector>) {
        let theory = Theory::from_text("forall x. emp(x) -> person(x)").unwrap();
        let mut durable = DurableDb::create(d, theory, FsyncPolicy::Never).unwrap();
        let inj = Arc::new(crate::FaultInjector::new(seed));
        durable.set_fault_injector(Some(Arc::clone(&inj)));
        let db = ServingDb::start(durable, ServeOptions::default());
        db.add_constraint(f("forall x. K emp(x) -> exists y. K ss(x, y)"))
            .unwrap();
        (db, inj)
    }

    #[test]
    fn fsync_failure_degrades_and_heal_restores() {
        let d = dir();
        let (db, inj) = registrar_with_injector(&d, 11);
        let acked = db
            .commit_wait(vec![
                TxOp::Assert(f("ss(Mary, n1)")),
                TxOp::Assert(f("emp(Mary)")),
            ])
            .unwrap();

        // Fail the next batch fsync: that batch's commit gets Io, the
        // writer drops to degraded read-only mode.
        inj.fail_nth_sync(inj.syncs());
        let err = db
            .commit_wait(vec![
                TxOp::Assert(f("ss(Sue, n2)")),
                TxOp::Assert(f("emp(Sue)")),
            ])
            .unwrap_err();
        assert!(matches!(err, ServeError::Io(_)), "failed batch: {err}");
        assert!(db.is_degraded());
        let s = db.stats();
        assert!(s.degraded && s.io_errors >= 1);

        // Degraded: commits rejected fast, snapshots keep answering at
        // the durable head, flush holds there too.
        let err = db
            .commit_wait(vec![
                TxOp::Assert(f("ss(Ann, n3)")),
                TxOp::Assert(f("emp(Ann)")),
            ])
            .unwrap_err();
        assert!(matches!(err, ServeError::Degraded(_)), "got {err}");
        assert!(err.is_transient());
        let snap = db.snapshot();
        assert_eq!(snap.ask(&parse("K person(Mary)").unwrap()), Answer::Yes);
        assert_eq!(snap.ask(&parse("K person(Sue)").unwrap()), Answer::No);
        assert_eq!(snap.lsn(), acked.lsn);
        assert_eq!(db.flush().unwrap(), acked.lsn);

        // Heal (the injector has no further faults scheduled) and
        // resume write service.
        assert_eq!(db.heal().unwrap(), acked.lsn);
        assert!(!db.is_degraded());
        assert_eq!(db.stats().heals, 1);
        db.commit_wait(vec![
            TxOp::Assert(f("ss(Ann, n3)")),
            TxOp::Assert(f("emp(Ann)")),
        ])
        .unwrap();
        assert_eq!(
            db.snapshot().ask(&parse("K person(Ann)").unwrap()),
            Answer::Yes
        );
        db.shutdown().unwrap();

        // On disk: every acknowledged record, nothing of the failed batch.
        let (db2, report) = ServingDb::recover(&d, ServeOptions::default()).unwrap();
        assert!(report.torn_tail.is_none());
        let snap = db2.snapshot();
        assert_eq!(snap.ask(&parse("K person(Mary)").unwrap()), Answer::Yes);
        assert_eq!(snap.ask(&parse("K person(Ann)").unwrap()), Answer::Yes);
        assert_eq!(snap.ask(&parse("K person(Sue)").unwrap()), Answer::No);
        db2.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn append_failure_fails_only_that_commit() {
        let d = dir();
        let (db, inj) = registrar_with_injector(&d, 23);
        db.commit_wait(vec![
            TxOp::Assert(f("ss(Mary, n1)")),
            TxOp::Assert(f("emp(Mary)")),
        ])
        .unwrap();

        // A clean append failure, then a torn one: each fails only its
        // own commit; the writer rewinds the tear and keeps serving.
        inj.fail_nth_write(inj.writes(), FaultKind::FailOp);
        let err = db
            .commit_wait(vec![
                TxOp::Assert(f("ss(Sue, n2)")),
                TxOp::Assert(f("emp(Sue)")),
            ])
            .unwrap_err();
        assert!(matches!(err, ServeError::Io(_)), "got {err}");
        assert!(!db.is_degraded(), "append failure alone never degrades");

        inj.fail_nth_write(inj.writes(), FaultKind::TornWrite);
        let err = db
            .commit_wait(vec![
                TxOp::Assert(f("ss(Ann, n3)")),
                TxOp::Assert(f("emp(Ann)")),
            ])
            .unwrap_err();
        assert!(matches!(err, ServeError::Io(_)), "got {err}");
        assert!(!db.is_degraded());

        let acked = db
            .commit_wait(vec![
                TxOp::Assert(f("ss(Zoe, n4)")),
                TxOp::Assert(f("emp(Zoe)")),
            ])
            .unwrap();
        assert_eq!(db.stats().io_errors, 2);
        db.shutdown().unwrap();

        // The torn prefix was rewound: the log replays cleanly and
        // holds exactly the acknowledged commits.
        let (db2, report) = ServingDb::recover(&d, ServeOptions::default()).unwrap();
        assert!(report.torn_tail.is_none());
        assert_eq!(report.last_lsn, acked.lsn);
        let snap = db2.snapshot();
        assert_eq!(snap.ask(&parse("K person(Mary)").unwrap()), Answer::Yes);
        assert_eq!(snap.ask(&parse("K person(Sue)").unwrap()), Answer::No);
        assert_eq!(snap.ask(&parse("K person(Zoe)").unwrap()), Answer::Yes);
        db2.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn heal_fails_while_the_disk_still_fails() {
        let d = dir();
        let (db, inj) = registrar_with_injector(&d, 31);
        db.commit_wait(vec![
            TxOp::Assert(f("ss(Mary, n1)")),
            TxOp::Assert(f("emp(Mary)")),
        ])
        .unwrap();
        inj.set_sync_rate(1, 1); // every sync fails from here on
        let err = db
            .commit_wait(vec![
                TxOp::Assert(f("ss(Sue, n2)")),
                TxOp::Assert(f("emp(Sue)")),
            ])
            .unwrap_err();
        assert!(matches!(err, ServeError::Io(_)), "got {err}");
        assert!(db.is_degraded());

        // The probe sync refuses: the heal fails, the database stays
        // degraded (and readable), and the heal stays retryable.
        let err = db.heal().unwrap_err();
        assert!(matches!(err, ServeError::Io(_)), "got {err}");
        assert!(db.is_degraded());
        assert_eq!(db.stats().heals, 0);
        assert_eq!(
            db.snapshot().ask(&parse("K person(Mary)").unwrap()),
            Answer::Yes
        );

        // "Fix the disk" and retry.
        inj.disarm();
        db.heal().unwrap();
        assert!(!db.is_degraded());
        db.commit_wait(vec![
            TxOp::Assert(f("ss(Sue, n2)")),
            TxOp::Assert(f("emp(Sue)")),
        ])
        .unwrap();
        db.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn wait_timeout_returns_the_handle_while_pending() {
        let d = dir();
        let db = registrar(&d);
        let gate = db.gate();
        let h = db.commit(vec![
            TxOp::Assert(f("ss(Pat, n5)")),
            TxOp::Assert(f("emp(Pat)")),
        ]);
        // Writer held at the gate: the handle must time out, unanswered.
        let h = match h.wait_timeout(Duration::from_millis(20)) {
            Err(pending) => pending,
            Ok(answer) => panic!("expected a timeout, got {answer:?}"),
        };
        gate.open();
        let receipt = match h.wait_timeout(Duration::from_secs(30)) {
            Ok(answer) => answer.unwrap(),
            Err(_) => panic!("expected an answer after the gate opened"),
        };
        assert_eq!(db.head_lsn(), receipt.lsn);
        db.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn closed_error_reports_the_writer_exit() {
        // The mapping Closed carries, exercised directly on Metrics:
        // still-running → Unknown, clean exit → Clean, degraded at exit
        // → Degraded, panic → Panicked.
        let m = Metrics::default();
        assert_eq!(m.writer_exit(), WriterExit::Unknown);
        m.exit.store(EXIT_CLEAN, Ordering::Relaxed);
        assert_eq!(m.writer_exit(), WriterExit::Clean);
        m.degraded.store(true, Ordering::Relaxed);
        assert_eq!(m.writer_exit(), WriterExit::Degraded);
        m.exit.store(EXIT_PANICKED, Ordering::Relaxed);
        assert_eq!(m.writer_exit(), WriterExit::Panicked);
        let msg = m.closed().to_string();
        assert!(msg.contains("writer panicked"), "got {msg}");
    }

    #[test]
    fn flush_is_a_queue_barrier() {
        let d = dir();
        let db = registrar(&d);
        let gate = db.gate();
        let h = db.commit(vec![
            TxOp::Assert(f("ss(Zoe, n9)")),
            TxOp::Assert(f("emp(Zoe)")),
        ]);
        gate.open();
        let lsn = db.flush().unwrap();
        // The flush was queued after the commit, so its LSN covers it.
        assert_eq!(lsn, h.wait().unwrap().lsn);
        db.shutdown().unwrap();
        std::fs::remove_dir_all(d).unwrap();
    }
}
