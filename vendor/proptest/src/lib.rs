//! Offline shim for the subset of the `proptest` 1.x API used by the
//! property tests under `tests/`.
//!
//! The build container has no route to a crates.io mirror, so the real
//! crate cannot be fetched. This shim keeps the test sources
//! source-compatible for:
//!
//! * `Strategy` with `prop_map`, `prop_filter`, `prop_filter_map`,
//!   `prop_recursive`, `boxed`;
//! * range / tuple / `Just` strategies, `prop_oneof!`,
//!   `proptest::collection::vec`, `proptest::option::of`;
//! * the `proptest!` macro with `#![proptest_config(...)]`, multiple
//!   `name in strategy` parameters, `prop_assert!`, `prop_assert_eq!`,
//!   `prop_assert_ne!`, and `prop_assume!`.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the formatted assertion
//!   message (the tests interpolate the offending input themselves).
//! * **Deterministic seeding** per test name, so CI failures reproduce.
//! * Generation distributions are similar in spirit (recursive
//!   strategies are depth-bounded) but not stream-compatible.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A vector with length drawn from `len` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(element, len)
    }
}

/// `proptest::option` — `Option` strategies.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// `Some` of the inner strategy three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy::new(inner)
    }
}

/// `proptest::prelude` — the glob import the tests use.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}
