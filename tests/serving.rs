//! Multi-threaded soak test for the serving layer: N reader threads
//! `ask` against live snapshots while the main thread drives a
//! randomized commit stream through the single-writer queue.
//!
//! What it proves:
//!
//! * **No torn reads** — every `(lsn, answers)` sample a reader ever
//!   records equals the sequential-replay oracle's answers at exactly
//!   that LSN. A reader can observe an old state, never a mixed one.
//! * **Snapshot monotonicity** — successive snapshots taken by one
//!   reader never go backwards in LSN.
//! * **Serial equivalence** — the final recovered database equals the
//!   sequential replay of the accepted commits, in receipt-LSN order.
//!
//! The commit stream is seeded (deterministic op sequence; only the
//! batching and interleaving vary between runs). `EPILOG_SOAK_COMMITS`
//! scales the stream length (default 96) for the nightly deep-fuzz CI
//! leg, and the `EPILOG_THREADS` matrix exercises the engine's internal
//! parallelism underneath the concurrent readers.

use epilog::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

const PEOPLE: usize = 6;
const READERS: usize = 4;

fn person(i: usize) -> String {
    format!("E{i}")
}

fn number(i: usize) -> String {
    format!("N{i}")
}

/// One transaction from the randomized stream.
fn pick_ops(roll: u64) -> Vec<TxOp> {
    let i = (roll >> 8) as usize % PEOPLE;
    match roll % 4 {
        // Hire: employee + matching ss number, satisfies both ICs.
        0 => vec![
            TxOp::Assert(parse(&format!("emp({})", person(i))).unwrap()),
            TxOp::Assert(parse(&format!("ss({}, {})", person(i), number(i))).unwrap()),
        ],
        // Fire: retract both (a no-op commit when Ei isn't employed).
        1 => vec![
            TxOp::Retract(parse(&format!("emp({})", person(i))).unwrap()),
            TxOp::Retract(parse(&format!("ss({}, {})", person(i), number(i))).unwrap()),
        ],
        // Always-invalid: an employee with no ss number ever.
        2 => vec![TxOp::Assert(parse("emp(Ghost)").unwrap())],
        // Renumber: violates ss-uniqueness iff Ei currently has a number.
        _ => vec![TxOp::Assert(
            parse(&format!("ss({}, {})", person(i), number((i + 1) % PEOPLE))).unwrap(),
        )],
    }
}

fn queries() -> Vec<Formula> {
    vec![
        parse("K emp(E0)").unwrap(),
        parse("exists y. K ss(E1, y)").unwrap(),
        parse("K person(E2)").unwrap(),
        parse("K emp(Ghost)").unwrap(),
    ]
}

fn answers(db: &EpistemicDb, qs: &[Formula]) -> Vec<Answer> {
    qs.iter().map(|q| db.ask(q)).collect()
}

fn sentence_set(t: &epilog::syntax::Theory) -> Vec<String> {
    let mut v: Vec<String> = t.sentences().iter().map(|w| w.to_string()).collect();
    v.sort();
    v
}

fn soak(dir: &std::path::Path, total_commits: u64) {
    const BASE: &str = "forall x. emp(x) -> person(x)";
    let ics = [
        "forall x. K emp(x) -> exists y. K ss(x, y)",
        "forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z",
    ];

    let db = ServingDb::create(
        dir,
        epilog::syntax::Theory::from_text(BASE).unwrap(),
        ServeOptions {
            max_batch: 8,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    for ic in ics {
        db.add_constraint(parse(ic).unwrap()).unwrap();
    }
    let base_lsn = db.head_lsn();

    let qs = queries();
    let stop = AtomicBool::new(false);
    // Accepted commits, with receipt LSN, in queue order.
    let mut accepted: Vec<(u64, Vec<TxOp>)> = Vec::new();
    let mut rejected = 0u64;
    let mut effective = 0u64; // accepted commits with a non-empty delta

    let samples: Vec<Vec<(u64, Vec<Answer>)>> = std::thread::scope(|s| {
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                s.spawn(|| {
                    let mut got: Vec<(u64, Vec<Answer>)> = Vec::new();
                    let mut prev = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = db.snapshot();
                        assert!(
                            snap.lsn() >= prev,
                            "snapshot LSN went backwards: {} after {}",
                            snap.lsn(),
                            prev
                        );
                        prev = snap.lsn();
                        got.push((snap.lsn(), answers(snap.db(), &qs)));
                    }
                    got
                })
            })
            .collect();

        // Drive the commit stream: issue a small pipelined chunk of
        // transactions, then collect all their receipts.
        let mut lcg = 0x9e3779b97f4a7c15u64;
        let mut issued = 0u64;
        while issued < total_commits {
            let chunk = 1 + (lcg % 4).min(total_commits - issued - 1);
            let mut inflight = Vec::new();
            for _ in 0..chunk {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let ops = pick_ops(lcg >> 16);
                inflight.push((ops.clone(), db.commit(ops)));
                issued += 1;
            }
            for (ops, handle) in inflight {
                match handle.wait() {
                    Ok(receipt) => {
                        if receipt.report.asserted + receipt.report.retracted > 0 {
                            effective += 1;
                        }
                        accepted.push((receipt.lsn, ops));
                    }
                    Err(ServeError::Db(..)) => rejected += 1,
                    Err(e) => panic!("unexpected serve error: {e}"),
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        readers.into_iter().map(|r| r.join().unwrap()).collect()
    });

    assert!(
        !accepted.is_empty() && rejected > 0,
        "the stream should exercise both outcomes: {} accepted, {rejected} rejected",
        accepted.len()
    );

    // ----- Sequential-replay oracle -------------------------------------
    let mut oracle = EpistemicDb::from_text(BASE).unwrap();
    for ic in ics {
        oracle.add_constraint(parse(ic).unwrap()).unwrap();
    }
    let mut per_lsn: HashMap<u64, Vec<Answer>> = HashMap::new();
    per_lsn.insert(base_lsn, answers(&oracle, &qs));
    accepted.sort_by_key(|(lsn, _)| *lsn);
    for (lsn, ops) in &accepted {
        let mut txn = oracle.transaction();
        for op in ops {
            txn = match op {
                TxOp::Assert(w) => txn.assert(w.clone()),
                TxOp::Retract(w) => txn.retract(w.clone()),
            };
        }
        let _ = txn
            .commit()
            .expect("a commit the server accepted must replay cleanly");
        per_lsn.insert(*lsn, answers(&oracle, &qs));
    }

    // ----- No torn reads: every sample matches the oracle at its LSN ----
    let mut checked = 0usize;
    for reader in &samples {
        for (lsn, got) in reader {
            let want = per_lsn
                .get(lsn)
                .unwrap_or_else(|| panic!("reader observed LSN {lsn} that was never published"));
            assert_eq!(got, want, "torn read at LSN {lsn}");
            checked += 1;
        }
    }
    assert!(checked > 0, "readers never sampled anything");

    // ----- Serial equivalence of the durable state ----------------------
    let final_lsn = db.head_lsn();
    let stats = db.stats();
    assert_eq!(stats.commits, effective, "no-op commits are not logged");
    assert_eq!(stats.rejected, rejected);
    db.shutdown().unwrap();
    let (recovered, report) = DurableDb::recover(dir, FsyncPolicy::Always).unwrap();
    assert_eq!(report.last_lsn, final_lsn);
    assert_eq!(
        sentence_set(recovered.db().theory()),
        sentence_set(oracle.theory())
    );
    assert_eq!(
        answers(recovered.db(), &qs),
        *per_lsn.get(&final_lsn).unwrap()
    );
}

#[test]
fn concurrent_readers_see_only_published_states() {
    let commits = std::env::var("EPILOG_SOAK_COMMITS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96u64);
    let dir = std::env::temp_dir().join(format!("epilog-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    soak(&dir, commits);
    std::fs::remove_dir_all(&dir).unwrap();
}
