//! Grounding FOPCE sentences over a finite universe.
//!
//! A [`GroundContext`] fixes the universe (a finite list of parameters) and
//! assigns propositional variables to ground atoms on demand. Grounding a
//! sentence walks its NNF, expanding `∀`/`∃` over the universe and mapping
//! equality atoms directly to constants — FOPCE's parameters are pairwise
//! distinct, so `p = q` is decided syntactically.

use epilog_sat::Prop;
use epilog_syntax::formula::{Atom, Formula};
use epilog_syntax::{Param, Term, Var};
use std::collections::HashMap;

/// Shared grounding state: the universe and the atom↔variable registry.
#[derive(Debug, Clone, Default)]
pub struct GroundContext {
    universe: Vec<Param>,
    vars: HashMap<Atom, u32>,
    atoms: Vec<Atom>,
}

impl GroundContext {
    /// A context over the given (deduplicated, order-preserving) universe.
    pub fn new(universe: Vec<Param>) -> Self {
        let mut seen = Vec::new();
        for p in universe {
            if !seen.contains(&p) {
                seen.push(p);
            }
        }
        GroundContext {
            universe: seen,
            vars: HashMap::new(),
            atoms: Vec::new(),
        }
    }

    /// The universe parameters, in enumeration order.
    pub fn universe(&self) -> &[Param] {
        &self.universe
    }

    /// The propositional variable of a ground atom, allocating on demand.
    pub fn var_of(&mut self, atom: &Atom) -> u32 {
        debug_assert!(atom.is_ground(), "registry stores ground atoms only");
        if let Some(&v) = self.vars.get(atom) {
            return v;
        }
        let v = u32::try_from(self.atoms.len()).expect("atom registry overflow");
        self.vars.insert(atom.clone(), v);
        self.atoms.push(atom.clone());
        v
    }

    /// The ground atom of a propositional variable, if allocated.
    pub fn atom_of(&self, v: u32) -> Option<&Atom> {
        self.atoms.get(v as usize)
    }

    /// Number of registered atoms (== number of propositional variables).
    pub fn num_atoms(&self) -> u32 {
        self.atoms.len() as u32
    }

    /// Ground a FOPCE sentence into a propositional formula, expanding
    /// quantifiers over the universe.
    ///
    /// # Panics
    /// Panics on modal formulas or formulas with free variables (bind them
    /// first).
    pub fn ground(&mut self, w: &Formula) -> Prop {
        let mut env = HashMap::new();
        self.go(w, &mut env)
    }

    fn term(&self, t: &Term, env: &HashMap<Var, Param>) -> Param {
        match t {
            Term::Param(p) => *p,
            Term::Var(v) => *env
                .get(v)
                .unwrap_or_else(|| panic!("unbound variable {v} during grounding")),
        }
    }

    fn go(&mut self, w: &Formula, env: &mut HashMap<Var, Param>) -> Prop {
        match w {
            Formula::Atom(a) => {
                let terms: Vec<Term> = a
                    .terms
                    .iter()
                    .map(|t| Term::Param(self.term(t, env)))
                    .collect();
                let ground = Atom::new(a.pred, terms);
                Prop::Var(self.var_of(&ground))
            }
            Formula::Eq(a, b) => {
                // Unique names: equality of parameters is syntactic
                // identity.
                if self.term(a, env) == self.term(b, env) {
                    Prop::True
                } else {
                    Prop::False
                }
            }
            Formula::Not(a) => self.go(a, env).negate(),
            Formula::And(a, b) => Prop::and_all(vec![self.go(a, env), self.go(b, env)]),
            Formula::Or(a, b) => Prop::or_all(vec![self.go(a, env), self.go(b, env)]),
            Formula::Implies(a, b) => Prop::or_all(vec![self.go(a, env).negate(), self.go(b, env)]),
            Formula::Iff(a, b) => {
                let pa = self.go(a, env);
                let pb = self.go(b, env);
                Prop::and_all(vec![
                    Prop::or_all(vec![pa.clone().negate(), pb.clone()]),
                    Prop::or_all(vec![pb.negate(), pa]),
                ])
            }
            Formula::Forall(x, body) => {
                let props = self.expand(*x, body, env);
                Prop::and_all(props)
            }
            Formula::Exists(x, body) => {
                let props = self.expand(*x, body, env);
                Prop::or_all(props)
            }
            Formula::Know(_) => panic!("grounding is defined for FOPCE formulas only"),
        }
    }

    fn expand(&mut self, x: Var, body: &Formula, env: &mut HashMap<Var, Param>) -> Vec<Prop> {
        let universe = self.universe.clone();
        let shadowed = env.get(&x).copied();
        let mut out = Vec::with_capacity(universe.len());
        for p in universe {
            env.insert(x, p);
            out.push(self.go(body, env));
        }
        match shadowed {
            Some(p) => {
                env.insert(x, p);
            }
            None => {
                env.remove(&x);
            }
        }
        out
    }
}

/// A finished grounding of a theory: the conjunction of its sentences'
/// propositional forms plus the registry that interprets the variables.
#[derive(Debug, Clone)]
pub struct Grounding {
    /// The grounded sentences (conjoined for satisfiability checking).
    pub props: Vec<Prop>,
    /// The shared atom registry / universe.
    pub ctx: GroundContext,
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::parse;

    fn params(names: &[&str]) -> Vec<Param> {
        names.iter().map(|n| Param::new(n)).collect()
    }

    #[test]
    fn atoms_get_stable_vars() {
        let mut ctx = GroundContext::new(params(&["a", "b"]));
        let w = parse("p(a) & p(a) & p(b)").unwrap();
        let g = ctx.ground(&w);
        assert_eq!(ctx.num_atoms(), 2);
        // p(a) ∧ p(a) ∧ p(b) folds to a 2-conjunct after dedup of shape.
        match g {
            Prop::And(ps) => assert_eq!(ps.len(), 3),
            other => panic!("expected conjunction, got {other:?}"),
        }
    }

    #[test]
    fn equality_decided_at_ground_time() {
        let mut ctx = GroundContext::new(params(&["a", "b"]));
        assert_eq!(ctx.ground(&parse("a = a").unwrap()), Prop::True);
        assert_eq!(ctx.ground(&parse("a = b").unwrap()), Prop::False);
        assert_eq!(ctx.ground(&parse("a != b").unwrap()), Prop::True);
    }

    #[test]
    fn quantifiers_expand_over_universe() {
        let mut ctx = GroundContext::new(params(&["a", "b", "c"]));
        let w = parse("exists x. p(x)").unwrap();
        match ctx.ground(&w) {
            Prop::Or(ps) => assert_eq!(ps.len(), 3),
            other => panic!("expected disjunction, got {other:?}"),
        }
        let w = parse("forall x. p(x)").unwrap();
        match ctx.ground(&w) {
            Prop::And(ps) => assert_eq!(ps.len(), 3),
            other => panic!("expected conjunction, got {other:?}"),
        }
    }

    #[test]
    fn nested_quantifiers() {
        let mut ctx = GroundContext::new(params(&["a", "b"]));
        let w = parse("forall x. exists y. e(x, y)").unwrap();
        // (e(a,a) ∨ e(a,b)) ∧ (e(b,a) ∨ e(b,b))
        match ctx.ground(&w) {
            Prop::And(ps) => {
                assert_eq!(ps.len(), 2);
                assert!(matches!(ps[0], Prop::Or(_)));
            }
            other => panic!("expected conjunction, got {other:?}"),
        }
        assert_eq!(ctx.num_atoms(), 4);
    }

    #[test]
    fn quantified_equality_folds() {
        // ∃x (x = a) is true over any universe containing a.
        let mut ctx = GroundContext::new(params(&["a", "b"]));
        assert_eq!(ctx.ground(&parse("exists x. x = a").unwrap()), Prop::True);
        // ∀x (x = a) is false once the universe has a second element.
        assert_eq!(ctx.ground(&parse("forall x. x = a").unwrap()), Prop::False);
    }

    #[test]
    fn shadowing_respected() {
        let mut ctx = GroundContext::new(params(&["a"]));
        // exists x. p(x) & (exists x. q(x)) — inner x shadows outer.
        let w = parse("exists x. p(x) & (exists x. q(x))").unwrap();
        let _ = ctx.ground(&w);
        assert_eq!(ctx.num_atoms(), 2);
    }

    #[test]
    #[should_panic(expected = "FOPCE")]
    fn modal_rejected() {
        let mut ctx = GroundContext::new(params(&["a"]));
        let _ = ctx.ground(&parse("K p(a)").unwrap());
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn free_variables_rejected() {
        let mut ctx = GroundContext::new(params(&["a"]));
        let _ = ctx.ground(&parse("p(x)").unwrap());
    }
}
