//! E3 — the constraint examples of §3 (Examples 3.1–3.5) and their
//! admissible rewrites (Example 5.4), enforced end to end.

use epilog::core::demo_sentence;
use epilog::prelude::*;
use epilog::syntax::admissible_constraint;

/// Check a constraint against a database three ways — semantic
/// (Definition 3.5 via `ask`), demo on the admissible rewrite, and the
/// registered-constraint API — and insist they agree.
fn verdict(db_src: &str, ic_src: &str) -> bool {
    let db = EpistemicDb::from_text(db_src).unwrap();
    let ic = parse(ic_src).unwrap();
    let semantic = db.ask(&ic) == Answer::Yes;
    let rewritten = admissible_constraint(&ic);
    assert!(
        admissibility(&rewritten).is_admissible(),
        "rewrite of {ic_src} must be admissible: {}",
        admissibility(&rewritten)
    );
    let via_demo = demo_sentence(db.prover(), &rewritten).unwrap() == DemoOutcome::Succeeds;
    assert_eq!(
        semantic, via_demo,
        "ask vs demo divergence on `{ic_src}` against `{db_src}`"
    );
    semantic
}

#[test]
fn example_31_male_female_exclusion() {
    let ic = "forall x. ~K (male(x) & female(x))";
    assert!(verdict("male(Sam)\nfemale(Sue)", ic));
    assert!(!verdict("male(Sam)\nfemale(Sam)", ic));
    // Disjunctive information does not violate it: knowing Sam-is-male-or
    // -female is not knowing the conjunction.
    assert!(verdict("male(Sam) | female(Sam)", ic));
}

#[test]
fn example_32_totality() {
    let ic = "forall x. K person(x) -> K male(x) | K female(x)";
    assert!(verdict("person(Sam)\nmale(Sam)", ic));
    assert!(!verdict("person(Sam)", ic));
    // The subtle case: disjunctive sex on file is NOT enough.
    assert!(!verdict("person(Sam)\nmale(Sam) | female(Sam)", ic));
}

#[test]
fn example_33_mother_typing() {
    let ic = "forall x, y. K mother(x, y) -> K (person(x) & female(x) & person(y))";
    assert!(verdict(
        "mother(Ann, Bob)\nperson(Ann)\nfemale(Ann)\nperson(Bob)",
        ic
    ));
    assert!(!verdict("mother(Ann, Bob)\nperson(Ann)\nfemale(Ann)", ic));
    assert!(verdict("", ic));
}

#[test]
fn example_34_weak_ss_constraint() {
    // The number need only be *known to exist*.
    let ic = "forall x. K emp(x) -> K (exists y. ss(x, y))";
    assert!(verdict("emp(Mary)\nexists y. ss(Mary, y)", ic));
    assert!(verdict("emp(Mary)\nss(Mary, n1)", ic));
    assert!(!verdict("emp(Mary)", ic));
}

#[test]
fn example_35_functional_dependency() {
    let ic = "forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z";
    assert!(verdict("ss(Mary, n1)\nss(Sue, n2)", ic));
    assert!(!verdict("ss(Mary, n1)\nss(Mary, n2)", ic));
    assert!(verdict("", ic));
}

#[test]
fn example_54_rewrites_match_paper() {
    // The exact rewritten forms listed in Example 5.4.
    let cases = [
        (
            "forall x. K emp(x) -> exists y. K ss(x, y)",
            "~(exists x. K emp(x) & ~(exists y. K ss(x, y)))",
        ),
        (
            "forall x. ~K (male(x) & female(x))",
            "~(exists x. K (male(x) & female(x)))",
        ),
        (
            "forall x. K person(x) -> K male(x) | K female(x)",
            "~(exists x. K person(x) & (~K male(x) & ~K female(x)))",
        ),
        (
            "forall x. K emp(x) -> K (exists y. ss(x, y))",
            "~(exists x. K emp(x) & ~K (exists y. ss(x, y)))",
        ),
        (
            "forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z",
            "~(exists x. exists y. exists z. K ss(x, y) & K ss(x, z) & ~K y = z)",
        ),
    ];
    for (natural, expected) in cases {
        let got = admissible_constraint(&parse(natural).unwrap());
        assert_eq!(got.to_string(), expected, "rewrite of {natural}");
        assert!(admissibility(&got).is_admissible());
    }
}

#[test]
fn constraints_are_subjective_k1() {
    // §5.3: integrity constraints are naturally subjective K₁ sentences.
    use epilog::syntax::{is_k1, is_subjective};
    for ic in [
        "forall x. ~K (male(x) & female(x))",
        "forall x. K person(x) -> K male(x) | K female(x)",
        "forall x, y. K mother(x, y) -> K (person(x) & female(x) & person(y))",
        "forall x. K emp(x) -> K (exists y. ss(x, y))",
        "forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z",
    ] {
        let w = parse(ic).unwrap();
        assert!(is_subjective(&w), "{ic} subjective");
        assert!(is_k1(&w), "{ic} K1");
        assert!(w.is_sentence());
    }
}

#[test]
fn corollary_41_rewrite_equivalence_spotcheck() {
    // The rewrite is KFOPCE-equivalent (checked over bounded structures),
    // so by Corollary 4.1 either form may be enforced.
    use epilog::core::valid_kfopce;
    use epilog::syntax::Pred;
    let ic = parse("forall x. ~K (male(x) & female(x))").unwrap();
    let rw = admissible_constraint(&ic);
    assert!(valid_kfopce(
        &Formula::iff(ic, rw),
        &[Param::new("c")],
        &[Pred::new("male", 1), Pred::new("female", 1)],
    ));
}
