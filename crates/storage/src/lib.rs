//! # epilog-storage — relational substrate
//!
//! A small in-memory relational store used by every layer above it:
//!
//! * the Datalog engine stores its extensional and intensional relations
//!   here ([`Relation`], [`Database`]);
//! * the grounder of `epilog-prover` uses [`Relation`] iteration and the
//!   per-column indexes to enumerate candidate bindings;
//! * the possible-world structures of `epilog-semantics` are thin wrappers
//!   over [`Database`] snapshots.
//!
//! Tuples are fixed-arity vectors of [`Param`]s (the function-free FOPCE
//! fragment has no other ground terms). Relations maintain hash indexes per
//! column, built on demand ([`Relation::ensure_index`]) and from then on
//! updated **incrementally** on every mutation, so selection with any
//! partial binding pattern stays sub-linear across fixpoint rounds.
//!
//! Two further pieces serve the bottom-up evaluators:
//!
//! * [`DeltaDatabase`] — the stable/delta split a semi-naive fixpoint
//!   advances round by round;
//! * [`plan`] — compiled conjunction joins ([`ConjunctionPlan`]): dense
//!   variable slots, greedy literal reordering, precomputed selection
//!   shapes, borrowing execution.

pub mod database;
pub mod delta;
pub mod plan;
pub mod relation;

pub use database::Database;
pub use delta::DeltaDatabase;
pub use plan::{
    AtomTemplate, ConjunctionPlan, JoinStep, PatTerm, PlanStats, SlotMap, StepStrategy,
    PAR_MIN_PROBE_OUTER,
};
pub use relation::{Matches, Relation, Selection};

use epilog_syntax::Param;

/// A stored tuple: a fixed-arity vector of parameters.
pub type Tuple = Vec<Param>;
