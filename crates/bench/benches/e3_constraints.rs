//! E3/F6 — enforcing the §3 constraints, full recheck vs the
//! incremental (Nicolas-style) specialization of §8 item (4).
//!
//! Shape expectation: the full check revisits every employee on every
//! update (cost grows with database size); the incremental check touches
//! only the instances matching the updated fact (near-constant), so the
//! gap widens linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epilog_bench::workloads::employees_db;
use epilog_core::IncrementalChecker;
use epilog_prover::Prover;
use epilog_syntax::{parse, Formula};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let constraints = [
        parse("forall x. K emp(x) -> K (exists y. ss(x, y))").unwrap(),
        parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap(),
    ];
    let checker = IncrementalChecker::new(&constraints).unwrap();
    let fact = match parse("emp(e0)").unwrap() {
        Formula::Atom(a) => a,
        _ => unreachable!(),
    };

    // Correctness gate: both paths agree on a satisfying and a violating
    // state.
    {
        let ok = Prover::new(employees_db(4));
        assert!(checker.check_update(&ok, &fact).is_none());
        assert!(checker.check_full(&ok).is_none());
        let mut bad_theory = employees_db(4);
        bad_theory.assert(parse("emp(Norma)").unwrap()).unwrap();
        let bad = Prover::new(bad_theory);
        let norma = match parse("emp(Norma)").unwrap() {
            Formula::Atom(a) => a,
            _ => unreachable!(),
        };
        assert!(checker.check_update(&bad, &norma).is_some());
        assert!(checker.check_full(&bad).is_some());
    }

    let mut g = c.benchmark_group("e3_constraints");
    g.sample_size(10);
    for n in [4usize, 8, 16, 32] {
        let theory = employees_db(n);
        g.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter_with_setup(
                || Prover::new(theory.clone()),
                |prover| black_box(checker.check_update(&prover, &fact)),
            )
        });
        g.bench_with_input(BenchmarkId::new("full", n), &n, |b, _| {
            b.iter_with_setup(
                || Prover::new(theory.clone()),
                |prover| black_box(checker.check_full(&prover)),
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
