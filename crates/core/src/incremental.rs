//! Incremental integrity checking — the paper's §8 discussion item (4).
//!
//! "Usually a knowledge base will be known to satisfy its constraints.
//! When a (normally) small change is made to it, it should not be
//! necessary to verify all its constraints all over again." (Reiter cites
//! Nicolas 1982 for relational and Lloyd–Topor for deductive databases.)
//!
//! For epistemic constraints in the admissible `¬∃x̄ (KL₁ ∧ … ∧ KLₙ ∧ …)`
//! form this module implements the Nicolas-style specialization: when a
//! ground fact `a` is asserted, a constraint can only *become* violated
//! through instantiations whose positive `K`-literals match `a`. The
//! checker therefore:
//!
//! 1. skips constraints mentioning none of the update's predicates, and
//! 2. for the rest, checks only the violation instances obtained by
//!    unifying the new fact against each matching positive literal.
//!
//! **Soundness boundary** (documented, checked in tests): the
//! specialization is exact when the database's rules cannot derive atoms
//! of a constraint's predicates from the update — in particular for
//! extensional (fact-only) databases, the common case for updates. When
//! rules may propagate, use [`IncrementalChecker::affected`] to detect the
//! situation and fall back to a full check (the conservative default of
//! [`IncrementalChecker::check_update`]).

use crate::ask::certain;
use epilog_prover::Prover;
use epilog_syntax::formula::{Atom, Formula};
use epilog_syntax::{admissible_constraint, Param, Pred, Term, Var};
use std::collections::HashMap;

/// A constraint compiled for incremental checking.
#[derive(Debug, Clone)]
pub struct CompiledConstraint {
    /// The original constraint sentence.
    pub original: Formula,
    /// The admissible `¬∃x̄ body` rewrite.
    pub rewritten: Formula,
    /// The existentially quantified variables `x̄`.
    vars: Vec<Var>,
    /// The matrix `body` (a conjunction of subjective literals).
    body: Formula,
    /// The positive `K`-literal atom patterns in the matrix.
    positive_patterns: Vec<Atom>,
}

/// Why compilation failed: the constraint is outside the
/// `¬∃x̄ (conjunction)` fragment this checker specializes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotCompilable(pub String);

impl CompiledConstraint {
    /// Compile a constraint (in natural `∀/⊃` or already-rewritten form).
    pub fn compile(ic: &Formula) -> Result<Self, NotCompilable> {
        let rewritten = admissible_constraint(ic);
        // Expect ¬∃x̄ body.
        let Formula::Not(inner) = &rewritten else {
            return Err(NotCompilable(rewritten.to_string()));
        };
        let mut vars = Vec::new();
        let mut cur: &Formula = inner;
        while let Formula::Exists(x, b) = cur {
            vars.push(*x);
            cur = b;
        }
        let body = cur.clone();
        // Collect positive K-literal atoms from the conjunction.
        let mut positive_patterns = Vec::new();
        collect_positive_k_atoms(&body, &mut positive_patterns);
        if positive_patterns.is_empty() {
            return Err(NotCompilable(format!(
                "no positive K-literal to index on in {rewritten}"
            )));
        }
        Ok(CompiledConstraint {
            original: ic.clone(),
            rewritten,
            vars,
            body,
            positive_patterns,
        })
    }

    /// The predicates whose updates can newly violate this constraint.
    pub fn trigger_preds(&self) -> Vec<Pred> {
        self.positive_patterns.iter().map(|a| a.pred).collect()
    }

    /// The violation-check instances induced by a new ground fact: for
    /// each positive pattern matching the fact, the body with the matched
    /// variables bound and the rest existentially quantified. The
    /// constraint (restricted to the update) is violated iff one of these
    /// sentences is certain.
    pub fn violation_instances(&self, fact: &Atom) -> Vec<Formula> {
        let mut out = Vec::new();
        for pattern in &self.positive_patterns {
            if pattern.pred != fact.pred {
                continue;
            }
            let Some(binding) = match_pattern(pattern, fact) else {
                continue;
            };
            let map: HashMap<Var, Term> =
                binding.iter().map(|(v, p)| (*v, Term::Param(*p))).collect();
            let mut w = self.body.subst(&map);
            for v in self.vars.iter().rev() {
                if !binding.contains_key(v) {
                    w = Formula::exists(*v, w);
                }
            }
            debug_assert!(w.is_sentence(), "instantiated violation check is closed");
            out.push(w);
        }
        out
    }
}

/// Incremental checker over a set of compiled constraints.
#[derive(Debug, Default)]
pub struct IncrementalChecker {
    constraints: Vec<CompiledConstraint>,
}

impl IncrementalChecker {
    /// Build from constraints, compiling each.
    pub fn new(constraints: &[Formula]) -> Result<Self, NotCompilable> {
        let compiled = constraints
            .iter()
            .map(CompiledConstraint::compile)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(IncrementalChecker {
            constraints: compiled,
        })
    }

    /// The constraints that an update of this predicate can affect.
    pub fn affected(&self, pred: Pred) -> Vec<&CompiledConstraint> {
        self.constraints
            .iter()
            .filter(|c| c.trigger_preds().contains(&pred))
            .collect()
    }

    /// Check an update: `prover` must already include the new fact.
    /// Returns the first violated constraint, if any.
    ///
    /// The specialization is exact when `prover`'s theory has no rules
    /// deriving a trigger predicate; otherwise this method conservatively
    /// re-checks the affected constraints in full.
    pub fn check_update(&self, prover: &Prover, fact: &Atom) -> Option<&CompiledConstraint> {
        let rules_derive_triggers = !prover.theory().rules().is_empty();
        for c in self.affected(fact.pred) {
            if rules_derive_triggers {
                // Conservative fallback: full check of this constraint.
                if !certain(prover, &c.rewritten) {
                    return Some(c);
                }
            } else {
                for violation in c.violation_instances(fact) {
                    if certain(prover, &violation) {
                        return Some(c);
                    }
                }
            }
        }
        None
    }

    /// Full (non-incremental) check of every constraint, for comparison.
    pub fn check_full(&self, prover: &Prover) -> Option<&CompiledConstraint> {
        self.constraints
            .iter()
            .find(|c| !certain(prover, &c.rewritten))
    }
}

fn collect_positive_k_atoms(w: &Formula, out: &mut Vec<Atom>) {
    match w {
        Formula::And(a, b) => {
            collect_positive_k_atoms(a, out);
            collect_positive_k_atoms(b, out);
        }
        Formula::Know(inner) => {
            // K over an atom, or K over a conjunction of atoms.
            collect_bare_atoms(inner, out);
        }
        _ => {}
    }
}

fn collect_bare_atoms(w: &Formula, out: &mut Vec<Atom>) {
    match w {
        Formula::Atom(a) => out.push(a.clone()),
        Formula::And(a, b) => {
            collect_bare_atoms(a, out);
            collect_bare_atoms(b, out);
        }
        _ => {}
    }
}

/// Match a pattern atom against a ground fact, binding pattern variables.
fn match_pattern(pattern: &Atom, fact: &Atom) -> Option<HashMap<Var, Param>> {
    debug_assert_eq!(pattern.pred, fact.pred);
    let mut out = HashMap::new();
    for (t, f) in pattern.terms.iter().zip(&fact.terms) {
        let fp = f.as_param().expect("facts are ground");
        match t {
            Term::Param(p) => {
                if *p != fp {
                    return None;
                }
            }
            Term::Var(v) => match out.get(v) {
                Some(prev) if *prev != fp => return None,
                _ => {
                    out.insert(*v, fp);
                }
            },
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::{parse, Theory};

    fn ga(src: &str) -> Atom {
        match parse(src).unwrap() {
            Formula::Atom(a) => a,
            other => panic!("not an atom: {other}"),
        }
    }

    fn checker() -> IncrementalChecker {
        IncrementalChecker::new(&[
            parse("forall x. K emp(x) -> K (exists y. ss(x, y))").unwrap(),
            parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn compilation_extracts_patterns() {
        let c = CompiledConstraint::compile(
            &parse("forall x. K emp(x) -> K (exists y. ss(x, y))").unwrap(),
        )
        .unwrap();
        assert_eq!(c.trigger_preds(), vec![Pred::new("emp", 1)]);
        let c2 = CompiledConstraint::compile(
            &parse("forall x, y, z. K ss(x, y) & K ss(x, z) -> K y = z").unwrap(),
        )
        .unwrap();
        assert_eq!(
            c2.trigger_preds(),
            vec![Pred::new("ss", 2), Pred::new("ss", 2)]
        );
    }

    #[test]
    fn irrelevant_updates_skip_all_constraints() {
        let ck = checker();
        assert!(ck.affected(Pred::new("hobby", 2)).is_empty());
        let prover =
            Prover::new(Theory::from_text("emp(Mary)\nss(Mary, n1)\nhobby(Mary, chess)").unwrap());
        assert!(ck
            .check_update(&prover, &ga("hobby(Mary, chess)"))
            .is_none());
    }

    #[test]
    fn relevant_update_detects_violation() {
        let ck = checker();
        // Asserting emp(Sue) with no number on file: violated.
        let prover = Prover::new(Theory::from_text("emp(Mary)\nss(Mary, n1)\nemp(Sue)").unwrap());
        let hit = ck.check_update(&prover, &ga("emp(Sue)"));
        assert!(hit.is_some());
        assert!(hit.unwrap().original.to_string().contains("emp"));
    }

    #[test]
    fn relevant_update_passes_when_satisfied() {
        let ck = checker();
        let prover = Prover::new(
            Theory::from_text("emp(Mary)\nss(Mary, n1)\nemp(Sue)\nss(Sue, n2)").unwrap(),
        );
        assert!(ck.check_update(&prover, &ga("emp(Sue)")).is_none());
    }

    #[test]
    fn fd_violation_caught_incrementally() {
        let ck = checker();
        let prover = Prover::new(Theory::from_text("ss(Mary, n1)\nss(Mary, n2)").unwrap());
        let hit = ck.check_update(&prover, &ga("ss(Mary, n2)"));
        assert!(hit.is_some());
        assert!(hit.unwrap().original.to_string().contains("y = z"));
    }

    #[test]
    fn incremental_agrees_with_full_on_fact_databases() {
        let ck = checker();
        // A family of states and updates; the incremental verdict must
        // match the full recheck whenever the *prior* state satisfied the
        // constraints (the incremental premise).
        let cases = [
            ("ss(Mary, n1)\nemp(Mary)", "emp(Mary)"),
            ("ss(Mary, n1)\nemp(Mary)\nemp(Sue)", "emp(Sue)"),
            ("ss(Mary, n1)\nss(Mary, n2)", "ss(Mary, n2)"),
            ("ss(Mary, n1)\nss(Sue, n2)", "ss(Sue, n2)"),
        ];
        for (src, fact) in cases {
            let prover = Prover::new(Theory::from_text(src).unwrap());
            let inc = ck.check_update(&prover, &ga(fact)).is_some();
            let full = ck.check_full(&prover).is_some();
            assert_eq!(inc, full, "divergence on {src:?} + {fact}");
        }
    }

    #[test]
    fn incremental_check_through_routed_prover() {
        // Extensional update states are definite, so the checker's
        // entailment questions ride the engine-backed fast path.
        let ck = checker();
        let bad = crate::engine::prover_for(
            Theory::from_text("emp(Mary)\nss(Mary, n1)\nemp(Sue)").unwrap(),
        );
        assert!(bad.atom_model().is_some());
        assert!(ck.check_update(&bad, &ga("emp(Sue)")).is_some());
        let good = crate::engine::prover_for(Theory::from_text("emp(Mary)\nss(Mary, n1)").unwrap());
        assert!(ck.check_update(&good, &ga("emp(Mary)")).is_none());
    }

    #[test]
    fn rules_force_conservative_full_check() {
        let ck = checker();
        // A rule derives emp from hired: the update hired(Sue) can violate
        // the emp constraint even though its predicate is not a trigger…
        let prover = Prover::new(
            Theory::from_text("ss(Mary, n1)\nemp(Mary)\nhired(Sue)\nforall x. hired(x) -> emp(x)")
                .unwrap(),
        );
        // …which is why `affected` is keyed on the update's predicate and
        // hired is not a trigger: the caller must consult `affected` per
        // derived predicate or rely on check_update's rule detection for
        // trigger predicates. The full check sees the violation:
        assert!(ck.check_full(&prover).is_some());
        // And the conservative path (any rules present → full recheck of
        // affected constraints) also sees it once the update is keyed on a
        // trigger predicate:
        assert!(ck.check_update(&prover, &ga("emp(Sue)")).is_some());
    }

    #[test]
    fn prohibition_constraints_compile_and_trigger() {
        // ∀x ¬K bad(x) rewrites to ¬∃x K bad(x): the K-literal indexes it.
        let c = CompiledConstraint::compile(&parse("forall x. ~K bad(x)").unwrap()).unwrap();
        assert_eq!(c.trigger_preds(), vec![Pred::new("bad", 1)]);
        let ck = IncrementalChecker::new(&[parse("forall x. ~K bad(x)").unwrap()]).unwrap();
        let prover = Prover::new(Theory::from_text("bad(Joe)").unwrap());
        assert!(ck.check_update(&prover, &ga("bad(Joe)")).is_some());
    }

    #[test]
    fn uncompilable_constraint_rejected() {
        // A positive knowledge *requirement* is not of the ¬∃ shape.
        let r = CompiledConstraint::compile(&parse("K p").unwrap());
        assert!(r.is_err());
    }
}
