//! E2 — the Section 3 comparison of integrity-constraint definitions.
//!
//! The paper's two counterexamples, as a full definitions-by-databases
//! table: `DB = {emp(Mary)}` should *violate* the social-security
//! constraint, `DB = {}` should *satisfy* it. Only the epistemic
//! Definition 3.5 gets both right.

use epilog::core::{ic_satisfaction, IcDefinition, IcReport};
use epilog::prelude::*;

fn ic_fo() -> Formula {
    parse("forall x. emp(x) -> exists y. ss(x, y)").unwrap()
}

fn ic_modal() -> Formula {
    parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap()
}

#[test]
fn definition_31_wrong_on_emp_mary() {
    // Consistency: {emp(Mary)} + IC is satisfiable, so 3.1 says satisfied
    // — but Mary has no number on file.
    let p = Prover::new(Theory::from_text("emp(Mary)").unwrap());
    assert_eq!(
        ic_satisfaction(&p, &ic_fo(), IcDefinition::Consistency),
        IcReport::Satisfied
    );
}

#[test]
fn definition_32_wrong_on_empty_db() {
    // Entailment: {} ⊭ IC, so 3.2 says violated — but an empty DB should
    // satisfy every such constraint.
    let p = Prover::new(Theory::empty());
    assert_eq!(
        ic_satisfaction(&p, &ic_fo(), IcDefinition::Entailment),
        IcReport::Violated
    );
}

#[test]
fn definition_35_right_on_both() {
    let mary = Prover::new(Theory::from_text("emp(Mary)").unwrap());
    assert_eq!(
        ic_satisfaction(&mary, &ic_modal(), IcDefinition::Epistemic),
        IcReport::Violated,
        "Mary is a known employee with no known number"
    );
    let empty = Prover::new(Theory::empty());
    assert_eq!(
        ic_satisfaction(&empty, &ic_modal(), IcDefinition::Epistemic),
        IcReport::Satisfied,
        "no known employees, nothing to check"
    );
    let complete = Prover::new(Theory::from_text("emp(Mary)\nss(Mary, n1)").unwrap());
    assert_eq!(
        ic_satisfaction(&complete, &ic_modal(), IcDefinition::Epistemic),
        IcReport::Satisfied
    );
}

#[test]
fn full_table() {
    // The complete matrix the paper implies, for the record.
    use IcDefinition::*;
    use IcReport::*;
    let cases: Vec<(&str, IcDefinition, IcReport)> = vec![
        // DB = {emp(Mary)} — intuition: violated.
        ("emp(Mary)", Consistency, Satisfied),    // wrong
        ("emp(Mary)", Entailment, Violated),      // right, by accident
        ("emp(Mary)", CompConsistency, Violated), // right (Comp closes ss)
        ("emp(Mary)", CompEntailment, Violated),  // right (Comp closes ss)
        // DB = {} — intuition: satisfied.
        ("", Consistency, Satisfied),     // right, by accident
        ("", Entailment, Violated),       // wrong
        ("", CompConsistency, Satisfied), // right
        ("", CompEntailment, Satisfied),  // right
    ];
    for (src, def, expected) in cases {
        let p = Prover::new(Theory::from_text(src).unwrap());
        assert_eq!(
            ic_satisfaction(&p, &ic_fo(), def),
            expected,
            "DB = {{{src}}} under {def}"
        );
    }
    // And the epistemic definition is right on both (tested above); the
    // decisive separation is the disjunctive database, where Comp does
    // not even apply but Definition 3.5 still works:
    let disj = Prover::new(Theory::from_text("emp(Mary) | emp(Sue)").unwrap());
    assert_eq!(
        ic_satisfaction(&disj, &ic_fo(), CompEntailment),
        Inapplicable
    );
    assert_eq!(
        ic_satisfaction(&disj, &ic_modal(), Epistemic),
        Satisfied,
        "neither Mary nor Sue is a *known* employee, so nothing is required"
    );
}

#[test]
fn update_rejection_workflow() {
    // Integrity maintenance = query evaluation, wired into updates.
    let mut db = EpistemicDb::from_text("").unwrap();
    db.add_constraint(ic_modal()).unwrap();
    assert!(db.assert(parse("emp(Mary)").unwrap()).is_err());
    db.assert(parse("ss(Mary, n1)").unwrap()).unwrap();
    db.assert(parse("emp(Mary)").unwrap()).unwrap();
    assert!(db.satisfies_constraints());
}
