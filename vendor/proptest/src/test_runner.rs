//! The `proptest!` macro, its configuration, and the deterministic RNG.

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each property must pass.
    pub cases: u32,
    /// Give up if this many `prop_assume!` rejections accumulate.
    pub max_global_rejects: u32,
}

/// The `PROPTEST_CASES` environment override, mirroring the real crate:
/// when set to a positive integer it replaces the case count of every
/// config — both defaults and explicit `with_cases` choices — so a CI
/// deep-fuzz job can scale whole suites up without touching the code.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(256),
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
            ..Default::default()
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is skipped, not failed.
    Reject(String),
    /// A `prop_assert*!` failed — the whole property fails.
    Fail(String),
}

impl TestCaseError {
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// SplitMix64, seeded from the property's name so failures reproduce
/// across runs and machines. (The real crate seeds from the OS and
/// persists failing seeds; determinism is the better trade without
/// shrinking.)
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` via a widening multiply.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below 0");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// `proptest! { ... }` — generates one `#[test]` fn per property.
///
/// Each case draws every `name in strategy` binding, runs the body, and
/// tallies the outcome; `prop_assume!` rejections retry with fresh
/// values. No shrinking: the panic carries the formatted assertion
/// message, and the tests interpolate the offending input themselves.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                // Build each strategy once; a tuple of strategies is itself
                // a strategy of tuples, so one generate() per case draws
                // every binding.
                let __strategies = ($(($strategy),)+);
                let mut __passed: u32 = 0;
                let mut __rejected: u32 = 0;
                while __passed < __config.cases {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            return ::std::result::Result::Ok(());
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(__why),
                        ) => {
                            __rejected += 1;
                            if __rejected > __config.max_global_rejects {
                                panic!(
                                    "property {} rejected too many cases ({}): last: {}",
                                    stringify!($name), __rejected, __why
                                );
                            }
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__why),
                        ) => {
                            panic!(
                                "property {} failed after {} passing case(s): {}",
                                stringify!($name), __passed, __why
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Fail the property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fail the property unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
                    __l, __r, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fail the property unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l != *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left != right`\n  both: {:?}", __l),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l != *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left != right`\n  both: {:?}\n {}",
                    __l, format!($($fmt)+)
                ),
            ));
        }
    }};
}
