//! # epilog-persist — durability for the epistemic database
//!
//! Reiter's treatment views a database as an evolving epistemic theory
//! whose updates must preserve integrity; the iterated-revision
//! literature frames the knowledge base as the *history* of those
//! revisions. This crate makes that history durable:
//!
//! * [`Wal`] — a write-ahead log of committed transactions as textual
//!   records (sentences via the `epilog-syntax` pretty-printer, read back
//!   with `parse`), each framed by an LSN / length / checksum header;
//! * [`Snapshot`] — the full theory, constraints, and (for definite
//!   theories) the materialized least model at a log position, so
//!   recovery is snapshot-load + tail-replay instead of
//!   replay-from-genesis, with [`DurableDb::compact`] truncating the
//!   covered log prefix;
//! * [`DurableDb`] — the wrapper that threads every commit through the
//!   log (log-before-apply, [`FsyncPolicy`] configurable) and whose
//!   [`DurableDb::recover`] replays through the real `Transaction::commit`
//!   path — recovered state re-verifies constraints and rebuilds or
//!   resumes the incremental model exactly as the live path does —
//!   tolerating a torn log tail (truncate at the first corrupt record,
//!   reported in the [`RecoveryReport`]);
//! * [`ServingDb`] — the concurrent serving layer: lock-free MVCC
//!   snapshot reads (`epilog-core`'s `StateCell`) with a single writer
//!   thread draining a bounded commit queue and batching many
//!   transactions into one log write + one fsync (group commit).
//!
//! # Loss windows are crash-only
//!
//! Under [`FsyncPolicy::Batch`]`(n)` (and `Never`) up to `n` (resp.
//! unboundedly many) acknowledged commits may await an fsync —
//! [`DurableDb::pending_unsynced`] reports how many right now. Only a
//! *crash* can lose them: dropping the database (or its [`Wal`]) flushes
//! the window, so any clean shutdown — including a panic that unwinds —
//! leaves the log complete. [`ServingDb`] acknowledges commits only
//! after the batch fsync, so its callers never see the window at all.
//!
//! # Quickstart
//!
//! ```
//! use epilog_core::Answer;
//! use epilog_persist::{DurableDb, FsyncPolicy};
//! use epilog_syntax::{parse, Theory};
//!
//! let dir = std::env::temp_dir().join(format!("epilog-quickstart-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // Create a durable database and commit through the log.
//! let theory = Theory::from_text("forall x. emp(x) -> person(x)").unwrap();
//! let mut db = DurableDb::create(&dir, theory, FsyncPolicy::Always).unwrap();
//! db.add_constraint(parse("forall x. K emp(x) -> exists y. K ss(x, y)").unwrap()).unwrap();
//! let report = db
//!     .transaction()
//!     .assert(parse("ss(Mary, n1)").unwrap())
//!     .assert(parse("emp(Mary)").unwrap())
//!     .commit()
//!     .unwrap();
//! assert_eq!(report.asserted, 2);
//!
//! // "Crash": drop the handle without any shutdown ceremony.
//! drop(db);
//!
//! // Recover: snapshot + log replay through the real commit path.
//! let (db, recovery) = DurableDb::recover(&dir, FsyncPolicy::Always).unwrap();
//! assert_eq!(recovery.records_replayed, 2); // the constraint + the batch
//! assert_eq!(db.ask(&parse("K person(Mary)").unwrap()), Answer::Yes);
//! assert!(db.satisfies_constraints());
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod durable;
pub mod fault;
pub mod serve;
pub mod snapshot;
pub mod wal;

/// 64-bit FNV-1a — the checksum both on-disk formats (log records and
/// snapshots) frame their payloads with. Tiny, dependency-free, and
/// plenty for torn-write detection; not a cryptographic seal.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `fsync` the directory itself, so the directory entries of freshly
/// created/renamed files (the log, a snapshot) survive power loss —
/// without this, `FsyncPolicy::Always`'s durability claim would cover
/// file *contents* but not their *names*.
pub(crate) fn sync_dir(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

pub use durable::{
    CompactStats, DurableDb, DurableTransaction, PersistError, RecoveryOptions, RecoveryReport,
};
pub use fault::{FaultInjector, FaultKind};
pub use serve::{
    CommitHandle, CommitReceipt, ServeError, ServeOptions, ServeStats, ServingDb, TxOp, WriterExit,
    WriterGate,
};
pub use snapshot::{Snapshot, SnapshotError};
pub use wal::{FsyncPolicy, TornTail, Wal, WalOp, WalRecord, WalScan};
