//! The formula AST for KFOPCE (and its K-free sublanguage FOPCE).
//!
//! The paper's official language has the primitives `¬ ∧ ∀ K` plus atoms and
//! equality; `∨ ⊃ ≡ ∃` are definable. We keep the full connective set in the
//! AST because several syntactic classes of the paper (positive existential
//! formulas, rules, the safe/admissible fragments) are defined over the rich
//! surface syntax, and because pretty-printing the paper's examples requires
//! it. [`crate::transform`] provides the desugarings.

use crate::symbols::{Param, Pred, Var};
use crate::term::Term;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// An atomic formula `P(t₁, …, tₙ)`.
///
/// Invariant: `terms.len() == pred.arity()` (enforced by [`Atom::new`]).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Atom {
    /// The predicate symbol.
    pub pred: Pred,
    /// The argument terms, of length `pred.arity()`.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom, checking that the argument count matches the
    /// predicate's arity.
    ///
    /// # Panics
    /// Panics if `terms.len() != pred.arity()`; arity mismatches are
    /// programming errors, not data errors.
    pub fn new(pred: Pred, terms: Vec<Term>) -> Self {
        assert_eq!(
            terms.len(),
            pred.arity(),
            "arity mismatch for predicate {:?}",
            pred
        );
        Atom { pred, terms }
    }

    /// Whether every argument is a parameter. Ground atoms are the atomic
    /// *sentences* out of which worlds are built (§2).
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(Term::is_ground)
    }

    /// The variables occurring in the atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !seen.contains(v) {
                    seen.push(*v);
                }
            }
        }
        seen
    }

    /// Apply a variable→term substitution to the atom.
    pub fn subst(&self, map: &HashMap<Var, Term>) -> Atom {
        Atom {
            pred: self.pred,
            terms: self
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => map.get(v).copied().unwrap_or(*t),
                    Term::Param(_) => *t,
                })
                .collect(),
        }
    }

    /// If ground, the parameter tuple; otherwise `None`.
    pub fn param_tuple(&self) -> Option<Vec<Param>> {
        self.terms.iter().map(Term::as_param).collect()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pred)?;
        if !self.terms.is_empty() {
            write!(f, "(")?;
            for (i, t) in self.terms.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A KFOPCE formula. FOPCE formulas are exactly those containing no
/// [`Formula::Know`] node (test with [`crate::classify::is_first_order`]).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// An atomic formula `P(t̄)`.
    Atom(Atom),
    /// Equality `t₁ = t₂`. Parameters are semantically pairwise distinct.
    Eq(Term, Term),
    /// Negation `¬w`.
    Not(Box<Formula>),
    /// Conjunction `w₁ ∧ w₂`.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction `w₁ ∨ w₂`.
    Or(Box<Formula>, Box<Formula>),
    /// Material implication `w₁ ⊃ w₂`.
    Implies(Box<Formula>, Box<Formula>),
    /// Biconditional `w₁ ≡ w₂`.
    Iff(Box<Formula>, Box<Formula>),
    /// Universal quantification `(∀x)w`; `x` ranges over the parameters.
    Forall(Var, Box<Formula>),
    /// Existential quantification `(∃x)w`.
    Exists(Var, Box<Formula>),
    /// The epistemic operator `Kw`: "the database knows `w`".
    Know(Box<Formula>),
}

impl Formula {
    // ----- constructors ---------------------------------------------------

    /// Atom from a predicate name and terms (convenience; interns the
    /// predicate with the arity implied by `terms`).
    pub fn atom(pred: &str, terms: Vec<Term>) -> Formula {
        let n = terms.len();
        Formula::Atom(Atom::new(Pred::new(pred, n), terms))
    }

    /// A propositional atom (0-ary predicate).
    pub fn prop(name: &str) -> Formula {
        Formula::atom(name, vec![])
    }

    /// Equality `t₁ = t₂`.
    pub fn eq(a: impl Into<Term>, b: impl Into<Term>) -> Formula {
        Formula::Eq(a.into(), b.into())
    }

    /// Negation. (Deliberately shares its name with [`std::ops::Not`]:
    /// it is the constructor the combinator style `Formula::not(w)` and
    /// `prop_map(Formula::not)` read best with.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(w: Formula) -> Formula {
        Formula::Not(Box::new(w))
    }

    /// Binary conjunction.
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(Box::new(a), Box::new(b))
    }

    /// Binary disjunction.
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(Box::new(a), Box::new(b))
    }

    /// Implication.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// Biconditional.
    pub fn iff(a: Formula, b: Formula) -> Formula {
        Formula::Iff(Box::new(a), Box::new(b))
    }

    /// Universal quantification.
    pub fn forall(x: Var, w: Formula) -> Formula {
        Formula::Forall(x, Box::new(w))
    }

    /// Existential quantification.
    pub fn exists(x: Var, w: Formula) -> Formula {
        Formula::Exists(x, Box::new(w))
    }

    /// `K w`.
    pub fn know(w: Formula) -> Formula {
        Formula::Know(Box::new(w))
    }

    /// Left-associated conjunction of a sequence; `None` on empty input.
    pub fn and_all(ws: Vec<Formula>) -> Option<Formula> {
        ws.into_iter().reduce(Formula::and)
    }

    /// Left-associated disjunction of a sequence; `None` on empty input.
    pub fn or_all(ws: Vec<Formula>) -> Option<Formula> {
        ws.into_iter().reduce(Formula::or)
    }

    // ----- structure ------------------------------------------------------

    /// Immediate subformulas.
    pub fn children(&self) -> Vec<&Formula> {
        match self {
            Formula::Atom(_) | Formula::Eq(_, _) => vec![],
            Formula::Not(w) | Formula::Know(w) | Formula::Forall(_, w) | Formula::Exists(_, w) => {
                vec![w]
            }
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Iff(a, b) => vec![a, b],
        }
    }

    /// All subformulas (including `self`), pre-order.
    pub fn subformulas(&self) -> Vec<&Formula> {
        let mut out = vec![self];
        let mut stack: Vec<&Formula> = self.children();
        while let Some(w) = stack.pop() {
            out.push(w);
            stack.extend(w.children());
        }
        out
    }

    /// Free variables, in a deterministic (sorted) order.
    pub fn free_vars(&self) -> Vec<Var> {
        fn go(w: &Formula, bound: &mut Vec<Var>, out: &mut BTreeSet<Var>) {
            match w {
                Formula::Atom(a) => {
                    for t in &a.terms {
                        if let Term::Var(v) = t {
                            if !bound.contains(v) {
                                out.insert(*v);
                            }
                        }
                    }
                }
                Formula::Eq(a, b) => {
                    for t in [a, b] {
                        if let Term::Var(v) = t {
                            if !bound.contains(v) {
                                out.insert(*v);
                            }
                        }
                    }
                }
                Formula::Not(w) | Formula::Know(w) => go(w, bound, out),
                Formula::And(a, b)
                | Formula::Or(a, b)
                | Formula::Implies(a, b)
                | Formula::Iff(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Formula::Forall(x, w) | Formula::Exists(x, w) => {
                    bound.push(*x);
                    go(w, bound, out);
                    bound.pop();
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out.into_iter().collect()
    }

    /// Whether the formula is a sentence (no free variables).
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Every parameter mentioned anywhere in the formula, sorted.
    pub fn params(&self) -> Vec<Param> {
        let mut out = BTreeSet::new();
        for w in self.subformulas() {
            match w {
                Formula::Atom(a) => {
                    for t in &a.terms {
                        if let Term::Param(p) = t {
                            out.insert(*p);
                        }
                    }
                }
                Formula::Eq(a, b) => {
                    for t in [a, b] {
                        if let Term::Param(p) = t {
                            out.insert(*p);
                        }
                    }
                }
                _ => {}
            }
        }
        out.into_iter().collect()
    }

    /// Every predicate mentioned anywhere in the formula, sorted.
    pub fn preds(&self) -> Vec<Pred> {
        let mut out = BTreeSet::new();
        for w in self.subformulas() {
            if let Formula::Atom(a) = w {
                out.insert(a.pred);
            }
        }
        out.into_iter().collect()
    }

    /// The variables bound by quantifiers, in pre-order of their binders
    /// (with repetition if a variable is bound twice).
    pub fn quantified_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(w) = stack.pop() {
            if let Formula::Forall(x, _) | Formula::Exists(x, _) = w {
                out.push(*x);
            }
            stack.extend(w.children());
        }
        out
    }

    /// Maximum nesting depth of quantifiers (0 for quantifier-free).
    pub fn quantifier_depth(&self) -> usize {
        match self {
            Formula::Atom(_) | Formula::Eq(_, _) => 0,
            Formula::Not(w) | Formula::Know(w) => w.quantifier_depth(),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Iff(a, b) => a.quantifier_depth().max(b.quantifier_depth()),
            Formula::Forall(_, w) | Formula::Exists(_, w) => 1 + w.quantifier_depth(),
        }
    }

    /// Maximum nesting depth of `K` (0 for first-order formulas).
    pub fn modal_depth(&self) -> usize {
        match self {
            Formula::Atom(_) | Formula::Eq(_, _) => 0,
            Formula::Not(w) | Formula::Forall(_, w) | Formula::Exists(_, w) => w.modal_depth(),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Iff(a, b) => a.modal_depth().max(b.modal_depth()),
            Formula::Know(w) => 1 + w.modal_depth(),
        }
    }

    // ----- substitution ---------------------------------------------------

    /// `w|ᵖₓ`: substitute terms for *free* occurrences of variables.
    ///
    /// Since the replacing terms are parameters in all of the paper's uses,
    /// no capture can occur; for generality, substituting a variable that
    /// would be captured panics (the paper's admissible formulas have
    /// distinct quantified variables, so this never triggers there).
    pub fn subst(&self, map: &HashMap<Var, Term>) -> Formula {
        match self {
            Formula::Atom(a) => Formula::Atom(a.subst(map)),
            Formula::Eq(a, b) => {
                let s = |t: &Term| match t {
                    Term::Var(v) => map.get(v).copied().unwrap_or(*t),
                    Term::Param(_) => *t,
                };
                Formula::Eq(s(a), s(b))
            }
            Formula::Not(w) => Formula::not(w.subst(map)),
            Formula::Know(w) => Formula::know(w.subst(map)),
            Formula::And(a, b) => Formula::and(a.subst(map), b.subst(map)),
            Formula::Or(a, b) => Formula::or(a.subst(map), b.subst(map)),
            Formula::Implies(a, b) => Formula::implies(a.subst(map), b.subst(map)),
            Formula::Iff(a, b) => Formula::iff(a.subst(map), b.subst(map)),
            Formula::Forall(x, w) | Formula::Exists(x, w) => {
                // Shadowing: the bound variable is untouched inside.
                let mut inner = map.clone();
                inner.remove(x);
                for t in inner.values() {
                    assert!(
                        t.as_var() != Some(*x),
                        "substitution would capture variable {x}"
                    );
                }
                let body = w.subst(&inner);
                match self {
                    Formula::Forall(..) => Formula::forall(*x, body),
                    _ => Formula::exists(*x, body),
                }
            }
        }
    }

    /// Substitute a single variable by a parameter: the paper's `w|ᵖₓ`.
    pub fn subst1(&self, x: Var, p: Param) -> Formula {
        let mut m = HashMap::new();
        m.insert(x, Term::Param(p));
        self.subst(&m)
    }

    /// Substitute a tuple of parameters for the formula's free variables in
    /// the order returned by [`Formula::free_vars`]: the paper's `w|p̄x̄`.
    ///
    /// # Panics
    /// Panics if `params.len()` differs from the number of free variables.
    pub fn bind_free(&self, params: &[Param]) -> Formula {
        let fv = self.free_vars();
        assert_eq!(fv.len(), params.len(), "binding arity mismatch");
        let map: HashMap<Var, Term> = fv
            .into_iter()
            .zip(params.iter().map(|p| Term::Param(*p)))
            .collect();
        self.subst(&map)
    }

    /// Rename all quantified variables apart (from each other and from the
    /// free variables), producing an alpha-equivalent formula satisfying
    /// condition (2) of admissibility (Def. 5.3).
    pub fn rename_apart(&self) -> Formula {
        fn quantifier(
            is_forall: bool,
            x: &Var,
            body: &Formula,
            ren: &HashMap<Var, Var>,
            used: &mut BTreeSet<Var>,
        ) -> Formula {
            let nx = if used.contains(x) {
                Var::fresh(&x.name())
            } else {
                *x
            };
            used.insert(nx);
            let mut ren2 = ren.clone();
            ren2.insert(*x, nx);
            let body = go(body, &ren2, used);
            if is_forall {
                Formula::forall(nx, body)
            } else {
                Formula::exists(nx, body)
            }
        }
        fn go(w: &Formula, ren: &HashMap<Var, Var>, used: &mut BTreeSet<Var>) -> Formula {
            match w {
                Formula::Atom(a) => {
                    let map: HashMap<Var, Term> =
                        ren.iter().map(|(k, v)| (*k, Term::Var(*v))).collect();
                    Formula::Atom(a.subst(&map))
                }
                Formula::Eq(a, b) => {
                    let s = |t: &Term| match t {
                        Term::Var(v) => ren.get(v).map(|r| Term::Var(*r)).unwrap_or(*t),
                        Term::Param(_) => *t,
                    };
                    Formula::Eq(s(a), s(b))
                }
                Formula::Not(w) => Formula::not(go(w, ren, used)),
                Formula::Know(w) => Formula::know(go(w, ren, used)),
                Formula::And(a, b) => Formula::and(go(a, ren, used), go(b, ren, used)),
                Formula::Or(a, b) => Formula::or(go(a, ren, used), go(b, ren, used)),
                Formula::Implies(a, b) => Formula::implies(go(a, ren, used), go(b, ren, used)),
                Formula::Iff(a, b) => Formula::iff(go(a, ren, used), go(b, ren, used)),
                Formula::Forall(x, body) => quantifier(true, x, body, ren, used),
                Formula::Exists(x, body) => quantifier(false, x, body, ren, used),
            }
        }
        let mut used: BTreeSet<Var> = self.free_vars().into_iter().collect();
        go(self, &HashMap::new(), &mut used)
    }
}

// ----- pretty printing ----------------------------------------------------

/// Binding strength for the printer; higher binds tighter. Quantifiers get
/// the lowest strength because their scope extends maximally to the right:
/// they must be parenthesized in any non-rightmost position.
fn prec(w: &Formula) -> u8 {
    match w {
        Formula::Forall(..) | Formula::Exists(..) => 0,
        Formula::Iff(..) => 1,
        Formula::Implies(..) => 2,
        Formula::Or(..) => 3,
        Formula::And(..) => 4,
        Formula::Not(..) | Formula::Know(..) => 5,
        Formula::Atom(..) | Formula::Eq(..) => 6,
    }
}

/// Print one term with binder context: a parameter is `$`-escaped when
/// its name follows the variable convention (see [`Term`]'s `Display`)
/// **or** is shadowed by an enclosing quantifier — in either case the
/// parser would otherwise read the bare name back as a variable, breaking
/// the `parse(display(w)) == w` round-trip the persistence layer's text
/// formats rest on.
fn fmt_term(t: &Term, bound: &[Var], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if let Term::Param(p) = t {
        let name = p.name();
        if bound.iter().any(|v| v.name() == name) && !crate::parse::is_conventional_var(&name) {
            return write!(f, "${name}");
        }
    }
    // The conventional-name escape lives in `Term`'s Display.
    write!(f, "{t}")
}

fn fmt_atom(a: &Atom, bound: &[Var], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "{}", a.pred)?;
    if !a.terms.is_empty() {
        write!(f, "(")?;
        for (i, t) in a.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            fmt_term(t, bound, f)?;
        }
        write!(f, ")")?;
    }
    Ok(())
}

fn fmt_prec(
    w: &Formula,
    parent: u8,
    bound: &mut Vec<Var>,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    let me = prec(w);
    let need = me < parent;
    if need {
        write!(f, "(")?;
    }
    match w {
        Formula::Atom(a) => fmt_atom(a, bound, f)?,
        Formula::Eq(a, b) => {
            fmt_term(a, bound, f)?;
            write!(f, " = ")?;
            fmt_term(b, bound, f)?;
        }
        Formula::Not(inner) => {
            // Print ¬(t₁ = t₂) as t₁ != t₂ for readability.
            if let Formula::Eq(a, b) = inner.as_ref() {
                fmt_term(a, bound, f)?;
                write!(f, " != ")?;
                fmt_term(b, bound, f)?;
            } else {
                write!(f, "~")?;
                fmt_prec(inner, me, bound, f)?;
            }
        }
        Formula::And(a, b) => {
            fmt_prec(a, me, bound, f)?;
            write!(f, " & ")?;
            fmt_prec(b, me + 1, bound, f)?;
        }
        Formula::Or(a, b) => {
            fmt_prec(a, me, bound, f)?;
            write!(f, " | ")?;
            fmt_prec(b, me + 1, bound, f)?;
        }
        Formula::Implies(a, b) => {
            fmt_prec(a, me + 1, bound, f)?;
            write!(f, " -> ")?;
            fmt_prec(b, me, bound, f)?;
        }
        Formula::Iff(a, b) => {
            // Left-associative, matching the parser.
            fmt_prec(a, me, bound, f)?;
            write!(f, " <-> ")?;
            fmt_prec(b, me + 1, bound, f)?;
        }
        Formula::Forall(x, body) => {
            write!(f, "forall {x}. ")?;
            bound.push(*x);
            fmt_prec(body, me, bound, f)?;
            bound.pop();
        }
        Formula::Exists(x, body) => {
            write!(f, "exists {x}. ")?;
            bound.push(*x);
            fmt_prec(body, me, bound, f)?;
            bound.pop();
        }
        Formula::Know(body) => {
            write!(f, "K ")?;
            fmt_prec(body, me, bound, f)?;
        }
    }
    if need {
        write!(f, ")")?;
    }
    Ok(())
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_prec(self, 0, &mut Vec::new(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }
    fn p(n: &str) -> Param {
        Param::new(n)
    }

    fn teach(a: impl Into<Term>, b: impl Into<Term>) -> Formula {
        Formula::atom("Teach", vec![a.into(), b.into()])
    }

    #[test]
    fn atom_arity_checked() {
        let pred = Pred::new("Teach", 2);
        let ok = Atom::new(pred, vec![p("John").into(), p("Math").into()]);
        assert!(ok.is_ground());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn atom_arity_mismatch_panics() {
        let pred = Pred::new("Teach", 2);
        let _ = Atom::new(pred, vec![p("John").into()]);
    }

    #[test]
    fn free_vars_respect_binding() {
        let x = v("x");
        let y = v("y");
        let w = Formula::exists(x, Formula::and(teach(x, y), teach(x, p("CS"))));
        assert_eq!(w.free_vars(), vec![y]);
        assert!(!w.is_sentence());
        assert!(Formula::forall(y, w.clone()).is_sentence());
    }

    #[test]
    fn subst_binds_only_free() {
        let x = v("x");
        let w = Formula::and(teach(x, p("CS")), Formula::exists(x, teach(x, p("Math"))));
        let s = w.subst1(x, p("John"));
        assert_eq!(
            s.to_string(),
            "Teach(John, CS) & (exists x. Teach(x, Math))"
        );
    }

    #[test]
    fn bind_free_in_sorted_order() {
        let x = v("ax");
        let y = v("by");
        let w = teach(y, x);
        let fv = w.free_vars();
        // sorted deterministic order
        assert_eq!(fv.len(), 2);
        let b = w.bind_free(&[p("P1"), p("P2")]);
        assert!(b.is_sentence());
    }

    #[test]
    fn params_and_preds_collected() {
        let w = Formula::and(teach(p("John"), p("Math")), Formula::prop("q"));
        assert_eq!(w.params(), vec![p("John"), p("Math")]);
        assert_eq!(w.preds().len(), 2);
    }

    #[test]
    fn modal_and_quantifier_depth() {
        let x = v("x");
        let w = Formula::know(Formula::exists(x, Formula::know(teach(x, p("CS")))));
        assert_eq!(w.modal_depth(), 2);
        assert_eq!(w.quantifier_depth(), 1);
    }

    #[test]
    fn rename_apart_makes_quantified_vars_distinct() {
        let x = v("x");
        // (exists x. (exists x. q(x)) & r(x))  — x bound twice (Result 5.1's
        // cautionary example shape).
        let w = Formula::exists(
            x,
            Formula::and(
                Formula::exists(x, Formula::atom("q", vec![x.into()])),
                Formula::atom("r", vec![x.into()]),
            ),
        );
        let r = w.rename_apart();
        let qv = r.quantified_vars();
        assert_eq!(qv.len(), 2);
        assert_ne!(qv[0], qv[1]);
    }

    #[test]
    fn display_precedence() {
        let a = Formula::prop("p");
        let b = Formula::prop("q");
        let c = Formula::prop("r");
        let w = Formula::or(Formula::and(a.clone(), b.clone()), c.clone());
        assert_eq!(w.to_string(), "p & q | r");
        let w2 = Formula::and(a.clone(), Formula::or(b.clone(), c.clone()));
        assert_eq!(w2.to_string(), "p & (q | r)");
        let w3 = Formula::not(Formula::and(a, b));
        assert_eq!(w3.to_string(), "~(p & q)");
    }

    #[test]
    fn display_negated_equality() {
        let w = Formula::not(Formula::eq(p("a"), p("b")));
        assert_eq!(w.to_string(), "a != b");
    }

    #[test]
    fn and_all_or_all() {
        let ws = vec![Formula::prop("p"), Formula::prop("q"), Formula::prop("r")];
        assert_eq!(
            Formula::and_all(ws.clone()).unwrap().to_string(),
            "p & q & r"
        );
        assert_eq!(Formula::or_all(ws).unwrap().to_string(), "p | q | r");
        assert!(Formula::and_all(vec![]).is_none());
    }

    #[test]
    fn subformulas_count() {
        let w = Formula::and(Formula::prop("p"), Formula::not(Formula::prop("q")));
        assert_eq!(w.subformulas().len(), 4);
    }
}
