//! F9 — join planning: hash build+probe vs single-column index probe
//! with residual filtering on large multi-column equi-joins, and
//! cost-based vs greedy literal ordering.
//!
//! Shape expectation: on the skewed equi-join the probe path examines
//! `Θ(n²/d)` rows against the hash path's `Θ(n)`, so the gap widens
//! linearly with `n`; on the ordering workload the cost-based order is
//! output-bound (`Θ(m)`) while greedy scans the big relation (`Θ(n)`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epilog_bench::workloads::{join_heavy_program, order_sensitive_program};
use epilog_datalog::PlannerMode;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Correctness gate: both planners compute the same model, only the
    // cost-based one hashes, and it examines at most half the rows.
    {
        let prog = join_heavy_program(1024, 8);
        let (a, cost) = prog.eval_with(true, PlannerMode::CostBased).unwrap();
        let (b, greedy) = prog.eval_with(true, PlannerMode::Greedy).unwrap();
        assert_eq!(a, b);
        assert!(cost.hash_steps > 0);
        assert_eq!(greedy.hash_steps, 0);
        assert!(cost.rows_examined * 2 <= greedy.rows_examined);
    }

    let mut g = c.benchmark_group("f9_joins");
    g.sample_size(10);
    for n in [256usize, 1024, 4096] {
        let prog = join_heavy_program(n, 8);
        g.bench_with_input(BenchmarkId::new("equijoin_hash", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval_with(true, PlannerMode::CostBased).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("equijoin_probe", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval_with(true, PlannerMode::Greedy).unwrap()))
        });
    }
    for n in [256usize, 1024, 4096] {
        let prog = order_sensitive_program(n, 16);
        g.bench_with_input(BenchmarkId::new("order_cost", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval_with(true, PlannerMode::CostBased).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("order_greedy", n), &n, |b, _| {
            b.iter(|| black_box(prog.eval_with(true, PlannerMode::Greedy).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
