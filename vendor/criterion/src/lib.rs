//! Offline shim for the subset of the `criterion` 0.5 API used by the
//! benches in `crates/bench/benches/`.
//!
//! The build container has no route to a crates.io mirror, so the real
//! crate cannot be fetched. This shim keeps the bench sources
//! source-compatible (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `iter`, `iter_with_setup`, `criterion_group!`,
//! `criterion_main!`, `BenchmarkId`, `Throughput`, `black_box`) and
//! implements a simple but honest measurement loop: per benchmark it
//! warms up once, then times `sample_size` executions and reports
//! min / median / mean wall-clock time. No HTML reports, no statistics
//! beyond that, no command-line filtering.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (printed, not otherwise used).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Identifier of a parameterized benchmark: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing harness handed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Measured per-sample durations, collected by `iter`/`iter_with_setup`.
    measurements: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` once per sample (after one untimed warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.measurements.push(start.elapsed());
        }
    }

    /// Like `iter`, but re-runs `setup` untimed before every sample.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.measurements.push(start.elapsed());
        }
    }

    /// `iter_batched` collapses to `iter_with_setup` in this shim.
    pub fn iter_batched<I, O, S, R>(&mut self, setup: S, routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iter_with_setup(setup, routine);
    }
}

/// Batch sizing hint (ignored by the shim's measurement loop).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        measurements: Vec::with_capacity(samples),
    };
    f(&mut b);
    let mut sorted = b.measurements.clone();
    sorted.sort();
    let min = sorted.first().copied().unwrap_or_default();
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
    let total: Duration = sorted.iter().sum();
    let mean = if sorted.is_empty() {
        Duration::ZERO
    } else {
        total / sorted.len() as u32
    };
    let tp = match throughput {
        Some(Throughput::Elements(n)) => format!("  ({n} elems)"),
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => format!("  ({n} bytes)"),
        None => String::new(),
    };
    println!("{label:<50} min {min:>12?}  median {median:>12?}  mean {mean:>12?}{tp}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {
        let _ = self.criterion;
    }
}

/// Entry point; one instance per bench binary, created by `criterion_main!`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // The real default is 100; benches here that care call
            // `sample_size` themselves, so keep un-annotated ones quick.
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        let default_sample_size = self.default_sample_size;
        BenchmarkGroup {
            name,
            criterion: self,
            sample_size: default_sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.to_string(), self.default_sample_size, None, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.default_sample_size, None, |b| {
            f(b, input)
        });
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
