//! The `demo` meta-evaluator of §5.1.
//!
//! The paper's Prolog code, transliterated:
//!
//! ```text
//! demo(f, Σ)        ← first-order(f), prove(f, Σ).
//! demo(¬w, Σ)       ← modal(w), not demo(w, Σ).
//! demo(Kw, Σ)       ← demo(w, Σ).
//! demo((∃x)w, Σ)    ← modal(w), demo(w, Σ).
//! demo(w₁ ∧ w₂, Σ)  ← modal(w₁ ∧ w₂), demo(w₁, Σ), demo(w₂, Σ).
//! ```
//!
//! Conjunction is evaluated left to right, `not` is finite
//! negation-as-failure, and `prove` is the resumable answer enumeration of
//! `epilog_prover::AnswerIter`. In Rust, the success/fail/redo protocol
//! becomes a lazy iterator of binding environments; backtracking is
//! iterator composition.
//!
//! **Theorem 5.1 (soundness).** For admissible `w` over satisfiable `Σ`:
//! if `demo(w, Σ)` succeeds, its bindings `p̄` satisfy `Σ ⊨ w|p̄`; if it
//! finitely fails, then `Σ ⊭ w|p̄` for every `p̄`. The property tests in
//! `crates/core/tests/soundness.rs` check exactly this against the
//! brute-force oracle.

use epilog_prover::{AnswerIter, Prover};
use epilog_syntax::{
    admissibility, is_first_order, transform, Admissibility, Formula, Param, Term, Var,
};
use std::collections::HashMap;

/// A binding environment: variables already bound to parameters.
type Env = HashMap<Var, Param>;

/// The outcome of running `demo` on a sentence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemoOutcome {
    /// `demo` succeeded: `Σ ⊨ w` (Theorem 5.1(1)).
    Succeeds,
    /// `demo` finitely failed: `Σ ⊭ w` (Theorem 5.1(2)); when `w` is
    /// subjective this further means `Σ ⊨ ¬w` (Lemma 5.2).
    FinitelyFails,
}

/// The lazy answer stream produced by [`demo`].
///
/// Yields one parameter tuple per success, aligned with [`DemoStream::vars`]
/// — possibly with repetitions, as §6.1.1 notes. Forcing failure after each
/// success (i.e. just continuing the iteration) recovers *all* answers for
/// queries admissible wrt a finite-instances class.
pub struct DemoStream<'a> {
    inner: Box<dyn Iterator<Item = Env> + 'a>,
    vars: Vec<Var>,
}

impl DemoStream<'_> {
    /// The query's free variables, in the order answer tuples are
    /// reported.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }
}

impl Iterator for DemoStream<'_> {
    type Item = Vec<Param>;

    fn next(&mut self) -> Option<Vec<Param>> {
        let env = self.inner.next()?;
        // Lemma 5.4: on success all free variables are bound to parameters.
        Some(
            self.vars
                .iter()
                .map(|v| {
                    *env.get(v)
                        .unwrap_or_else(|| panic!("Lemma 5.4 violated: {v} unbound after success"))
                })
                .collect(),
        )
    }
}

/// Run the `demo` evaluator on an admissible query.
///
/// Returns the lazy answer stream, or the admissibility failure if the
/// query is outside the fragment Theorem 5.1 covers.
pub fn demo<'a>(prover: &'a Prover, w: &Formula) -> Result<DemoStream<'a>, Admissibility> {
    let verdict = admissibility(w);
    if !verdict.is_admissible() {
        return Err(verdict);
    }
    // The safety rules are stated over the primitives ¬ ∧ ∃ K; expand the
    // defined connectives in modal positions. First-order subtrees go to
    // `prove` whole, whatever their shape.
    let kerneled = kernel_modal(w);
    Ok(DemoStream {
        inner: stream(prover, kerneled, Env::new()),
        vars: w.free_vars(),
    })
}

/// Run `demo` on a sentence, classifying the outcome.
pub fn demo_sentence(prover: &Prover, w: &Formula) -> Result<DemoOutcome, Admissibility> {
    let mut s = demo(prover, w)?;
    Ok(if s.next().is_some() {
        DemoOutcome::Succeeds
    } else {
        DemoOutcome::FinitelyFails
    })
}

/// All answers to an admissible query, deduplicated, in first-derivation
/// order (§6.1.1: iterating `demo` through failure prints all answers,
/// possibly with repetitions — we deduplicate here).
pub fn all_answers(prover: &Prover, w: &Formula) -> Result<Vec<Vec<Param>>, Admissibility> {
    let mut seen = Vec::new();
    for t in demo(prover, w)? {
        if !seen.contains(&t) {
            seen.push(t);
        }
    }
    Ok(seen)
}

/// Expand `∨ ⊃ ≡ ∀` inside modal regions only; first-order subtrees are
/// left intact for `prove`.
fn kernel_modal(w: &Formula) -> Formula {
    if is_first_order(w) {
        return w.clone();
    }
    match w {
        Formula::Not(a) => Formula::not(kernel_modal(a)),
        Formula::Know(a) => Formula::know(kernel_modal(a)),
        Formula::And(a, b) => Formula::and(kernel_modal(a), kernel_modal(b)),
        Formula::Exists(x, a) => Formula::exists(*x, kernel_modal(a)),
        // Modal occurrences of defined connectives: expand one level, then
        // recurse.
        Formula::Or(..) | Formula::Implies(..) | Formula::Iff(..) | Formula::Forall(..) => {
            kernel_modal(&transform::kernel_top(w))
        }
        Formula::Atom(_) | Formula::Eq(_, _) => w.clone(),
    }
}

/// The recursive clause dispatch. `w` is admissible-after-kernel; `env`
/// holds bindings produced by conjuncts to the left.
fn stream<'a>(prover: &'a Prover, w: Formula, env: Env) -> Box<dyn Iterator<Item = Env> + 'a> {
    // Clause 1: first-order formulas go to prove().
    if is_first_order(&w) {
        let bound = apply(&w, &env);
        let free = bound.free_vars();
        let answers = AnswerIter::new(prover, &bound);
        return Box::new(answers.map(move |tuple| {
            let mut env2 = env.clone();
            for (v, p) in free.iter().zip(tuple) {
                env2.insert(*v, p);
            }
            env2
        }));
    }
    match w {
        // Clause 2: negation as finite failure. The scope is a sentence
        // under the current bindings (guaranteed by safety).
        Formula::Not(inner) => {
            debug_assert!(
                apply(&inner, &env).is_sentence(),
                "safety violated: open negation scope {inner}"
            );
            let mut sub = stream(prover, (*inner).clone(), env.clone());
            if sub.next().is_none() {
                Box::new(std::iter::once(env))
            } else {
                Box::new(std::iter::empty())
            }
        }
        // Clause 3: K is dropped — demo answers "does the database know w"
        // by trying to derive w.
        Formula::Know(inner) => stream(prover, *inner, env),
        // Clause 4: the existential dives into its (subjective) scope; the
        // variable is bound by an inner prove() if at all.
        Formula::Exists(_, inner) => stream(prover, *inner, env),
        // Clause 5: left-to-right conjunction; bindings flow rightward.
        Formula::And(a, b) => {
            let b = *b;
            Box::new(stream(prover, *a, env).flat_map(move |env1| stream(prover, b.clone(), env1)))
        }
        other => unreachable!("admissible-after-kernel formulas cannot be {other}"),
    }
}

/// Substitute the environment's bindings into a formula.
fn apply(w: &Formula, env: &Env) -> Formula {
    if env.is_empty() {
        return w.clone();
    }
    let map: HashMap<Var, Term> = env.iter().map(|(v, p)| (*v, Term::Param(*p))).collect();
    w.subst(&map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::{parse, Theory};

    fn teach() -> Prover {
        Prover::new(
            Theory::from_text(
                "Teach(John, Math)
                 exists x. Teach(x, CS)
                 Teach(Mary, Psych) | Teach(Sue, Psych)",
            )
            .unwrap(),
        )
    }

    fn outcome(p: &Prover, q: &str) -> DemoOutcome {
        demo_sentence(p, &parse(q).unwrap()).unwrap()
    }

    #[test]
    fn section1_sentence_queries_via_demo() {
        let p = teach();
        use DemoOutcome::*;
        // K Teach(Mary, CS): no (demo fails; subjective ⇒ Σ ⊨ ¬K…).
        assert_eq!(outcome(&p, "K Teach(Mary, CS)"), FinitelyFails);
        assert_eq!(outcome(&p, "K ~Teach(Mary, CS)"), FinitelyFails);
        // ∃x K Teach(John, x): yes.
        assert_eq!(outcome(&p, "exists x. K Teach(John, x)"), Succeeds);
        // ∃x K Teach(x, CS): no known CS teacher.
        assert_eq!(outcome(&p, "exists x. K Teach(x, CS)"), FinitelyFails);
        // K ∃x Teach(x, CS): yes.
        assert_eq!(outcome(&p, "K (exists x. Teach(x, CS))"), Succeeds);
        // ∃x Teach(x, Psych): yes (first-order, via prove).
        assert_eq!(outcome(&p, "exists x. Teach(x, Psych)"), Succeeds);
        // ∃x K Teach(x, Psych): no known Psych teacher.
        assert_eq!(outcome(&p, "exists x. K Teach(x, Psych)"), FinitelyFails);
    }

    #[test]
    fn open_query_bindings() {
        let p = teach();
        // K Teach(John, x): which courses is John known to teach?
        let answers: Vec<_> = demo(&p, &parse("K Teach(John, x)").unwrap())
            .unwrap()
            .collect();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0][0].name(), "Math");
    }

    #[test]
    fn normal_query_with_naf() {
        // p(x) ∧ ¬K q(x): the §5.2 normal-query shape.
        let prover = Prover::new(Theory::from_text("p(a)\np(b)\nq(a)").unwrap());
        let answers = all_answers(&prover, &parse("p(x) & ~K q(x)").unwrap()).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0][0].name(), "b");
    }

    #[test]
    fn inadmissible_rejected() {
        let p = teach();
        let q = parse("exists x. Teach(x, Psych) & ~K Teach(x, CS)").unwrap();
        assert!(demo(&p, &q).is_err());
    }

    #[test]
    fn conjunction_binds_left_to_right() {
        let prover = Prover::new(Theory::from_text("p(a)\np(b)\nq(b)\nr(b)").unwrap());
        // K p(x) ∧ K q(x) ∧ ¬K s(x): bindings from the left feed the right.
        let answers = all_answers(&prover, &parse("K p(x) & K q(x) & ~K s(x)").unwrap()).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0][0].name(), "b");
    }

    #[test]
    fn negation_as_failure_on_sentences() {
        let prover = Prover::new(Theory::from_text("p(a)").unwrap());
        assert_eq!(
            demo_sentence(&prover, &parse("~K q(a)").unwrap()).unwrap(),
            DemoOutcome::Succeeds
        );
        assert_eq!(
            demo_sentence(&prover, &parse("~K p(a)").unwrap()).unwrap(),
            DemoOutcome::FinitelyFails
        );
    }

    #[test]
    fn admissible_constraint_evaluation() {
        // The Example 5.4 social-security constraint, against a database
        // that violates it and one that satisfies it.
        let ic = parse("~(exists x. K emp(x) & ~K (exists y. ss(x, y)))").unwrap();
        let bad = Prover::new(Theory::from_text("emp(Mary)").unwrap());
        assert_eq!(
            demo_sentence(&bad, &ic).unwrap(),
            DemoOutcome::FinitelyFails
        );
        let good = Prover::new(Theory::from_text("emp(Mary)\nexists y. ss(Mary, y)").unwrap());
        assert_eq!(demo_sentence(&good, &ic).unwrap(), DemoOutcome::Succeeds);
        let empty = Prover::new(Theory::empty());
        assert_eq!(demo_sentence(&empty, &ic).unwrap(), DemoOutcome::Succeeds);
    }

    #[test]
    fn modal_disjunction_through_kernel() {
        // K p ∨ K q is admissible after abbreviation expansion:
        // ¬(¬Kp ∧ ¬Kq).
        let prover = Prover::new(Theory::from_text("p").unwrap());
        assert_eq!(
            demo_sentence(&prover, &parse("K p | K q").unwrap()).unwrap(),
            DemoOutcome::Succeeds
        );
        let neither = Prover::new(Theory::from_text("r").unwrap());
        assert_eq!(
            demo_sentence(&neither, &parse("K p | K q").unwrap()).unwrap(),
            DemoOutcome::FinitelyFails
        );
    }

    #[test]
    fn all_answers_recovers_everything() {
        // §6.1.1: iterating through failure recovers all answers.
        let prover = Prover::new(Theory::from_text("p(a)\np(b)\np(c)\nq(c)").unwrap());
        let answers = all_answers(&prover, &parse("K p(x)").unwrap()).unwrap();
        assert_eq!(answers.len(), 3);
        let answers = all_answers(&prover, &parse("K p(x) & K q(x)").unwrap()).unwrap();
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn demo_through_routed_prover_skips_sat() {
        // A definite database routed through the bottom-up engine: every
        // ground question demo asks is answered from the least model.
        let p = crate::engine::prover_for(Theory::from_text("p(a)\np(b)\nq(b)").unwrap());
        assert!(p.atom_model().is_some());
        let answers = all_answers(&p, &parse("K p(x) & K q(x)").unwrap()).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0][0].name(), "b");
        assert_eq!(p.sat_calls(), 0, "no SAT call on a definite DB");
    }

    #[test]
    fn laziness_first_answer_cheap() {
        let prover = Prover::new(Theory::from_text("p(a)\np(b)\np(c)").unwrap());
        let mut s = demo(&prover, &parse("K p(x)").unwrap()).unwrap();
        assert!(s.next().is_some());
        let calls_after_one = prover.sat_calls();
        let _rest: Vec<_> = s.collect();
        assert!(prover.sat_calls() > calls_after_one);
    }
}
