//! E7 — Section 7: the closed-world assumption.
//!
//! Theorem 7.1 (collapse of K), Example 7.1, Example 7.2 (circumscription
//! and GCWA do not collapse K), Theorem 7.2 (classical IC definitions
//! coincide under CWA), Theorem 7.3 / Example 7.3 (CWA evaluation via
//! `demo(ℛ(w))`), and the relational-database special case.

use epilog::core::closure::{closure_theory, cwa_demo};
use epilog::core::demo;
use epilog::prelude::*;
use epilog::semantics::{gcwa_negations, minimal_worlds, ModelSet};
use epilog::syntax::{modalize, strip_k, Pred};
use proptest::prelude::*;

#[test]
fn theorem_71_k_collapse_systematically() {
    let db = EpistemicDb::from_text("p(a)\nq(a)\nq(b)").unwrap();
    let closed = db.closed();
    assert!(closed.satisfiable());
    for q in [
        "K p(a)",
        "K p(b)",
        "K ~p(b)",
        "exists x. K p(x)",
        "forall x. K q(x) | K ~q(x)",
        "K (p(a) & q(b))",
        "K K p(a)",
        "~K p(b)",
    ] {
        let w = parse(q).unwrap();
        assert_eq!(
            closed.ask(&w),
            closed.ask(&strip_k(&w)),
            "Theorem 7.1 on {q}"
        );
    }
}

#[test]
fn example_71_closed_db_knows_whether() {
    // (∀x)(Kp(x) ∨ K¬p(x)) reduces to the valid (∀x)(p(x) ∨ ¬p(x)).
    let db = EpistemicDb::from_text("p(a)").unwrap();
    let q = parse("forall x. K p(x) | K ~p(x)").unwrap();
    assert_eq!(db.closed().ask(&q), Answer::Yes);
    // The open database does not know whether p(b):
    assert_eq!(db.ask(&q), Answer::No);
}

#[test]
fn example_72_circumscription_and_gcwa() {
    let theory = Theory::from_text("p | q").unwrap();
    let preds = vec![Pred::new("p", 0), Pred::new("q", 0)];
    let ms = ModelSet::models(&theory, &[Param::new("c")], &preds);
    let circ = minimal_worlds(&ms);
    // Circ(Σ) = (p ∧ ¬q) ∨ (¬p ∧ q): two minimal models.
    assert_eq!(circ.worlds().len(), 2);
    // Circ(Σ) ⊨ ¬Kp but Circ(Σ) ⊭_FOPCE ¬p.
    assert!(circ.certain(&parse("~K p").unwrap()));
    assert!(!circ.certain(&parse("~p").unwrap()));
    // The GCWA adds no negations here — the K distinction survives.
    let base = epilog::semantics::oracle::herbrand_base(&[], &preds);
    assert!(gcwa_negations(&ms, &base).is_empty());
    // Contrast: Reiter's Closure of the same Σ is unsatisfiable.
    let db = EpistemicDb::from_text("p | q").unwrap();
    assert!(!db.closed().satisfiable());
}

#[test]
fn theorem_72_definitions_coincide() {
    // For databases with satisfiable closures, Comp-style consistency and
    // entailment readings of first-order ICs coincide.
    let dbs = ["p(a)\nq(a)", "emp(Mary)\nss(Mary, n1)", "e(a, b)\ne(b, c)"];
    let ics = [
        "forall x. p(x) -> q(x)",
        "forall x. emp(x) -> exists y. ss(x, y)",
        "forall x, y. e(x, y) -> x != y",
    ];
    for (src, ic_src) in dbs.iter().zip(ics) {
        let prover = Prover::new(Theory::from_text(src).unwrap());
        let closure = closure_theory(&prover);
        let cp = Prover::new(closure);
        assert!(cp.satisfiable(), "closure of {src:?}");
        let ic = parse(ic_src).unwrap();
        assert_eq!(
            cp.entails(&ic),
            cp.consistent_with(&ic),
            "Theorem 7.2 on {src:?} / {ic_src}"
        );
    }
}

#[test]
fn example_73_both_paths() {
    // Example 7.3's query under CWA, via (1) demo(ℛ(w), Σ) and (2) the
    // materialized closure, plus (3) the KFOPCE query with K already in
    // place (second part of the example: Theorem 7.1 reduces it to the
    // same evaluation).
    let db = EpistemicDb::from_text("q(a)\nq(b)\nr(a, b)").unwrap();
    let w = parse("q(x) & ~(exists y. r(x, y) & q(y))").unwrap();

    let via_demo: Vec<String> = cwa_demo(db.prover(), &w)
        .unwrap()
        .map(|t| t[0].name())
        .collect();
    assert_eq!(via_demo, vec!["b".to_string()]);

    let via_closure: Vec<String> = db
        .closed()
        .answers(&w)
        .iter()
        .map(|t| t[0].name())
        .collect();
    assert_eq!(via_demo, via_closure);

    // The already-epistemic variant Kq(x) ∧ ¬∃y(Kr(x,y) ∧ Kq(y)) — by
    // Theorem 7.1 it is equivalent under CWA to the plain w.
    let epi = parse("K q(x) & ~(exists y. K r(x, y) & K q(y))").unwrap();
    let via_epi: Vec<String> = db
        .closed()
        .answers(&epi)
        .iter()
        .map(|t| t[0].name())
        .collect();
    assert_eq!(via_epi, via_closure);
}

#[test]
fn relational_database_as_model() {
    // §7's relational special case: a ground-atomic DB's closure has the
    // DB itself as unique model, and IC satisfaction = truth in the model.
    let db =
        EpistemicDb::from_text("Emp(Mary, Sales)\nEmp(Sue, Eng)\nMgr(Sales, Ann)\nMgr(Eng, Bob)")
            .unwrap();
    let closed = db.closed();
    assert!(closed.satisfiable());
    assert_eq!(
        closed.world().len(),
        4,
        "the unique model is the instance itself"
    );
    let ic = parse("forall x, y. Emp(x, y) -> exists z. Mgr(y, z)").unwrap();
    assert_eq!(closed.ask(&ic), Answer::Yes);
    let bad_ic = parse("forall x, y. Emp(x, y) -> Mgr(y, Mary)").unwrap();
    assert_eq!(closed.ask(&bad_ic), Answer::No);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 7.3 property test: on random definite databases and random
    /// conjunctive queries with one negated subgoal, demo(ℛ(w)) agrees
    /// with evaluation against the materialized closure.
    #[test]
    fn theorem_73_demo_matches_closure(
        facts in proptest::collection::vec((0..2usize, 0..3usize), 1..6),
        qp in 0..2usize,
        np in 0..2usize,
    ) {
        let params = ["a", "b", "c"];
        let preds = ["p", "q"];
        let src: Vec<String> = facts
            .iter()
            .map(|(pr, pa)| format!("{}({})", preds[*pr], params[*pa]))
            .collect();
        let db = EpistemicDb::from_text(&src.join("\n")).unwrap();
        let w = parse(&format!("{}(x) & ~{}(x)", preds[qp], preds[np])).unwrap();

        let mut via_demo: Vec<String> = cwa_demo(db.prover(), &w)
            .unwrap()
            .map(|t| t[0].name())
            .collect();
        via_demo.sort();
        via_demo.dedup();
        let mut via_closure: Vec<String> =
            db.closed().answers(&w).iter().map(|t| t[0].name()).collect();
        via_closure.sort();
        prop_assert_eq!(via_demo, via_closure, "on {:?} with query {}", src, w);
    }

    /// ℛ(w) is always subjective K₁ (Remark 7.1) and, for the query
    /// shapes of this family, admissible after renaming apart.
    #[test]
    fn remark_71_modalize_shape(qp in 0..2usize, np in 0..2usize) {
        let preds = ["p", "q"];
        let w = parse(&format!(
            "{}(x) & ~(exists y. {}(x) & {}(y))",
            preds[qp], preds[np], preds[qp]
        ))
        .unwrap();
        let m = modalize(&w).rename_apart();
        prop_assert!(epilog::syntax::is_subjective(&m));
        prop_assert!(epilog::syntax::is_k1(&m));
        let prover = Prover::new(Theory::from_text("p(a)").unwrap());
        prop_assert!(demo(&prover, &m).is_ok(), "ℛ(w) admissible: {}", m);
    }
}
