//! Minimal **scoped thread pool** for the epilog workspace.
//!
//! The build container has no route to a crates.io mirror (see
//! `vendor/README.md`), so instead of `rayon` this shim provides the small
//! surface the evaluators need, built directly on [`std::thread::scope`]:
//!
//! * [`scope`] — a rayon-style `scope(|s| ...)` that lets borrowing
//!   closures run on other threads and joins them all before returning;
//! * [`parallel_map`] — run `jobs` indexed closures on up to `threads`
//!   workers with **static chunking** (worker `w` takes jobs
//!   `w, w+threads, …`; no work stealing) and return the results in job
//!   order, so callers can merge deterministically;
//! * [`available`] / [`configured`] — the hardware parallelism and the
//!   `EPILOG_THREADS` override that gates every parallel path in the
//!   workspace.
//!
//! There is no persistent worker pool: threads are spawned per scope and
//! joined at its end. Callers gate parallel entry on work-size thresholds,
//! which amortizes the spawn cost and keeps tiny fixpoints on the
//! sequential path. Worker panics are propagated to the caller
//! ([`std::panic::resume_unwind`]) after the scope joins, so a failing
//! assertion inside a job surfaces exactly like it would sequentially.

use std::num::NonZeroUsize;
use std::thread;

/// Environment variable that overrides the worker-thread budget.
///
/// * unset or unparseable — use [`available`] (all hardware threads);
/// * `0` or `1` — force the sequential path everywhere;
/// * `n ≥ 2` — allow up to `n` worker threads.
pub const THREADS_ENV: &str = "EPILOG_THREADS";

/// Number of hardware threads, at least 1.
#[must_use]
pub fn available() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Effective thread budget: the [`THREADS_ENV`] override when set
/// (`0` is clamped to `1`, i.e. sequential), otherwise [`available`].
#[must_use]
pub fn configured() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => available(),
        },
        Err(_) => available(),
    }
}

/// A scope handle passed to the closure given to [`scope`].
///
/// Wraps [`std::thread::Scope`]; spawned threads may borrow from the
/// enclosing frame (`'env`) and are all joined before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker inside the scope and return its join handle.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(f)
    }
}

/// Create a scope for spawning borrowing threads (rayon-style
/// `scope(|s| ...)`). All threads spawned through the handle are joined
/// before this function returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    thread::scope(|s| f(&Scope { inner: s }))
}

/// Spawn a named long-lived service thread (detached join handle).
///
/// The serving layer's counterpart to [`scope`]: where evaluators fan
/// out borrowing workers and join them before returning, a commit
/// writer or network session lives past its spawning frame, so the
/// closure is `'static` and the caller keeps the [`thread::JoinHandle`].
/// The name shows up in panic messages and debuggers.
///
/// # Panics
/// Panics if the OS refuses to spawn a thread.
pub fn spawn_named<F, T>(name: &str, f: F) -> thread::JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .unwrap_or_else(|e| panic!("failed to spawn thread `{name}`: {e}"))
}

/// Run `run(0..jobs)` on up to `threads` workers and collect the results
/// **in job order**.
///
/// Static chunking, no work stealing: worker `w` executes jobs
/// `w, w + workers, w + 2·workers, …` where `workers = min(threads, jobs)`.
/// With `threads <= 1` (or a single job) everything runs inline on the
/// calling thread — no spawn, bit-for-bit the sequential loop.
///
/// A panicking job aborts the map: remaining workers finish their current
/// jobs, then the panic is propagated to the caller.
pub fn parallel_map<T, F>(jobs: usize, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(jobs);
    if workers <= 1 {
        return (0..jobs).map(run).collect();
    }
    let run = &run;
    let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs);
    slots.resize_with(jobs, || None);
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let mut done = Vec::new();
                    let mut j = w;
                    while j < jobs {
                        done.push((j, run(j)));
                        j += workers;
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(done) => {
                    for (j, v) in done {
                        slots[j] = Some(v);
                    }
                }
                Err(e) => panic = Some(e),
            }
        }
    });
    if let Some(e) = panic {
        std::panic::resume_unwind(e);
    }
    slots
        .into_iter()
        .map(|v| v.expect("static chunking covers every job"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn available_is_at_least_one() {
        assert!(available() >= 1);
        assert!(configured() >= 1);
    }

    #[test]
    fn scope_joins_borrowing_threads() {
        let data = [1u64, 2, 3, 4];
        let sums: Vec<u64> = scope(|s| {
            let lo = s.spawn(|| data[..2].iter().sum());
            let hi = s.spawn(|| data[2..].iter().sum());
            vec![lo.join().unwrap(), hi.join().unwrap()]
        });
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn parallel_map_preserves_job_order() {
        for threads in [1, 2, 4, 7] {
            let out = parallel_map(23, threads, |j| j * j);
            assert_eq!(out, (0..23).map(|j| j * j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_runs_every_job_once() {
        let hits = AtomicUsize::new(0);
        let out = parallel_map(100, 4, |j| {
            hits.fetch_add(1, Ordering::Relaxed);
            j
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn sequential_budget_runs_inline() {
        // With threads <= 1 no worker threads are spawned: the closure
        // runs on the calling thread, observable via thread identity.
        let caller = thread::current().id();
        let ids = parallel_map(5, 1, |_| thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn more_jobs_than_threads_still_covered() {
        let out = parallel_map(11, 3, |j| j + 1);
        assert_eq!(out, (1..=11).collect::<Vec<_>>());
    }

    #[test]
    fn spawn_named_names_the_thread() {
        let h = spawn_named("epilog-test-service", || {
            thread::current().name().map(str::to_string)
        });
        assert_eq!(h.join().unwrap().as_deref(), Some("epilog-test-service"));
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            parallel_map(4, 2, |j| {
                if j == 3 {
                    panic!("boom");
                }
                j
            })
        });
        assert!(r.is_err());
    }
}
