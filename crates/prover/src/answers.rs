//! The enumeration interface `prove(f, Σ)` of §5.1.
//!
//! The paper specifies `prove` behaviourally: successive calls iterate
//! through an enumeration `π` of all parameter tuples `p̄` such that
//! `Σ ⊨_FOPCE f|p̄`, failing when the enumeration is exhausted. In Rust the
//! natural rendering of that success/fail/redo protocol is a lazy
//! [`Iterator`]; `demo`'s backtracking is then ordinary iterator
//! composition.
//!
//! The enumeration ranges over the *answer domain* (active domain plus goal
//! parameters) in deterministic lexicographic order. For goals inside the
//! finite-instances fragment of §6 this is the complete instance set
//! `Instances(f, Σ)` (Lemma 6.3: answers only mention parameters of `Σ`);
//! outside it, the enumeration is still sound but may under-approximate —
//! exactly the case Definition 6.2's `F_Σ` machinery exists to exclude.

use crate::entail::Prover;
use epilog_syntax::{is_first_order, Formula, Param, Var};

/// Lazy stream of answer tuples for a first-order goal.
///
/// Yields each tuple `p̄` (aligned with [`AnswerIter::vars`]) for which
/// `Σ ⊨ f|p̄`, in deterministic order. A goal that is a sentence yields a
/// single empty tuple if entailed, nothing otherwise.
pub struct AnswerIter<'a> {
    prover: &'a Prover,
    formula: Formula,
    vars: Vec<Var>,
    domain: Vec<Param>,
    /// Position in the cartesian enumeration `domain^|vars|`.
    cursor: usize,
    /// Total number of candidate tuples.
    total: usize,
}

impl<'a> AnswerIter<'a> {
    /// Start the enumeration `prove(f, Σ)`.
    ///
    /// # Panics
    /// Panics if `f` is not first-order.
    pub fn new(prover: &'a Prover, f: &Formula) -> Self {
        assert!(is_first_order(f), "prove() accepts FOPCE formulas only");
        let vars = f.free_vars();
        let domain = prover.answer_domain(f);
        let total = if vars.is_empty() {
            1
        } else if domain.is_empty() {
            0
        } else {
            domain
                .len()
                .checked_pow(vars.len() as u32)
                .expect("candidate space overflow")
        };
        AnswerIter {
            prover,
            formula: f.clone(),
            vars,
            domain,
            cursor: 0,
            total,
        }
    }

    /// The free variables of the goal, in the order answer tuples are
    /// reported.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    fn tuple_at(&self, mut idx: usize) -> Vec<Param> {
        let mut out = vec![self.domain[0]; self.vars.len()];
        for slot in out.iter_mut().rev() {
            *slot = self.domain[idx % self.domain.len()];
            idx /= self.domain.len();
        }
        out
    }
}

impl Iterator for AnswerIter<'_> {
    type Item = Vec<Param>;

    fn next(&mut self) -> Option<Vec<Param>> {
        while self.cursor < self.total {
            let idx = self.cursor;
            self.cursor += 1;
            if self.vars.is_empty() {
                if self.prover.entails(&self.formula) {
                    return Some(Vec::new());
                }
                return None;
            }
            let tuple = self.tuple_at(idx);
            let bound = self.formula.bind_free(&tuple);
            if self.prover.entails(&bound) {
                return Some(tuple);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::{parse, Theory};

    fn teach() -> Prover {
        Prover::new(
            Theory::from_text(
                "Teach(John, Math)
                 exists x. Teach(x, CS)
                 Teach(Mary, Psych) | Teach(Sue, Psych)",
            )
            .unwrap(),
        )
    }

    fn names(t: &[Param]) -> Vec<String> {
        t.iter().map(|p| p.name()).collect()
    }

    #[test]
    fn sentence_goal_yields_once() {
        let p = teach();
        let hits: Vec<_> = AnswerIter::new(&p, &parse("Teach(John, Math)").unwrap()).collect();
        assert_eq!(hits, vec![Vec::<Param>::new()]);
        let misses: Vec<_> = AnswerIter::new(&p, &parse("Teach(John, CS)").unwrap()).collect();
        assert!(misses.is_empty());
    }

    #[test]
    fn known_course_of_john() {
        // prove(Teach(John, x), Σ) — the §1 query "is there a known course
        // John teaches": yes, Math.
        let p = teach();
        let answers: Vec<_> = AnswerIter::new(&p, &parse("Teach(John, x)").unwrap()).collect();
        assert_eq!(answers.len(), 1);
        assert_eq!(names(&answers[0]), vec!["Math"]);
    }

    #[test]
    fn no_known_cs_teacher() {
        // ∃x Teach(x, CS) is entailed, but no parameter is a certain
        // answer.
        let p = teach();
        let answers: Vec<_> = AnswerIter::new(&p, &parse("Teach(x, CS)").unwrap()).collect();
        assert!(answers.is_empty());
    }

    #[test]
    fn disjunction_gives_no_individual_answers() {
        let p = teach();
        let answers: Vec<_> = AnswerIter::new(&p, &parse("Teach(x, Psych)").unwrap()).collect();
        assert!(
            answers.is_empty(),
            "neither Mary nor Sue is *known* to teach Psych"
        );
    }

    #[test]
    fn multiple_answers_in_deterministic_order() {
        let p = Prover::new(Theory::from_text("p(a)\np(b)\np(c)\nq(b)").unwrap());
        let answers: Vec<_> = AnswerIter::new(&p, &parse("p(x)").unwrap()).collect();
        assert_eq!(answers.len(), 3);
        let run_again: Vec<_> = AnswerIter::new(&p, &parse("p(x)").unwrap()).collect();
        assert_eq!(answers, run_again, "enumeration order is deterministic");
    }

    #[test]
    fn conjunctive_goal() {
        let p = Prover::new(Theory::from_text("p(a)\np(b)\nq(b)").unwrap());
        let answers: Vec<_> = AnswerIter::new(&p, &parse("p(x) & q(x)").unwrap()).collect();
        assert_eq!(answers.len(), 1);
        assert_eq!(names(&answers[0]), vec!["b"]);
    }

    #[test]
    fn two_variable_goal() {
        let p = Prover::new(Theory::from_text("e(a, b)\ne(b, c)").unwrap());
        let answers: Vec<_> = AnswerIter::new(&p, &parse("e(x, y)").unwrap()).collect();
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn equality_goal_binds() {
        let p = Prover::new(Theory::from_text("p(a)\np(b)").unwrap());
        let answers: Vec<_> = AnswerIter::new(&p, &parse("x = a").unwrap()).collect();
        assert_eq!(answers.len(), 1);
        assert_eq!(names(&answers[0]), vec!["a"]);
    }

    #[test]
    fn empty_domain_no_answers() {
        let p = Prover::new(Theory::empty());
        let answers: Vec<_> = AnswerIter::new(&p, &parse("p(x)").unwrap()).collect();
        assert!(answers.is_empty());
    }

    #[test]
    fn resumability_is_lazy() {
        // Taking one answer must not force the rest of the enumeration.
        let p = Prover::new(Theory::from_text("p(a)\np(b)\np(c)").unwrap());
        let mut it = AnswerIter::new(&p, &parse("p(x)").unwrap());
        let first = it.next().unwrap();
        let calls_after_first = p.sat_calls();
        assert_eq!(names(&first), vec!["a"]);
        let second = it.next().unwrap();
        assert_eq!(names(&second), vec!["b"]);
        assert!(p.sat_calls() > calls_after_first);
    }
}
