//! Quickstart: the Section 1 examples, end to end.
//!
//! Builds the paper's two introductory databases and runs every query of
//! §1 through the three evaluators the library provides — the
//! Levesque-style reducer (`ask`), the Prolog-style `demo` evaluator, and
//! (where feasible) the brute-force semantic oracle — printing the same
//! answer table the paper presents.
//!
//! Run with: `cargo run --example quickstart`

use epilog::prelude::*;
use epilog::semantics::ModelSet;
use epilog::syntax::Pred;

fn main() {
    println!("== DB = {{p | q}} ==\n");
    let small = EpistemicDb::from_text("p | q").unwrap();
    // The oracle is feasible here: 2 atoms, 4 candidate worlds.
    let oracle = ModelSet::models(
        small.theory(),
        &[Param::new("c")],
        &[Pred::new("p", 0), Pred::new("q", 0)],
    );
    for (query, gloss) in [
        ("p", "is p true in the external world?"),
        ("K p", "do you know that p is true?"),
        ("K p | K ~p", "do you know whether p?"),
    ] {
        let w = parse(query).unwrap();
        let a = small.ask(&w);
        let o = oracle.answer(&w);
        assert_eq!(a, o, "evaluator and oracle must agree");
        println!("  {query:<14} {gloss:<42} -> {a}");
    }

    println!("\n== The Teach database ==\n");
    let db = EpistemicDb::from_text(
        "Teach(John, Math)
         exists x. Teach(x, CS)
         Teach(Mary, Psych) | Teach(Sue, Psych)",
    )
    .unwrap();

    let queries: &[(&str, &str)] = &[
        ("Teach(Mary, CS)", "does Mary teach CS?"),
        ("K Teach(Mary, CS)", "do you know she does?"),
        ("K ~Teach(Mary, CS)", "do you know she doesn't?"),
        ("exists x. K Teach(John, x)", "a known course John teaches?"),
        ("exists x. K Teach(x, CS)", "a known teacher for CS?"),
        ("K (exists x. Teach(x, CS))", "someone known to teach CS?"),
        ("exists x. Teach(x, Psych)", "does someone teach Psych?"),
        ("exists x. K Teach(x, Psych)", "a known teacher of Psych?"),
        (
            "exists x. Teach(x, Psych) & ~Teach(x, CS)",
            "teaches Psych and not CS?",
        ),
        (
            "exists x. Teach(x, Psych) & ~K Teach(x, CS)",
            "teaches Psych, not known to teach CS?",
        ),
    ];

    for (query, gloss) in queries {
        let w = parse(query).unwrap();
        let answer = db.ask(&w);
        // Which evaluator handles it? demo covers the admissible fragment.
        let via = if is_admissible(&w) {
            "demo+ask"
        } else {
            "ask    "
        };
        println!("  [{via}] {gloss:<42} -> {answer}");

        // Cross-check demo on admissible sentence queries.
        if is_admissible(&w) {
            let outcome = demo_sentence(db.prover(), &w).unwrap();
            let demo_says_yes = outcome == DemoOutcome::Succeeds;
            assert_eq!(
                demo_says_yes,
                answer == Answer::Yes,
                "demo and ask disagree on {query}"
            );
        }
    }

    println!("\n== Open queries: binding answers ==\n");
    let open = parse("K Teach(John, x)").unwrap();
    let answers = db.demo_all(&open).unwrap();
    println!(
        "  K Teach(John, x)  known courses of John       -> {:?}",
        answers.iter().map(|t| t[0].name()).collect::<Vec<_>>()
    );
    let open = parse("Teach(x, Psych)").unwrap();
    let answers = db.demo_all(&open).unwrap();
    println!(
        "  Teach(x, Psych)   known teachers of Psych     -> {:?} (Mary-or-Sue is not a binding)",
        answers.iter().map(|t| t[0].name()).collect::<Vec<_>>()
    );
}
