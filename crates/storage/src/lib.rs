//! # epilog-storage — relational substrate
//!
//! A small in-memory relational store used by every layer above it:
//!
//! * the Datalog engine stores its extensional and intensional relations
//!   here ([`Relation`], [`Database`]);
//! * the grounder of `epilog-prover` uses [`Relation`] iteration and the
//!   per-column indexes to enumerate candidate bindings;
//! * the possible-world structures of `epilog-semantics` are thin wrappers
//!   over [`Database`] snapshots.
//!
//! Tuples are fixed-arity vectors of [`Param`]s (the function-free FOPCE
//! fragment has no other ground terms). Relations maintain hash indexes per
//! column, built lazily on first use, so selection with any partial binding
//! pattern is sub-linear after warm-up.

pub mod database;
pub mod relation;

pub use database::Database;
pub use relation::{Relation, Selection};

use epilog_syntax::Param;

/// A stored tuple: a fixed-arity vector of parameters.
pub type Tuple = Vec<Param>;
