//! # epilog — an epistemic deductive database engine
//!
//! A production-grade reproduction of Raymond Reiter's *"What Should a
//! Database Know?"* (J. Logic Programming 14:127–153, 1992; expanded from
//! the 1988/1990 conference papers).
//!
//! A database is a set of first-order sentences about the world; queries
//! and integrity constraints are sentences of the epistemic modal logic
//! **KFOPCE**, which can also address what the database *knows*:
//!
//! ```
//! use epilog::prelude::*;
//!
//! let db = EpistemicDb::from_text(
//!     "Teach(John, Math)
//!      exists x. Teach(x, CS)
//!      Teach(Mary, Psych) | Teach(Sue, Psych)",
//! ).unwrap();
//!
//! // Is Teach(Mary, CS) true in the world?           — unknown
//! assert_eq!(db.ask(&parse("Teach(Mary, CS)").unwrap()), Answer::Unknown);
//! // Does the database KNOW Teach(Mary, CS)?         — no
//! assert_eq!(db.ask(&parse("K Teach(Mary, CS)").unwrap()), Answer::No);
//! // Is there a KNOWN course John teaches?           — yes (Math)
//! assert_eq!(db.ask(&parse("exists x. K Teach(John, x)").unwrap()), Answer::Yes);
//! // Is someone known to teach CS, without being a known individual? — yes
//! assert_eq!(db.ask(&parse("K (exists x. Teach(x, CS))").unwrap()), Answer::Yes);
//! ```
//!
//! The crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`syntax`] | FOPCE/KFOPCE language, parser, the paper's syntactic classes |
//! | [`storage`] | relational substrate (relations, indexes, databases) |
//! | [`sat`] | CDCL SAT solver (the propositional engine) |
//! | [`prover`] | FOPCE theorem prover: entailment + the `prove` enumeration |
//! | [`datalog`] | Datalog engine with stratified negation; Clark completion |
//! | [`semantics`] | worlds, KFOPCE truth, the brute-force oracle, circumscription |
//! | [`core`] | the `demo` evaluator, queries, integrity constraints, closure |
//! | [`persist`] | durability: write-ahead log, snapshots, crash recovery — and the MVCC group-commit serving layer |
//! | [`server`] | TCP line-protocol sessions over snapshot reads and queued commits |

pub use epilog_core as core;
pub use epilog_datalog as datalog;
pub use epilog_persist as persist;
pub use epilog_prover as prover;
pub use epilog_sat as sat;
pub use epilog_semantics as semantics;
pub use epilog_server as server;
pub use epilog_storage as storage;
pub use epilog_syntax as syntax;

/// The items most programs need.
pub mod prelude {
    pub use epilog_core::{
        all_answers, ask, demo, demo_sentence, ic_satisfaction, Answer, ClosedDb, CommitReport,
        DbError, DemoOutcome, EpistemicDb, IcDefinition, IcReport, ModelUpdate, ProofTree,
        Rejection, SupportTable, Transaction,
    };
    pub use epilog_core::{CommittedState, ReadHandle, StateCell};
    pub use epilog_persist::{
        CommitReceipt, DurableDb, FaultInjector, FaultKind, FsyncPolicy, PersistError,
        RecoveryReport, ServeError, ServeOptions, ServingDb, TxOp, WriterExit,
    };
    pub use epilog_prover::Prover;
    pub use epilog_syntax::{
        admissibility, is_admissible, is_safe, is_subjective, parse, parse_theory, Formula, Param,
        Pred, Term, Theory, Var,
    };
}
