//! The `epilog-server` binary: serve a durable epistemic database
//! directory over TCP.
//!
//! ```text
//! epilog-server [--addr HOST:PORT] [--dir PATH] [--theory FILE] [--provenance]
//!               [--read-timeout SECS]
//! ```
//!
//! * `--addr` — listen address (default `127.0.0.1:7171`; use port 0
//!   for an ephemeral port, printed on startup).
//! * `--dir` — database directory (default `./epilog-data`). Recovered
//!   if it already holds a log, initialized otherwise.
//! * `--theory` — initial theory file for a *fresh* directory (ignored
//!   when recovering; the log is the source of truth).
//! * `--provenance` — track derivations: enables the `why <atom>`
//!   request and witness explanations on rejected commits (definite
//!   theories only; costs extra memory and commit work).
//! * `--read-timeout` — close sessions idle for this many seconds
//!   (default: never), so wedged clients cannot pin session threads.
//!
//! The process runs until a client sends `shutdown`, then drains the
//! commit queue, syncs the log, and exits.

use epilog_persist::{ServeOptions, ServingDb};
use epilog_server::{Server, ServerOptions};
use epilog_syntax::Theory;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut dir = "./epilog-data".to_string();
    let mut theory_path: Option<String> = None;
    let mut provenance = false;
    let mut read_timeout: Option<Duration> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => addr = take("--addr"),
            "--dir" => dir = take("--dir"),
            "--theory" => theory_path = Some(take("--theory")),
            "--provenance" => provenance = true,
            "--read-timeout" => {
                let raw = take("--read-timeout");
                match raw.parse::<f64>() {
                    Ok(secs) if secs > 0.0 => {
                        read_timeout = Some(Duration::from_secs_f64(secs));
                    }
                    _ => {
                        eprintln!("--read-timeout needs a positive number of seconds, got {raw:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: epilog-server [--addr HOST:PORT] [--dir PATH] [--theory FILE] \
                     [--provenance] [--read-timeout SECS]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let theory = match &theory_path {
        None => Theory::empty(),
        Some(p) => {
            let src = match std::fs::read_to_string(p) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {p}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Theory::from_text(&src) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot parse {p}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let opts = ServeOptions {
        provenance,
        ..ServeOptions::default()
    };
    let (db, recovery) = match ServingDb::open(&dir, theory, opts) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("cannot open {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match &recovery {
        Some(r) => eprintln!("recovered {dir}: {r}"),
        None => eprintln!("initialized {dir}"),
    }

    let server = match Server::start_with(db, addr.as_str(), ServerOptions { read_timeout }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("epilog-server listening on {}", server.local_addr());

    server.wait_for_shutdown_request();
    match server.shutdown() {
        Ok(stats) => {
            eprintln!(
                "shut down: {} commits in {} batches over {} fsyncs",
                stats.commits, stats.batches, stats.fsyncs
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("shutdown error: {e}");
            ExitCode::FAILURE
        }
    }
}
