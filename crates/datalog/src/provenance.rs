//! Derivation provenance: per-tuple support records and proof trees.
//!
//! A traced evaluation ([`Program::eval_traced`](crate::Program::eval_traced),
//! [`Program::eval_incremental_traced`](crate::Program::eval_incremental_traced),
//! [`Program::eval_decremental_traced`](crate::Program::eval_decremental_traced))
//! records, for every head derivation the fixpoint performs, one
//! [`Support`] — the index of the rule that fired and the ground positive
//! body tuples it matched. Supports accumulate in a [`SupportTable`], an
//! interned side table keyed by ground atom, and serve two consumers:
//!
//! * [`SupportTable::why`] reconstructs a **minimal proof tree** for any
//!   tuple of the least model by walking supports down to extensional
//!   facts, choosing at each node a support of minimal derivation height
//!   (so the tree never cycles and every leaf is an EDB fact);
//! * the DRed deletion fixpoint **consumes** supports: an over-deleted
//!   tuple with a recorded alternative support disjoint from the
//!   over-deleted set is known to survive without running its
//!   `support_checks` probe ([`EvalStats::support_hits`](crate::EvalStats)
//!   counts the saved probes).
//!
//! Recording is opt-in: the untraced `eval*` entry points pass no sink and
//! pay nothing. Within a traced run the sink is a flat append-only buffer
//! (parallel shards keep their own and are merged in plan order, so the
//! table contents are deterministic across thread counts); interning and
//! deduplication happen once per run in [`SupportTable::absorb`].

use epilog_storage::{AtomTemplate, Database, Tuple};
use epilog_syntax::formula::Atom;
use epilog_syntax::{Param, Pred, Term};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (the FxHash construction) for the intern maps:
/// keys are short `Vec<u32>` tuples, small enough that SipHash's per-hash
/// setup would dominate the cost of a traced run.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// The append-only buffer a traced evaluation records into — the
/// "provenance sink" threaded through the fixpoint. Zero-cost when
/// absent: the engine's derivation callback checks one `Option`.
///
/// The wire form is flat: each record is a `(rule, span)` header over
/// atoms appended to shared buffers (head first, then one atom per
/// positive body literal), so the hot recording path never allocates
/// beyond amortized buffer growth.
#[derive(Debug, Default)]
pub struct ProvenanceSink {
    /// Per record: the firing rule and the record's atom span.
    recs: Vec<(u32, u32, u32)>, // (rule_idx, atoms_start, n_atoms)
    /// Per recorded atom: predicate and its span in `params`.
    atoms: Vec<(Pred, u32, u32)>, // (pred, params_start, len)
    /// Flattened tuple storage.
    params: Vec<Param>,
}

impl ProvenanceSink {
    /// A fresh, empty sink.
    pub fn new() -> ProvenanceSink {
        ProvenanceSink::default()
    }

    /// Number of raw (pre-deduplication) records captured so far.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Open a record; close it with [`ProvenanceSink::finish_record`]
    /// after pushing the head and parent atoms.
    pub(crate) fn begin_record(&mut self) -> u32 {
        self.atoms.len() as u32
    }

    /// Append an already-ground atom to the open record.
    pub(crate) fn push_tuple(&mut self, pred: Pred, tuple: &[Param]) {
        let start = self.params.len() as u32;
        self.params.extend_from_slice(tuple);
        self.atoms.push((pred, start, tuple.len() as u32));
    }

    /// Ground `template` under `env` directly into the open record.
    pub(crate) fn push_template(&mut self, template: &AtomTemplate, env: &[Option<Param>]) {
        let start = self.params.len() as u32;
        template.ground_into(env, &mut self.params);
        self.atoms
            .push((template.pred, start, self.params.len() as u32 - start));
    }

    /// Close the record opened at `atoms_start` under the firing rule.
    pub(crate) fn finish_record(&mut self, rule_idx: u32, atoms_start: u32) {
        self.recs
            .push((rule_idx, atoms_start, self.atoms.len() as u32 - atoms_start));
    }

    /// Concatenate a parallel shard's records (plan order is the caller's
    /// responsibility, so sink contents stay deterministic across thread
    /// counts).
    pub(crate) fn extend_from(&mut self, other: &ProvenanceSink) {
        let atom_off = self.atoms.len() as u32;
        let param_off = self.params.len() as u32;
        self.recs
            .extend(other.recs.iter().map(|&(r, s, n)| (r, s + atom_off, n)));
        self.atoms
            .extend(other.atoms.iter().map(|&(p, s, l)| (p, s + param_off, l)));
        self.params.extend_from_slice(&other.params);
    }

    /// The atoms of record `rec` as `(pred, params)` slices, head first.
    fn record_atoms(&self, rec: usize) -> impl Iterator<Item = (Pred, &[Param])> + '_ {
        let (_, start, n) = self.recs[rec];
        self.atoms[start as usize..(start + n) as usize]
            .iter()
            .map(|&(pred, ps, len)| (pred, &self.params[ps as usize..(ps + len) as usize]))
    }
}

/// One way a tuple was derived: the firing rule (an index into the
/// program's rule list) and the interned ids of the ground positive body
/// tuples it matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Support {
    /// Index of the rule that fired, in program rule order.
    pub rule_idx: u32,
    /// Interned atom ids of the ground positive body literals.
    pub parents: Vec<u32>,
}

/// The interned side table mapping every recorded ground atom to its
/// known derivations. Atom ids are dense and stable for the lifetime of
/// the table; deletions clear support lists but never renumber.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupportTable {
    ids: FxMap<Pred, FxMap<Tuple, u32>>,
    atoms: Vec<(Pred, Tuple)>,
    supports: Vec<Vec<Support>>,
}

impl SupportTable {
    /// A fresh, empty table.
    pub fn new() -> SupportTable {
        SupportTable::default()
    }

    fn intern(&mut self, pred: Pred, tuple: &[Param]) -> u32 {
        // Two-level keying so the hot path — interning an atom already
        // seen — borrows the tuple instead of cloning a composite key.
        let by_tuple = self.ids.entry(pred).or_default();
        if let Some(&id) = by_tuple.get(tuple) {
            return id;
        }
        let id = self.atoms.len() as u32;
        self.atoms.push((pred, tuple.to_vec()));
        self.supports.push(Vec::new());
        by_tuple.insert(tuple.to_vec(), id);
        id
    }

    fn lookup(&self, pred: Pred, tuple: &Tuple) -> Option<u32> {
        self.ids.get(&pred)?.get(tuple.as_slice()).copied()
    }

    /// Record one derivation. Returns `true` when the support was novel
    /// for its head atom (duplicates from re-derivations dedup away).
    pub fn record(
        &mut self,
        head_pred: Pred,
        head: &Tuple,
        rule_idx: u32,
        parents: &[(Pred, Tuple)],
    ) -> bool {
        let parent_ids: Vec<u32> = parents.iter().map(|(p, t)| self.intern(*p, t)).collect();
        let head_id = self.intern(head_pred, head);
        self.adopt_support(head_id, rule_idx, &parent_ids)
    }

    /// Attach an interned support to `head_id` unless already present.
    fn adopt_support(&mut self, head_id: u32, rule_idx: u32, parent_ids: &[u32]) -> bool {
        let list = &mut self.supports[head_id as usize];
        if list
            .iter()
            .any(|s| s.rule_idx == rule_idx && s.parents == parent_ids)
        {
            return false;
        }
        list.push(Support {
            rule_idx,
            parents: parent_ids.to_vec(),
        });
        true
    }

    /// Intern a sink's raw records, returning how many novel supports
    /// were retained.
    pub fn absorb(&mut self, sink: ProvenanceSink) -> u64 {
        let mut novel = 0u64;
        let mut scratch: Vec<u32> = Vec::new();
        for (rec, &(rule_idx, ..)) in sink.recs.iter().enumerate() {
            scratch.clear();
            for (pred, tuple) in sink.record_atoms(rec) {
                scratch.push(self.intern(pred, tuple));
            }
            let (&head_id, parent_ids) = scratch.split_first().expect("record has a head");
            if self.adopt_support(head_id, rule_idx, parent_ids) {
                novel += 1;
            }
        }
        novel
    }

    /// Number of distinct ground atoms the table has interned.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Total number of recorded supports across all atoms.
    pub fn num_supports(&self) -> usize {
        self.supports.iter().map(Vec::len).sum()
    }

    /// Whether the table holds no supports at all.
    pub fn is_empty(&self) -> bool {
        self.num_supports() == 0
    }

    /// Iterate every recorded support as `(head, rule_idx, parents)`
    /// ground atoms — the snapshot serialization surface.
    pub fn entries(&self) -> impl Iterator<Item = (Atom, u32, Vec<Atom>)> + '_ {
        self.atoms
            .iter()
            .zip(&self.supports)
            .flat_map(move |((pred, tuple), list)| {
                let head = atom_of(*pred, tuple);
                list.iter().map(move |s| {
                    let parents = s
                        .parents
                        .iter()
                        .map(|&p| {
                            let (pp, pt) = &self.atoms[p as usize];
                            atom_of(*pp, pt)
                        })
                        .collect();
                    (head.clone(), s.rule_idx, parents)
                })
            })
    }

    /// The interned ids of the atoms of `db` that this table knows.
    /// Atoms never recorded (no id) cannot be referenced by any support
    /// and are omitted.
    pub(crate) fn ids_in(&self, db: &Database) -> HashSet<u32> {
        let mut out = HashSet::new();
        for (pred, rel) in db.relations() {
            for t in rel.iter() {
                if let Some(id) = self.lookup(pred, t) {
                    out.insert(id);
                }
            }
        }
        out
    }

    /// Whether some recorded support of `(pred, tuple)` has **no** parent
    /// in `over` (an over-deleted id set). Such a support's parents are
    /// all still in the pruned model — the table only ever holds supports
    /// whose parents were model members — so the tuple is known to
    /// survive the deletion without a probe.
    pub(crate) fn has_surviving_support(
        &self,
        pred: Pred,
        tuple: &Tuple,
        over: &HashSet<u32>,
    ) -> bool {
        match self.lookup(pred, tuple) {
            None => false,
            Some(id) => self.supports[id as usize]
                .iter()
                .any(|s| s.parents.iter().all(|p| !over.contains(p))),
        }
    }

    /// Drop every support that derives, or depends on, an atom of `gone`
    /// (the net-removed set of a deletion commit). Ids stay stable; the
    /// purged atoms simply have no supports until re-derived.
    pub fn purge(&mut self, gone: &Database) {
        if gone.is_empty() {
            return;
        }
        let dead = self.ids_in(gone);
        if dead.is_empty() {
            return;
        }
        for (id, list) in self.supports.iter_mut().enumerate() {
            if dead.contains(&(id as u32)) {
                list.clear();
            } else {
                list.retain(|s| s.parents.iter().all(|p| !dead.contains(p)));
            }
        }
    }

    /// Check the table against a model: every supported head and every
    /// parent must be a model member, and every rule index in range.
    /// The debug invariant `epilog-core` asserts after maintenance.
    pub fn consistent_with(&self, model: &Database, rules: usize) -> bool {
        self.supports.iter().enumerate().all(|(id, list)| {
            list.is_empty() || {
                let (pred, tuple) = &self.atoms[id];
                model.contains_tuple(*pred, tuple)
                    && list.iter().all(|s| {
                        (s.rule_idx as usize) < rules
                            && s.parents.iter().all(|&p| {
                                let (pp, pt) = &self.atoms[p as usize];
                                model.contains_tuple(*pp, pt)
                            })
                    })
            }
        })
    }

    /// Reconstruct a minimal derivation of `(pred, tuple)`: a proof tree
    /// whose every leaf is an extensional fact of `edb` and whose every
    /// internal node is a recorded support. Returns `None` when the atom
    /// is neither extensional nor provable from the recorded supports —
    /// for a maintained table over a definite least model, exactly when
    /// the atom is not in the model.
    ///
    /// Node choice is by **derivation height** (extensional facts are
    /// height 0; a support's height is one more than its highest parent),
    /// so the recursion strictly descends and recorded cycles — mutual
    /// supports among re-derived tuples — can never loop the walk.
    pub fn why(&self, edb: &Database, pred: Pred, tuple: &Tuple) -> Option<ProofTree> {
        if edb.contains_tuple(pred, tuple) {
            return Some(ProofTree::Fact {
                atom: atom_of(pred, tuple),
            });
        }
        let id = self.lookup(pred, tuple)?;
        let heights = self.heights(edb);
        self.build_tree(id, &heights, edb)
    }

    /// Least derivation height of every interned atom: 0 for extensional
    /// facts, `1 + max(parent heights)` over the best support otherwise,
    /// `None` for atoms with no grounded derivation (stale intern slots).
    fn heights(&self, edb: &Database) -> Vec<Option<u32>> {
        let n = self.atoms.len();
        let mut heights: Vec<Option<u32>> = vec![None; n];
        for (id, (pred, tuple)) in self.atoms.iter().enumerate() {
            if edb.contains_tuple(*pred, tuple) {
                heights[id] = Some(0);
            }
        }
        // Worklist fixpoint over the reverse dependency graph: when an
        // atom's height settles lower, re-examine the supports that use
        // it as a parent.
        let mut uses: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (id, list) in self.supports.iter().enumerate() {
            for s in list {
                for &p in &s.parents {
                    uses[p as usize].push(id as u32);
                }
            }
        }
        let mut queue: Vec<u32> = (0..n as u32)
            .filter(|&i| heights[i as usize].is_some())
            .collect();
        while let Some(id) = queue.pop() {
            for &user in &uses[id as usize] {
                if let Some(h) = self.support_height(user, &heights) {
                    let slot = &mut heights[user as usize];
                    if slot.is_none_or(|old| h < old) {
                        *slot = Some(h);
                        queue.push(user);
                    }
                }
            }
        }
        heights
    }

    /// Height of `id`'s best fully-grounded support, if any.
    fn support_height(&self, id: u32, heights: &[Option<u32>]) -> Option<u32> {
        self.supports[id as usize]
            .iter()
            .filter_map(|s| {
                s.parents
                    .iter()
                    .map(|&p| heights[p as usize])
                    .collect::<Option<Vec<u32>>>()
                    .map(|hs| 1 + hs.into_iter().max().unwrap_or(0))
            })
            .min()
    }

    fn build_tree(&self, id: u32, heights: &[Option<u32>], edb: &Database) -> Option<ProofTree> {
        let (pred, tuple) = &self.atoms[id as usize];
        if edb.contains_tuple(*pred, tuple) {
            return Some(ProofTree::Fact {
                atom: atom_of(*pred, tuple),
            });
        }
        let my_height = heights[id as usize]?;
        // Pick the first support achieving the minimal height: every
        // parent then sits strictly below, so recursion terminates.
        let best = self.supports[id as usize].iter().find(|s| {
            s.parents
                .iter()
                .map(|&p| heights[p as usize])
                .collect::<Option<Vec<u32>>>()
                .is_some_and(|hs| 1 + hs.into_iter().max().unwrap_or(0) == my_height)
        })?;
        let premises = best
            .parents
            .iter()
            .map(|&p| self.build_tree(p, heights, edb))
            .collect::<Option<Vec<ProofTree>>>()?;
        Some(ProofTree::Derived {
            atom: atom_of(*pred, tuple),
            rule_idx: best.rule_idx as usize,
            premises,
        })
    }
}

/// A reconstructed derivation: leaves are extensional facts, internal
/// nodes are rule firings over their premises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofTree {
    /// An extensional fact — a leaf.
    Fact {
        /// The ground atom.
        atom: Atom,
    },
    /// A derived tuple: the rule (program rule order) fired on the ground
    /// premises below.
    Derived {
        /// The ground head atom.
        atom: Atom,
        /// Index of the firing rule, in program rule order.
        rule_idx: usize,
        /// Proofs of the ground positive body literals.
        premises: Vec<ProofTree>,
    },
}

impl ProofTree {
    /// The ground atom this node proves.
    pub fn atom(&self) -> &Atom {
        match self {
            ProofTree::Fact { atom } | ProofTree::Derived { atom, .. } => atom,
        }
    }

    /// Total number of nodes in the tree.
    pub fn size(&self) -> usize {
        match self {
            ProofTree::Fact { .. } => 1,
            ProofTree::Derived { premises, .. } => {
                1 + premises.iter().map(ProofTree::size).sum::<usize>()
            }
        }
    }

    /// Height of the tree: 0 for a leaf fact.
    pub fn height(&self) -> usize {
        match self {
            ProofTree::Fact { .. } => 0,
            ProofTree::Derived { premises, .. } => {
                1 + premises.iter().map(ProofTree::height).max().unwrap_or(0)
            }
        }
    }

    /// Replay the proof against a program: every leaf must be an
    /// extensional fact, and every internal node's rule must actually
    /// derive the node's atom when fired over exactly the node's
    /// premises. The acceptance check of the provenance property suite.
    pub fn replays(&self, prog: &crate::Program) -> bool {
        match self {
            ProofTree::Fact { atom } => prog.edb.contains(atom),
            ProofTree::Derived {
                atom,
                rule_idx,
                premises,
            } => {
                let Some(rule) = prog.rules.get(*rule_idx) else {
                    return false;
                };
                let mut world = Database::new();
                for p in premises {
                    world.insert(p.atom());
                }
                let plan = crate::plan::RulePlan::compile(rule);
                if plan.head.pred != atom.pred {
                    return false;
                }
                plan.ensure_total_indexes(&mut world);
                let target: Tuple = match params_of(atom) {
                    Some(t) => t,
                    None => return false,
                };
                let mut derived = false;
                let mut env = vec![None; plan.slots.len()];
                plan.full
                    .for_each_match(&world, None, &mut env, &mut |env| {
                        if plan.head.ground(env) == target {
                            derived = true;
                        }
                    });
                derived && premises.iter().all(|p| p.replays(prog))
            }
        }
    }

    /// Render the tree as indented lines, root first — the server's
    /// `why` reply body and the example's display format.
    pub fn render(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut Vec<String>) {
        let pad = "  ".repeat(depth);
        match self {
            ProofTree::Fact { atom } => out.push(format!("{pad}{atom} (fact)")),
            ProofTree::Derived {
                atom,
                rule_idx,
                premises,
            } => {
                out.push(format!("{pad}{atom} <= rule {rule_idx}"));
                for p in premises {
                    p.render_into(depth + 1, out);
                }
            }
        }
    }
}

/// Rebuild a ground [`Atom`] from a predicate and stored tuple.
pub fn atom_of(pred: Pred, tuple: &Tuple) -> Atom {
    Atom::new(pred, tuple.iter().map(|&p| Term::Param(p)).collect())
}

/// The stored tuple of a ground atom, or `None` if any argument is a
/// variable.
pub fn params_of(atom: &Atom) -> Option<Tuple> {
    atom.terms
        .iter()
        .map(|t| match t {
            Term::Param(p) => Some(*p),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use epilog_syntax::parse;

    fn atom(src: &str) -> Atom {
        match parse(src).unwrap() {
            epilog_syntax::Formula::Atom(a) => a,
            other => panic!("not an atom: {other}"),
        }
    }

    fn key(src: &str) -> (Pred, Tuple) {
        let a = atom(src);
        let t = params_of(&a).unwrap();
        (a.pred, t)
    }

    #[test]
    fn record_dedups_and_interns() {
        let mut t = SupportTable::new();
        let (hp, ht) = key("t(a, c)");
        let parents = vec![key("e(a, b)"), key("t(b, c)")];
        assert!(t.record(hp, &ht, 1, &parents));
        assert!(!t.record(hp, &ht, 1, &parents), "duplicate support");
        assert!(t.record(hp, &ht, 0, &parents[..1]), "other rule");
        assert_eq!(t.num_atoms(), 3);
        assert_eq!(t.num_supports(), 2);
    }

    #[test]
    fn why_reaches_edb_leaves_and_replays() {
        let prog = Program::from_text(
            "e(a, b)
             e(b, c)
             forall x, y. e(x, y) -> t(x, y)
             forall x, y, z. e(x, y) & t(y, z) -> t(x, z)",
        )
        .unwrap();
        let mut table = SupportTable::new();
        let (tab, tab_t) = key("t(a, b)");
        table.record(tab, &tab_t, 0, &[key("e(a, b)")]);
        let (tbc, tbc_t) = key("t(b, c)");
        table.record(tbc, &tbc_t, 0, &[key("e(b, c)")]);
        let (tac, tac_t) = key("t(a, c)");
        table.record(tac, &tac_t, 1, &[key("e(a, b)"), key("t(b, c)")]);
        let tree = table.why(&prog.edb, tac, &tac_t).expect("provable");
        assert_eq!(tree.height(), 2);
        assert!(tree.replays(&prog));
        // Extensional atoms are leaves even without records.
        let (e, e_t) = key("e(a, b)");
        let leaf = table.why(&prog.edb, e, &e_t).unwrap();
        assert!(matches!(leaf, ProofTree::Fact { .. }));
        // Unknown atoms have no proof.
        let (u, u_t) = key("t(c, a)");
        assert!(table.why(&prog.edb, u, &u_t).is_none());
    }

    #[test]
    fn why_picks_minimal_height_over_cyclic_supports() {
        // t(a,b) and t(b,a) support each other (recorded from a fixpoint
        // that re-derived both), but each also has a ground support; the
        // walk must take the acyclic route.
        let prog = Program::from_text(
            "e(a, b)
             e(b, a)
             forall x, y. e(x, y) -> t(x, y)",
        )
        .unwrap();
        let mut table = SupportTable::new();
        let (tab, tab_t) = key("t(a, b)");
        let (tba, tba_t) = key("t(b, a)");
        table.record(tab, &tab_t, 9, &[key("t(b, a)")]);
        table.record(tba, &tba_t, 9, &[key("t(a, b)")]);
        table.record(tab, &tab_t, 0, &[key("e(a, b)")]);
        table.record(tba, &tba_t, 0, &[key("e(b, a)")]);
        let tree = table.why(&prog.edb, tab, &tab_t).expect("provable");
        assert_eq!(tree.height(), 1, "must use the EDB support, not the cycle");
        assert!(tree.replays(&prog));
    }

    #[test]
    fn purge_drops_dependents_and_survivors_stay() {
        let mut table = SupportTable::new();
        let (tab, tab_t) = key("t(a, b)");
        table.record(tab, &tab_t, 0, &[key("e(a, b)")]);
        table.record(tab, &tab_t, 1, &[key("e2(a, b)")]);
        let (tac, tac_t) = key("t(a, c)");
        table.record(tac, &tac_t, 2, &[key("e(a, b)"), key("t(b, c)")]);
        let mut gone = Database::new();
        gone.insert(&atom("e(a, b)"));
        table.purge(&gone);
        // t(a, b) keeps its e2 support; the support via e(a, b) is gone.
        let over = HashSet::new();
        assert!(table.has_surviving_support(tab, &tab_t, &over));
        assert_eq!(table.num_supports(), 1);
        assert!(!table.has_surviving_support(tac, &tac_t, &over));
    }

    #[test]
    fn surviving_support_respects_overdeleted_set() {
        let mut table = SupportTable::new();
        let (tab, tab_t) = key("t(a, b)");
        table.record(tab, &tab_t, 0, &[key("e(a, b)")]);
        table.record(tab, &tab_t, 1, &[key("e2(a, b)")]);
        let mut over_db = Database::new();
        over_db.insert(&atom("e(a, b)"));
        let over = table.ids_in(&over_db);
        assert!(
            table.has_surviving_support(tab, &tab_t, &over),
            "the e2 support has no over-deleted parent"
        );
        over_db.insert(&atom("e2(a, b)"));
        let over = table.ids_in(&over_db);
        assert!(!table.has_surviving_support(tab, &tab_t, &over));
    }

    #[test]
    fn consistency_check_spots_dangling_parents() {
        let prog = Program::from_text(
            "e(a, b)
             forall x, y. e(x, y) -> t(x, y)",
        )
        .unwrap();
        let (model, _) = prog.eval().unwrap();
        let mut table = SupportTable::new();
        let (tab, tab_t) = key("t(a, b)");
        table.record(tab, &tab_t, 0, &[key("e(a, b)")]);
        assert!(table.consistent_with(&model, prog.rules.len()));
        table.record(tab, &tab_t, 0, &[key("ghost(nowhere)")]);
        assert!(!table.consistent_with(&model, prog.rules.len()));
    }
}
