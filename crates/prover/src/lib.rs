//! # epilog-prover — a theorem prover for FOPCE
//!
//! The paper's `demo` evaluator (§5.1) is parameterized by a first-order
//! theorem prover `prove(f, Σ)` that *enumerates* all parameter tuples `p̄`
//! with `Σ ⊨_FOPCE f|p̄`. Reiter leaves the design of such a prover "an open
//! (but arguably straightforward) problem" because FOPCE is nonstandard:
//! its parameters are pairwise distinct (unique names) and jointly exhaust
//! the domain of discourse (domain closure over a countably infinite set).
//!
//! This crate supplies that prover:
//!
//! * [`ground`] instantiates FOPCE sentences over a finite universe —
//!   the active domain extended with fresh *witness* parameters — mapping
//!   ground atoms to propositional variables and deciding equality atoms
//!   immediately (parameters are rigid and pairwise distinct);
//! * [`entail`] reduces `Σ ⊨ f` to UNSAT of the grounding of `Σ ∧ ¬f`,
//!   decided by the CDCL solver of `epilog-sat`;
//! * [`answers`] implements the enumeration interface `prove(f, Σ)`
//!   needed by `demo`: a resumable, deterministic stream of answer tuples;
//! * [`canonical`] builds the canonical model `S(Σ)` of Lemma 6.2 for
//!   elementary theories (every elementary theory has a model mentioning
//!   only its own parameters), used to validate the finiteness machinery of
//!   §6.
//!
//! ## Exactness boundary
//!
//! Grounding over a finite universe is **sound**: if the grounding of
//! `Σ ∧ ¬f` is unsatisfiable then `Σ ⊨ f` (any FOPCE counter-world
//! restricts to a model of the grounding). For the converse direction the
//! universe must contain enough witnesses for the existential quantifiers:
//!
//! * existentials *not* nested under a universal quantifier are Skolem
//!   constants — one fresh witness each makes the reduction **exact**
//!   (this is the Bernays–Schönfinkel/EPR argument, adapted to FOPCE's
//!   unique-names semantics);
//! * existentials under universals (rule heads `∀x̄ (A ⊃ ∃ȳ B)`) may in
//!   principle require unboundedly many witnesses; we allocate
//!   [`UniversePolicy::witness_cap`] of them (default: the number of
//!   existential nodes, clamped to a small cap) and document that theories
//!   which force infinite models (e.g. an irreflexive transitive successor
//!   rule) can make the prover report `Σ ⊨ f` when a genuinely infinite
//!   counter-world exists. Every experiment in EXPERIMENTS.md stays inside
//!   the exact fragment.

pub mod answers;
pub mod canonical;
pub mod entail;
pub mod ground;

pub use answers::AnswerIter;
pub use canonical::canonical_model;
pub use entail::{Prover, UniversePolicy};
pub use ground::{GroundContext, Grounding};
