//! # epilog-syntax — the languages FOPCE and KFOPCE
//!
//! This crate implements the syntax of Levesque's logics **FOPCE**
//! (First-Order Predicate Calculus with Equality, over *parameters*) and
//! **KFOPCE** (FOPCE plus a single epistemic modal operator `K`), exactly as
//! used by Reiter in *"What Should a Database Know?"* (J. Logic Programming
//! 14:127–153, 1992).
//!
//! The language has:
//!
//! * **predicate symbols** of fixed arity ([`Pred`]),
//! * a countably infinite set of **variables** ([`Var`]),
//! * a countably infinite set of **parameters** ([`Param`]) — pairwise
//!   distinct constants that jointly form the single universal domain of
//!   discourse (there are no function symbols in this fragment; see the
//!   paper's footnote 1),
//! * equality `t₁ = t₂`, the connectives `¬ ∧ ∨ ⊃ ≡`, the quantifiers
//!   `∀ ∃`, and the modal operator `K` ("the database knows").
//!
//! Besides the AST ([`Formula`]) the crate provides:
//!
//! * a parser ([`parse()`](parse::parse)) and precedence-aware pretty-printer,
//! * substitution and free-variable machinery,
//! * every syntactic class the paper defines: *first-order*, *modal*,
//!   *subjective* (Def. 5.2), *safe* (Def. 5.1), *admissible* (Def. 5.3),
//!   *K₁*, *normal queries* (§5.2), *positive existential* formulas, *rules*
//!   and *elementary theories* (Def. 6.3), *disjunctively linked variables*
//!   (Def. 6.4) — see [`classify`],
//! * the transforms of the paper: the modalizing map `ℛ(w)` of Def. 7.1,
//!   the admissible rewriting of integrity constraints of Example 5.4, and
//!   K45 modal flattening — see [`transform`].

pub mod classify;
pub mod formula;
pub mod parse;
pub mod symbols;
pub mod term;
pub mod theory;
pub mod transform;

pub use classify::{
    admissibility, disjunctively_linked, is_admissible, is_elementary_sentence, is_first_order,
    is_k1, is_modal, is_normal_query, is_positive_existential, is_rule, is_safe, is_subjective,
    Admissibility, UnsafeReason,
};
pub use formula::{Atom, Formula};
pub use parse::{parse, parse_theory, ParseError};
pub use symbols::{Param, Pred, Var};
pub use term::Term;
pub use theory::Theory;
pub use transform::{admissible_constraint, flatten_k45, modalize, nnf, strip_k};
