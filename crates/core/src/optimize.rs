//! Reasoning *about* queries and constraints (§4).
//!
//! KFOPCE is itself the logic for reasoning about queries: if
//! `⊨_KFOPCE IC ≡ IC'` then the two constraints are interchangeable
//! (Corollary 4.1), and if `Σ` satisfies `IC` and
//! `IC ⊨_KFOPCE (∀x̄)(q ≡ q')` then `q` and `q'` have the same answers
//! (Corollary 4.2) — the formal foundation for semantic query
//! optimization.
//!
//! Validity `⊨_KFOPCE` is decided here by brute force over bounded
//! structures: all worlds over a finite Herbrand base, all nonempty sets
//! of worlds (the paper's semantics is weak S5/KD45: the evaluation world
//! need not belong to the set). Exponential³ — usable for the small
//! vocabularies of constraint schemas, which is exactly its role in the
//! paper.

use epilog_semantics::{oracle::herbrand_base, ModelSet};
use epilog_storage::Database;
use epilog_syntax::{Formula, Param, Pred};

/// Decide `⊨_KFOPCE w` over all structures `(W, 𝒮)` built from the given
/// universe and predicates: `W` any world over the Herbrand base, `𝒮` any
/// *nonempty* set of such worlds.
///
/// # Panics
/// Panics if the Herbrand base exceeds 4 atoms (the structure space is
/// doubly exponential in the base).
pub fn valid_kfopce(w: &Formula, universe: &[Param], preds: &[Pred]) -> bool {
    let base = herbrand_base(universe, preds);
    assert!(
        base.len() <= 4,
        "validity checking over {} atoms is out of reach (≤ 4 supported)",
        base.len()
    );
    let n_worlds = 1usize << base.len();
    let worlds: Vec<Database> = (0..n_worlds)
        .map(|mask| {
            base.iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, a)| a.clone())
                .collect()
        })
        .collect();
    // Every nonempty subset of worlds as 𝒮.
    for set_mask in 1usize..(1 << n_worlds) {
        let s: Vec<Database> = worlds
            .iter()
            .enumerate()
            .filter(|(i, _)| set_mask & (1 << i) != 0)
            .map(|(_, w)| w.clone())
            .collect();
        let ms = ModelSet::from_worlds(s, universe.to_vec());
        for world in &worlds {
            if !ms.truth_in(w, world) {
                return false;
            }
        }
    }
    true
}

/// `α ⊨_KFOPCE β`, i.e. `⊨_KFOPCE α ⊃ β` (for sentences, by the deduction
/// property of this validity notion over fixed structures).
pub fn entails_kfopce(alpha: &Formula, beta: &Formula, universe: &[Param], preds: &[Pred]) -> bool {
    valid_kfopce(
        &Formula::implies(alpha.clone(), beta.clone()),
        universe,
        preds,
    )
}

/// Corollary 4.2, as a checker: under constraint `ic`, do `q` and `q'`
/// (same free variables) have the same answers? Verifies
/// `ic ⊨_KFOPCE ∀x̄ (q ≡ q')` over the bounded structures.
pub fn equivalent_under(
    ic: &Formula,
    q: &Formula,
    q2: &Formula,
    universe: &[Param],
    preds: &[Pred],
) -> bool {
    assert_eq!(
        q.free_vars(),
        q2.free_vars(),
        "Corollary 4.2 needs matching free variables"
    );
    let mut body = Formula::iff(q.clone(), q2.clone());
    for v in q.free_vars().into_iter().rev() {
        body = Formula::forall(v, body);
    }
    entails_kfopce(ic, &body, universe, preds)
}

/// A concrete optimizer licensed by Corollary 4.2: drop conjuncts of a
/// conjunctive query that are redundant under the integrity constraint.
/// Each candidate elimination is verified by [`equivalent_under`]; the
/// returned query provably has the same answers on every database
/// satisfying `ic`.
pub fn eliminate_redundant_conjuncts(
    ic: &Formula,
    q: &Formula,
    universe: &[Param],
    preds: &[Pred],
) -> Formula {
    let mut conjuncts = flatten_and(q);
    let mut i = 0;
    while conjuncts.len() > 1 && i < conjuncts.len() {
        let mut candidate = conjuncts.clone();
        candidate.remove(i);
        let shorter = Formula::and_all(candidate.clone()).expect("len > 1 before removal");
        // The shorter query must keep the same free variables — dropping a
        // conjunct that binds a variable changes the answer arity.
        if shorter.free_vars() == q.free_vars()
            && equivalent_under(ic, q, &shorter, universe, preds)
        {
            conjuncts = candidate;
            i = 0; // restart: earlier conjuncts may now be removable
        } else {
            i += 1;
        }
    }
    Formula::and_all(conjuncts).expect("at least one conjunct remains")
}

fn flatten_and(w: &Formula) -> Vec<Formula> {
    match w {
        Formula::And(a, b) => {
            let mut out = flatten_and(a);
            out.extend(flatten_and(b));
            out
        }
        other => vec![other.clone()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epilog_syntax::parse;

    fn props(names: &[&str]) -> Vec<Pred> {
        names.iter().map(|n| Pred::new(n, 0)).collect()
    }

    #[test]
    fn kd45_validities() {
        let u = [Param::new("c")];
        let pq = props(&["p", "q"]);
        // Distribution.
        assert!(valid_kfopce(
            &parse("K (p & q) <-> K p & K q").unwrap(),
            &u,
            &pq
        ));
        // Positive and negative introspection.
        assert!(valid_kfopce(&parse("K p -> K K p").unwrap(), &u, &pq));
        assert!(valid_kfopce(&parse("~K p -> K ~K p").unwrap(), &u, &pq));
        // D (seriality — 𝒮 nonempty): knowledge is consistent.
        assert!(valid_kfopce(&parse("K p -> ~K ~p").unwrap(), &u, &pq));
        // T fails: knowledge need not hold at the evaluation world (weak
        // S5, not S5 — the evaluation world may lie outside 𝒮).
        assert!(!valid_kfopce(&parse("K p -> p").unwrap(), &u, &pq));
        // K does not distribute over ∨.
        assert!(!valid_kfopce(
            &parse("K (p | q) -> K p | K q").unwrap(),
            &u,
            &pq
        ));
    }

    #[test]
    fn flatten_k45_transformation_is_sound() {
        // Every rewrite performed by flatten_k45 is KFOPCE-valid.
        let u = [Param::new("c")];
        let pq = props(&["p", "q"]);
        for src in ["K K p", "K ~K p", "K (p & q)", "K (K p & K q)"] {
            let w = parse(src).unwrap();
            let flat = epilog_syntax::flatten_k45(&w);
            assert!(
                valid_kfopce(&Formula::iff(w.clone(), flat.clone()), &u, &pq),
                "flatten_k45({src}) = {flat} is not equivalent"
            );
        }
    }

    #[test]
    fn corollary_41_constraint_interchange() {
        // ∀-form and ¬∃-form of a constraint are KFOPCE-equivalent, so
        // either may be enforced (Corollary 4.1 + Example 5.4).
        let u = [Param::new("c")];
        let preds = vec![Pred::new("emp", 1), Pred::new("ok", 1)];
        let ic = parse("forall x. K emp(x) -> K ok(x)").unwrap();
        let rewritten = epilog_syntax::admissible_constraint(&ic);
        assert!(valid_kfopce(&Formula::iff(ic, rewritten), &u, &preds));
    }

    #[test]
    fn corollary_42_query_equivalence() {
        // IC: ∀x (K p(x) ⊃ K q(x)). Then Kp(x) ∧ Kq(x) ≡ Kp(x) under IC.
        let u = [Param::new("c")];
        let preds = vec![Pred::new("p", 1), Pred::new("q", 1)];
        let ic = parse("forall x. K p(x) -> K q(x)").unwrap();
        let q = parse("K p(x) & K q(x)").unwrap();
        let q2 = parse("K p(x)").unwrap();
        assert!(equivalent_under(&ic, &q, &q2, &u, &preds));
        // Without the constraint they are not equivalent.
        let taut = parse("forall x. K p(x) -> K p(x)").unwrap();
        assert!(!equivalent_under(&taut, &q, &q2, &u, &preds));
    }

    #[test]
    fn conjunct_elimination() {
        let u = [Param::new("c")];
        let preds = vec![Pred::new("p", 1), Pred::new("q", 1)];
        let ic = parse("forall x. K p(x) -> K q(x)").unwrap();
        let q = parse("K p(x) & K q(x)").unwrap();
        let optimized = eliminate_redundant_conjuncts(&ic, &q, &u, &preds);
        assert_eq!(optimized.to_string(), "K p(x)");
    }

    #[test]
    fn conjunct_elimination_preserves_answers() {
        use crate::ask::answers;
        use epilog_prover::Prover;
        use epilog_syntax::Theory;
        let u = [Param::new("c")];
        let preds = vec![Pred::new("p", 1), Pred::new("q", 1)];
        let ic = parse("forall x. K p(x) -> K q(x)").unwrap();
        let q = parse("K p(x) & K q(x)").unwrap();
        let optimized = eliminate_redundant_conjuncts(&ic, &q, &u, &preds);
        // A database satisfying the constraint.
        let prover = Prover::new(Theory::from_text("p(a)\nq(a)\nq(b)").unwrap());
        assert!(crate::ask::certain(&prover, &ic));
        assert_eq!(answers(&prover, &q), answers(&prover, &optimized));
    }

    #[test]
    fn theorem_41_transitivity() {
        // Σ ⊨ α and α ⊨_KFOPCE β imply Σ ⊨ β.
        use epilog_prover::Prover;
        use epilog_syntax::Theory;
        let u = [Param::new("c")];
        let pq = props(&["p", "q"]);
        let alpha = parse("K (p & q)").unwrap();
        let beta = parse("K p").unwrap();
        assert!(entails_kfopce(&alpha, &beta, &u, &pq));
        let prover = Prover::new(Theory::from_text("p & q").unwrap());
        assert!(crate::ask::certain(&prover, &alpha));
        assert!(crate::ask::certain(&prover, &beta));
    }

    #[test]
    fn irredundant_queries_untouched() {
        let u = [Param::new("c")];
        let preds = vec![Pred::new("p", 1), Pred::new("q", 1)];
        let taut = parse("forall x. K p(x) -> K p(x)").unwrap();
        let q = parse("K p(x) & K q(x)").unwrap();
        let out = eliminate_redundant_conjuncts(&taut, &q, &u, &preds);
        assert_eq!(out, q);
    }
}
