//! Property suite for the provenance subsystem: on randomized programs,
//! tracking must be invisible (identical models, identical pre-existing
//! counters), every reconstructed proof tree must replay, and the
//! support-accelerated DRed deletion must agree exactly with the
//! probe-only seed path while strictly saving re-derivation probes.

use epilog::core::EpistemicDb;
use epilog::datalog::provenance::params_of;
use epilog::datalog::{EvalOptions, EvalStats, Program, RulePlan, SupportTable};
use epilog::syntax::parse;
use proptest::prelude::*;
use std::collections::BTreeSet;

const PARAMS: usize = 4;

/// The stratified rule pool of the datalog differential suite.
const RULES: [&str; 8] = [
    "forall x, y. e(x, y) -> reach(x, y)",
    "forall x, y, z. e(x, y) & reach(y, z) -> reach(x, z)",
    "forall x. f(x) -> q(x)",
    "forall x, y. e(x, y) & f(x) -> q(y)",
    "forall x, y. e(x, y) & ~reach(y, x) -> oneway(x, y)",
    "forall x. f(x) & ~q(x) -> isolated(x)",
    "forall x, y. reach(x, y) & e(x, y) -> direct(x, y)",
    "forall x, y, z. e(x, y) & e(y, z) & e(x, z) -> tri(x, y, z)",
];

/// Negation-free subset: definite programs, where the least model's
/// every tuple must afford a proof tree.
const DEFINITE: [usize; 6] = [0, 1, 2, 3, 6, 7];

fn facts_and_rules(
    edges: &[(usize, usize)],
    units: &[usize],
    rules: impl Iterator<Item = &'static str>,
) -> String {
    let mut src = String::new();
    for (a, b) in edges {
        src.push_str(&format!("e(a{a}, a{b})\n"));
    }
    for a in units {
        src.push_str(&format!("f(a{a})\n"));
    }
    for rule in rules {
        src.push_str(rule);
        src.push('\n');
    }
    src
}

fn program_text() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec((0..PARAMS, 0..PARAMS), 0..10),
        proptest::collection::vec(0..PARAMS, 0..5),
        1u16..256,
    )
        .prop_map(|(edges, units, mask)| {
            let rules = RULES
                .iter()
                .enumerate()
                .filter(move |(i, _)| mask & (1 << i) != 0)
                .map(|(_, r)| *r);
            facts_and_rules(&edges, &units, rules)
        })
}

fn definite_program_text() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec((0..PARAMS, 0..PARAMS), 0..10),
        proptest::collection::vec(0..PARAMS, 0..5),
        1u8..64,
    )
        .prop_map(|(edges, units, mask)| {
            let rules = DEFINITE
                .iter()
                .enumerate()
                .filter(move |(i, _)| mask & (1 << i) != 0)
                .map(|(_, r)| RULES[*r]);
            facts_and_rules(&edges, &units, rules)
        })
}

/// Everything except the counters only the traced paths move.
fn scrub(mut s: EvalStats) -> EvalStats {
    s.supports_recorded = 0;
    s.support_hits = 0;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Tracking is invisible: the traced fixpoint computes the identical
    /// model with identical pre-existing counters (stratified negation
    /// included), and the untraced run reports zero support activity.
    #[test]
    fn tracing_is_invisible(src in program_text()) {
        let program = Program::from_text(&src).unwrap();
        let (plain_db, plain) = program.eval().unwrap();
        let mut table = SupportTable::new();
        let (traced_db, traced) = program
            .eval_traced(EvalOptions::default(), &mut table)
            .unwrap();
        prop_assert_eq!(&traced_db, &plain_db, "tracing changed the model on:\n{}", src);
        prop_assert_eq!(scrub(traced), scrub(plain), "on:\n{}", src);
        prop_assert_eq!(plain.supports_recorded, 0);
        prop_assert_eq!(plain.support_hits, 0);
    }

    /// Every tuple of a definite least model has a proof tree, every
    /// proof replays (each node's rule actually fires over exactly the
    /// node's premises; every leaf is extensional), and the tree proves
    /// the atom asked about.
    #[test]
    fn every_proof_replays(src in definite_program_text()) {
        let program = Program::from_text(&src).unwrap();
        let mut table = SupportTable::new();
        let (model, _) = program
            .eval_traced(EvalOptions::default(), &mut table)
            .unwrap();
        prop_assert!(table.consistent_with(&model, program.rules.len()));
        for atom in model.atoms() {
            let tuple = params_of(&atom).expect("model atoms are ground");
            let proof = table.why(&program.edb, atom.pred, &tuple);
            let Some(proof) = proof else {
                return Err(TestCaseError::fail(format!(
                    "no proof for {atom} on:\n{src}"
                )));
            };
            prop_assert_eq!(proof.atom(), &atom, "proved the wrong atom on:\n{}", src);
            prop_assert!(proof.replays(&program), "{} does not replay on:\n{}", atom, src);
        }
        // Absent tuples have no proof (why-not).
        let ghost = parse("reach(a0, nowhere)").unwrap();
        if let epilog::syntax::Formula::Atom(g) = ghost {
            let t = params_of(&g).unwrap();
            prop_assert!(table.why(&program.edb, g.pred, &t).is_none());
        }
    }

    /// Support-accelerated DRed is a pure performance knob: on a random
    /// retraction it produces the identical final model with identical
    /// `tuples_rederived`, never runs *more* re-derivation probes than
    /// the probe-only path, and leaves the table holding exactly the
    /// surviving model's supports.
    #[test]
    fn dred_with_supports_matches_without(
        edges in proptest::collection::vec((0..PARAMS, 0..PARAMS), 1..10),
        units in proptest::collection::vec(0..PARAMS, 0..5),
        mask in 1u8..64,
        remove_mask in 1u16..1024,
    ) {
        let edges: Vec<(usize, usize)> = edges
            .into_iter()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let removed: Vec<(usize, usize)> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| remove_mask & (1 << (i % 10)) != 0)
            .map(|(_, e)| *e)
            .collect();
        let kept: Vec<(usize, usize)> = edges
            .iter()
            .filter(|e| !removed.contains(e))
            .copied()
            .collect();
        let rules = || {
            DEFINITE
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, r)| RULES[*r])
        };
        let full = Program::from_text(&facts_and_rules(&edges, &units, rules())).unwrap();
        let post = Program::from_text(&facts_and_rules(&kept, &units, rules())).unwrap();
        let removed_facts = Program::from_text(&facts_and_rules(&removed, &[], [].into_iter()))
            .unwrap()
            .edb;

        let mut table = SupportTable::new();
        let (model, _) = full.eval_traced(EvalOptions::default(), &mut table).unwrap();
        let plans: Vec<RulePlan> = post
            .rules
            .iter()
            .map(|r| RulePlan::compile_with_stats(r, Some(&model)))
            .collect();

        let (plain_db, plain) = post
            .eval_decremental_with(&plans, model.clone(), &removed_facts)
            .unwrap();
        let (traced_db, traced) = post
            .eval_decremental_traced(&plans, model, &removed_facts, &mut table)
            .unwrap();
        let (oracle, _) = post.eval().unwrap();

        prop_assert_eq!(&traced_db, &plain_db, "supports changed the DRed result");
        prop_assert_eq!(&traced_db, &oracle, "DRed differs from the from-scratch oracle");
        prop_assert_eq!(traced.tuples_rederived, plain.tuples_rederived);
        prop_assert!(
            traced.support_checks <= plain.support_checks,
            "supports ran MORE probes: {} > {}",
            traced.support_checks,
            plain.support_checks
        );
        prop_assert_eq!(
            traced.support_hits + traced.support_checks,
            plain.support_checks,
            "every saved probe must be a support hit"
        );
        prop_assert!(
            table.consistent_with(&traced_db, post.rules.len()),
            "table left inconsistent with the surviving model"
        );
        prop_assert_eq!(plain.support_hits, 0, "untraced path cannot hit supports");
    }

    /// End-to-end: a random commit/retract stream over `EpistemicDb`
    /// with provenance on equals the same stream with provenance off —
    /// same models, same accepted/rejected pattern — and after every
    /// commit each model tuple still affords a replayable proof.
    #[test]
    fn provenance_db_stream_matches_untracked(
        batches in proptest::collection::vec(
            (proptest::collection::vec((0..PARAMS, 0..PARAMS), 1..4), 0..2usize),
            1..5,
        ),
    ) {
        let base = "e(a0, a1)\n\
                    forall x, y. e(x, y) -> reach(x, y)\n\
                    forall x, y, z. e(x, y) & reach(y, z) -> reach(x, z)";
        let mut traced = EpistemicDb::from_text(base).unwrap();
        let mut plain = EpistemicDb::from_text(base).unwrap();
        prop_assert!(traced.enable_provenance());
        for (batch, kind) in &batches {
            let retract = *kind == 1;
            for db in [&mut traced, &mut plain] {
                let mut txn = db.transaction();
                for (a, b) in batch {
                    let w = parse(&format!("e(a{a}, a{b})")).unwrap();
                    txn = if retract { txn.retract(w) } else { txn.assert(w) };
                }
                let _ = txn.commit().unwrap();
            }
            prop_assert_eq!(
                traced.prover().atom_model(),
                plain.prover().atom_model(),
                "tracked and untracked streams diverged"
            );
            let model = traced.prover().atom_model().expect("definite theory");
            let prog = epilog::core::definite_program(traced.theory()).unwrap();
            prop_assert!(traced
                .support_table()
                .expect("provenance stays on across ground commits")
                .consistent_with(model, prog.rules.len()));
            for atom in model.atoms() {
                let proof = traced.why(&atom);
                let Some(proof) = proof else {
                    return Err(TestCaseError::fail(format!("no proof for {atom}")));
                };
                prop_assert!(proof.replays(&prog), "{} does not replay", atom);
            }
        }
    }
}
