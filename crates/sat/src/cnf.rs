//! Literals, CNF clause databases, and the Tseitin transform.

use std::fmt;

/// A propositional literal: variable index + sign, packed in a `u32`.
///
/// Variable `v`'s positive literal is `2v`, its negative literal `2v + 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of variable `v`.
    pub fn pos(v: u32) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of variable `v`.
    pub fn neg(v: u32) -> Lit {
        Lit((v << 1) | 1)
    }

    /// The underlying variable index.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Whether this is a positive literal.
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index for watch lists.
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "x{}", self.var())
        } else {
            write!(f, "~x{}", self.var())
        }
    }
}

/// A CNF formula under construction: a variable counter plus clauses.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty (trivially satisfiable) CNF.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocate a fresh variable, returning its index.
    pub fn new_var(&mut self) -> u32 {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Ensure at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: u32) {
        self.num_vars = self.num_vars.max(n);
    }

    /// The number of allocated variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The clauses added so far.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Add a clause (a disjunction of literals). The empty clause makes the
    /// formula unsatisfiable. Duplicate literals are deduplicated;
    /// tautological clauses (containing `l` and `¬l`) are dropped.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        for w in c.windows(2) {
            if w[0].var() == w[1].var() {
                return; // tautology: both polarities present
            }
        }
        for l in &c {
            assert!(l.var() < self.num_vars, "literal uses unallocated variable");
        }
        self.clauses.push(c);
    }

    /// Add a unit clause.
    pub fn add_unit(&mut self, l: Lit) {
        self.add_clause(&[l]);
    }
}

/// An arbitrary propositional formula, for Tseitin encoding.
///
/// The grounder in `epilog-prover` lowers ground FOPCE sentences to this
/// shape (equalities between parameters become the constants `True`/
/// `False` since parameters are semantically pairwise distinct).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Prop {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A propositional variable.
    Var(u32),
    /// Negation.
    Not(Box<Prop>),
    /// N-ary conjunction (empty = true).
    And(Vec<Prop>),
    /// N-ary disjunction (empty = false).
    Or(Vec<Prop>),
}

impl Prop {
    /// Negation, with trivial simplification.
    #[must_use]
    pub fn negate(self) -> Prop {
        match self {
            Prop::True => Prop::False,
            Prop::False => Prop::True,
            Prop::Not(p) => *p,
            p => Prop::Not(Box::new(p)),
        }
    }

    /// Conjunction with constant folding.
    pub fn and_all(ps: Vec<Prop>) -> Prop {
        let mut out = Vec::with_capacity(ps.len());
        for p in ps {
            match p {
                Prop::True => {}
                Prop::False => return Prop::False,
                Prop::And(inner) => out.extend(inner),
                p => out.push(p),
            }
        }
        match out.len() {
            0 => Prop::True,
            1 => out.pop().expect("len checked"),
            _ => Prop::And(out),
        }
    }

    /// Disjunction with constant folding.
    pub fn or_all(ps: Vec<Prop>) -> Prop {
        let mut out = Vec::with_capacity(ps.len());
        for p in ps {
            match p {
                Prop::False => {}
                Prop::True => return Prop::True,
                Prop::Or(inner) => out.extend(inner),
                p => out.push(p),
            }
        }
        match out.len() {
            0 => Prop::False,
            1 => out.pop().expect("len checked"),
            _ => Prop::Or(out),
        }
    }

    /// Evaluate under a total assignment (indexed by variable).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            Prop::True => true,
            Prop::False => false,
            Prop::Var(v) => assignment[*v as usize],
            Prop::Not(p) => !p.eval(assignment),
            Prop::And(ps) => ps.iter().all(|p| p.eval(assignment)),
            Prop::Or(ps) => ps.iter().any(|p| p.eval(assignment)),
        }
    }
}

/// Tseitin-encode `p` into `cnf`, returning a literal equivalent to `p`.
///
/// The encoding is polarity-blind (full biconditional definitions), linear
/// in the formula size, and equisatisfiable: `cnf ∧ returned-literal` is
/// satisfiable iff `p` is (relative to the previously added clauses).
///
/// Callers typically finish with `cnf.add_unit(lit)`.
pub fn tseitin(p: &Prop, cnf: &mut Cnf) -> Lit {
    match p {
        Prop::True => {
            let v = cnf.new_var();
            cnf.add_unit(Lit::pos(v));
            Lit::pos(v)
        }
        Prop::False => {
            let v = cnf.new_var();
            cnf.add_unit(Lit::neg(v));
            Lit::pos(v)
        }
        Prop::Var(v) => {
            cnf.reserve_vars(v + 1);
            Lit::pos(*v)
        }
        Prop::Not(inner) => tseitin(inner, cnf).negate(),
        Prop::And(ps) => {
            let lits: Vec<Lit> = ps.iter().map(|q| tseitin(q, cnf)).collect();
            let out = Lit::pos(cnf.new_var());
            // out → each lᵢ ;  (∧ lᵢ) → out
            for l in &lits {
                cnf.add_clause(&[out.negate(), *l]);
            }
            let mut big: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
            big.push(out);
            cnf.add_clause(&big);
            out
        }
        Prop::Or(ps) => {
            let lits: Vec<Lit> = ps.iter().map(|q| tseitin(q, cnf)).collect();
            let out = Lit::pos(cnf.new_var());
            // lᵢ → out ;  out → (∨ lᵢ)
            for l in &lits {
                cnf.add_clause(&[l.negate(), out]);
            }
            let mut big = lits;
            big.push(out.negate());
            cnf.add_clause(&big);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SatResult, Solver};

    #[test]
    fn literal_packing() {
        let l = Lit::pos(7);
        assert_eq!(l.var(), 7);
        assert!(l.is_pos());
        assert_eq!(l.negate().var(), 7);
        assert!(!l.negate().is_pos());
        assert_eq!(l.negate().negate(), l);
    }

    #[test]
    fn tautological_clauses_dropped() {
        let mut cnf = Cnf::new();
        let v = cnf.new_var();
        cnf.add_clause(&[Lit::pos(v), Lit::neg(v)]);
        assert!(cnf.clauses().is_empty());
    }

    #[test]
    fn duplicate_literals_dedup() {
        let mut cnf = Cnf::new();
        let v = cnf.new_var();
        cnf.add_clause(&[Lit::pos(v), Lit::pos(v)]);
        assert_eq!(cnf.clauses()[0].len(), 1);
    }

    #[test]
    fn prop_folding() {
        assert_eq!(Prop::and_all(vec![Prop::True, Prop::True]), Prop::True);
        assert_eq!(Prop::and_all(vec![Prop::Var(0), Prop::False]), Prop::False);
        assert_eq!(Prop::or_all(vec![]), Prop::False);
        assert_eq!(Prop::or_all(vec![Prop::Var(1)]), Prop::Var(1));
        assert_eq!(Prop::True.negate(), Prop::False);
        assert_eq!(Prop::Var(0).negate().negate(), Prop::Var(0));
    }

    #[test]
    fn tseitin_equisatisfiable() {
        // (x0 ∨ x1) ∧ ¬x0  — satisfiable with x1 = true.
        let p = Prop::and_all(vec![
            Prop::or_all(vec![Prop::Var(0), Prop::Var(1)]),
            Prop::Var(0).negate(),
        ]);
        let mut cnf = Cnf::new();
        cnf.reserve_vars(2);
        let root = tseitin(&p, &mut cnf);
        cnf.add_unit(root);
        match Solver::new(&cnf).solve() {
            SatResult::Sat(m) => {
                assert!(!m[0] && m[1]);
                assert!(p.eval(&m));
            }
            SatResult::Unsat => panic!("should be satisfiable"),
        }
    }

    #[test]
    fn tseitin_contradiction_unsat() {
        let p = Prop::and_all(vec![Prop::Var(0), Prop::Var(0).negate()]);
        let mut cnf = Cnf::new();
        cnf.reserve_vars(1);
        let root = tseitin(&p, &mut cnf);
        cnf.add_unit(root);
        assert!(matches!(Solver::new(&cnf).solve(), SatResult::Unsat));
    }
}
