//! Differential property suite for the bottom-up Datalog engine: on
//! randomized stratified programs, semi-naive evaluation under compiled
//! rule plans must produce exactly the database naive evaluation produces,
//! while executing no more join plans.
//!
//! Programs are drawn from a pool of safe, stratified-by-construction
//! rules (recursion is positive; negation only reaches down to lower
//! strata) over randomized extensional facts, so every sample is inside
//! the perfect-model fragment both evaluators implement.

use epilog::datalog::Program;
use proptest::prelude::*;

const PARAMS: usize = 4;

/// The rule pool. Each rule is safe and has at most one literal of a
/// recursive predicate, and the negated predicates (`reach`, `q`) never
/// appear in a head above them — so any subset is stratified.
const RULES: [&str; 6] = [
    "forall x, y. e(x, y) -> reach(x, y)",
    "forall x, y, z. e(x, y) & reach(y, z) -> reach(x, z)",
    "forall x. f(x) -> q(x)",
    "forall x, y. e(x, y) & f(x) -> q(y)",
    "forall x, y. e(x, y) & ~reach(y, x) -> oneway(x, y)",
    "forall x. f(x) & ~q(x) -> isolated(x)",
];

fn program_text() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec((0..PARAMS, 0..PARAMS), 0..10),
        proptest::collection::vec(0..PARAMS, 0..5),
        1u8..64,
    )
        .prop_map(|(edges, units, mask)| {
            let mut src = String::new();
            for (a, b) in edges {
                src.push_str(&format!("e(a{a}, a{b})\n"));
            }
            for a in units {
                src.push_str(&format!("f(a{a})\n"));
            }
            for (i, rule) in RULES.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    src.push_str(rule);
                    src.push('\n');
                }
            }
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Semi-naive and naive evaluation agree on the perfect model.
    #[test]
    fn seminaive_matches_naive(src in program_text()) {
        let program = Program::from_text(&src).unwrap();
        let (fast_db, fast) = program.eval().unwrap();
        let (slow_db, slow) = program.eval_naive().unwrap();
        prop_assert_eq!(&fast_db, &slow_db, "models differ on:\n{}", src);
        // Empty-delta variants are skipped, so the compiled semi-naive
        // engine never runs more join plans than the naive ablation.
        prop_assert!(
            fast.rule_firings <= slow.rule_firings,
            "semi-naive fired {} > naive {} on:\n{}",
            fast.rule_firings,
            slow.rule_firings,
            src
        );
        // Work actually done is bounded the same way.
        prop_assert!(
            fast.derivations <= slow.derivations,
            "semi-naive derived {} > naive {} on:\n{}",
            fast.derivations,
            slow.derivations,
            src
        );
    }

    /// Growing chains: the canonical recursive workload, exact sizes.
    #[test]
    fn chain_closure_size_is_exact(n in 1usize..24) {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("e(n{i}, n{})\n", i + 1));
        }
        src.push_str("forall x, y. e(x, y) -> t(x, y)\n");
        src.push_str("forall x, y, z. e(x, y) & t(y, z) -> t(x, z)\n");
        let program = Program::from_text(&src).unwrap();
        let (db, fast) = program.eval().unwrap();
        let (db2, slow) = program.eval_naive().unwrap();
        prop_assert_eq!(&db, &db2);
        let t = epilog::syntax::Pred::new("t", 2);
        prop_assert_eq!(db.relation(t).unwrap().len(), n * (n + 1) / 2);
        prop_assert!(fast.rule_firings <= slow.rule_firings);
    }
}
