//! Deterministic storage-fault injection for the persistence layer.
//!
//! Real disks fail: a `write` can land partially (torn), stop one byte
//! short, or error outright; an `fsync` can refuse to promise anything.
//! The durability claims this crate makes — log-before-apply,
//! acknowledged-implies-durable, crash-consistency of the tail — are
//! only worth something if they hold *through* those failures, so every
//! [`Wal`](crate::Wal) append/sync and [`Snapshot`](crate::Snapshot)
//! write can be routed through a [`FaultInjector`]: a seeded,
//! deterministic schedule of injected failures.
//!
//! # Design
//!
//! The injector is a narrow layer over exactly two primitives —
//! `fault::write_all` and `fault::sync_data` (crate-private) — the
//! only file operations the hot
//! durability path performs. Each call first consults the injector (when
//! one is installed): the injector counts the operation, decides from
//! its seeded schedule whether to fail it, and for torn/short writes
//! flushes a chosen prefix of the buffer to the file before returning
//! the error — exactly what a crashed or failing disk leaves behind.
//! When no injector is installed the layer is a single `Option` check
//! on the way into the real syscall: zero-cost when off.
//!
//! Injection is deterministic: the same seed, knobs, and operation
//! sequence produce the same faults, so a failing chaos run replays
//! exactly from its printed seed.
//!
//! # Knobs
//!
//! * [`FaultInjector::fail_nth_write`] / [`fail_nth_sync`](FaultInjector::fail_nth_sync)
//!   — script a fault at an exact (0-based) operation index; indexes
//!   count *all* observed operations of that class since creation.
//! * [`FaultInjector::set_write_rate`] / [`set_sync_rate`](FaultInjector::set_sync_rate)
//!   — seeded random faults at a `num/den` per-operation probability.
//! * [`FaultInjector::disarm`] / [`arm`](FaultInjector::arm) — a master
//!   switch: disarmed, every operation passes through untouched (the
//!   counters keep counting). Healing a degraded server only succeeds
//!   once the "disk" stops failing, i.e. after `disarm`.
//! * [`FaultInjector::writes`] / [`syncs`](FaultInjector::syncs) /
//!   [`injected`](FaultInjector::injected) — observability counters.

use std::fs::File;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The shape of an injected write failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails cleanly: an error is returned and no bytes
    /// reach the file.
    FailOp,
    /// A torn write: a seeded strict prefix of the buffer reaches the
    /// file, then the error — what a crash mid-`write` leaves behind.
    TornWrite,
    /// A short write: everything but the final byte reaches the file —
    /// the narrowest possible tear.
    ShortWrite,
}

#[derive(Debug, Default)]
struct Plan {
    rng: u64,
    /// Per-write fault probability as `num/den`; `num == 0` disables.
    write_rate: (u32, u32),
    /// Per-sync fault probability as `num/den`; `num == 0` disables.
    sync_rate: (u32, u32),
    /// Kinds drawn from (seeded, uniform) when a random write fault fires.
    write_kinds: Vec<FaultKind>,
    /// Scripted faults: `(0-based write index, kind)`.
    nth_write: Vec<(u64, FaultKind)>,
    /// Scripted sync failures: 0-based sync indexes.
    nth_sync: Vec<u64>,
}

impl Plan {
    fn next(&mut self) -> u64 {
        // The same LCG the test suites seed their workloads with.
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.rng
    }
}

/// A seeded, deterministic schedule of storage faults. See the
/// [module docs](self) for the knobs.
///
/// Shared as `Arc<FaultInjector>` between the test driver and the
/// database that is being failed; all methods take `&self`.
#[derive(Debug)]
pub struct FaultInjector {
    armed: AtomicBool,
    writes: AtomicU64,
    syncs: AtomicU64,
    injected: AtomicU64,
    plan: Mutex<Plan>,
}

impl FaultInjector {
    /// A fresh injector, armed, with no faults scheduled.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            armed: AtomicBool::new(true),
            writes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            plan: Mutex::new(Plan {
                rng: seed ^ 0x9e37_79b9_7f4a_7c15,
                write_kinds: vec![
                    FaultKind::FailOp,
                    FaultKind::TornWrite,
                    FaultKind::ShortWrite,
                ],
                ..Plan::default()
            }),
        }
    }

    /// Script a fault of `kind` at the `n`-th (0-based) write observed
    /// by this injector.
    pub fn fail_nth_write(&self, n: u64, kind: FaultKind) {
        self.plan.lock().unwrap().nth_write.push((n, kind));
    }

    /// Script a failure of the `n`-th (0-based) sync observed by this
    /// injector.
    pub fn fail_nth_sync(&self, n: u64) {
        self.plan.lock().unwrap().nth_sync.push(n);
    }

    /// Fail each write with probability `num/den` (seeded; `num = 0`
    /// disables), drawing the kind uniformly from the configured set.
    pub fn set_write_rate(&self, num: u32, den: u32) {
        self.plan.lock().unwrap().write_rate = (num, den.max(1));
    }

    /// Fail each sync with probability `num/den` (seeded; `num = 0`
    /// disables).
    pub fn set_sync_rate(&self, num: u32, den: u32) {
        self.plan.lock().unwrap().sync_rate = (num, den.max(1));
    }

    /// Restrict the kinds random write faults draw from.
    pub fn set_write_kinds(&self, kinds: Vec<FaultKind>) {
        assert!(!kinds.is_empty(), "the kind set cannot be empty");
        self.plan.lock().unwrap().write_kinds = kinds;
    }

    /// Master switch off: every operation passes through untouched
    /// (scripted and random schedules stay in place; counters keep
    /// counting). The "disk is fixed" precondition for a heal.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
    }

    /// Master switch back on.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }

    /// Whether the injector is currently armed.
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Write operations observed (armed or not).
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Sync operations observed (armed or not).
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Faults actually injected.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Consult the schedule for a write of `len` bytes. `Some((kind,
    /// cut))` means: flush `cut` bytes of prefix, then fail.
    fn decide_write(&self, len: usize) -> Option<(FaultKind, usize)> {
        let idx = self.writes.fetch_add(1, Ordering::Relaxed);
        if !self.armed() {
            return None;
        }
        let mut plan = self.plan.lock().unwrap();
        let kind = if let Some(at) = plan.nth_write.iter().position(|(n, _)| *n == idx) {
            plan.nth_write.remove(at).1
        } else if plan.write_rate.0 > 0 && {
            let roll = plan.next();
            (roll % u64::from(plan.write_rate.1)) < u64::from(plan.write_rate.0)
        } {
            let pick = plan.next() as usize % plan.write_kinds.len();
            plan.write_kinds[pick]
        } else {
            return None;
        };
        let cut = match kind {
            FaultKind::FailOp => 0,
            FaultKind::ShortWrite => len.saturating_sub(1),
            // A strict, non-empty prefix when there is room for one.
            FaultKind::TornWrite => {
                if len > 1 {
                    1 + plan.next() as usize % (len - 1)
                } else {
                    0
                }
            }
        };
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some((kind, cut))
    }

    /// Consult the schedule for a sync. `true` means fail it.
    fn decide_sync(&self) -> bool {
        let idx = self.syncs.fetch_add(1, Ordering::Relaxed);
        if !self.armed() {
            return false;
        }
        let mut plan = self.plan.lock().unwrap();
        let fail = if let Some(at) = plan.nth_sync.iter().position(|n| *n == idx) {
            plan.nth_sync.remove(at);
            true
        } else {
            plan.sync_rate.0 > 0 && {
                let roll = plan.next();
                (roll % u64::from(plan.sync_rate.1)) < u64::from(plan.sync_rate.0)
            }
        };
        if fail {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fail
    }
}

/// The injectable `write_all`: consults the injector (when present),
/// lands the fault's prefix, and errors — or passes straight through.
pub(crate) fn write_all(
    inj: Option<&FaultInjector>,
    file: &mut File,
    buf: &[u8],
) -> io::Result<()> {
    if let Some(i) = inj {
        if let Some((kind, cut)) = i.decide_write(buf.len()) {
            if cut > 0 {
                // The prefix a torn/short write leaves behind; its own
                // failure is irrelevant — the op is failing anyway.
                let _ = file.write_all(&buf[..cut]);
            }
            return Err(io::Error::other(format!(
                "injected {kind:?}: {cut} of {} bytes written",
                buf.len()
            )));
        }
    }
    file.write_all(buf)
}

/// The injectable `sync_data`.
pub(crate) fn sync_data(inj: Option<&FaultInjector>, file: &File) -> io::Result<()> {
    if let Some(i) = inj {
        if i.decide_sync() {
            return Err(io::Error::other("injected fsync failure"));
        }
    }
    file.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::path::PathBuf;

    fn dir() -> PathBuf {
        use std::sync::atomic::AtomicU32;
        static N: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "epilog-fault-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn tmp_file(d: &std::path::Path) -> File {
        File::create(d.join("f")).unwrap()
    }

    fn read_back(d: &std::path::Path) -> Vec<u8> {
        let mut buf = Vec::new();
        File::open(d.join("f"))
            .unwrap()
            .read_to_end(&mut buf)
            .unwrap();
        buf
    }

    #[test]
    fn scripted_write_faults_fire_at_their_index() {
        let d = dir();
        let mut f = tmp_file(&d);
        let inj = FaultInjector::new(1);
        inj.fail_nth_write(1, FaultKind::FailOp);
        assert!(write_all(Some(&inj), &mut f, b"aaaa").is_ok());
        assert!(write_all(Some(&inj), &mut f, b"bbbb").is_err());
        assert!(write_all(Some(&inj), &mut f, b"cccc").is_ok());
        assert_eq!(read_back(&d), b"aaaacccc", "clean failure: no bytes");
        assert_eq!(inj.writes(), 3);
        assert_eq!(inj.injected(), 1);
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn torn_and_short_writes_leave_a_strict_prefix() {
        let d = dir();
        let mut f = tmp_file(&d);
        let inj = FaultInjector::new(7);
        inj.fail_nth_write(0, FaultKind::TornWrite);
        inj.fail_nth_write(1, FaultKind::ShortWrite);
        assert!(write_all(Some(&inj), &mut f, b"0123456789").is_err());
        let torn = read_back(&d).len();
        assert!((1..10).contains(&torn), "strict non-empty prefix: {torn}");
        assert!(write_all(Some(&inj), &mut f, b"abcd").is_err());
        assert_eq!(read_back(&d).len(), torn + 3, "short write: all but one");
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn disarm_passes_everything_through() {
        let d = dir();
        let mut f = tmp_file(&d);
        let inj = FaultInjector::new(3);
        inj.set_write_rate(1, 1); // every write would fail…
        inj.set_sync_rate(1, 1);
        inj.disarm(); // …but the switch is off
        assert!(write_all(Some(&inj), &mut f, b"xyz").is_ok());
        assert!(sync_data(Some(&inj), &f).is_ok());
        assert_eq!(inj.injected(), 0);
        assert_eq!((inj.writes(), inj.syncs()), (1, 1), "counters still count");
        inj.arm();
        assert!(write_all(Some(&inj), &mut f, b"xyz").is_err());
        std::fs::remove_dir_all(d).unwrap();
    }

    #[test]
    fn seeded_rates_are_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new(seed);
            inj.set_sync_rate(1, 3);
            (0..32).map(|_| inj.decide_sync()).collect()
        };
        assert_eq!(run(42), run(42), "same seed, same schedule");
        assert_ne!(run(42), run(43), "different seed, different schedule");
        let fired = run(42).iter().filter(|b| **b).count();
        assert!(fired > 0 && fired < 32, "rate is neither 0 nor 1: {fired}");
    }
}
