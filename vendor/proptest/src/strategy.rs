//! Value-generation strategies (no shrinking — see the crate docs).

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating random values of one type.
///
/// Mirrors `proptest::strategy::Strategy` for the combinators this
/// workspace uses. Generation is a single draw; there is no value tree
/// and no simplification.
pub trait Strategy: Clone {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Apply `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f` (regenerating until one does).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + Clone,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Map-and-filter in one step (regenerating on `None`).
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O> + Clone,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Grow recursive structures: `self` is the leaf strategy; `recurse`
    /// receives a strategy for subterms and returns the branch strategy.
    /// Recursion is expanded eagerly to `depth` levels, each level
    /// choosing a leaf 1 time in 3 so shallow values stay common.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            current = Union::weighted(vec![(1, leaf.clone()), (2, branch)]).boxed();
        }
        current
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives, with integer weights.
pub struct Union<T> {
    alternatives: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            alternatives: self.alternatives.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Union<T> {
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(alternatives.into_iter().map(|s| (1, s)).collect())
    }

    pub fn weighted(alternatives: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs an alternative");
        let total_weight = alternatives.iter().map(|(w, _)| *w).sum();
        assert!(total_weight > 0, "prop_oneof! needs a positive weight");
        Union {
            alternatives,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight as u64) as u32;
        for (weight, alt) in &self.alternatives {
            if pick < *weight {
                return alt.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick is below the summed weights")
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// How many regenerations a filter may burn before giving up. Filters in
/// this workspace are vacuous or nearly so; hitting this means the
/// strategy itself is wrong.
const MAX_FILTER_ATTEMPTS: u32 = 10_000;

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter failed to generate: {}", self.whence)
    }
}

#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O> + Clone,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map failed to generate: {}", self.whence)
    }
}

/// `proptest::collection::vec` — length drawn uniformly from the range.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> VecStrategy<S> {
    pub fn new(element: S, len: Range<usize>) -> Self {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::option::of` — `Some` three times out of four.
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> OptionStrategy<S> {
    pub fn new(inner: S) -> Self {
        OptionStrategy { inner }
    }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 => 0);
tuple_strategy!(S0 => 0, S1 => 1);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5);

/// `prop_oneof![s1, s2, ...]` or `prop_oneof![w1 => s1, w2 => s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
